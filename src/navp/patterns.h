// Reusable NavP coordination patterns, composed from hop/inject/events —
// the idioms the case studies keep reaching for, packaged:
//
//   * spawn_and_await  — inject N agents and wait for all to finish
//                        (a completion barrier via counting events).
//   * parallel_for_pes — run a body once on every PE, in parallel.
//   * ring_token       — circulate a value through every PE in order,
//                        folding a function over it (the "traveling
//                        accumulator" idiom of DSC).
//
// All patterns are awaitable Tasks usable inside any Mission, or runnable
// from the outside via Runtime::inject of a small driver.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::navp {

namespace patterns_detail {
inline constexpr std::int32_t kDoneTag = 40;  // completion events
}  // namespace patterns_detail

/// Body run by a spawned worker: receives the worker's Ctx and index.
using WorkerBody = std::function<Task<void>(Ctx&, int index)>;

/// Inject `count` workers (worker i starts on `origin(i)`) and suspend
/// until all have completed.  `token` must be unique among concurrently
/// running spawn_and_await calls on the calling agent's current PE.
// NOTE: coroutine parameters are taken BY VALUE on purpose: a Task is
// lazy, so reference parameters would dangle when the caller's temporaries
// die before the first co_await (the classic coroutine footgun).
inline Task<void> spawn_and_await(Ctx ctx, int count,
                                  std::function<int(int)> origin,
                                  WorkerBody body, int token = 0) {
  const EventKey done{patterns_detail::kDoneTag, token, 0};
  const int home = ctx.here();
  for (int i = 0; i < count; ++i) {
    const int pe = origin(i);
    // Injection is local in MESSENGERS: spawn a local stub that hops to
    // its origin, runs the body, then returns home to deliver the
    // completion signal (events are node-local).
    ctx.inject("worker" + std::to_string(i),
               [](Ctx wctx, const WorkerBody* b, int index, int start,
                  EventKey ev, int notify) -> Mission {
                 if (wctx.here() != start) co_await wctx.hop(start, 0);
                 co_await (*b)(wctx, index);
                 if (wctx.here() != notify) co_await wctx.hop(notify, 0);
                 wctx.signal_event(ev);
               },
               &body, i, pe, done, home);
  }
  for (int i = 0; i < count; ++i) co_await ctx.wait_event(done);
}

/// Run `body(ctx, pe)` once on every PE concurrently; await completion.
inline Task<void> parallel_for_pes(Ctx ctx, WorkerBody body,
                                   int token = 0) {
  return spawn_and_await(
      ctx, ctx.pe_count(), [](int i) { return i; }, std::move(body), token);
}

/// Circulate a value once around the PEs (starting at the caller's PE),
/// folding `step(value, pe)` at each stop.  Returns the folded value; the
/// caller ends up back on its starting PE.
template <class T>
Task<T> ring_token(Ctx ctx, T value, std::function<T(T, int)> step,
                   std::size_t payload_bytes = sizeof(T)) {
  const int home = ctx.here();
  for (int k = 0; k < ctx.pe_count(); ++k) {
    const int pe = (home + k) % ctx.pe_count();
    if (pe != ctx.here()) co_await ctx.hop(pe, payload_bytes);
    value = step(std::move(value), pe);
  }
  if (ctx.here() != home) co_await ctx.hop(home, payload_bytes);
  co_return value;
}

}  // namespace navcpp::navp
