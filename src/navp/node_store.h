// Node variables: PE-resident state shared by all computations currently on
// that PE (the paper's "thick boxes").
//
// Applications define a plain struct of node variables and install one
// instance per PE before the run (or lazily from an agent).  Access is via
// Ctx::node<T>(), which resolves against the agent's *current* PE — hop and
// the view of `A`, `B`, `C` moves with you, exactly like MESSENGERS.
//
// No locking: a PE executes one computation at a time (see machine/engine.h).
#pragma once

#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>

#include "support/error.h"

namespace navcpp::navp {

class NodeStore {
 public:
  /// Construct a T in this store.  At most one instance per type.
  template <class T, class... Args>
  T& emplace(Args&&... args) {
    auto [it, inserted] = slots_.emplace(
        std::type_index(typeid(T)),
        Slot{new T(std::forward<Args>(args)...),
             [](void* p) { delete static_cast<T*>(p); }});
    NAVCPP_CHECK(inserted, "node variable of this type already installed");
    return *static_cast<T*>(it->second.ptr.get());
  }

  /// Fetch the instance of T.  Throws if none was installed.
  template <class T>
  T& get() const {
    auto it = slots_.find(std::type_index(typeid(T)));
    NAVCPP_CHECK(it != slots_.end(),
                 std::string("node variable not installed: ") +
                     typeid(T).name());
    return *static_cast<T*>(it->second.ptr.get());
  }

  /// True if an instance of T is installed.
  template <class T>
  bool has() const {
    return slots_.find(std::type_index(typeid(T))) != slots_.end();
  }

 private:
  struct Slot {
    Slot(void* p, void (*deleter)(void*)) : ptr(p, deleter) {}
    std::unique_ptr<void, void (*)(void*)> ptr;
  };

  std::unordered_map<std::type_index, Slot> slots_;
};

}  // namespace navcpp::navp
