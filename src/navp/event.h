// NavP events: the synchronization primitive of MESSENGERS.
//
// Events are *node-local* counting semaphores identified by a small key
// (a tag plus up to two integer coordinates — the paper writes EP(i,j),
// EC(i,j)).  signalEvent() increments the count or hands the signal to the
// oldest waiter; waitEvent() consumes a count or suspends the calling agent.
// Only computations currently resident on a PE touch that PE's event table,
// so the table needs no synchronization of its own.
#pragma once

#include <algorithm>
#include <compare>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/error.h"

namespace navcpp::navp {

struct AgentState;  // defined in navp/agent.h

/// Identifies one event on one PE.  `tag` distinguishes event families
/// (e.g. EP vs EC); `a`/`b` are coordinates (unused ones default to 0).
struct EventKey {
  std::int32_t tag = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;

  friend bool operator==(const EventKey&, const EventKey&) = default;
  /// Lexicographic (tag, a, b) order — used wherever a deterministic
  /// iteration order over keys is needed (diagnostics, chaos traces).
  friend auto operator<=>(const EventKey&, const EventKey&) = default;

  std::string str() const {
    return "E" + std::to_string(tag) + "(" + std::to_string(a) + "," +
           std::to_string(b) + ")";
  }
};

struct EventKeyHash {
  std::size_t operator()(const EventKey& k) const {
    // Mix the three 32-bit fields; splitmix-style finalizer.
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(k.tag))
                       << 32) ^
                      (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(k.a))
                       << 16) ^
                      static_cast<std::uint32_t>(k.b);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// One waiter parked on an event.
struct EventWaiter {
  std::coroutine_handle<> handle;
  AgentState* agent = nullptr;
};

/// Per-PE table of event counts and waiters.
class EventTable {
 public:
  /// Consume one signal if available.  Returns true on success.
  bool try_consume(const EventKey& key) {
    auto it = counts_.find(key);
    if (it == counts_.end() || it->second == 0) return false;
    --it->second;
    return true;
  }

  /// Park a waiter on `key` (called only after try_consume failed).
  void add_waiter(const EventKey& key, EventWaiter waiter) {
    waiters_[key].push_back(waiter);
  }

  /// Signal `key`: returns the oldest waiter to resume, or a null-handle
  /// waiter if none (in which case the signal count is banked).
  EventWaiter signal(const EventKey& key) {
    auto it = waiters_.find(key);
    if (it != waiters_.end() && !it->second.empty()) {
      EventWaiter w = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) waiters_.erase(it);
      return w;
    }
    ++counts_[key];
    return EventWaiter{};
  }

  /// Number of banked (unconsumed) signals for `key`.
  std::uint64_t pending_signals(const EventKey& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Number of agents currently parked on `key`.
  std::size_t waiter_count(const EventKey& key) const {
    auto it = waiters_.find(key);
    return it == waiters_.end() ? 0 : it->second.size();
  }

  bool has_waiters() const { return !waiters_.empty(); }

  /// Visit every parked waiter in deterministic order: keys sorted by
  /// (tag, a, b), waiters per key in park (FIFO) order.  Keeps deadlock
  /// reports and chaos-trace summaries byte-identical across runs and
  /// platforms despite the unordered_map storage.
  void for_each_waiter(
      const std::function<void(const EventKey&, const EventWaiter&)>& fn)
      const {
    std::vector<EventKey> keys;
    keys.reserve(waiters_.size());
    for (const auto& [key, list] : waiters_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const EventKey& key : keys) {
      for (const auto& w : waiters_.at(key)) fn(key, w);
    }
  }

  /// Sum of banked signals over all keys (leak/conservation checks).
  std::uint64_t total_pending_signals() const {
    std::uint64_t total = 0;
    for (const auto& [key, n] : counts_) total += n;
    return total;
  }

  // --- Checkpoint support (navp/checkpoint.h) ---------------------------

  /// Banked signal counts in deterministic (tag, a, b) order — the
  /// serializable half of the table.  Parked waiters are deliberately NOT
  /// serializable: a waiter is a suspended coroutine, and recovery re-creates
  /// it by re-running its agent from its last committed state.
  std::vector<std::pair<EventKey, std::uint64_t>> banked() const {
    std::vector<std::pair<EventKey, std::uint64_t>> out;
    out.reserve(counts_.size());
    for (const auto& [key, n] : counts_) {
      if (n > 0) out.emplace_back(key, n);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Restore one banked count (used after clear() during recovery).
  void set_banked(const EventKey& key, std::uint64_t count) {
    if (count == 0) {
      counts_.erase(key);
    } else {
      counts_[key] = count;
    }
  }

  /// Drop every banked count and parked waiter (PE crash: volatile memory
  /// is gone).  Waiter *frames* are not destroyed here — the runtime kills
  /// resident agents through AgentState::destroy_stack first; this just
  /// forgets the dangling bookkeeping.
  void clear() {
    counts_.clear();
    waiters_.clear();
  }

 private:
  std::unordered_map<EventKey, std::uint64_t, EventKeyHash> counts_;
  std::unordered_map<EventKey, std::deque<EventWaiter>, EventKeyHash>
      waiters_;
};

}  // namespace navcpp::navp
