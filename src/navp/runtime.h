// The NavP runtime: our reimplementation of the MESSENGERS system the paper
// builds on (http://www.ics.uci.edu/~bic/messengers).
//
// A Runtime binds the NavP programming model to a machine::Engine (threaded
// or simulated).  It owns, per PE: the node-variable store and the event
// table.  Agents (Mission coroutines) are injected at a PE and then navigate
// with Ctx::hop(), synchronize with Ctx::wait_event()/signal_event(), spawn
// peers with Ctx::inject() (always local, as in MESSENGERS), and account
// their computation with Ctx::work()/compute().
//
// See navp/agent.h for how agent variables map onto coroutine frames.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "navp/agent.h"
#include "navp/event.h"
#include "navp/node_store.h"
#include "navp/trace.h"
#include "obs/metrics.h"
#include "support/bytebuffer.h"
#include "support/error.h"

namespace navcpp::net {
class ReliableChannel;
}  // namespace navcpp::net

namespace navcpp::navp {

class Ctx;

class Runtime {
 public:
  explicit Runtime(machine::Engine& engine);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int pe_count() const { return engine_.pe_count(); }
  machine::Engine& engine() { return engine_; }

  /// Node-variable store of `pe` (install application state here before
  /// run(), or lazily from an agent resident on that PE).
  NodeStore& node_store(int pe) {
    check_pe(pe);
    return node_stores_[static_cast<std::size_t>(pe)];
  }

  /// Event table of `pe`.  Exposed for diagnostics and tests; agents use
  /// Ctx::wait_event()/signal_event().
  EventTable& events(int pe) {
    check_pe(pe);
    return event_tables_[static_cast<std::size_t>(pe)];
  }

  /// Bank a signal on `pe` before the run starts (the paper's "an event
  /// EC(i,j) is signaled on node(i,j) initially").
  void pre_signal(int pe, EventKey key) {
    events(pe).signal(key);
    signals_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Inject (spawn) an agent at `pe`.  `fn` must be a coroutine function
  /// invocable as fn(Ctx, args...) returning Mission.  This is the
  /// "command line" injection of MESSENGERS; agents themselves must use
  /// Ctx::inject(), which is local-only.
  template <class F, class... Args>
  AgentId inject(int pe, std::string name, F&& fn, Args&&... args);

  /// Drive the machine until every agent finished.  Throws DeadlockError
  /// (with a blocked-agent report) on a stall, and rethrows the first
  /// exception escaping any agent.
  void run();

  /// Attach / detach a trace recorder (nullptr = off).  The constructor
  /// defaults this from the ambient TraceScope, so scoped callers (harness,
  /// profile) need not reach into every program's Runtime.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

  /// Attach / detach a metrics registry (nullptr = off).  Resolves and
  /// caches the runtime's own counters, walks the engine decorator chain so
  /// every layer (backend, chaos, fault) reports its dimensions, and
  /// propagates to the auto-installed reliability layer.  The constructor
  /// defaults this from the ambient obs::MetricsScope.
  void set_metrics(obs::Registry* registry);
  obs::Registry* metrics() const { return metrics_; }

  /// Fixed per-hop state overhead in bytes ("a small amount of state data").
  void set_hop_state_bytes(std::size_t n) { hop_state_bytes_ = n; }
  std::size_t hop_state_bytes() const { return hop_state_bytes_; }

  /// Sender-side CPU seconds charged per hop (MESSENGERS thread-state
  /// capture and dispatch), on top of the network model's message costs.
  void set_hop_cpu_overhead(double seconds) { hop_cpu_overhead_ = seconds; }
  double hop_cpu_overhead() const { return hop_cpu_overhead_; }

  /// CPU seconds charged to a PE every time a suspended computation is
  /// re-activated there (hop arrival, event wake, injection start) — the
  /// daemon dequeue / context-switch cost of the MESSENGERS runtime.
  void set_activation_overhead(double seconds) {
    activation_overhead_ = seconds;
  }
  double activation_overhead() const { return activation_overhead_; }

  /// Strict migration auditing: when on, navp::hop_cargo() serializes the
  /// registered agent variables around every hop (see navp/cargo.h).
  /// Defaults to the ambient StrictMigrationScope, so whole programs that
  /// construct their Runtime internally can be audited from the outside.
  void set_strict_migration(bool on) { strict_migration_ = on; }
  bool strict_migration() const { return strict_migration_; }

  // --- hop-size audit ----------------------------------------------------
  // A hop that declares fewer wire bytes than the agent actually keeps in
  // its coroutine frame is carrying state that would not survive a real
  // address-space boundary (the shared-memory bug class the process-per-PE
  // backend makes fatal).  The audit compares each hopping agent's frame
  // size against payload + hop_state_bytes + slack, and records (never
  // throws) a bounded report plus a counter.  On by default: one compare
  // per hop.

  void set_hop_audit(bool on) { hop_audit_ = on; }
  bool hop_audit() const { return hop_audit_; }
  /// Allowance for coroutine machinery (promise, suspend bookkeeping,
  /// awaiter storage) and small by-value locals before a hop is flagged.
  void set_hop_audit_slack(std::size_t bytes) { hop_audit_slack_ = bytes; }
  std::size_t hop_audit_slack() const { return hop_audit_slack_; }
  std::uint64_t hop_audit_flags() const {
    return hop_audit_flags_.load(std::memory_order_relaxed);
  }
  /// Distinct flagged (agent name, declared bytes) sites, capped at 64.
  std::vector<std::string> hop_audit_report() const;
  /// Internal: called from HopAwaiter when a hop under-declares.
  void flag_hop_audit(const AgentState* state, int src, int dest,
                      std::size_t declared_bytes);

  // --- statistics (for tests and cost audits) ---------------------------
  std::uint64_t agents_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  std::uint64_t agents_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t hop_count() const {
    return hops_.load(std::memory_order_relaxed);
  }
  std::uint64_t signals_sent() const {
    return signals_.load(std::memory_order_relaxed);
  }
  std::uint64_t waits_satisfied() const {
    return waits_.load(std::memory_order_relaxed);
  }
  /// Signals banked across all PEs and never consumed (post-run audit).
  std::uint64_t unconsumed_signals() const;

  /// Human-readable list of agents parked on events (deadlock diagnostics).
  /// When a reliability layer is installed, appends its per-channel
  /// in-flight / unacked counters so a retransmit stall is diagnosable from
  /// the report alone.
  std::string blocked_report() const;

  // --- fault tolerance ---------------------------------------------------
  // The constructor walks the engine's decorator chain; if it finds a
  // machine::FaultMachine it installs a net::ReliableChannel configured from
  // FaultMachine::reliable_config() and routes every cross-PE shipment
  // (agent hops AND mini-MPI sends) through it.  Programs need no changes
  // to run correctly under injected faults.

  /// The auto-installed reliability layer, or nullptr on a fault-free
  /// engine.
  net::ReliableChannel* reliable() { return reliable_.get(); }

  /// Ship `deliver` from src to dst: through the reliability layer when one
  /// is installed, straight through the engine otherwise.  All runtime and
  /// minimpi traffic funnels through here.
  void ship(int src, int dst, std::size_t bytes,
            support::MoveFunction deliver);

  /// Re-creates a recoverable agent from its last committed state.  The
  /// returned Mission continues the agent's work from that state (typically
  /// the function re-enters its main loop at the committed iteration).
  using RecoveryFactory =
      std::function<Mission(Ctx, support::ByteBuffer state)>;

  /// Serializable description of one recoverable agent, as captured by a
  /// checkpoint: which factory re-creates it, where it lived, and its last
  /// committed state.
  struct RecoverableDescriptor {
    std::string name;
    std::string factory;
    int pe = 0;
    support::ByteBuffer state;
  };

  /// Register the factory recoverable agents of kind `key` are rebuilt
  /// with.  Must outlive the run.
  void register_recovery_factory(const std::string& key, RecoveryFactory fn);

  /// Inject an agent that survives PE crashes: its identity, factory key
  /// and state are tracked centrally (stable storage in a real system), and
  /// checkpoint/restore re-injects it from its last Ctx::commit()ed state.
  /// `name` must be unique among recoverables.
  AgentId inject_recoverable(int pe, std::string name,
                             const std::string& factory_key,
                             const support::ByteBuffer& initial_state);

  /// Descriptors of the recoverable agents whose last committed position is
  /// `pe` (what a checkpoint of that PE must include).
  std::vector<RecoverableDescriptor> recoverables_on(int pe) const;

  /// Re-inject the agent described by `d` if its current incarnation is
  /// dead and it has not finished.  Returns true if an agent was started.
  bool restore_descriptor(const RecoverableDescriptor& d);

  /// Fail-stop crash of `pe`: destroys every agent resident there (in-flight
  /// agents survive and arrive after the restart), clears the PE's event
  /// table.  Node-variable state is the application's to restore (see
  /// navp/checkpoint.h hooks).  Called from a FaultMachine crash handler.
  void crash_pe(int pe);

  /// Update the central record of a recoverable agent (Ctx::commit()).
  void commit_recoverable(const std::string& name, int pe,
                          const support::ByteBuffer& state);

  std::uint64_t agents_killed() const {
    return killed_.load(std::memory_order_relaxed);
  }
  std::uint64_t agents_recovered() const {
    return recovered_.load(std::memory_order_relaxed);
  }

  // --- internal (used by Ctx, the awaiters, and minimpi) -----------------
  void count_hop() {
    hops_.fetch_add(1, std::memory_order_relaxed);
    if (m_hops_ != nullptr) m_hops_->add();
  }
  void count_signal() {
    signals_.fetch_add(1, std::memory_order_relaxed);
    if (m_signals_ != nullptr) m_signals_->add();
  }
  void count_wait() {
    waits_.fetch_add(1, std::memory_order_relaxed);
    if (m_waits_ != nullptr) m_waits_->add();
  }
  /// Called from the hop delivery closure, which runs exactly once per hop
  /// even when the reliability layer retransmits the frame — so hop-byte
  /// accounting here counts the *delivered* copy only, never the wire-level
  /// duplicates (those show up under net.reliable.* instead).
  void count_hop_delivered(int dst, std::uint64_t bytes) {
    if (m_hop_bytes_ != nullptr) {
      m_hop_bytes_->add(bytes);
      if (dst >= 0 && static_cast<std::size_t>(dst) < m_hop_arrivals_.size()) {
        m_hop_arrivals_[static_cast<std::size_t>(dst)]->add();
      }
    }
  }

  /// Signal `key` on `pe`, waking the oldest waiter if any.  MUST be called
  /// from code executing on `pe` (an agent resident there, or a message
  /// delivery action) — PE confinement is what makes this race-free.
  void signal_on(int pe, EventKey key) {
    count_signal();
    EventWaiter w = events(pe).signal(key);
    if (w.handle) {
      engine_.post(pe, [this, pe,
                        owned = OwnedResume(
                            w.handle,
                            w.agent->shared_from_this())]() mutable {
        engine_.charge(pe, activation_overhead_);
        owned();
      });
    }
  }

 private:
  friend void agent_finished(AgentState* state,
                             std::exception_ptr error) noexcept;

  void check_pe(int pe) const {
    NAVCPP_CHECK(pe >= 0 && pe < pe_count(),
                 "PE id " + std::to_string(pe) + " out of range [0, " +
                     std::to_string(pe_count()) + ")");
  }

  std::shared_ptr<AgentState> make_agent(int pe, std::string name);
  void start_agent(const std::shared_ptr<AgentState>& state, Mission mission);

  /// Central record of one recoverable agent ("stable storage").
  struct RecoverableRecord {
    std::string factory;
    support::ByteBuffer state;
    int pe = 0;
    AgentId current_id = 0;
    bool finished = false;
  };

  machine::Engine& engine_;
  std::unique_ptr<net::ReliableChannel> reliable_;
  std::vector<NodeStore> node_stores_;
  std::vector<EventTable> event_tables_;
  TraceRecorder* trace_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  // Cached metric handles (null when metrics are off); resolved once in
  // set_metrics so the counting hooks stay a relaxed atomic add.
  obs::Counter* m_hops_ = nullptr;
  obs::Counter* m_hop_bytes_ = nullptr;
  obs::Counter* m_injects_ = nullptr;
  obs::Counter* m_completions_ = nullptr;
  obs::Counter* m_signals_ = nullptr;
  obs::Counter* m_waits_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_killed_ = nullptr;
  obs::Counter* m_recovered_ = nullptr;
  std::vector<obs::Counter*> m_hop_arrivals_;  // per destination PE
  std::size_t hop_state_bytes_ = 256;
  double hop_cpu_overhead_ = 0.0;
  double activation_overhead_ = 0.0;
  bool strict_migration_ = false;
  bool hop_audit_ = true;
  std::size_t hop_audit_slack_ = 1024;
  std::atomic<std::uint64_t> hop_audit_flags_{0};
  mutable std::mutex audit_mutex_;
  std::vector<std::string> hop_audit_report_;  // bounded; see .cpp

  mutable std::mutex registry_mutex_;
  std::unordered_map<AgentId, std::shared_ptr<AgentState>> registry_;
  // Guarded by registry_mutex_ as well (commit/kill/restore interleave with
  // registry updates on the threaded backend).
  std::unordered_map<std::string, RecoveryFactory> factories_;
  std::unordered_map<std::string, RecoverableRecord> recoverables_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> hops_{0};
  std::atomic<std::uint64_t> signals_{0};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> killed_{0};
  std::atomic<std::uint64_t> recovered_{0};
};

/// The handle an agent uses to interact with the NavP world.  Cheap to copy;
/// passed by value as the first parameter of every Mission coroutine.
class Ctx {
 public:
  explicit Ctx(AgentState* state) : state_(state) {}

  /// PE the agent currently resides on.
  int here() const { return state_->pe; }
  int pe_count() const { return state_->rt->pe_count(); }
  AgentId id() const { return state_->id; }
  const std::string& name() const { return state_->name; }
  Runtime& runtime() const { return *state_->rt; }

  /// Current time at the agent's PE (virtual or wall seconds).
  double now() const { return state_->rt->engine().now(state_->pe); }

  /// Migrate to PE `dest`, carrying `payload_bytes` of agent variables.
  /// Awaitable; the coroutine resumes on the destination PE.
  [[nodiscard]] auto hop(int dest, std::size_t payload_bytes = 0);

  /// Wait for one signal of `key` on the *current* PE.  Awaitable.
  [[nodiscard]] auto wait_event(EventKey key);

  /// Signal `key` on the current PE, waking the oldest waiter if any.
  void signal_event(EventKey key);

  /// Node variables of type T resident on the current PE.
  template <class T>
  T& node() const {
    return state_->rt->node_store(state_->pe).get<T>();
  }

  /// Spawn an agent on the current PE (injection is always local in
  /// MESSENGERS; use hop() first to spawn elsewhere).
  template <class F, class... Args>
  AgentId inject(std::string name, F&& fn, Args&&... args) {
    return state_->rt->inject(state_->pe, std::move(name),
                              std::forward<F>(fn),
                              std::forward<Args>(args)...);
  }

  /// Perform `body` (real work) and charge `cost_seconds` of modeled time;
  /// records one compute span in the trace.  On the threaded backend the
  /// charge is a no-op and the span covers the body's wall time.
  template <class Fn>
  void work(const char* label, double cost_seconds, Fn&& body) {
    const double t0 = now();
    body();
    state_->rt->engine().charge(state_->pe, cost_seconds);
    if (auto* tr = state_->rt->trace()) {
      tr->record_span(TraceSpan{state_->id, state_->pe, t0, now(),
                                TraceSpan::Kind::kCompute, label});
    }
  }

  /// Charge modeled compute time with no real work (phantom storage).
  void compute(double cost_seconds, const char* label = "compute") {
    work(label, cost_seconds, [] {});
  }

  /// Commit the agent's recovery state (recoverable agents only; see
  /// Runtime::inject_recoverable).  After a crash the agent is re-created
  /// by its factory from the most recent committed state — so commit at
  /// each hop-arrival boundary, BEFORE applying local side effects, and the
  /// re-run replays this visit from the top.
  void commit(const support::ByteBuffer& state_bytes) {
    NAVCPP_CHECK(!state_->recoverable_name.empty(),
                 "Ctx::commit on a non-recoverable agent (use "
                 "Runtime::inject_recoverable)");
    state_->rt->commit_recoverable(state_->recoverable_name, state_->pe,
                                   state_bytes);
  }

 private:
  friend struct HopAwaiter;
  friend struct EventAwaiter;

  AgentState* state_;
};

struct HopAwaiter {
  AgentState* state;
  int dest;
  std::size_t payload_bytes;

  // MESSENGERS semantics: a hop() to the node the computation already
  // resides on is a no-op — the thread keeps running without yielding the
  // PE.  This is load-bearing for the Pipelining Transformation: a carrier
  // finishes all its work on a PE in one scheduling slice and departs
  // before the next carrier starts, instead of round-robin interleaving
  // with it (which would stall the pipeline front).
  bool await_ready() const noexcept {
    if (dest == state->pe) {
      state->rt->count_hop();  // the program issued a hop(); count it
      return true;
    }
    return false;
  }

  void await_suspend(std::coroutine_handle<> h) {
    Runtime* rt = state->rt;
    const int src = state->pe;
    if (rt->hop_cpu_overhead() > 0.0 && src != dest) {
      rt->engine().charge(src, rt->hop_cpu_overhead());
    }
    const double depart = rt->engine().now(src);
    const std::size_t bytes = payload_bytes + rt->hop_state_bytes();
    if (rt->hop_audit() &&
        state->frame_bytes > bytes + rt->hop_audit_slack()) {
      rt->flag_hop_audit(state, src, dest, payload_bytes);
    }
    state->pe = dest;
    state->in_flight = true;  // on the wire: a crash of either PE spares it
    rt->count_hop();
    AgentState* st = state;
    auto deliver = [st, src, d = dest, depart, bytes,
                    owned = OwnedResume(h, state->shared_from_this())]() mutable {
      st->in_flight = false;
      Runtime* r = st->rt;
      r->engine().charge(d, r->activation_overhead());
      r->count_hop_delivered(d, bytes);
      if (auto* tr = r->trace()) {
        tr->record_hop(TraceHop{st->id, src, d, depart,
                                r->engine().now(d), bytes});
      }
      owned();
    };
    // The hop-delivery closure is the single hottest thing the threaded
    // backend moves through its run queues; it must stay within
    // MoveFunction's inline buffer or every hop buys a heap allocation.
    // (+ one pointer: MoveFunction wraps the callable with a vptr.)
    static_assert(sizeof(deliver) + sizeof(void*) <=
                      support::MoveFunction::kInlineSize,
                  "hop-delivery closure outgrew MoveFunction's inline "
                  "buffer; trim the captures or grow kInlineSize");
    rt->ship(src, dest, bytes, std::move(deliver));
  }

  void await_resume() const noexcept {}
};

struct EventAwaiter {
  AgentState* state;
  EventKey key;
  double wait_start = 0.0;

  bool await_ready() {
    Runtime* rt = state->rt;
    if (rt->events(state->pe).try_consume(key)) {
      rt->count_wait();
      return true;
    }
    return false;
  }

  void await_suspend(std::coroutine_handle<> h) {
    Runtime* rt = state->rt;
    wait_start = rt->engine().now(state->pe);
    state->blocked_on = key;
    rt->events(state->pe).add_waiter(key, EventWaiter{h, state});
  }

  void await_resume() {
    if (state->blocked_on.has_value()) {
      // We actually suspended; close out the wait span.
      state->blocked_on.reset();
      Runtime* rt = state->rt;
      rt->count_wait();
      if (auto* tr = rt->trace()) {
        tr->record_span(TraceSpan{state->id, state->pe, wait_start,
                                  rt->engine().now(state->pe),
                                  TraceSpan::Kind::kWait, key.str()});
      }
    }
  }
};

inline auto Ctx::hop(int dest, std::size_t payload_bytes) {
  NAVCPP_CHECK(dest >= 0 && dest < pe_count(),
               "hop destination " + std::to_string(dest) +
                   " out of range [0, " + std::to_string(pe_count()) + ")");
  return HopAwaiter{state_, dest, payload_bytes};
}

inline auto Ctx::wait_event(EventKey key) {
  return EventAwaiter{state_, key};
}

inline void Ctx::signal_event(EventKey key) {
  state_->rt->signal_on(state_->pe, key);
}

template <class F, class... Args>
AgentId Runtime::inject(int pe, std::string name, F&& fn, Args&&... args) {
  check_pe(pe);
  std::shared_ptr<AgentState> state = make_agent(pe, std::move(name));
  Mission mission =
      std::forward<F>(fn)(Ctx(state.get()), std::forward<Args>(args)...);
  NAVCPP_CHECK(mission.valid(), "agent function returned an empty Mission");
  start_agent(state, std::move(mission));
  return state->id;
}

/// Scoped thread-local default for strict migration: while a scope is
/// alive, every Runtime constructed on this thread starts with
/// set_strict_migration(true).  This lets a test or a harness audit the
/// serialization fidelity of whole programs — which build their Runtime
/// internally — without touching any runner signature; the same ambient
/// pattern as TraceScope and obs::MetricsScope.
class StrictMigrationScope {
 public:
  StrictMigrationScope() : previous_(active_) { active_ = true; }
  ~StrictMigrationScope() { active_ = previous_; }
  StrictMigrationScope(const StrictMigrationScope&) = delete;
  StrictMigrationScope& operator=(const StrictMigrationScope&) = delete;

  static bool active() { return active_; }

 private:
  bool previous_;
  static inline thread_local bool active_ = false;
};

}  // namespace navcpp::navp
