// Cargo: declared agent variables with automatic payload accounting and
// optional strict-migration serialization.
//
// In this single-process reproduction an agent's variables live in its
// coroutine frame, so a hop "carries" them for free; the byte counts the
// algorithms pass to Ctx::hop() are bookkeeping.  In the real MESSENGERS
// system a hop serializes the agent variables into a message and rebuilds
// them at the destination.  Cargo closes that fidelity gap:
//
//   * attach() registers the vectors/PODs an agent carries;
//   * wire_bytes() is the exact payload a hop must charge (no hand
//     counting — Ctx::hop_cargo() uses it);
//   * in strict mode, hop_cargo() serializes every registered buffer into
//     a ByteBuffer and restores it after the hop, so any accidental
//     reliance on shared memory (e.g. carrying raw pointers to another
//     PE's node variables) is exercised the way a distributed runtime
//     would exercise it.
//
// Strict mode is a Runtime-level switch (set_strict_migration) so a whole
// program can be audited without touching its agents.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "navp/runtime.h"
#include "navp/task.h"
#include "support/bytebuffer.h"
#include "support/error.h"

namespace navcpp::navp {

class Cargo {
 public:
  /// Register a vector of trivially copyable elements the agent carries.
  /// The vector must outlive the Cargo (it is an agent variable: a local
  /// in the same coroutine frame).
  template <class T>
  void attach(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Cargo carries trivially copyable elements only");
    NAVCPP_CHECK(v != nullptr, "Cargo::attach: null vector");
    items_.push_back(Item{
        [v] { return v->size() * sizeof(T); },
        [v](support::ByteBuffer& buf) { buf.put_vector(*v); },
        [v](support::ByteBuffer& buf) { *v = buf.get_vector<T>(); },
    });
  }

  /// Register a single trivially copyable value.
  template <class T>
  void attach_value(T* value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Cargo carries trivially copyable values only");
    NAVCPP_CHECK(value != nullptr, "Cargo::attach_value: null value");
    items_.push_back(Item{
        [] { return sizeof(T); },
        [value](support::ByteBuffer& buf) { buf.put(*value); },
        [value](support::ByteBuffer& buf) { *value = buf.get<T>(); },
    });
  }

  /// Register an item with caller-supplied size/save/load hooks, for agent
  /// variables that are not flat vectors (block-structured matrices, nested
  /// containers).  `size` must return the exact payload bytes a hop should
  /// charge for the item's *current* contents — the same convention
  /// attach() uses (data bytes only; framing/length prefixes are the
  /// engine's hop_state_bytes overhead, not cargo).
  void attach_custom(std::function<std::size_t()> size,
                     std::function<void(support::ByteBuffer&)> save,
                     std::function<void(support::ByteBuffer&)> load) {
    NAVCPP_CHECK(size && save && load,
                 "Cargo::attach_custom: all three hooks are required");
    items_.push_back(Item{std::move(size), std::move(save), std::move(load)});
  }

  /// Exact wire payload of the registered cargo right now.
  std::size_t wire_bytes() const {
    std::size_t total = 0;
    for (const auto& item : items_) total += item.size();
    return total;
  }

  /// Serialize everything into a fresh buffer (strict-migration capture).
  support::ByteBuffer save() const {
    support::ByteBuffer buf;
    for (const auto& item : items_) item.save(buf);
    return buf;
  }

  /// Restore everything from a buffer produced by save().  Throws
  /// support::CargoSchemaError when the buffer does not match the
  /// registered cargo set — truncated (an item underflows the buffer) or
  /// oversized (trailing bytes remain).  Typed so a version-skewed or
  /// corrupted peer frame is catchable instead of fatal; the items loaded
  /// before the mismatch may already have been overwritten.
  void restore(support::ByteBuffer& buf) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      try {
        items_[i].load(buf);
      } catch (const support::Error& e) {
        throw support::CargoSchemaError(
            "Cargo::restore: item " + std::to_string(i) + " of " +
            std::to_string(items_.size()) +
            " underflowed the buffer (cargo set changed between save and "
            "restore?): " + e.what());
      }
    }
    if (buf.remaining() != 0) {
      throw support::CargoSchemaError(
          "Cargo::restore: " + std::to_string(buf.remaining()) +
          " trailing byte(s) (cargo set changed between save and "
          "restore?)");
    }
  }

  std::size_t item_count() const { return items_.size(); }

 private:
  struct Item {
    std::function<std::size_t()> size;
    std::function<void(support::ByteBuffer&)> save;
    std::function<void(support::ByteBuffer&)> load;
  };
  std::vector<Item> items_;
};

/// Hop to `dest` carrying `cargo`: the payload is computed from the cargo,
/// and under Runtime::set_strict_migration(true) the cargo is serialized
/// before departure and rebuilt on arrival, emulating a real migration.
inline Task<void> hop_cargo(Ctx ctx, int dest, Cargo& cargo) {
  if (ctx.runtime().strict_migration()) {
    support::ByteBuffer snapshot = cargo.save();
    co_await ctx.hop(dest, cargo.wire_bytes());
    cargo.restore(snapshot);
  } else {
    co_await ctx.hop(dest, cargo.wire_bytes());
  }
}

}  // namespace navcpp::navp
