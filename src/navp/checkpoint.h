// Checkpoint/recovery for NavP PEs.
//
// The fault model (machine/fault_machine.h) is fail-stop with volatile
// memory: when a PE crashes, its resident agents, banked events, and node
// variables vanish.  A Checkpointer snapshots a PE's recoverable state into
// a support::ByteBuffer and restores it when the PE comes back:
//
//   * banked event counts — serialized directly (EventTable::banked());
//     parked *waiters* are not serialized: a waiter is a suspended
//     coroutine, and recovery re-creates it by re-running its agent;
//   * node variables — NodeStore is a type-indexed store of arbitrary C++
//     objects, so the application provides save/restore hooks that
//     serialize whatever it keeps there;
//   * resident recoverable agents — their Runtime::RecoverableDescriptor
//     (factory key + last Ctx::commit()ed state), re-injected on restore
//     unless the agent's current incarnation is still alive (it hopped
//     away, or was in flight when the PE died) or already finished.
//
// The consistency contract is the classic one: a checkpoint captures a PE
// at an agent's hop-arrival boundary, *before* the visit's side effects.
// Recovery rolls the PE back to that boundary and replays the visit.
// Effects delivered to the PE after the checkpoint and before the crash are
// lost — exactly-once overall therefore requires the discipline that
// recovery_suite's ring scenario demonstrates: commit + checkpoint on
// arrival, make per-visit work idempotent under replay, and have stationary
// agents re-check durable node flags instead of trusting in-memory wakes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "navp/runtime.h"
#include "support/bytebuffer.h"

namespace navcpp::machine {
class ProcMachine;
}  // namespace navcpp::machine

namespace navcpp::navp {

/// Pluggable retention backend for serialized snapshots.
///
/// Without a store the Checkpointer keeps snapshots in its in-memory map —
/// fine on the sim backend, where stable storage is modeled.  A store makes
/// retention real: take() pushes the serialized bytes through put(), and
/// restore() prefers fetch() over the local map, so the snapshot round-trips
/// through bytes on whatever medium the store represents.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;
  virtual void put(int pe, std::span<const std::byte> bytes) = 0;
  /// The latest snapshot for `pe`, or nullopt if the store has none (the
  /// caller then falls back to its own retained copy, if any).
  virtual std::optional<std::vector<std::byte>> fetch(int pe) = 0;
};

/// CheckpointStore over machine::ProcMachine's checkpoint transport: put()
/// retains parent-side and ships the bytes to the PE's worker process
/// (which spills them to its per-PE file when the machine has a
/// checkpoint_dir), and fetch() is a real wire round-trip — a freshly
/// respawned worker answers from its spill file or the re-pushed copy, so
/// restoring after a real SIGKILL exercises the full serialize -> wire ->
/// deserialize path.
class ProcCheckpointStore final : public CheckpointStore {
 public:
  explicit ProcCheckpointStore(machine::ProcMachine& proc) : proc_(proc) {}
  void put(int pe, std::span<const std::byte> bytes) override;
  std::optional<std::vector<std::byte>> fetch(int pe) override;

 private:
  machine::ProcMachine& proc_;
};

class Checkpointer {
 public:
  /// Hooks that (de)serialize the application's node variables for one PE.
  /// Either may be empty if the application keeps nothing / restores
  /// manually.
  using SaveNodeState = std::function<void(int pe, support::ByteBuffer& out)>;
  using RestoreNodeState =
      std::function<void(int pe, support::ByteBuffer& in)>;

  explicit Checkpointer(Runtime& rt) : rt_(rt) {}

  void set_node_state_hooks(SaveNodeState save, RestoreNodeState restore) {
    save_node_ = std::move(save);
    restore_node_ = std::move(restore);
  }

  /// Route snapshot retention through `store` (not owned; may be null to
  /// go back to in-memory only).  take() pushes serialized bytes into it;
  /// restore() fetches from it first, falling back to the local map.
  void set_store(CheckpointStore* store) { store_ = store; }

  /// Snapshot `pe` now and retain it as the PE's latest checkpoint.
  /// Returns the serialized snapshot (also kept internally for restore()).
  const support::ByteBuffer& take(int pe);

  /// Restore `pe` from its latest checkpoint: clears the event table,
  /// re-banks the snapshotted counts, runs the node-restore hook, and
  /// re-injects every dead, unfinished recoverable agent the snapshot
  /// holds.  Returns the number of agents re-injected.
  int restore(int pe);

  /// Restore from an explicit snapshot instead of the retained one.
  int restore_from(int pe, support::ByteBuffer snapshot);

  /// True once take() has run for `pe`.
  bool has_checkpoint(int pe) const;

 private:
  Runtime& rt_;
  SaveNodeState save_node_;
  RestoreNodeState restore_node_;
  CheckpointStore* store_ = nullptr;
  std::unordered_map<int, support::ByteBuffer> snapshots_;
};

}  // namespace navcpp::navp
