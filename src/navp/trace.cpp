#include "navp/trace.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace navcpp::navp {

namespace {
char agent_glyph(AgentId id) {
  static const char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  return kDigits[id % 36];
}
}  // namespace

TraceStats summarize(const TraceRecorder& trace, int pe_count) {
  return summarize(trace.snapshot(), pe_count);
}

TraceStats summarize(const TraceSnapshot& snap, int pe_count) {
  TraceStats stats;
  stats.compute_by_pe.assign(
      static_cast<std::size_t>(std::max(pe_count, 0)), 0.0);
  stats.wait_by_pe.assign(
      static_cast<std::size_t>(std::max(pe_count, 0)), 0.0);
  for (const auto& s : snap.spans) {
    const double span = s.t1 - s.t0;
    stats.end_time = std::max(stats.end_time, s.t1);
    if (s.kind == TraceSpan::Kind::kCompute) {
      stats.total_compute += span;
      if (s.pe >= 0 && s.pe < pe_count) {
        stats.compute_by_pe[static_cast<std::size_t>(s.pe)] += span;
      }
    } else {
      stats.total_wait += span;
      if (s.pe >= 0 && s.pe < pe_count) {
        stats.wait_by_pe[static_cast<std::size_t>(s.pe)] += span;
      }
    }
  }
  for (const auto& h : snap.hops) {
    ++stats.hop_count;
    stats.hop_bytes += h.bytes;
    stats.end_time = std::max(stats.end_time, h.arrive);
  }
  return stats;
}

double mean_utilization(const TraceStats& stats) {
  if (stats.end_time <= 0.0 || stats.compute_by_pe.empty()) return 0.0;
  double sum = 0.0;
  for (double c : stats.compute_by_pe) sum += c / stats.end_time;
  return sum / static_cast<double>(stats.compute_by_pe.size());
}

std::string TraceRecorder::render_spacetime(int pe_count, int rows) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if ((spans_.empty() && hops_.empty()) || pe_count <= 0 || rows <= 0) {
    return "(empty trace)\n";
  }
  double t_end = 0.0;
  for (const auto& s : spans_) t_end = std::max(t_end, s.t1);
  for (const auto& h : hops_) t_end = std::max(t_end, h.arrive);
  if (t_end <= 0.0) t_end = 1.0;
  const double dt = t_end / rows;

  // grid[row][pe]: '.' idle; digit = computing agent; '|' = waiting.
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(pe_count),
                                            '.'));
  auto paint = [&](const TraceSpan& s, char fill) {
    if (s.pe < 0 || s.pe >= pe_count) return;
    int r0 = static_cast<int>(s.t0 / dt);
    int r1 = static_cast<int>(s.t1 / dt);
    r0 = std::clamp(r0, 0, rows - 1);
    r1 = std::clamp(r1, 0, rows - 1);
    for (int r = r0; r <= r1; ++r) {
      char& cell = grid[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(s.pe)];
      // Compute spans win over wait spans so pipelines read clearly.
      if (fill != '|' || cell == '.') cell = fill;
    }
  };
  for (const auto& s : spans_) {
    paint(s, s.kind == TraceSpan::Kind::kWait ? '|' : agent_glyph(s.agent));
  }

  std::ostringstream os;
  os << "time v   PE: ";
  for (int pe = 0; pe < pe_count; ++pe) os << pe % 10;
  os << '\n';
  for (int r = 0; r < rows; ++r) {
    os.width(9);
    os.precision(4);
    os << std::fixed << (r * dt) << "    " << grid[static_cast<std::size_t>(r)]
       << '\n';
  }
  return os.str();
}

}  // namespace navcpp::navp
