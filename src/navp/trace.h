// Execution tracing: records the space-time behaviour of a NavP run so the
// paper's Figure-1-style diagrams can be regenerated from real executions.
//
// The recorder is optional (null by default — zero overhead when off) and
// thread-safe (the threaded backend records from several PE threads).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace navcpp::navp {

using AgentId = std::uint64_t;

/// A span of agent activity on one PE.
struct TraceSpan {
  enum class Kind { kCompute, kWait };
  AgentId agent = 0;
  int pe = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  Kind kind = Kind::kCompute;
  std::string label;
};

/// One hop of one agent between PEs.
struct TraceHop {
  AgentId agent = 0;
  int src = 0;
  int dst = 0;
  double depart = 0.0;
  double arrive = 0.0;
  std::uint64_t bytes = 0;
};

/// A consistent copy of a recorder's contents, taken under its lock.
struct TraceSnapshot {
  std::vector<TraceSpan> spans;
  std::vector<TraceHop> hops;
};

class TraceRecorder {
 public:
  void record_span(TraceSpan span) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
  }

  void record_hop(TraceHop hop) {
    std::lock_guard<std::mutex> lock(mutex_);
    hops_.push_back(hop);
  }

  /// Accessors return copies taken under the lock: the threaded backend's
  /// timer/watchdog thread can still be recording while a DeadlockError
  /// unwinds and the harness reads the trace, so handing out references to
  /// the live vectors was a read/write race (and a dangling reference after
  /// any reallocation).
  std::vector<TraceSpan> spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }
  std::vector<TraceHop> hops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hops_;
  }

  /// Both vectors under one lock acquisition — spans and hops are mutually
  /// consistent, which two separate accessor calls cannot guarantee.
  TraceSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return TraceSnapshot{spans_, hops_};
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    hops_.clear();
  }

  /// Render an ASCII space-time diagram (time flows downward, one column
  /// per PE — the layout of the paper's Figure 1).  `rows` controls the
  /// vertical resolution.  Each cell shows the id (mod 36, base-36 digit)
  /// of the agent computing on that PE during that time slice, '.' for
  /// idle, and '|' for an agent parked on an event.
  std::string render_spacetime(int pe_count, int rows = 40) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceHop> hops_;
};

/// Aggregate statistics derived from a trace.
struct TraceStats {
  double total_compute = 0.0;  ///< sum of compute-span durations
  double total_wait = 0.0;     ///< sum of wait-span durations
  double end_time = 0.0;       ///< last span/hop end
  std::uint64_t hop_count = 0;
  std::uint64_t hop_bytes = 0;
  std::vector<double> compute_by_pe;  ///< per-PE compute seconds
  std::vector<double> wait_by_pe;     ///< per-PE event-wait seconds
};

/// Summarize a finished run's trace.  `pe_count` sizes the per-PE vectors;
/// spans on out-of-range PEs are ignored.
TraceStats summarize(const TraceRecorder& trace, int pe_count);
TraceStats summarize(const TraceSnapshot& snap, int pe_count);

/// Mean fraction of [0, stats.end_time] the PEs spent computing.
double mean_utilization(const TraceStats& stats);

/// Scoped default recorder (thread-local): while a TraceScope is alive,
/// every navp::Runtime constructed on this thread records into the given
/// recorder.  This lets the harness and the profile subcommand trace
/// programs (jacobi, lu, ...) that build their Runtime internally, without
/// threading a recorder through every runner signature.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* trace) : previous_(current_) {
    current_ = trace;
  }
  ~TraceScope() { current_ = previous_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  static TraceRecorder* current() { return current_; }

 private:
  TraceRecorder* previous_;
  static inline thread_local TraceRecorder* current_ = nullptr;
};

}  // namespace navcpp::navp
