// Task<T>: an awaitable sub-coroutine for composing agent logic.
//
// A Mission is fire-and-forget (owned by the Runtime); a Task<T> is a
// callee awaited by its caller:
//
//   navp::Task<double> fetch(navp::Ctx ctx, ...) { ... co_return x; }
//   navp::Mission agent(navp::Ctx ctx) {
//     double x = co_await fetch(ctx, ...);
//   }
//
// Uses symmetric transfer: the callee starts lazily when awaited, and its
// final suspend resumes the caller directly (no executor round-trip), so a
// Task behaves exactly like inline code that happens to contain co_awaits.
// Exceptions thrown in the callee re-surface at the caller's co_await.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "support/error.h"

namespace navcpp::navp {

template <class T>
class Task;

namespace detail {

template <class T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;  // symmetric transfer: start the callee now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    NAVCPP_CHECK(p.value.has_value(), "Task finished without a value");
    return std::move(*p.value);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

}  // namespace navcpp::navp
