#include "navp/checkpoint.h"

#include <string>
#include <utility>
#include <vector>

#include "machine/proc_machine.h"
#include "support/error.h"

namespace navcpp::navp {

void ProcCheckpointStore::put(int pe, std::span<const std::byte> bytes) {
  proc_.save_checkpoint(pe, bytes);
}

std::optional<std::vector<std::byte>> ProcCheckpointStore::fetch(int pe) {
  return proc_.load_checkpoint(pe);
}

namespace {

constexpr std::uint32_t kMagic = 0x4e564350;  // "NVCP"

void put_string(support::ByteBuffer& buf, const std::string& s) {
  buf.put_span(std::span<const char>(s.data(), s.size()));
}

std::string get_string(support::ByteBuffer& buf) {
  std::vector<char> v = buf.get_vector<char>();
  return std::string(v.begin(), v.end());
}

}  // namespace

const support::ByteBuffer& Checkpointer::take(int pe) {
  support::ByteBuffer buf;
  buf.put<std::uint32_t>(kMagic);
  buf.put<std::int32_t>(pe);

  // Banked event counts, deterministic (tag, a, b) order.
  const auto banked = rt_.events(pe).banked();
  buf.put<std::uint64_t>(banked.size());
  for (const auto& [key, count] : banked) {
    buf.put<std::int32_t>(key.tag);
    buf.put<std::int32_t>(key.a);
    buf.put<std::int32_t>(key.b);
    buf.put<std::uint64_t>(count);
  }

  // Application node state via the hook, length-framed.
  support::ByteBuffer node;
  if (save_node_) save_node_(pe, node);
  buf.put_span(node.bytes());

  // Recoverable agents whose last committed position is this PE.
  const auto agents = rt_.recoverables_on(pe);
  buf.put<std::uint64_t>(agents.size());
  for (const auto& d : agents) {
    put_string(buf, d.name);
    put_string(buf, d.factory);
    buf.put<std::int32_t>(d.pe);
    buf.put_span(d.state.bytes());
  }

  auto [it, unused] = snapshots_.insert_or_assign(pe, std::move(buf));
  if (store_ != nullptr) store_->put(pe, it->second.bytes());
  return it->second;
}

bool Checkpointer::has_checkpoint(int pe) const {
  return snapshots_.find(pe) != snapshots_.end();
}

int Checkpointer::restore(int pe) {
  if (store_ != nullptr) {
    // Prefer the store: after a real crash the local map may be the only
    // survivor, but when the store answers, the snapshot has genuinely
    // round-tripped through serialized bytes on the store's medium.
    std::optional<std::vector<std::byte>> bytes = store_->fetch(pe);
    if (bytes.has_value()) {
      return restore_from(pe, support::ByteBuffer(std::move(*bytes)));
    }
  }
  auto it = snapshots_.find(pe);
  NAVCPP_CHECK(it != snapshots_.end(),
               "no checkpoint taken for PE " + std::to_string(pe));
  return restore_from(pe, it->second);  // copy: restore re-reads from zero
}

int Checkpointer::restore_from(int pe, support::ByteBuffer snapshot) {
  NAVCPP_CHECK(snapshot.get<std::uint32_t>() == kMagic,
               "not a checkpoint buffer");
  const std::int32_t snap_pe = snapshot.get<std::int32_t>();
  NAVCPP_CHECK(snap_pe == pe, "checkpoint is for PE " +
                                  std::to_string(snap_pe) + ", not " +
                                  std::to_string(pe));

  // Events: crash already cleared the table (Runtime::crash_pe); clear
  // again defensively, then re-bank the snapshotted counts.
  EventTable& events = rt_.events(pe);
  events.clear();
  const std::uint64_t n_events = snapshot.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_events; ++i) {
    EventKey key;
    key.tag = snapshot.get<std::int32_t>();
    key.a = snapshot.get<std::int32_t>();
    key.b = snapshot.get<std::int32_t>();
    events.set_banked(key, snapshot.get<std::uint64_t>());
  }

  // Node variables.
  std::vector<std::byte> node_bytes = snapshot.get_vector<std::byte>();
  if (restore_node_) {
    support::ByteBuffer node(std::move(node_bytes));
    restore_node_(pe, node);
  }

  // Agents: re-inject each dead, unfinished recoverable at its last commit.
  int injected = 0;
  const std::uint64_t n_agents = snapshot.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_agents; ++i) {
    Runtime::RecoverableDescriptor d;
    d.name = get_string(snapshot);
    d.factory = get_string(snapshot);
    d.pe = snapshot.get<std::int32_t>();
    d.state = support::ByteBuffer(snapshot.get_vector<std::byte>());
    if (rt_.restore_descriptor(d)) ++injected;
  }
  return injected;
}

}  // namespace navcpp::navp
