// Mission: the coroutine type of a NavP self-migrating computation.
//
// A NavP "Messenger" is written as a plain C++20 coroutine:
//
//   navp::Mission row_carrier(navp::Ctx ctx, int mi) {
//     std::vector<double> mA = ...;         // agent variables = locals
//     for (int mj = 0; mj < N; ++mj) {
//       co_await ctx.hop(node(mj), navp::bytes_of(mA));
//       auto& node_vars = ctx.node<Cols>(); // node variables at this PE
//       ...
//     }
//   }
//
// Locals live in the coroutine frame, which is exactly the paper's notion of
// agent variables: private to the computation and available wherever it
// migrates.  hop() suspends the coroutine and reschedules it on the target
// PE's executor; the declared byte count (plus a fixed state overhead) is
// what the network model charges, mirroring "the cost of a hop() is
// essentially the cost of moving the data stored in agent variables plus a
// small amount of state data".
//
// Missions are fire-and-forget: the Runtime assumes ownership at inject()
// and destroys the frame at final suspend.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "navp/event.h"
#include "navp/trace.h"

namespace navcpp::navp {

class Runtime;

/// Byte size of a contiguous container's payload (for hop cost accounting).
template <class T>
std::size_t bytes_of(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}
template <class T>
std::size_t bytes_of(std::span<const T> v) {
  return v.size_bytes();
}

/// Runtime-owned bookkeeping for one live agent.
///
/// shared_ptr-managed because teardown responsibility is distributed: the
/// registry, in-flight resume actions, and parked event waiters may each be
/// the last one standing when a run aborts.  `root` is the outermost
/// coroutine frame; destroying it cascades through any Task<> sub-coroutines
/// the agent was suspended inside (their frames are owned by Task objects
/// living in their caller's frame).
struct AgentState : std::enable_shared_from_this<AgentState> {
  AgentId id = 0;
  std::string name;
  int pe = 0;  ///< current residence
  Runtime* rt = nullptr;
  std::optional<EventKey> blocked_on;  ///< set while parked on an event
  std::coroutine_handle<> root;        ///< outermost frame; null once dead
  /// True from hop-send until hop-delivery: the agent is on the wire, not
  /// resident anywhere.  A PE crash kills resident agents only; in-flight
  /// ones arrive (possibly after retransmission) once the PE restarts.
  bool in_flight = false;
  /// Non-empty for agents injected via Runtime::inject_recoverable: the key
  /// of the recovery record that checkpoint/restore uses to re-inject them.
  std::string recoverable_name;
  /// Byte size of the root coroutine frame (agent variables + captures),
  /// captured at injection.  The hop audit compares this against the bytes
  /// a hop *declares*: locals that never appear in the declared cargo are
  /// state that would not survive a real address-space boundary.
  std::size_t frame_bytes = 0;

  /// Destroy the whole suspended coroutine stack (idempotent).
  void destroy_stack() noexcept {
    if (root) {
      auto h = root;
      root = nullptr;
      h.destroy();
    }
  }
};

/// Called by FinalAwaiter; defined in runtime.cpp (needs Runtime).
void agent_finished(AgentState* state, std::exception_ptr error) noexcept;

namespace detail {
/// Size of the most recent Mission coroutine frame allocated on this
/// thread, recorded by promise_type::operator new.  Runtime::start_agent
/// reads it immediately after the mission function ran, so the value is
/// always the frame of the agent being started (only Mission frames write
/// it; Task<> sub-coroutines do not).
inline thread_local std::size_t last_mission_frame_bytes = 0;
}  // namespace detail

class Mission {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(Handle h) const noexcept {
      promise_type& p = h.promise();
      AgentState* state = p.state;
      std::exception_ptr error = p.error;
      h.destroy();
      agent_finished(state, error);
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    AgentState* state = nullptr;
    std::exception_ptr error;

    static void* operator new(std::size_t n) {
      detail::last_mission_frame_bytes = n;
      return ::operator new(n);
    }
    static void operator delete(void* p) noexcept { ::operator delete(p); }

    Mission get_return_object() {
      return Mission(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Mission() = default;
  explicit Mission(Handle h) : handle_(h) {}
  Mission(Mission&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Mission& operator=(Mission&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  Mission(const Mission&) = delete;
  Mission& operator=(const Mission&) = delete;
  ~Mission() { destroy(); }

  /// Transfer frame ownership to the caller (the Runtime's executor).
  Handle release() {
    Handle h = handle_;
    handle_ = nullptr;
    return h;
  }

  bool valid() const { return handle_ != nullptr; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

/// RAII ownership of a suspended agent while its resume action sits in an
/// executor queue or an in-flight message: if the action is dropped (machine
/// failure, abandoned queue), the agent's whole coroutine stack is destroyed
/// instead of leaked.  `handle` is the continuation to resume (possibly a
/// Task<> sub-coroutine); destruction goes through the agent's root frame.
class OwnedResume {
 public:
  OwnedResume(std::coroutine_handle<> h, std::shared_ptr<AgentState> agent)
      : handle_(h), agent_(std::move(agent)) {}
  OwnedResume(OwnedResume&& other) noexcept
      : handle_(other.handle_), agent_(std::move(other.agent_)) {
    other.handle_ = nullptr;
  }
  OwnedResume(const OwnedResume&) = delete;
  OwnedResume& operator=(const OwnedResume&) = delete;
  OwnedResume& operator=(OwnedResume&&) = delete;
  ~OwnedResume() {
    if (handle_ && agent_) agent_->destroy_stack();
  }

  /// Resume the coroutine, relinquishing ownership (the frame now either
  /// self-destroys at final suspend or parks elsewhere).  If the agent was
  /// killed while this resume sat in a queue (PE crash tearing down
  /// residents), the frame is already gone: the wake is silently dropped.
  void operator()() {
    auto h = handle_;
    handle_ = nullptr;
    if (agent_ && !agent_->root) return;
    h.resume();
  }

 private:
  std::coroutine_handle<> handle_;
  std::shared_ptr<AgentState> agent_;
};

}  // namespace navcpp::navp
