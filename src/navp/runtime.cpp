#include "navp/runtime.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "machine/fault_machine.h"
#include "net/reliable_channel.h"

namespace navcpp::navp {

Runtime::Runtime(machine::Engine& engine)
    : engine_(engine),
      node_stores_(static_cast<std::size_t>(engine.pe_count())),
      event_tables_(static_cast<std::size_t>(engine.pe_count())) {
  // Walk the decorator chain: if a fault injector is anywhere in the stack,
  // route all cross-PE traffic through a reliability layer so drop/dup/
  // corrupt faults are masked without any program change.  Frames and
  // retransmit timers go to the *outermost* engine so other decorators
  // (chaos scheduling) still see them.
  for (machine::Engine* e = &engine_; e != nullptr; e = e->decorated()) {
    if (auto* fault = dynamic_cast<machine::FaultMachine*>(e)) {
      reliable_ = std::make_unique<net::ReliableChannel>(
          engine_, fault, fault->reliable_config());
      break;
    }
  }
  // Ambient observability: programs that build their Runtime internally
  // (the sixteen workload runners) get traced/metered by whoever holds the
  // enclosing scope — the harness suites and `navcpp_cli profile`.
  if (trace_ == nullptr) trace_ = TraceScope::current();
  if (obs::Registry* ambient = obs::MetricsScope::current()) {
    set_metrics(ambient);
  }
  if (StrictMigrationScope::active()) strict_migration_ = true;
}

void Runtime::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_hops_ = m_hop_bytes_ = m_injects_ = m_completions_ = nullptr;
    m_signals_ = m_waits_ = m_commits_ = m_killed_ = m_recovered_ = nullptr;
    m_hop_arrivals_.clear();
  } else {
    m_hops_ = &registry->counter("navp.hops");
    m_hop_bytes_ = &registry->counter("navp.hop_bytes");
    m_injects_ = &registry->counter("navp.agents_injected");
    m_completions_ = &registry->counter("navp.agents_completed");
    m_signals_ = &registry->counter("navp.signals");
    m_waits_ = &registry->counter("navp.waits");
    m_commits_ = &registry->counter("navp.checkpoint_commits");
    m_killed_ = &registry->counter("navp.agents_killed");
    m_recovered_ = &registry->counter("navp.agents_recovered");
    m_hop_arrivals_.clear();
    for (int pe = 0; pe < pe_count(); ++pe) {
      m_hop_arrivals_.push_back(
          &registry->counter("navp.hop_arrivals", obs::pe_label(pe)));
    }
  }
  for (machine::Engine* e = &engine_; e != nullptr; e = e->decorated()) {
    e->set_metrics(registry);
  }
  if (reliable_) reliable_->set_metrics(registry);
}

Runtime::~Runtime() {
  // Abnormal teardown (exception or deadlock) may leave agents suspended —
  // parked on events or sitting in abandoned executor queues.  Destroy every
  // unfinished agent's coroutine stack exactly once; destroy_stack() is
  // idempotent, so a later OwnedResume drop for the same agent is harmless.
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& [id, state] : registry_) state->destroy_stack();
}

void Runtime::ship(int src, int dst, std::size_t bytes,
                   support::MoveFunction deliver) {
  if (reliable_) {
    reliable_->send(src, dst, bytes, std::move(deliver));
  } else {
    engine_.transmit(src, dst, bytes, std::move(deliver));
  }
}

std::shared_ptr<AgentState> Runtime::make_agent(int pe, std::string name) {
  auto state = std::make_shared<AgentState>();
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->name = std::move(name);
  state->pe = pe;
  state->rt = this;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.emplace(state->id, state);
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  if (m_injects_ != nullptr) m_injects_->add();
  return state;
}

void Runtime::start_agent(const std::shared_ptr<AgentState>& state,
                          Mission mission) {
  Mission::Handle h = mission.release();
  h.promise().state = state.get();
  state->root = h;
  // The mission function just allocated its frame on this thread; bank the
  // size for the hop audit (agent variables live in that frame).
  state->frame_bytes = detail::last_mission_frame_bytes;
  engine_.task_started();
  const int pe = state->pe;
  engine_.post(pe, [this, pe, owned = OwnedResume(h, state)]() mutable {
    engine_.charge(pe, activation_overhead_);
    owned();
  });
}

void Runtime::register_recovery_factory(const std::string& key,
                                        RecoveryFactory fn) {
  NAVCPP_CHECK(static_cast<bool>(fn), "recovery factory must be callable");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  factories_[key] = std::move(fn);
}

AgentId Runtime::inject_recoverable(int pe, std::string name,
                                    const std::string& factory_key,
                                    const support::ByteBuffer& initial_state) {
  check_pe(pe);
  RecoveryFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = factories_.find(factory_key);
    NAVCPP_CHECK(it != factories_.end(),
                 "unknown recovery factory \"" + factory_key + "\"");
    NAVCPP_CHECK(recoverables_.find(name) == recoverables_.end(),
                 "recoverable agent \"" + name + "\" already exists");
    factory = it->second;
  }
  std::shared_ptr<AgentState> state = make_agent(pe, name);
  state->recoverable_name = name;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    recoverables_[name] = RecoverableRecord{factory_key, initial_state, pe,
                                            state->id, false};
  }
  Mission mission = factory(Ctx(state.get()), initial_state);
  NAVCPP_CHECK(mission.valid(), "recovery factory returned an empty Mission");
  start_agent(state, std::move(mission));
  return state->id;
}

std::vector<Runtime::RecoverableDescriptor> Runtime::recoverables_on(
    int pe) const {
  std::vector<RecoverableDescriptor> out;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& [name, rec] : recoverables_) {
    if (rec.pe == pe && !rec.finished) {
      out.push_back(RecoverableDescriptor{name, rec.factory, rec.pe,
                                          rec.state});
    }
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end(),
            [](const RecoverableDescriptor& a, const RecoverableDescriptor& b) {
              return a.name < b.name;
            });
  return out;
}

bool Runtime::restore_descriptor(const RecoverableDescriptor& d) {
  RecoveryFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto rec = recoverables_.find(d.name);
    if (rec == recoverables_.end()) return false;  // unknown to this run
    if (rec->second.finished) return false;  // completed since the snapshot
    auto live = registry_.find(rec->second.current_id);
    if (live != registry_.end() && live->second->root) {
      // The current incarnation survived the crash (it hopped away or was
      // in flight): never fork a second copy.
      return false;
    }
    auto f = factories_.find(d.factory);
    NAVCPP_CHECK(f != factories_.end(),
                 "recovery factory \"" + d.factory + "\" not registered");
    factory = f->second;
  }
  std::shared_ptr<AgentState> state = make_agent(d.pe, d.name);
  state->recoverable_name = d.name;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    RecoverableRecord& rec = recoverables_[d.name];
    rec.current_id = state->id;
    rec.pe = d.pe;
    rec.state = d.state;
  }
  Mission mission = factory(Ctx(state.get()), d.state);
  NAVCPP_CHECK(mission.valid(), "recovery factory returned an empty Mission");
  start_agent(state, std::move(mission));
  recovered_.fetch_add(1, std::memory_order_relaxed);
  if (m_recovered_ != nullptr) m_recovered_->add();
  return true;
}

void Runtime::commit_recoverable(const std::string& name, int pe,
                                 const support::ByteBuffer& state) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = recoverables_.find(name);
  NAVCPP_CHECK(it != recoverables_.end(),
               "commit for unknown recoverable \"" + name + "\"");
  it->second.pe = pe;
  it->second.state = state;
  if (m_commits_ != nullptr) m_commits_->add();
}

void Runtime::crash_pe(int pe) {
  check_pe(pe);
  // Gather the victims first: resident (not in-flight) agents whose frames
  // still exist.  In-flight agents are on the wire, not in this PE's memory;
  // they arrive after the restart via retransmission.
  std::vector<std::shared_ptr<AgentState>> victims;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (auto it = registry_.begin(); it != registry_.end();) {
      const std::shared_ptr<AgentState>& st = it->second;
      if (st->pe == pe && !st->in_flight && st->root) {
        victims.push_back(st);
        it = registry_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::shared_ptr<AgentState>& st : victims) {
    st->destroy_stack();
    killed_.fetch_add(1, std::memory_order_relaxed);
    if (m_killed_ != nullptr) m_killed_->add();
    // The task slot is released so the machine does not wait forever for an
    // agent that no longer exists; recovery re-registers on re-injection.
    engine_.task_finished();
  }
  // Volatile memory is gone: banked events and parked-waiter bookkeeping
  // with it (the frames were destroyed above).  Node variables are left to
  // the application's restore hook (navp/checkpoint.h).
  events(pe).clear();
}

void Runtime::run() {
  engine_.set_blocked_reporter([this] { return blocked_report(); });
  engine_.run();
}

std::uint64_t Runtime::unconsumed_signals() const {
  std::uint64_t total = 0;
  for (const auto& table : event_tables_) {
    total += table.total_pending_signals();
  }
  return total;
}

void Runtime::flag_hop_audit(const AgentState* state, int src, int dest,
                             std::size_t declared_bytes) {
  hop_audit_flags_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->counter("navp.hop_audit.flags").add();
  std::lock_guard<std::mutex> lock(audit_mutex_);
  constexpr std::size_t kMaxReportEntries = 64;
  if (hop_audit_report_.size() >= kMaxReportEntries) return;
  std::string entry =
      "agent '" + state->name + "' (id " + std::to_string(state->id) +
      ") hop " + std::to_string(src) + "->" + std::to_string(dest) +
      " declares " + std::to_string(declared_bytes) +
      " payload byte(s) (+ " + std::to_string(hop_state_bytes_) +
      " state) but its coroutine frame holds " +
      std::to_string(state->frame_bytes) +
      " bytes: agent variables beyond the declared cargo would not survive "
      "a real address-space boundary";
  // One line per distinct site is enough; the same agent hopping in a loop
  // would otherwise flood the report.
  for (const std::string& seen : hop_audit_report_) {
    if (seen == entry) return;
  }
  hop_audit_report_.push_back(std::move(entry));
}

std::vector<std::string> Runtime::hop_audit_report() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return hop_audit_report_;
}

std::string Runtime::blocked_report() const {
  std::ostringstream os;
  for (std::size_t pe = 0; pe < event_tables_.size(); ++pe) {
    event_tables_[pe].for_each_waiter(
        [&](const EventKey& key, const EventWaiter& w) {
          os << "  agent ";
          if (w.agent != nullptr) {
            os << '"' << w.agent->name << "\" (#" << w.agent->id << ")";
          } else {
            os << "<unknown>";
          }
          os << " blocked on PE " << pe << " waiting for " << key.str()
             << '\n';
        });
  }
  std::string report = os.str();
  if (report.empty()) report = "  (no agents parked on events)\n";
  report = "blocked agents:\n" + report;
  if (reliable_) report += reliable_->status_report() + "\n";
  return report;
}

void agent_finished(AgentState* state, std::exception_ptr error) noexcept {
  Runtime* rt = state->rt;
  rt->completed_.fetch_add(1, std::memory_order_relaxed);
  if (rt->m_completions_ != nullptr) rt->m_completions_->add();
  machine::Engine& engine = rt->engine_;
  state->root = nullptr;  // frame already destroyed by FinalAwaiter
  {
    std::lock_guard<std::mutex> lock(rt->registry_mutex_);
    if (!state->recoverable_name.empty()) {
      auto it = rt->recoverables_.find(state->recoverable_name);
      // Mark finished only if *this* incarnation is the current one — a
      // superseded ghost must not retire the record.
      if (it != rt->recoverables_.end() &&
          it->second.current_id == state->id) {
        it->second.finished = true;
      }
    }
    rt->registry_.erase(state->id);
  }
  if (error) engine.fail(error);
  engine.task_finished();
}

}  // namespace navcpp::navp
