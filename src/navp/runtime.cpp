#include "navp/runtime.h"

#include <sstream>
#include <utility>

namespace navcpp::navp {

Runtime::Runtime(machine::Engine& engine)
    : engine_(engine),
      node_stores_(static_cast<std::size_t>(engine.pe_count())),
      event_tables_(static_cast<std::size_t>(engine.pe_count())) {}

Runtime::~Runtime() {
  // Abnormal teardown (exception or deadlock) may leave agents suspended —
  // parked on events or sitting in abandoned executor queues.  Destroy every
  // unfinished agent's coroutine stack exactly once; destroy_stack() is
  // idempotent, so a later OwnedResume drop for the same agent is harmless.
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& [id, state] : registry_) state->destroy_stack();
}

std::shared_ptr<AgentState> Runtime::make_agent(int pe, std::string name) {
  auto state = std::make_shared<AgentState>();
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->name = std::move(name);
  state->pe = pe;
  state->rt = this;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.emplace(state->id, state);
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return state;
}

void Runtime::start_agent(const std::shared_ptr<AgentState>& state,
                          Mission mission) {
  Mission::Handle h = mission.release();
  h.promise().state = state.get();
  state->root = h;
  engine_.task_started();
  const int pe = state->pe;
  engine_.post(pe, [this, pe, owned = OwnedResume(h, state)]() mutable {
    engine_.charge(pe, activation_overhead_);
    owned();
  });
}

void Runtime::run() {
  engine_.set_blocked_reporter([this] { return blocked_report(); });
  engine_.run();
}

std::uint64_t Runtime::unconsumed_signals() const {
  std::uint64_t total = 0;
  for (const auto& table : event_tables_) {
    total += table.total_pending_signals();
  }
  return total;
}

std::string Runtime::blocked_report() const {
  std::ostringstream os;
  for (std::size_t pe = 0; pe < event_tables_.size(); ++pe) {
    event_tables_[pe].for_each_waiter(
        [&](const EventKey& key, const EventWaiter& w) {
          os << "  agent ";
          if (w.agent != nullptr) {
            os << '"' << w.agent->name << "\" (#" << w.agent->id << ")";
          } else {
            os << "<unknown>";
          }
          os << " blocked on PE " << pe << " waiting for " << key.str()
             << '\n';
        });
  }
  std::string report = os.str();
  if (report.empty()) report = "  (no agents parked on events)\n";
  return "blocked agents:\n" + report;
}

void agent_finished(AgentState* state, std::exception_ptr error) noexcept {
  Runtime* rt = state->rt;
  rt->completed_.fetch_add(1, std::memory_order_relaxed);
  machine::Engine& engine = rt->engine_;
  state->root = nullptr;  // frame already destroyed by FinalAwaiter
  {
    std::lock_guard<std::mutex> lock(rt->registry_mutex_);
    rt->registry_.erase(state->id);
  }
  if (error) engine.fail(error);
  engine.task_finished();
}

}  // namespace navcpp::navp
