// Network cost model for the simulated cluster.
//
// The paper's testbed is a set of workstations on 100 Mbps switched Ethernet
// ("fully connected via a collision-free switch").  We model it LogGP-style:
//
//   * o_send   — sender CPU overhead per message (protocol stack),
//   * latency  — wire + switch latency per message,
//   * 1/G      — link bandwidth in bytes/second,
//   * o_recv   — receiver CPU overhead, charged when the message is consumed,
//
// with cut-through occupancy of both endpoints' NICs: a message holds the
// sender NIC for bytes/bandwidth starting at `start`, and the receiver NIC
// for the same span shifted by `latency`.  A collision-free switch means two
// different (src,dst) pairs never contend, but a single NIC serializes its
// own traffic — which is exactly what makes forward staggering cost three
// communication phases where reverse staggering costs two (section 5).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "support/error.h"

namespace navcpp::net {

/// Static parameters of one interconnect.
struct LinkParams {
  sim::Duration send_overhead = 2.0e-4;   ///< seconds of sender CPU / message
  sim::Duration recv_overhead = 2.0e-4;   ///< seconds of receiver CPU / message
  sim::Duration latency = 7.0e-4;         ///< seconds wire+switch / message
  double bandwidth = 12.5e6;              ///< bytes / second (100 Mbps)
  sim::Duration local_delivery = 2.0e-6;  ///< seconds for src==dst messages
};

/// Result of admitting one message into the network.
struct Transfer {
  sim::Time sender_cpu_free;  ///< sender may continue at this time
  sim::Time delivered_at;     ///< last byte reaches the receiver NIC
  sim::Duration recv_overhead;  ///< CPU cost to charge to the consumer
};

/// Tracks per-PE NIC occupancy and computes message timings.
///
/// Single-threaded: only the simulation event loop calls admit().
class NetworkModel {
 public:
  NetworkModel(int pe_count, LinkParams params)
      : params_(params),
        out_free_(static_cast<std::size_t>(pe_count), sim::kTimeZero),
        in_free_(static_cast<std::size_t>(pe_count), sim::kTimeZero) {
    NAVCPP_CHECK(pe_count >= 1, "NetworkModel needs at least one PE");
    NAVCPP_CHECK(params.bandwidth > 0, "bandwidth must be positive");
  }

  int pe_count() const { return static_cast<int>(out_free_.size()); }
  const LinkParams& params() const { return params_; }

  /// Admit a message of `bytes` from `src` to `dst`, requested at `when`.
  /// Updates NIC occupancy; returns the timing of this transfer.
  Transfer admit(int src, int dst, std::size_t bytes, sim::Time when) {
    check_pe(src);
    check_pe(dst);
    ++messages_;
    bytes_total_ += bytes;
    if (src == dst) {
      // Local shift: the paper's MPI implementation uses pointer swapping,
      // and MESSENGERS hops to the same node stay in memory.
      return Transfer{when + params_.local_delivery,
                      when + params_.local_delivery, 0.0};
    }
    const sim::Duration wire = static_cast<double>(bytes) / params_.bandwidth;
    const sim::Time ready = when + params_.send_overhead;
    const sim::Time start =
        std::max({ready, out_free_[static_cast<std::size_t>(src)],
                  in_free_[static_cast<std::size_t>(dst)] - params_.latency});
    out_free_[static_cast<std::size_t>(src)] = start + wire;
    in_free_[static_cast<std::size_t>(dst)] = start + params_.latency + wire;
    return Transfer{ready, start + params_.latency + wire,
                    params_.recv_overhead};
  }

  /// Number of messages admitted so far (local ones included).
  std::uint64_t message_count() const { return messages_; }
  /// Total payload bytes admitted so far.
  std::uint64_t byte_count() const { return bytes_total_; }

  void reset_stats() {
    messages_ = 0;
    bytes_total_ = 0;
  }

  /// Full rewind for machine reuse: statistics AND NIC occupancy.  Without
  /// clearing out_free_/in_free_ a reused SimMachine inherits the previous
  /// run's NIC busy-times and every early message queues behind ghosts.
  void reset() {
    reset_stats();
    std::fill(out_free_.begin(), out_free_.end(), sim::kTimeZero);
    std::fill(in_free_.begin(), in_free_.end(), sim::kTimeZero);
  }

 private:
  void check_pe(int pe) const {
    NAVCPP_CHECK(pe >= 0 && pe < pe_count(), "PE id out of range in network");
  }

  LinkParams params_;
  std::vector<sim::Time> out_free_;
  std::vector<sim::Time> in_free_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_total_ = 0;
};

}  // namespace navcpp::net
