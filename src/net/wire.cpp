#include "net/wire.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "support/error.h"

namespace navcpp::net {
namespace {

/// Frames larger than this are protocol corruption, not traffic: the
/// biggest legitimate frame is a hop payload, and the catalog programs top
/// out far below it.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// WireWorkerStats crosses the wire as kWireWorkerStatsFields little-endian
/// u64s in declaration order (the static_assert in wire.h pins the struct
/// to exactly that shape).  memcpy through a u64 staging array keeps the
/// encoding well-defined without aliasing the struct.
void put_stats(std::vector<std::byte>& out, const WireWorkerStats& stats) {
  std::uint64_t words[kWireWorkerStatsFields];
  std::memcpy(words, &stats, sizeof(stats));
  for (const std::uint64_t w : words) wire_put_u64(out, w);
}

WireWorkerStats get_stats(const std::byte* p) {
  std::uint64_t words[kWireWorkerStatsFields];
  for (std::size_t i = 0; i < kWireWorkerStatsFields; ++i) {
    words[i] = wire_get_u64(p + i * 8);
  }
  WireWorkerStats stats;
  std::memcpy(&stats, words, sizeof(stats));
  return stats;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool carries_stats(WireType t) {
  return t == WireType::kQuiesceAck || t == WireType::kStatusReply ||
         t == WireType::kStatsDelta;
}

}  // namespace

void wire_encode(const WireFrame& frame, std::vector<std::byte>& out) {
  const std::size_t len_pos = out.size();
  wire_put_u32(out, 0);  // patched below
  wire_put_u8(out, static_cast<std::uint8_t>(frame.type));
  wire_put_u32(out, frame.pe);
  wire_put_u32(out, frame.src);
  wire_put_u64(out, frame.token);
  wire_put_u64(out, frame.arg);
  wire_put_u64(out, frame.seq);
  wire_put_u32(out, frame.run);
  wire_put_u64(out, frame.trace);
  wire_put_u32(out, static_cast<std::uint32_t>(frame.tokens.size()));
  for (std::uint64_t t : frame.tokens) wire_put_u64(out, t);
  wire_put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  if (carries_stats(frame.type)) put_stats(out, frame.stats);

  const auto body = static_cast<std::uint32_t>(out.size() - len_pos -
                                               sizeof(std::uint32_t));
  std::byte len_bytes[4];
  for (int i = 0; i < 4; ++i) {
    len_bytes[i] = static_cast<std::byte>((body >> (8 * i)) & 0xff);
  }
  std::memcpy(out.data() + len_pos, len_bytes, sizeof(len_bytes));
}

std::uint64_t wire_checksum(const std::byte* data, std::size_t n,
                            std::uint64_t seed) {
  std::uint64_t h = splitmix64(seed ^ n);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    h = splitmix64(h ^ wire_get_u64(data + i));
  }
  std::uint64_t tail = 0;
  if (i < n) {
    for (std::size_t j = 0; i + j < n; ++j) {
      tail |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data[i + j]))
              << (8 * j);
    }
    h = splitmix64(h ^ tail);
  }
  return h;
}

void wire_fill_pattern(std::vector<std::byte>& out, std::size_t n,
                       std::uint64_t seed) {
  out.resize(n);
  std::uint64_t word = seed;
  std::size_t i = 0;
  // Little-endian byte order, like everything else on the wire: the pattern
  // a source worker materializes must verify on any host's receiver.
  for (; i + 8 <= n; i += 8) {
    word = splitmix64(word);
    for (int j = 0; j < 8; ++j) {
      out[i + j] = static_cast<std::byte>((word >> (8 * j)) & 0xff);
    }
  }
  if (i < n) {
    word = splitmix64(word);
    for (std::size_t j = 0; i + j < n; ++j) {
      out[i + j] = static_cast<std::byte>((word >> (8 * j)) & 0xff);
    }
  }
}

// --- FrameConn -------------------------------------------------------------

void FrameConn::set_nonblocking() {
  NAVCPP_CHECK(fd_ >= 0, "FrameConn::set_nonblocking on a closed conn");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  nonblocking_ = true;
}

bool FrameConn::send_frame(const WireFrame& frame) {
  if (fd_ < 0) return false;
  wire_encode(frame, out_);
  return flush();
}

bool FrameConn::flush() {
  if (fd_ < 0) return false;
  while (out_off_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_off_,
                             out_.size() - out_off_, MSG_NOSIGNAL);
    if (n > 0) {
      out_off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && nonblocking_) {
      break;  // poll for POLLOUT and retry
    }
    // Peer gone (EPIPE, ECONNRESET, ...): drop what we buffered.
    out_.clear();
    out_off_ = 0;
    return false;
  }
  if (out_off_ == out_.size()) {
    out_.clear();
    out_off_ = 0;
  } else if (out_off_ > (1u << 16) && out_off_ * 2 > out_.size()) {
    out_.erase(out_.begin(),
               out_.begin() + static_cast<std::ptrdiff_t>(out_off_));
    out_off_ = 0;
  }
  return true;
}

bool FrameConn::read_some() {
  if (fd_ < 0) return false;
  std::byte chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) == sizeof(chunk) && nonblocking_) {
        continue;  // more may be pending; drain it now
      }
      return true;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

bool FrameConn::next_frame(WireFrame* out) {
  const std::size_t avail = in_.size() - in_off_;
  if (avail < sizeof(std::uint32_t)) return false;
  const auto body = wire_get_u32(in_.data() + in_off_);
  if (body > kMaxFrameBytes) {
    throw support::ProcError("wire: frame length " + std::to_string(body) +
                             " exceeds the protocol maximum");
  }
  if (avail < sizeof(std::uint32_t) + body) return false;

  const std::byte* p = in_.data() + in_off_ + sizeof(std::uint32_t);
  const std::byte* end = p + body;
  auto need = [&](std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      throw support::ProcError("wire: truncated frame body");
    }
  };

  need(1 + 4 + 4 + 8 + 8 + 8 + 4 + 8 + 4);
  const auto type_byte = wire_get_u8(p);
  p += 1;
  if (type_byte < static_cast<std::uint8_t>(WireType::kHello) ||
      type_byte > static_cast<std::uint8_t>(WireType::kHopRetire)) {
    throw support::ProcError("wire: unknown frame type " +
                             std::to_string(type_byte));
  }
  out->type = static_cast<WireType>(type_byte);
  out->pe = wire_get_u32(p);
  p += 4;
  out->src = wire_get_u32(p);
  p += 4;
  out->token = wire_get_u64(p);
  p += 8;
  out->arg = wire_get_u64(p);
  p += 8;
  out->seq = wire_get_u64(p);
  p += 8;
  out->run = wire_get_u32(p);
  p += 4;
  out->trace = wire_get_u64(p);
  p += 8;
  const auto ntokens = wire_get_u32(p);
  p += 4;
  need(static_cast<std::size_t>(ntokens) * 8 + 4);
  out->tokens.clear();
  out->tokens.reserve(ntokens);
  for (std::uint32_t i = 0; i < ntokens; ++i) {
    out->tokens.push_back(wire_get_u64(p));
    p += 8;
  }
  const auto npayload = wire_get_u32(p);
  p += 4;
  need(npayload);
  out->payload.assign(p, p + npayload);
  p += npayload;
  if (carries_stats(out->type)) {
    need(sizeof(WireWorkerStats));
    out->stats = get_stats(p);
    p += sizeof(WireWorkerStats);
  } else {
    out->stats = WireWorkerStats{};
  }

  in_off_ += sizeof(std::uint32_t) + body;
  if (in_off_ == in_.size()) {
    in_.clear();
    in_off_ = 0;
  } else if (in_off_ > (1u << 16) && in_off_ * 2 > in_.size()) {
    in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_off_));
    in_off_ = 0;
  }
  return true;
}

void FrameConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  in_off_ = 0;
  out_.clear();
  out_off_ = 0;
}

// --- transports ------------------------------------------------------------

void wire_socketpair(int fds[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw support::ProcError("wire: socketpair failed: " +
                             std::string(std::strerror(errno)));
  }
  // Parent end must not leak into workers; worker end must survive exec.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
}

void wire_peer_socketpair(int fds[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw support::ProcError("wire: peer socketpair failed: " +
                             std::string(std::strerror(errno)));
  }
  // Deliberately NO CLOEXEC on either end: each end is handed to a
  // different exec'd worker.  The fd-hygiene burden moves to the spawn
  // path: every child closes the edges that are not its own before exec,
  // and the supervisor closes all of them once every worker is forked.
}

WireListener::WireListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw support::ProcError("wire: socket failed: " +
                             std::string(std::strerror(errno)));
  }
  // Without SO_REUSEADDR, a listener torn down with connections still in
  // TIME_WAIT blocks the next bind to the same port — back-to-back
  // ProcMachine constructions on TCP hit exactly that.  Safe here: the
  // listener binds loopback and the workers authenticate via hello frames.
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);  // 0 = ephemeral
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw support::ProcError("wire: bind/listen on loopback failed: " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  ::fcntl(fd_, F_SETFD, FD_CLOEXEC);
}

WireListener::~WireListener() {
  if (fd_ >= 0) ::close(fd_);
}

int WireListener::accept_one(double timeout_seconds) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ms = timeout_seconds <= 0
                     ? 0
                     : static_cast<int>(timeout_seconds * 1e3) + 1;
  for (;;) {
    const int r = ::poll(&pfd, 1, ms);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return -1;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // A worker forked after this fd exists must not inherit it: a leaked
      // copy keeps the peer's socket open past its death and masks the EOF
      // the supervisor's death detection relies on.
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
    return fd;
  }
}

int wire_connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw support::ProcError("wire: socket failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw support::ProcError("wire: connect to loopback:" +
                             std::to_string(port) + " failed: " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Same leak as accept_one: siblings forked later must not inherit this.
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

}  // namespace navcpp::net
