// Processor-network topologies used by the paper:
//  * a 1-D array of PEs identified by HnodeID = 0..P-1 (west -> east), and
//  * a 2-D grid identified by (HnodeID, VnodeID) (west->east, north->south).
//
// Following the paper (section 3.1), all PEs are assumed fully connected via
// a collision-free switch, so a "topology" here only defines the naming of
// PEs and neighbor conventions (east/west/north/south wrap around), not
// routing: any PE can ship a message directly to any other PE.
#pragma once

#include <string>

#include "support/error.h"

namespace navcpp::net {

/// 1-D processor array: HnodeID 0..size-1, west to east.
class Topology1D {
 public:
  explicit Topology1D(int size) : size_(size) {
    NAVCPP_CHECK(size >= 1, "Topology1D needs at least one PE");
  }

  int size() const { return size_; }
  int pe_count() const { return size_; }

  /// PE hosting HnodeID j (identity map; exists to mirror Topology2D).
  int node(int j) const {
    NAVCPP_CHECK(j >= 0 && j < size_, "HnodeID out of range");
    return j;
  }

  /// Eastern neighbor with wraparound.
  int east(int j) const { return (node(j) + 1) % size_; }
  /// Western neighbor with wraparound.
  int west(int j) const { return (node(j) + size_ - 1) % size_; }

 private:
  int size_;
};

/// 2-D processor grid: rows indexed by VnodeID (north->south), columns by
/// HnodeID (west->east).  Linearized PE id = VnodeID * cols + HnodeID.
class Topology2D {
 public:
  Topology2D(int rows, int cols) : rows_(rows), cols_(cols) {
    NAVCPP_CHECK(rows >= 1 && cols >= 1, "Topology2D needs positive extents");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int pe_count() const { return rows_ * cols_; }

  /// PE hosting grid node (VnodeID=i, HnodeID=j).
  int node(int i, int j) const {
    NAVCPP_CHECK(i >= 0 && i < rows_, "VnodeID out of range");
    NAVCPP_CHECK(j >= 0 && j < cols_, "HnodeID out of range");
    return i * cols_ + j;
  }

  int row_of(int pe) const { return check_pe(pe) / cols_; }
  int col_of(int pe) const { return check_pe(pe) % cols_; }

  /// Toroidal neighbors (Gentleman's algorithm shifts west and north).
  int east(int pe) const {
    return node(row_of(pe), (col_of(pe) + 1) % cols_);
  }
  int west(int pe) const {
    return node(row_of(pe), (col_of(pe) + cols_ - 1) % cols_);
  }
  int south(int pe) const {
    return node((row_of(pe) + 1) % rows_, col_of(pe));
  }
  int north(int pe) const {
    return node((row_of(pe) + rows_ - 1) % rows_, col_of(pe));
  }

 private:
  int check_pe(int pe) const {
    NAVCPP_CHECK(pe >= 0 && pe < pe_count(), "PE id out of range");
    return pe;
  }

  int rows_;
  int cols_;
};

}  // namespace navcpp::net
