#include "net/reliable_channel.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace navcpp::net {

ReliableChannel::ReliableChannel(machine::Engine& engine, FrameFaults* faults,
                                 ReliableConfig cfg)
    : engine_(engine), faults_(faults), cfg_(cfg), rng_(cfg.seed) {
  NAVCPP_CHECK(cfg_.rto_initial > 0.0, "rto_initial must be positive");
  NAVCPP_CHECK(cfg_.rto_backoff >= 1.0, "rto_backoff must be >= 1");
  NAVCPP_CHECK(cfg_.rto_max >= cfg_.rto_initial,
               "rto_max must be >= rto_initial");
  NAVCPP_CHECK(cfg_.rto_jitter >= 0.0 && cfg_.rto_jitter < 1.0,
               "rto_jitter must be in [0, 1)");
  NAVCPP_CHECK(cfg_.max_retries >= 0, "max_retries must be >= 0");
}

std::uint64_t ReliableChannel::checksum_of(const Frame& f) {
  // SplitMix64-style mix over every header field; any single-bit change in
  // the covered fields (or an injected flip of the stored checksum itself)
  // fails verification.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    std::uint64_t z = h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t h = 0x5eedULL;
  h = mix(h, static_cast<std::uint64_t>(f.kind));
  h = mix(h, static_cast<std::uint64_t>(f.src));
  h = mix(h, static_cast<std::uint64_t>(f.dst));
  h = mix(h, f.seq);
  h = mix(h, f.payload_bytes);
  h = mix(h, f.cum);
  return h;
}

ReliableChannel::Frame ReliableChannel::make_data_frame(
    int src, int dst, std::uint64_t seq, std::size_t bytes) const {
  Frame f;
  f.kind = FrameKind::kData;
  f.src = src;
  f.dst = dst;
  f.seq = seq;
  f.payload_bytes = bytes;
  f.checksum = checksum_of(f);
  return f;
}

ReliableChannel::Frame ReliableChannel::make_ack_frame(
    int src, int dst, std::uint64_t cum) const {
  Frame f;
  f.kind = FrameKind::kAck;
  f.src = src;
  f.dst = dst;
  f.cum = cum;
  f.checksum = checksum_of(f);
  return f;
}

double ReliableChannel::jittered(double rto) {
  if (cfg_.rto_jitter <= 0.0) return rto;
  double u;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    u = rng_.uniform(-1.0, 1.0);
  }
  return rto * (1.0 + cfg_.rto_jitter * u);
}

void ReliableChannel::send(int src, int dst, std::size_t bytes,
                           support::MoveFunction deliver) {
  if (src == dst) {
    // Local hops never touch the wire: no frames, no faults, no protocol.
    engine_.transmit(src, dst, bytes, std::move(deliver));
    return;
  }
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SendState& s = send_[{src, dst}];
    seq = s.next_seq++;
    Pending p;
    p.bytes = bytes;
    p.deliver = std::move(deliver);
    p.retries_left = cfg_.max_retries;
    p.rto = cfg_.rto_initial;
    s.pending.emplace(seq, std::move(p));
  }
  transmit_frame(make_data_frame(src, dst, seq, bytes));
  arm_timer(src, dst, seq, jittered(cfg_.rto_initial));
}

void ReliableChannel::transmit_frame(const Frame& frame) {
  FrameFate fate;
  if (faults_ != nullptr) fate = faults_->decide_frame(frame.src, frame.dst);
  if (fate.drop || fate.copies < 1) return;  // retransmit will recover
  Frame wire = frame;
  if (fate.corrupt) wire.checksum ^= 0x1ULL << (wire.seq % 64);
  const std::size_t wire_bytes =
      frame.kind == FrameKind::kData
          ? static_cast<std::size_t>(frame.payload_bytes) +
                cfg_.frame_header_bytes
          : cfg_.ack_bytes;
  for (int copy = 0; copy < fate.copies; ++copy) {
    if (frame.kind == FrameKind::kData) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++send_[{frame.src, frame.dst}].wire_in_flight;
    }
    if (m_wire_bytes_ != nullptr) m_wire_bytes_->add(wire_bytes);
    engine_.transmit(frame.src, frame.dst, wire_bytes, [this, wire]() {
      if (wire.kind == FrameKind::kData) {
        on_data_frame(wire);
      } else {
        on_ack_frame(wire);
      }
    });
  }
}

void ReliableChannel::arm_timer(int src, int dst, std::uint64_t seq,
                                double delay) {
  engine_.post_after(src, delay,
                     [this, src, dst, seq]() { on_timer(src, dst, seq); });
}

void ReliableChannel::on_data_frame(const Frame& frame) {
  const ChannelKey key{frame.src, frame.dst};
  std::vector<support::MoveFunction> ready;
  std::uint64_t cum = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RecvState& r = recv_[key];
    --send_[key].wire_in_flight;  // the frame left the wire, whatever its fate
    if (faults_ != nullptr && faults_->is_down(frame.dst)) {
      // The host is crashed: its NIC swallows the frame.  No ack, so the
      // sender keeps retransmitting until the host restarts (or the retry
      // budget converts the outage into a DeliveryError).
      ++r.blackholed;
      if (m_blackholed_ != nullptr) m_blackholed_->add();
      return;
    }
    if (frame.checksum != checksum_of(frame)) {
      ++r.corrupt_discarded;  // no ack: retransmit recovers the frame
      if (m_corrupt_drops_ != nullptr) m_corrupt_drops_->add();
      return;
    }
    if (frame.seq < r.cum || r.received.count(frame.seq) != 0) {
      // Duplicate (injected copy, or a retransmit that crossed our ack).
      // Never re-delivered — but re-acked, in case the first ack was lost.
      ++r.dups_discarded;
      if (m_dup_drops_ != nullptr) m_dup_drops_->add();
      cum = r.cum;
    } else {
      r.received.insert(frame.seq);
      SendState& s = send_[key];
      while (r.received.count(r.cum) != 0) {
        r.received.erase(r.cum);
        auto it = s.pending.find(r.cum);
        // The payload lives in the sender-side retain buffer; consume it on
        // first in-order arrival (the entry itself stays until acked).
        if (it != s.pending.end() && it->second.deliver) {
          ready.push_back(std::move(it->second.deliver));
        }
        ++r.cum;
        ++r.delivered;
        if (m_delivered_ != nullptr) m_delivered_->add();
      }
      cum = r.cum;
    }
  }
  // Run deliveries outside the lock: a released payload may hop, send, or
  // signal, re-entering this channel.  We are executing on frame.dst, which
  // is exactly the PE the payload was addressed to.
  for (auto& deliver : ready) deliver();
  transmit_frame(make_ack_frame(frame.dst, frame.src, cum));
}

void ReliableChannel::on_ack_frame(const Frame& frame) {
  // An ack from R to S acknowledges the data channel S -> R.
  const ChannelKey key{frame.dst, frame.src};
  std::vector<Pending> retired;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (faults_ != nullptr && faults_->is_down(frame.dst)) return;
    if (frame.checksum != checksum_of(frame)) {
      ++recv_[key].corrupt_discarded;
      return;
    }
    if (m_acks_ != nullptr) m_acks_->add();
    SendState& s = send_[key];
    s.acked_cum = std::max(s.acked_cum, frame.cum);
    auto it = s.pending.begin();
    while (it != s.pending.end() && it->first < s.acked_cum) {
      retired.push_back(std::move(it->second));
      it = s.pending.erase(it);
    }
  }
}

void ReliableChannel::on_timer(int src, int dst, std::uint64_t seq) {
  Frame frame;
  double next_delay = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto ch = send_.find({src, dst});
    if (ch == send_.end()) return;
    auto it = ch->second.pending.find(seq);
    if (it == ch->second.pending.end()) return;  // acked; stale timer
    Pending& p = it->second;
    if (p.retries_left <= 0) {
      std::ostringstream os;
      os << "delivery failed: message seq " << seq << " on channel " << src
         << "->" << dst << " exhausted its retry budget ("
         << cfg_.max_retries << " retransmits)\n"
         << status_report_locked();
      ch->second.pending.erase(it);
      engine_.fail(
          std::make_exception_ptr(support::DeliveryError(os.str())));
      return;
    }
    --p.retries_left;
    ++ch->second.retransmits;
    if (m_retransmits_ != nullptr) m_retransmits_->add();
    p.rto = std::min(p.rto * cfg_.rto_backoff, cfg_.rto_max);
    frame = make_data_frame(src, dst, seq, p.bytes);
    next_delay = p.rto;
  }
  transmit_frame(frame);
  arm_timer(src, dst, seq, jittered(next_delay));
}

ChannelStats ReliableChannel::stats(int src, int dst) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ChannelStats out;
  const ChannelKey key{src, dst};
  if (auto it = send_.find(key); it != send_.end()) {
    const SendState& s = it->second;
    out.sent = s.next_seq;
    out.acked = s.acked_cum;
    out.unacked = s.pending.size();
    out.wire_in_flight = s.wire_in_flight;
    out.retransmits = s.retransmits;
  }
  if (auto it = recv_.find(key); it != recv_.end()) {
    const RecvState& r = it->second;
    out.delivered = r.delivered;
    out.reorder_buffered = r.received.size();
    out.dups_discarded = r.dups_discarded;
    out.corrupt_discarded = r.corrupt_discarded;
    out.blackholed = r.blackholed;
  }
  return out;
}

std::string ReliableChannel::status_report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_report_locked();
}

std::string ReliableChannel::status_report_locked() const {
  std::ostringstream os;
  os << "reliable channels (in_flight = frames on the wire, unacked = "
        "payloads awaiting ack):";
  std::set<ChannelKey> keys;
  for (const auto& [key, unused] : send_) keys.insert(key);
  for (const auto& [key, unused] : recv_) keys.insert(key);
  if (keys.empty()) os << " none";
  for (const ChannelKey& key : keys) {
    os << "\n  " << key.first << "->" << key.second << ":";
    auto s = send_.find(key);
    if (s != send_.end()) {
      os << " sent=" << s->second.next_seq << " acked=" << s->second.acked_cum
         << " unacked=" << s->second.pending.size()
         << " in_flight=" << s->second.wire_in_flight
         << " retransmits=" << s->second.retransmits;
    }
    auto r = recv_.find(key);
    if (r != recv_.end()) {
      os << " delivered=" << r->second.delivered
         << " reorder_buffered=" << r->second.received.size()
         << " dups=" << r->second.dups_discarded
         << " corrupt=" << r->second.corrupt_discarded
         << " blackholed=" << r->second.blackholed;
    }
  }
  return os.str();
}

std::uint64_t ReliableChannel::total_retransmits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, s] : send_) total += s.retransmits;
  return total;
}

std::uint64_t ReliableChannel::total_unacked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, s] : send_) total += s.pending.size();
  return total;
}

void ReliableChannel::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    m_retransmits_ = m_dup_drops_ = m_corrupt_drops_ = nullptr;
    m_acks_ = m_delivered_ = m_blackholed_ = m_wire_bytes_ = nullptr;
    return;
  }
  m_retransmits_ = &registry->counter("net.reliable.retransmits");
  m_dup_drops_ = &registry->counter("net.reliable.dup_drops");
  m_corrupt_drops_ = &registry->counter("net.reliable.corrupt_drops");
  m_acks_ = &registry->counter("net.reliable.acks");
  m_delivered_ = &registry->counter("net.reliable.delivered");
  m_blackholed_ = &registry->counter("net.reliable.blackholed");
  m_wire_bytes_ = &registry->counter("net.reliable.wire_bytes");
}

void ReliableChannel::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, s] : send_) s.retransmits = 0;
  for (auto& [key, r] : recv_) {
    r.delivered = 0;
    r.dups_discarded = 0;
    r.corrupt_discarded = 0;
    r.blackholed = 0;
  }
}

}  // namespace navcpp::net
