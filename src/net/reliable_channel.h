// ReliableChannel: exactly-once, in-order delivery over a lossy Engine.
//
// The Engine contract promises reliable non-overtaking transmit(); the
// FaultMachine decorator deliberately breaks that promise at *frame*
// granularity (drop / duplicate / corrupt).  ReliableChannel restores the
// contract on top, the way TCP restores it over IP:
//
//   * every payload gets a per-(src, dst) sequence number and is retained
//     sender-side until acknowledged — the retention store doubles as the
//     retransmit buffer, which matters because Engine payloads are one-shot
//     move-only closures (often owning a migrating agent's coroutine stack)
//     that cannot be copied onto the wire;
//   * what actually crosses the engine is a small copyable Frame carrying
//     (seq, byte count, checksum).  Fault decisions apply to frames, so a
//     "dropped message" loses a frame, never the payload;
//   * the receiver verifies the checksum (corrupt frames are discarded and
//     recovered by retransmit), dedups by sequence number (duplicates are
//     re-acked, never re-delivered), buffers out-of-order arrivals, and
//     releases payloads strictly in send order;
//   * cumulative acks flow back on the reverse channel; unacked frames are
//     retransmitted on a per-message timer with exponential backoff and
//     seeded jitter.  A configurable retry budget converts a dead channel
//     into a typed support::DeliveryError instead of a silent hang.
//
// Local (src == dst) messages bypass the protocol entirely: they never touch
// the wire, so the fault model must not see them (and the tests check it).
//
// Determinism: on the sim backend every timer is a post_after event and the
// jitter comes from a seeded Rng, so a (program, FaultPlan seed) pair yields
// a bit-identical schedule on every run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "obs/metrics.h"
#include "support/move_function.h"
#include "support/rng.h"

namespace navcpp::net {

/// What the fault layer decided to do with one frame on the wire.
struct FrameFate {
  bool drop = false;     ///< frame vanishes (retransmit will recover)
  bool corrupt = false;  ///< frame arrives with a flipped checksum
  int copies = 1;        ///< >1 duplicates the frame (receiver dedups)
};

/// Interface the fault injector exposes to the reliability layer.  Consulted
/// once per frame put on the wire (data and ack frames alike) and once per
/// frame arrival (crashed hosts black-hole their inbound frames).
class FrameFaults {
 public:
  virtual ~FrameFaults() = default;

  /// Fate of the next frame on channel src -> dst.  Never called for local
  /// (src == dst) traffic.
  virtual FrameFate decide_frame(int src, int dst) = 0;

  /// True while `pe` is crashed: frames addressed to it are black-holed.
  virtual bool is_down(int pe) const = 0;
};

/// Protocol knobs.
struct ReliableConfig {
  double rto_initial = 2.0e-3;  ///< first retransmit timeout, seconds
  double rto_backoff = 2.0;     ///< multiplier per retransmit
  /// Ceiling on the backed-off timeout, seconds (pre-jitter).  Without it
  /// the exponential backoff grows without bound, and on the wall-clock
  /// backends a long fail-stop outage pushes retransmit timers to absurd
  /// real delays before recovery kicks in.  The default (1 s) sits far
  /// above where healthy traffic ever backs off to (~9 doublings of
  /// rto_initial), so it only matters during a genuine outage.
  double rto_max = 1.0;
  double rto_jitter = 0.25;     ///< +- fraction of the timeout, seeded
  int max_retries = 16;         ///< retransmits before DeliveryError
  std::uint64_t seed = 0xab1eULL;  ///< jitter RNG seed
  std::size_t frame_header_bytes = 32;  ///< wire overhead per data frame
  std::size_t ack_bytes = 32;           ///< wire size of an ack frame
};

/// Per-channel counters for reports and tests.
struct ChannelStats {
  std::uint64_t sent = 0;           ///< payloads accepted from the sender
  std::uint64_t acked = 0;          ///< payloads cumulatively acknowledged
  std::uint64_t unacked = 0;        ///< payloads still in the retain buffer
  std::uint64_t wire_in_flight = 0;  ///< frames transmitted, not yet arrived
  std::uint64_t retransmits = 0;
  std::uint64_t delivered = 0;      ///< payloads released in order at dst
  std::uint64_t reorder_buffered = 0;  ///< arrivals waiting for a gap
  std::uint64_t dups_discarded = 0;
  std::uint64_t corrupt_discarded = 0;
  std::uint64_t blackholed = 0;     ///< frames that arrived at a downed PE
};

class ReliableChannel {
 public:
  /// `faults` may be null (protocol runs, nothing is ever injected); when
  /// non-null it must outlive the channel.  `engine` carries the frames and
  /// the retransmit timers.
  ReliableChannel(machine::Engine& engine, FrameFaults* faults,
                  ReliableConfig cfg = ReliableConfig{});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Ship `deliver` from src to dst with exactly-once, in-order semantics.
  /// `bytes` is the logical payload size (the wire adds frame_header_bytes).
  /// Must not be called after the engine finished its last run; pending
  /// timers drain inside Engine::run().
  void send(int src, int dst, std::size_t bytes,
            support::MoveFunction deliver);

  /// Counters for channel src -> dst (zeros if the channel never carried
  /// traffic).
  ChannelStats stats(int src, int dst) const;

  /// Deterministic multi-line "src->dst: sent=... unacked=... in_flight=..."
  /// dump of every channel that carried traffic; embedded in DeliveryError
  /// messages and appended to blocked/deadlock reports so a retransmit hang
  /// is diagnosable from the report alone.
  std::string status_report() const;

  std::uint64_t total_retransmits() const;
  std::uint64_t total_unacked() const;

  /// Attach a metrics registry (nullptr = off): protocol events are counted
  /// under "net.reliable.*" (retransmits, dup/corrupt drops, acks,
  /// deliveries, blackholed frames, wire bytes).  Wire bytes include every
  /// retransmitted and duplicated copy — deliberately distinct from
  /// navp.hop_bytes, which counts only the delivered payload.
  void set_metrics(obs::Registry* registry);

  /// Rewind the statistics counters (retransmits, delivered, dup/corrupt
  /// drops, blackholed) to zero so a reused channel reports per-run numbers.
  /// Protocol state — sequence numbers, ack horizons, retained payloads —
  /// is untouched, so `sent`/`acked`/`unacked` keep their meaning and
  /// in-flight traffic is unaffected.
  void reset_stats();

 private:
  enum class FrameKind : std::uint8_t { kData = 0, kAck = 1 };

  /// The copyable unit that actually crosses the engine.
  struct Frame {
    FrameKind kind = FrameKind::kData;
    int src = 0;
    int dst = 0;
    std::uint64_t seq = 0;            // data: sequence number; ack: unused
    std::uint64_t payload_bytes = 0;  // data: logical payload size
    std::uint64_t cum = 0;            // ack: all seq < cum are delivered
    std::uint64_t checksum = 0;
  };

  struct Pending {
    std::size_t bytes = 0;
    support::MoveFunction deliver;  // consumed at first in-order arrival
    int retries_left = 0;
    double rto = 0.0;
  };

  struct SendState {
    std::uint64_t next_seq = 0;
    std::uint64_t acked_cum = 0;
    std::map<std::uint64_t, Pending> pending;
    std::uint64_t retransmits = 0;
    std::uint64_t wire_in_flight = 0;
  };

  struct RecvState {
    std::uint64_t cum = 0;  // everything below is delivered
    std::set<std::uint64_t> received;  // out-of-order arrivals >= cum
    std::uint64_t delivered = 0;
    std::uint64_t dups_discarded = 0;
    std::uint64_t corrupt_discarded = 0;
    std::uint64_t blackholed = 0;
  };

  using ChannelKey = std::pair<int, int>;

  static std::uint64_t checksum_of(const Frame& f);
  Frame make_data_frame(int src, int dst, std::uint64_t seq,
                        std::size_t bytes) const;
  Frame make_ack_frame(int src, int dst, std::uint64_t cum) const;

  /// Put one frame on the engine, consulting the fault layer.  Caller must
  /// NOT hold mutex_ (transmit may synchronously reach another decorator).
  void transmit_frame(const Frame& frame);
  /// Arm the per-message retransmit timer on the sender's PE.
  void arm_timer(int src, int dst, std::uint64_t seq, double delay);

  // Frame arrival handlers; run as engine actions on the frame's dst PE.
  void on_data_frame(const Frame& frame);
  void on_ack_frame(const Frame& frame);
  void on_timer(int src, int dst, std::uint64_t seq);

  double jittered(double rto);
  std::string status_report_locked() const;  // caller holds mutex_

  machine::Engine& engine_;
  FrameFaults* faults_;
  ReliableConfig cfg_;

  // Cached metric handles (null when metrics are off).
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_dup_drops_ = nullptr;
  obs::Counter* m_corrupt_drops_ = nullptr;
  obs::Counter* m_acks_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_blackholed_ = nullptr;
  obs::Counter* m_wire_bytes_ = nullptr;

  mutable std::mutex mutex_;  // guards send_, recv_, rng_
  support::Rng rng_;
  std::map<ChannelKey, SendState> send_;
  std::map<ChannelKey, RecvState> recv_;
};

}  // namespace navcpp::net
