// Wire protocol of the process-per-PE backend (machine/proc_machine.h).
//
// The parent and its per-PE workers exchange length-prefixed binary frames
// over a stream socket (a Unix-domain socketpair by default, loopback TCP
// as the fallback transport).  Every frame is
//
//   u32  length   — byte count of everything after this field
//   u8   type     — WireType
//   u32  pe       — kHello: sender PE; kSend/kHop: destination PE
//   u32  src      — kHop: source PE
//   u64  token    — parent-issued id of the action this frame is about
//   u64  arg      — type-specific scalar (timer delay in ns, run id,
//                   payload checksum, grant kind/ok, protocol version)
//   u64  seq      — parent-stamped delivery sequence for grant-bearing
//                   frames (kPost/kTimer/kSend/kHop); 0 = unsequenced.
//                   Workers drop a nonzero seq they have already seen, so
//                   the parent can blind-retransmit its retained frames
//                   after a worker respawn without double delivery and
//                   without violating non-overtaking (seqs are monotone
//                   per connection and survive the respawn).  Mesh direct
//                   hops reuse the field sender-stamped: monotone per
//                   (src,dst) edge, deduplicated against a per-connection
//                   high-water mark at the receiving worker.
//   u64  trace    — distributed trace id (v3).  The parent stamps it on
//                   every data frame (kPost/kTimer/kSend, and the relayed
//                   kHop keeps its kSend's id); workers stamp it on the
//                   spans they record about that frame, so the merger can
//                   draw a flow arrow from the serialize span on the source
//                   worker to the verify span on the destination worker.
//                   0 = untraced.
//   u32  ntokens  + ntokens * u64   — kQuiesceAck: canceled timer tokens
//   u32  npayload + npayload bytes  — kHop: the payload crossing the wire;
//                                     kCheckpointSave/kCheckpointData: the
//                                     serialized checkpoint; kSpans: packed
//                                     obs::ProcSpan records (see
//                                     obs/proc_trace.h for the layout)
//   [WireWorkerStats]               — kQuiesceAck / kStatusReply /
//                                     kStatsDelta only
//
// All integers are explicit little-endian on the wire (wire_put_u*/
// wire_get_u* below): the byte layout is defined independently of the host,
// which is what lets workers eventually live on other machines (the ROADMAP
// multi-host step).  On little-endian hosts — every deployment today — the
// helpers compile to plain loads and stores.  FrameConn below does the
// buffering: workers run it blocking; the parent runs it non-blocking with
// an outgoing queue so parent and worker can never deadlock writing to each
// other (the parent always returns to its poll loop, so it always drains
// worker output).
//
// v4 adds the mesh data plane: workers exchange kHop frames directly over
// worker<->worker channels (socketpairs passed at fork, or dial-back to a
// per-worker loopback listener whose port rides in kHello.token), with
// kPeerHello identifying the dialing side, kPeerInfo carrying the parent's
// brokering, and kHopRetire releasing sender-retained hop frames once the
// destination's grant reached the parent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace navcpp::net {

/// Protocol revision; kHello carries it in `arg` and the parent refuses a
/// mismatched worker instead of misparsing its frames.  v3 added the
/// per-frame `trace` id, the kConfig/kStatsDelta/kSpans frames, the
/// worker-side time accounting in WireWorkerStats, and the heartbeat
/// timestamp piggyback (kPing.arg = parent steady ns at send, kPong.arg =
/// worker steady ns at reply; the parent turns the pair into a per-worker
/// clock-offset estimate, NTP style).  v4 pinned the layout little-endian,
/// added the mesh frames (kPeerHello/kPeerInfo/kHopRetire), the mesh
/// retention config bit, and the direct-hop counters in WireWorkerStats.
constexpr std::uint64_t kWireProtocolVersion = 5;

// --- byte order -------------------------------------------------------------
//
// The frame layout is little-endian by definition.  These helpers spell the
// byte order out with shifts, which any compiler folds to a single move on
// LE hosts — a compile-time no-op where it matters, a byte swap where it
// would otherwise be a silent corruption.

static_assert(sizeof(std::uint8_t) == 1 && sizeof(std::uint16_t) == 2 &&
                  sizeof(std::uint32_t) == 4 && sizeof(std::uint64_t) == 8,
              "wire protocol requires exact-width integer types");

inline void wire_put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

inline void wire_put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

inline void wire_put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

inline void wire_put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

inline std::uint8_t wire_get_u8(const std::byte* p) {
  return static_cast<std::uint8_t>(*p);
}

inline std::uint16_t wire_get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint16_t>(
                                         static_cast<std::uint8_t>(p[1]))
                                     << 8));
}

inline std::uint32_t wire_get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

inline std::uint64_t wire_get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

enum class WireType : std::uint8_t {
  kHello = 1,       ///< worker -> parent: I am PE `pe`, protocol `arg`
  kStart = 2,       ///< parent -> worker: begin run `arg`, reset stats
  kPost = 3,        ///< parent -> worker: schedule action `token` on your PE
  kTimer = 4,       ///< parent -> worker: fire `token` after `arg` ns
  kSend = 5,        ///< parent -> worker: emit hop `token`, `arg` bytes to `pe`
  kHop = 6,         ///< worker -> parent -> worker: the payload frame itself
  kGrant = 7,       ///< worker -> parent: run action `token` now (arg: kind|ok)
  kQuiesce = 8,     ///< parent -> worker: cancel timers, report stats
  kQuiesceAck = 9,  ///< worker -> parent: canceled tokens + WireWorkerStats
  kStatus = 10,     ///< parent -> worker: status ping
  kStatusReply = 11,  ///< worker -> parent: timers pending in `arg` + stats
  kShutdown = 12,   ///< parent -> worker: exit cleanly
  kPing = 13,       ///< parent -> worker: heartbeat, echo `token` back
  kPong = 14,       ///< worker -> parent: heartbeat reply (echoed `token`)
  kCheckpointSave = 15,  ///< parent -> worker: retain `payload` as your PE's
                         ///< checkpoint (spill to file if configured)
  kCheckpointLoad = 16,  ///< parent -> worker: send your checkpoint back
  kCheckpointData = 17,  ///< worker -> parent: checkpoint bytes; arg=1 when
                         ///< a checkpoint exists, 0 when there is none
  kConfig = 18,      ///< parent -> worker: observability config; `arg` is a
                     ///< kCfg* bitmask, `token` the stats-delta interval in ns
  kStatsDelta = 19,  ///< worker -> parent: periodic mid-run stats snapshot
                     ///< (cumulative WireWorkerStats; arg = timer-queue depth)
  kSpans = 20,       ///< worker -> parent: SpanBuffer flush; payload is a
                     ///< packed obs::ProcSpan array, arg = record count
  // --- v4: mesh data plane -------------------------------------------------
  kPeerHello = 21,   ///< worker -> worker: first frame on a fresh peer
                     ///< channel; `pe` identifies the dialing worker
  kPeerInfo = 22,    ///< parent -> worker: dial the peer worker of PE `pe`
                     ///< at loopback port `arg` (mesh brokering/re-brokering)
  kHopRetire = 23,   ///< parent -> source worker: the grant for hop `token`
                     ///< (destination PE in `pe`) arrived; drop the retained
                     ///< copy — it will never need replaying
};

/// kConfig.arg bits (parent -> worker observability switches).
constexpr std::uint64_t kCfgTrace = 1ULL << 0;       ///< record + ship spans
constexpr std::uint64_t kCfgStatsDelta = 1ULL << 1;  ///< periodic kStatsDelta
/// Mesh + recovery: the *sending* worker retains every direct kHop until the
/// parent's kHopRetire, and replays the window into a respawned peer after
/// the supervisor re-brokers the edge.
constexpr std::uint64_t kCfgMeshRetain = 1ULL << 2;

/// What kind of action a kGrant releases; packed into the low byte of
/// `arg`.  Bit 8 is the ok flag (hop checksum verified).
enum class GrantKind : std::uint8_t { kPost = 0, kTimer = 1, kHop = 2 };

constexpr std::uint64_t kGrantOkBit = 1ULL << 8;

/// Per-worker counters shipped back on kQuiesceAck: the worker-side half of
/// the run profile (the parent owns action execution, the worker owns
/// scheduling and transport).  Crosses the wire field-wise as little-endian
/// u64s (wire.cpp), so the struct must stay all-u64 with no padding.
struct WireWorkerStats {
  std::uint64_t posts_granted = 0;   ///< kPost actions scheduled + granted
  std::uint64_t timers_fired = 0;
  std::uint64_t timers_canceled = 0;  ///< outstanding at quiesce
  std::uint64_t hops_out = 0;         ///< kSend payloads materialized
  std::uint64_t hops_in = 0;          ///< kHop payloads verified
  std::uint64_t hop_bytes_out = 0;
  std::uint64_t hop_bytes_in = 0;
  std::uint64_t frames_seen = 0;      ///< every frame the worker processed
  std::uint64_t pings_answered = 0;   ///< kPing frames ponged
  std::uint64_t frames_deduped = 0;   ///< replayed seqs dropped unprocessed
  std::uint64_t checkpoint_bytes = 0; ///< size of the retained checkpoint
  // --- v3: worker-side time accounting (steady-clock ns, this process) ---
  std::uint64_t busy_ns = 0;          ///< time spent inside handle()
  std::uint64_t idle_ns = 0;          ///< time blocked in poll() waiting
  std::uint64_t serialize_ns = 0;     ///< kSend: materialize+checksum+ship
  std::uint64_t verify_ns = 0;        ///< kHop: checksum verify + grant
  std::uint64_t queue_depth = 0;      ///< pending timers at snapshot time
  std::uint64_t spans_dropped = 0;    ///< spans lost to a full SpanBuffer
  std::uint64_t stats_deltas_sent = 0;  ///< kStatsDelta frames emitted
  // --- v4: mesh data plane -------------------------------------------------
  std::uint64_t direct_hops_out = 0;  ///< kHop frames sent worker->worker
  std::uint64_t direct_hops_in = 0;   ///< kHop frames verified off a peer
                                      ///< channel (no parent relay)
  std::uint64_t hops_replayed = 0;    ///< retained hops resent into a
                                      ///< re-brokered peer channel
};

/// Number of u64 fields in WireWorkerStats; the wire layout is exactly this
/// many little-endian u64s in declaration order.
constexpr std::size_t kWireWorkerStatsFields = 21;
static_assert(sizeof(WireWorkerStats) ==
                  kWireWorkerStatsFields * sizeof(std::uint64_t),
              "WireWorkerStats must be all-u64 with no padding; update "
              "kWireWorkerStatsFields when adding fields");

/// One decoded (or to-be-encoded) protocol frame.  Unused fields stay at
/// their defaults; encode() writes the stats block only for the two frame
/// types that carry it.
struct WireFrame {
  WireType type = WireType::kHello;
  std::uint32_t pe = 0;
  std::uint32_t src = 0;
  std::uint64_t token = 0;
  std::uint64_t arg = 0;
  std::uint64_t seq = 0;  ///< 0 = unsequenced (control frame, never deduped)
  /// Sender's run epoch, stamped on direct mesh hops (0 = control frame).
  /// Star and mesh channels have no cross-channel ordering, so a hop can
  /// physically arrive before the kStart that opens its run; the receiver
  /// defers hops from a run it has not started and drops hops from runs
  /// that already quiesced.
  std::uint32_t run = 0;
  std::uint64_t trace = 0;  ///< distributed trace id; 0 = untraced
  std::vector<std::uint64_t> tokens;
  std::vector<std::byte> payload;
  WireWorkerStats stats;
};

/// Append the encoded frame (including its length prefix) to `out`.
void wire_encode(const WireFrame& frame, std::vector<std::byte>& out);

/// Checksum of a payload (SplitMix64-style mix folded over 8-byte words);
/// the receiving worker recomputes it so a hop payload is verified after
/// genuinely crossing two address-space boundaries.
std::uint64_t wire_checksum(const std::byte* data, std::size_t n,
                            std::uint64_t seed);

/// Deterministically fill `n` bytes of payload from `seed` (the source
/// worker materializes hop payloads with this; the Engine contract ships a
/// byte *count*, so the bytes themselves are a seeded pattern — see
/// docs/architecture.md, "Process-per-PE backend").
void wire_fill_pattern(std::vector<std::byte>& out, std::size_t n,
                       std::uint64_t seed);

/// A framed stream connection over an fd.  Owns read/write buffering and
/// frame parsing; does NOT own the fd's lifetime policy (close() is
/// explicit).  Blocking mode: send_frame writes through.  Non-blocking
/// mode: send_frame queues and flush() is retried from a poll loop.
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void set_fd(int fd) { fd_ = fd; }
  bool valid() const { return fd_ >= 0; }

  /// Make the fd non-blocking (parent side).  Blocking is the default.
  void set_nonblocking();

  /// Encode `frame` and write it.  Blocking fds write through (looping on
  /// partial writes); non-blocking fds append to the outgoing buffer and
  /// attempt a flush.  Returns false if the peer is gone (EPIPE and
  /// friends); buffered bytes are then dropped.
  bool send_frame(const WireFrame& frame);

  /// Push buffered outgoing bytes (non-blocking mode).  Returns false if
  /// the peer is gone.
  bool flush();
  bool has_outgoing() const { return out_off_ < out_.size(); }

  /// Read whatever the socket has.  Returns false on EOF or a hard error
  /// (the peer is gone); EAGAIN returns true with nothing consumed.
  bool read_some();

  /// Decode the next complete frame out of the read buffer.  Throws
  /// support::ProcError on a malformed frame (bad type, oversized length).
  bool next_frame(WireFrame* out);

  void close();

 private:
  int fd_ = -1;
  bool nonblocking_ = false;
  std::vector<std::byte> in_;
  std::size_t in_off_ = 0;
  std::vector<std::byte> out_;
  std::size_t out_off_ = 0;
};

// --- transports ------------------------------------------------------------

/// A connected Unix-domain stream pair; [0] is the parent end, [1] the
/// worker end.  Both ends survive exec (no CLOEXEC on [1]).  Throws
/// support::ProcError on failure.
void wire_socketpair(int fds[2]);

/// A connected Unix-domain stream pair for a worker<->worker mesh edge.
/// BOTH ends survive exec (each goes to a different forked worker), so the
/// supervisor must close its copies after spawning and every child must
/// close the edges that are not its own — see ProcMachine::spawn_one.
/// Throws support::ProcError on failure.
void wire_peer_socketpair(int fds[2]);

/// Loopback-TCP transport: listen on 127.0.0.1.  Port 0 (the default) binds
/// an ephemeral port; a nonzero port binds that exact port, with
/// SO_REUSEADDR set so a back-to-back rebind is not defeated by the
/// previous socket sitting in TIME_WAIT.  Workers connect with
/// wire_connect_loopback and identify themselves with kHello (parent star)
/// or kPeerHello (mesh dial-back).  Throws support::ProcError on failure.
class WireListener {
 public:
  explicit WireListener(std::uint16_t port = 0);
  ~WireListener();
  WireListener(const WireListener&) = delete;
  WireListener& operator=(const WireListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// The listening socket, for callers that poll it themselves (the mesh
  /// worker loop); pair a readable event with accept_one(0).
  int fd() const { return fd_; }
  /// Accept one connection, waiting up to `timeout_seconds`.  Returns the
  /// connected fd (FD_CLOEXEC set), or -1 on timeout.
  int accept_one(double timeout_seconds);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:`port` (worker side of the TCP fallback, and the
/// dialing side of a mesh edge).  Returns the fd (FD_CLOEXEC set: a
/// respawned sibling forked while this fd exists must not inherit it, or
/// the peer's EOF-based death detection is defeated); throws
/// support::ProcError on failure.
int wire_connect_loopback(std::uint16_t port);

}  // namespace navcpp::net
