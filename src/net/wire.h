// Wire protocol of the process-per-PE backend (machine/proc_machine.h).
//
// The parent and its per-PE workers exchange length-prefixed binary frames
// over a stream socket (a Unix-domain socketpair by default, loopback TCP
// as the fallback transport).  Every frame is
//
//   u32  length   — byte count of everything after this field
//   u8   type     — WireType
//   u32  pe       — kHello: sender PE; kSend/kHop: destination PE
//   u32  src      — kHop: source PE
//   u64  token    — parent-issued id of the action this frame is about
//   u64  arg      — type-specific scalar (timer delay in ns, run id,
//                   payload checksum, grant kind/ok, protocol version)
//   u64  seq      — parent-stamped delivery sequence for grant-bearing
//                   frames (kPost/kTimer/kSend/kHop); 0 = unsequenced.
//                   Workers drop a nonzero seq they have already seen, so
//                   the parent can blind-retransmit its retained frames
//                   after a worker respawn without double delivery and
//                   without violating non-overtaking (seqs are monotone
//                   per connection and survive the respawn).
//   u64  trace    — distributed trace id (v3).  The parent stamps it on
//                   every data frame (kPost/kTimer/kSend, and the relayed
//                   kHop keeps its kSend's id); workers stamp it on the
//                   spans they record about that frame, so the merger can
//                   draw a flow arrow from the serialize span on the source
//                   worker to the verify span on the destination worker.
//                   0 = untraced.
//   u32  ntokens  + ntokens * u64   — kQuiesceAck: canceled timer tokens
//   u32  npayload + npayload bytes  — kHop: the payload crossing the wire;
//                                     kCheckpointSave/kCheckpointData: the
//                                     serialized checkpoint; kSpans: packed
//                                     obs::ProcSpan records (see
//                                     obs/proc_trace.h for the layout)
//   [WireWorkerStats]               — kQuiesceAck / kStatusReply /
//                                     kStatsDelta only
//
// All integers are host-endian: parent and workers run on one host (the
// deployment model is "one box, many address spaces", like the Princeton
// process-pool runtimes).  FrameConn below does the buffering: workers run
// it blocking; the parent runs it non-blocking with an outgoing queue so
// parent and worker can never deadlock writing to each other (the parent
// always returns to its poll loop, so it always drains worker output).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace navcpp::net {

/// Protocol revision; kHello carries it in `arg` and the parent refuses a
/// mismatched worker instead of misparsing its frames.  v3 added the
/// per-frame `trace` id, the kConfig/kStatsDelta/kSpans frames, the
/// worker-side time accounting in WireWorkerStats, and the heartbeat
/// timestamp piggyback (kPing.arg = parent steady ns at send, kPong.arg =
/// worker steady ns at reply; the parent turns the pair into a per-worker
/// clock-offset estimate, NTP style).
constexpr std::uint64_t kWireProtocolVersion = 3;

enum class WireType : std::uint8_t {
  kHello = 1,       ///< worker -> parent: I am PE `pe`, protocol `arg`
  kStart = 2,       ///< parent -> worker: begin run `arg`, reset stats
  kPost = 3,        ///< parent -> worker: schedule action `token` on your PE
  kTimer = 4,       ///< parent -> worker: fire `token` after `arg` ns
  kSend = 5,        ///< parent -> worker: emit hop `token`, `arg` bytes to `pe`
  kHop = 6,         ///< worker -> parent -> worker: the payload frame itself
  kGrant = 7,       ///< worker -> parent: run action `token` now (arg: kind|ok)
  kQuiesce = 8,     ///< parent -> worker: cancel timers, report stats
  kQuiesceAck = 9,  ///< worker -> parent: canceled tokens + WireWorkerStats
  kStatus = 10,     ///< parent -> worker: status ping
  kStatusReply = 11,  ///< worker -> parent: timers pending in `arg` + stats
  kShutdown = 12,   ///< parent -> worker: exit cleanly
  kPing = 13,       ///< parent -> worker: heartbeat, echo `token` back
  kPong = 14,       ///< worker -> parent: heartbeat reply (echoed `token`)
  kCheckpointSave = 15,  ///< parent -> worker: retain `payload` as your PE's
                         ///< checkpoint (spill to file if configured)
  kCheckpointLoad = 16,  ///< parent -> worker: send your checkpoint back
  kCheckpointData = 17,  ///< worker -> parent: checkpoint bytes; arg=1 when
                         ///< a checkpoint exists, 0 when there is none
  kConfig = 18,      ///< parent -> worker: observability config; `arg` is a
                     ///< kCfg* bitmask, `token` the stats-delta interval in ns
  kStatsDelta = 19,  ///< worker -> parent: periodic mid-run stats snapshot
                     ///< (cumulative WireWorkerStats; arg = timer-queue depth)
  kSpans = 20,       ///< worker -> parent: SpanBuffer flush; payload is a
                     ///< packed obs::ProcSpan array, arg = record count
};

/// kConfig.arg bits (parent -> worker observability switches).
constexpr std::uint64_t kCfgTrace = 1ULL << 0;       ///< record + ship spans
constexpr std::uint64_t kCfgStatsDelta = 1ULL << 1;  ///< periodic kStatsDelta

/// What kind of action a kGrant releases; packed into the low byte of
/// `arg`.  Bit 8 is the ok flag (hop checksum verified).
enum class GrantKind : std::uint8_t { kPost = 0, kTimer = 1, kHop = 2 };

constexpr std::uint64_t kGrantOkBit = 1ULL << 8;

/// Per-worker counters shipped back on kQuiesceAck: the worker-side half of
/// the run profile (the parent owns action execution, the worker owns
/// scheduling and transport).  Trivially copyable: crosses the wire as raw
/// bytes.
struct WireWorkerStats {
  std::uint64_t posts_granted = 0;   ///< kPost actions scheduled + granted
  std::uint64_t timers_fired = 0;
  std::uint64_t timers_canceled = 0;  ///< outstanding at quiesce
  std::uint64_t hops_out = 0;         ///< kSend payloads materialized
  std::uint64_t hops_in = 0;          ///< kHop payloads verified
  std::uint64_t hop_bytes_out = 0;
  std::uint64_t hop_bytes_in = 0;
  std::uint64_t frames_seen = 0;      ///< every frame the worker processed
  std::uint64_t pings_answered = 0;   ///< kPing frames ponged
  std::uint64_t frames_deduped = 0;   ///< replayed seqs dropped unprocessed
  std::uint64_t checkpoint_bytes = 0; ///< size of the retained checkpoint
  // --- v3: worker-side time accounting (steady-clock ns, this process) ---
  std::uint64_t busy_ns = 0;          ///< time spent inside handle()
  std::uint64_t idle_ns = 0;          ///< time blocked in poll() waiting
  std::uint64_t serialize_ns = 0;     ///< kSend: materialize+checksum+ship
  std::uint64_t verify_ns = 0;        ///< kHop: checksum verify + grant
  std::uint64_t queue_depth = 0;      ///< pending timers at snapshot time
  std::uint64_t spans_dropped = 0;    ///< spans lost to a full SpanBuffer
  std::uint64_t stats_deltas_sent = 0;  ///< kStatsDelta frames emitted
};

/// One decoded (or to-be-encoded) protocol frame.  Unused fields stay at
/// their defaults; encode() writes the stats block only for the two frame
/// types that carry it.
struct WireFrame {
  WireType type = WireType::kHello;
  std::uint32_t pe = 0;
  std::uint32_t src = 0;
  std::uint64_t token = 0;
  std::uint64_t arg = 0;
  std::uint64_t seq = 0;  ///< 0 = unsequenced (control frame, never deduped)
  std::uint64_t trace = 0;  ///< distributed trace id; 0 = untraced
  std::vector<std::uint64_t> tokens;
  std::vector<std::byte> payload;
  WireWorkerStats stats;
};

/// Append the encoded frame (including its length prefix) to `out`.
void wire_encode(const WireFrame& frame, std::vector<std::byte>& out);

/// Checksum of a payload (SplitMix64-style mix folded over 8-byte words);
/// the receiving worker recomputes it so a hop payload is verified after
/// genuinely crossing two address-space boundaries.
std::uint64_t wire_checksum(const std::byte* data, std::size_t n,
                            std::uint64_t seed);

/// Deterministically fill `n` bytes of payload from `seed` (the source
/// worker materializes hop payloads with this; the Engine contract ships a
/// byte *count*, so the bytes themselves are a seeded pattern — see
/// docs/architecture.md, "Process-per-PE backend").
void wire_fill_pattern(std::vector<std::byte>& out, std::size_t n,
                       std::uint64_t seed);

/// A framed stream connection over an fd.  Owns read/write buffering and
/// frame parsing; does NOT own the fd's lifetime policy (close() is
/// explicit).  Blocking mode: send_frame writes through.  Non-blocking
/// mode: send_frame queues and flush() is retried from a poll loop.
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void set_fd(int fd) { fd_ = fd; }
  bool valid() const { return fd_ >= 0; }

  /// Make the fd non-blocking (parent side).  Blocking is the default.
  void set_nonblocking();

  /// Encode `frame` and write it.  Blocking fds write through (looping on
  /// partial writes); non-blocking fds append to the outgoing buffer and
  /// attempt a flush.  Returns false if the peer is gone (EPIPE and
  /// friends); buffered bytes are then dropped.
  bool send_frame(const WireFrame& frame);

  /// Push buffered outgoing bytes (non-blocking mode).  Returns false if
  /// the peer is gone.
  bool flush();
  bool has_outgoing() const { return out_off_ < out_.size(); }

  /// Read whatever the socket has.  Returns false on EOF or a hard error
  /// (the peer is gone); EAGAIN returns true with nothing consumed.
  bool read_some();

  /// Decode the next complete frame out of the read buffer.  Throws
  /// support::ProcError on a malformed frame (bad type, oversized length).
  bool next_frame(WireFrame* out);

  void close();

 private:
  int fd_ = -1;
  bool nonblocking_ = false;
  std::vector<std::byte> in_;
  std::size_t in_off_ = 0;
  std::vector<std::byte> out_;
  std::size_t out_off_ = 0;
};

// --- transports ------------------------------------------------------------

/// A connected Unix-domain stream pair; [0] is the parent end, [1] the
/// worker end.  Both ends survive exec (no CLOEXEC on [1]).  Throws
/// support::ProcError on failure.
void wire_socketpair(int fds[2]);

/// Loopback-TCP fallback transport: listen on 127.0.0.1 with an ephemeral
/// port.  Workers connect with wire_connect_loopback and identify
/// themselves with kHello.  Throws support::ProcError on failure.
class WireListener {
 public:
  WireListener();
  ~WireListener();
  WireListener(const WireListener&) = delete;
  WireListener& operator=(const WireListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Accept one connection, waiting up to `timeout_seconds`.  Returns the
  /// connected fd, or -1 on timeout.
  int accept_one(double timeout_seconds);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:`port` (worker side of the TCP fallback).  Returns
/// the fd; throws support::ProcError on failure.
int wire_connect_loopback(std::uint16_t port);

}  // namespace navcpp::net
