#include "obs/chrome_trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace navcpp::obs {

namespace {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Microseconds with fixed precision — deterministic across runs.
std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string gauge_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct Event {
  double ts = 0.0;   // sort key, seconds; metadata uses -1 to sort first
  int order = 0;     // tie-break: original emission order (stable output)
  std::string json;
};

}  // namespace

std::string trace_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
// Local alias: every emission site below escapes through the public helper.
std::string json_escape(const std::string& s) { return trace_json_escape(s); }
}  // namespace

std::string chrome_trace_json(const std::vector<navp::TraceSpan>& spans,
                              const std::vector<navp::TraceHop>& hops,
                              const Snapshot* metrics,
                              const ChromeTraceOptions& opts) {
  std::vector<Event> events;
  events.reserve(spans.size() + hops.size() + 64);
  int order = 0;
  auto push = [&](double ts, std::string json) {
    events.push_back(Event{ts, order++, std::move(json)});
  };

  int pe_count = opts.pe_count;
  double end_time = 0.0;
  for (const auto& s : spans) {
    pe_count = std::max(pe_count, s.pe + 1);
    end_time = std::max(end_time, s.t1);
  }
  for (const auto& h : hops) {
    pe_count = std::max(pe_count, std::max(h.src, h.dst) + 1);
    end_time = std::max(end_time, h.arrive);
  }

  // Dense, deterministic track ids for the directed channels seen in hops.
  std::map<std::pair<int, int>, int> channel_track;
  for (const auto& h : hops) {
    channel_track.emplace(std::make_pair(h.src, h.dst), 0);
  }
  {
    int next = 0;
    for (auto& [ch, track] : channel_track) track = next++;
  }

  // Process / thread naming metadata (ph "M"; sorts before all real events).
  push(-1.0, "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"" + json_escape(opts.process_name) +
             " PEs\"}}");
  push(-1.0, "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"" + json_escape(opts.process_name) +
             " network\"}}");
  for (int pe = 0; pe < pe_count; ++pe) {
    push(-1.0, "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(pe) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":\"PE " +
               std::to_string(pe) + "\"}}");
  }
  for (const auto& [ch, track] : channel_track) {
    push(-1.0, "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(track) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":\"ch " +
               std::to_string(ch.first) + "->" + std::to_string(ch.second) +
               "\"}}");
  }

  for (const auto& s : spans) {
    const bool compute = s.kind == navp::TraceSpan::Kind::kCompute;
    const std::string name =
        s.label.empty() ? (compute ? "compute" : "wait") : s.label;
    push(s.t0,
         "{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(s.pe) +
             ",\"ts\":" + us(s.t0) + ",\"dur\":" + us(s.t1 - s.t0) +
             ",\"name\":\"" + json_escape(name) + "\",\"cat\":\"" +
             (compute ? "compute" : "wait") + "\",\"args\":{\"agent\":" +
             std::to_string(s.agent) + "}}");
  }

  for (const auto& h : hops) {
    const int track = channel_track.at({h.src, h.dst});
    push(h.depart,
         "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(track) +
             ",\"ts\":" + us(h.depart) + ",\"dur\":" + us(h.arrive - h.depart) +
             ",\"name\":\"agent " + std::to_string(h.agent) +
             "\",\"cat\":\"hop\",\"args\":{\"src\":" + std::to_string(h.src) +
             ",\"dst\":" + std::to_string(h.dst) + ",\"bytes\":" +
             std::to_string(h.bytes) + ",\"agent\":" +
             std::to_string(h.agent) + "}}");
  }

  // Every metrics counter becomes a trailing counter sample at end-of-run,
  // so the numbers are inspectable on the timeline itself.
  if (metrics != nullptr) {
    for (const auto& [key, value] : metrics->counters) {
      push(end_time,
           "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" + us(end_time) +
               ",\"name\":\"" + json_escape(key) + "\",\"args\":{\"value\":" +
               std::to_string(value) + "}}");
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  {
    bool first = true;
    auto kv = [&](const std::string& k, const std::string& v) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    };
    kv("exporter", "navcpp_obs");
    if (metrics != nullptr) {
      for (const auto& [key, value] : metrics->counters) {
        kv(key, std::to_string(value));
      }
      for (const auto& [key, value] : metrics->gauges) {
        kv(key, gauge_value(value));
      }
    }
  }
  os << "},\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n" << events[i].json;
  }
  os << "\n]}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Validation: a tiny self-contained JSON reader (objects, arrays, strings,
// numbers, literals), enough to check the structure we emit — and to catch a
// hand-edited or truncated file before someone wastes time in Perfetto.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after JSON value");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = why + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return parse_string(&out->string);
      case 't':
      case 'f': return parse_literal(out);
      case 'n': return parse_literal(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' in object");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            out->push_back('?');  // validation doesn't need the code point
            pos_ += 4;
            break;
          default: return fail("unknown escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_literal(JsonValue* out) {
    auto match = [&](const char* lit) {
      std::size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return fail("unknown literal");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    try {
      out->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error) {
  if (error != nullptr) error->clear();
  auto fail = [&](const std::string& why) {
    if (error != nullptr && error->empty()) *error = why;
    return false;
  };

  JsonValue root;
  JsonParser parser(json, error);
  if (!parser.parse(&root)) return fail("JSON parse error");
  if (root.type != JsonValue::Type::kObject) {
    return fail("top level is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return fail("missing traceEvents array");
  }
  if (events->array.empty()) return fail("traceEvents is empty");

  double last_ts = -1.0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (ev.type != JsonValue::Type::kObject) {
      return fail(at + " is not an object");
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString ||
        ph->string.empty()) {
      return fail(at + " has no phase (ph)");
    }
    const JsonValue* ts = ev.find("ts");
    if (ph->string == "M") {
      if (ts != nullptr) return fail(at + ": metadata events carry no ts");
      continue;
    }
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber) {
      return fail(at + " has no numeric ts");
    }
    if (ts->number < 0.0) return fail(at + " has negative ts");
    if (ts->number < last_ts) {
      return fail(at + " breaks timestamp monotonicity");
    }
    last_ts = ts->number;
    const JsonValue* dur = ev.find("dur");
    if (dur != nullptr) {
      if (dur->type != JsonValue::Type::kNumber || dur->number < 0.0) {
        return fail(at + " has negative or non-numeric dur");
      }
    }
  }
  return true;
}

}  // namespace navcpp::obs
