#include "obs/proc_trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "obs/chrome_trace.h"

namespace navcpp::obs {
namespace {

template <class T>
void put_raw(std::vector<std::byte>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T get_raw(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

const char* span_kind_name(std::uint8_t kind) {
  switch (static_cast<ProcSpanKind>(kind)) {
    case ProcSpanKind::kSerialize: return "serialize";
    case ProcSpanKind::kVerify: return "verify";
    case ProcSpanKind::kWait: return "wait";
    case ProcSpanKind::kTimerFire: return "timer";
    case ProcSpanKind::kVerifyDirect: return "verify (direct)";
  }
  return "span";
}

const char* span_kind_cat(std::uint8_t kind) {
  switch (static_cast<ProcSpanKind>(kind)) {
    case ProcSpanKind::kSerialize: return "comm";
    case ProcSpanKind::kVerify: return "comm";
    case ProcSpanKind::kWait: return "wait";
    case ProcSpanKind::kTimerFire: return "sched";
    case ProcSpanKind::kVerifyDirect: return "comm";
  }
  return "span";
}

struct Event {
  double ts = 0.0;
  int order = 0;
  std::string json;
};

constexpr int kWorkerPidBase = 100;

}  // namespace

void pack_spans(const std::vector<ProcSpan>& spans,
                std::vector<std::byte>& out) {
  out.reserve(out.size() + spans.size() * kProcSpanWireBytes);
  for (const ProcSpan& s : spans) {
    put_raw<std::uint64_t>(out, s.trace_id);
    put_raw<std::int64_t>(out, s.t0_ns);
    put_raw<std::int64_t>(out, s.t1_ns);
    put_raw<std::uint64_t>(out, s.token);
    put_raw<std::uint32_t>(out, s.pe);
    put_raw<std::uint8_t>(out, s.kind);
  }
}

std::vector<ProcSpan> unpack_spans(const std::byte* data, std::size_t n) {
  std::vector<ProcSpan> out;
  out.reserve(n / kProcSpanWireBytes);
  for (std::size_t off = 0; off + kProcSpanWireBytes <= n;
       off += kProcSpanWireBytes) {
    const std::byte* p = data + off;
    ProcSpan s;
    s.trace_id = get_raw<std::uint64_t>(p);
    s.t0_ns = get_raw<std::int64_t>(p + 8);
    s.t1_ns = get_raw<std::int64_t>(p + 16);
    s.token = get_raw<std::uint64_t>(p + 24);
    s.pe = get_raw<std::uint32_t>(p + 32);
    s.kind = get_raw<std::uint8_t>(p + 36);
    out.push_back(s);
  }
  return out;
}

void clock_update(WorkerClock* clock, const ClockSample& sample) {
  const std::int64_t rtt = sample.parent_recv_ns - sample.parent_send_ns;
  if (rtt < 0) return;  // nonsense sample (clock stepped?); ignore
  const std::int64_t midpoint =
      sample.parent_send_ns + (sample.parent_recv_ns - sample.parent_send_ns) / 2;
  if (clock->samples == 0 || rtt < clock->rtt_ns) {
    clock->offset_ns = sample.worker_ns - midpoint;
    clock->rtt_ns = rtt;
  }
  ++clock->samples;
}

double corrected_seconds(const WorkerClock& clock, std::int64_t worker_ns,
                         std::int64_t parent_epoch_ns) {
  const std::int64_t parent_ns = worker_ns - clock.offset_ns;
  return static_cast<double>(parent_ns - parent_epoch_ns) / 1e9;
}

std::vector<HopFlow> proc_trace_flows(const std::vector<WorkerLane>& lanes,
                                      std::int64_t parent_epoch_ns) {
  // trace id -> (send time on the source, receive time on the destination).
  struct Half {
    bool have_send = false, have_recv = false;
    bool direct = false;  ///< verify came off a mesh peer channel
    int src_pe = 0, dst_pe = 0;
    double send_s = 0.0, recv_s = 0.0;
  };
  std::map<std::uint64_t, Half> by_id;
  for (const WorkerLane& lane : lanes) {
    for (const ProcSpan& s : lane.spans) {
      if (s.trace_id == 0) continue;
      if (s.kind == static_cast<std::uint8_t>(ProcSpanKind::kSerialize)) {
        Half& h = by_id[s.trace_id];
        h.have_send = true;
        h.src_pe = lane.pe;
        h.send_s = corrected_seconds(lane.clock, s.t1_ns, parent_epoch_ns);
      } else if (s.kind == static_cast<std::uint8_t>(ProcSpanKind::kVerify) ||
                 s.kind ==
                     static_cast<std::uint8_t>(ProcSpanKind::kVerifyDirect)) {
        Half& h = by_id[s.trace_id];
        h.have_recv = true;
        h.direct =
            s.kind == static_cast<std::uint8_t>(ProcSpanKind::kVerifyDirect);
        h.dst_pe = lane.pe;
        h.recv_s = corrected_seconds(lane.clock, s.t0_ns, parent_epoch_ns);
      }
    }
  }
  std::vector<HopFlow> flows;
  for (const auto& [id, h] : by_id) {
    if (!h.have_send || !h.have_recv) continue;
    HopFlow f;
    f.trace_id = id;
    f.src_pe = h.src_pe;
    f.dst_pe = h.dst_pe;
    f.direct = h.direct;
    f.send_s = std::max(0.0, h.send_s);
    // Causal clamp: whatever the offset estimate did, a payload is never
    // received before it was sent.
    f.recv_s = std::max(f.send_s, std::max(0.0, h.recv_s));
    flows.push_back(f);
  }
  std::sort(flows.begin(), flows.end(), [](const HopFlow& a, const HopFlow& b) {
    if (a.send_s != b.send_s) return a.send_s < b.send_s;
    return a.trace_id < b.trace_id;
  });
  return flows;
}

std::string proc_trace_json(const std::vector<navp::TraceSpan>& parent_spans,
                            const std::vector<navp::TraceHop>& parent_hops,
                            const std::vector<WorkerLane>& lanes,
                            const std::vector<RecoveryTimeline>& recoveries,
                            const Snapshot* metrics,
                            const ProcTraceOptions& opts) {
  std::vector<Event> events;
  int order = 0;
  auto push = [&](double ts, std::string json) {
    events.push_back(Event{ts, order++, std::move(json)});
  };
  auto esc = [](const std::string& s) { return trace_json_escape(s); };

  int pe_count = opts.pe_count;
  double end_time = 0.0;
  for (const auto& s : parent_spans) {
    pe_count = std::max(pe_count, s.pe + 1);
    end_time = std::max(end_time, s.t1);
  }
  for (const auto& h : parent_hops) {
    pe_count = std::max(pe_count, std::max(h.src, h.dst) + 1);
    end_time = std::max(end_time, h.arrive);
  }
  for (const auto& lane : lanes) pe_count = std::max(pe_count, lane.pe + 1);

  // --- metadata lanes ---
  push(-1.0, "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"" + esc(opts.process_name) +
             " parent (PEs)\"}}");
  push(-1.0, "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"" + esc(opts.process_name) +
             " network\"}}");
  for (int pe = 0; pe < pe_count; ++pe) {
    push(-1.0, "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(pe) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":\"PE " +
               std::to_string(pe) + "\"}}");
  }
  for (const auto& lane : lanes) {
    const int pid = kWorkerPidBase + lane.pe;
    const std::string name =
        lane.label.empty() ? "worker pe " + std::to_string(lane.pe)
                           : lane.label;
    push(-1.0, "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
               ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
               esc(name) + "\"}}");
    push(-1.0, "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
               ",\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":"
               "\"scheduler\"}}");
    push(-1.0, "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
               ",\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":"
               "\"recovery\"}}");
  }

  std::map<std::pair<int, int>, int> channel_track;
  for (const auto& h : parent_hops) {
    channel_track.emplace(std::make_pair(h.src, h.dst), 0);
  }
  {
    int next = 0;
    for (auto& [ch, track] : channel_track) track = next++;
  }
  for (const auto& [ch, track] : channel_track) {
    push(-1.0, "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(track) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":\"ch " +
               std::to_string(ch.first) + "->" + std::to_string(ch.second) +
               "\"}}");
  }

  // --- parent spans and hops, exactly as chrome_trace_json ---
  for (const auto& s : parent_spans) {
    const bool compute = s.kind == navp::TraceSpan::Kind::kCompute;
    const std::string name =
        s.label.empty() ? (compute ? "compute" : "wait") : s.label;
    push(s.t0,
         "{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(s.pe) +
             ",\"ts\":" + us(s.t0) + ",\"dur\":" + us(s.t1 - s.t0) +
             ",\"name\":\"" + esc(name) + "\",\"cat\":\"" +
             (compute ? "compute" : "wait") + "\",\"args\":{\"agent\":" +
             std::to_string(s.agent) + "}}");
  }
  for (const auto& h : parent_hops) {
    const int track = channel_track.at({h.src, h.dst});
    push(h.depart,
         "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(track) +
             ",\"ts\":" + us(h.depart) + ",\"dur\":" + us(h.arrive - h.depart) +
             ",\"name\":\"agent " + std::to_string(h.agent) +
             "\",\"cat\":\"hop\",\"args\":{\"src\":" + std::to_string(h.src) +
             ",\"dst\":" + std::to_string(h.dst) + ",\"bytes\":" +
             std::to_string(h.bytes) + ",\"agent\":" +
             std::to_string(h.agent) + "}}");
  }

  // --- worker lanes: clock-corrected spans ---
  for (const auto& lane : lanes) {
    const int pid = kWorkerPidBase + lane.pe;
    for (const ProcSpan& s : lane.spans) {
      double t0 = corrected_seconds(lane.clock, s.t0_ns, opts.parent_epoch_ns);
      double t1 = corrected_seconds(lane.clock, s.t1_ns, opts.parent_epoch_ns);
      t0 = std::max(0.0, t0);
      t1 = std::max(t0, t1);
      end_time = std::max(end_time, t1);
      push(t0,
           "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
               ",\"tid\":0,\"ts\":" + us(t0) + ",\"dur\":" + us(t1 - t0) +
               ",\"name\":\"" + span_kind_name(s.kind) + "\",\"cat\":\"" +
               span_kind_cat(s.kind) + "\",\"args\":{\"trace\":" +
               std::to_string(s.trace_id) + ",\"token\":" +
               std::to_string(s.token) + "}}");
    }
  }

  // --- cross-process hop flow arrows ---
  for (const HopFlow& f : proc_trace_flows(lanes, opts.parent_epoch_ns)) {
    end_time = std::max(end_time, f.recv_s);
    const std::string id = std::to_string(f.trace_id);
    const char* name = f.direct ? "hop (direct)" : "hop";
    push(f.send_s,
         "{\"ph\":\"s\",\"id\":" + id + ",\"pid\":" +
             std::to_string(kWorkerPidBase + f.src_pe) + ",\"tid\":0,\"ts\":" +
             us(f.send_s) + ",\"name\":\"" + name + "\",\"cat\":\"hopflow\"}");
    push(f.recv_s,
         "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" + id + ",\"pid\":" +
             std::to_string(kWorkerPidBase + f.dst_pe) + ",\"tid\":0,\"ts\":" +
             us(f.recv_s) + ",\"name\":\"" + name + "\",\"cat\":\"hopflow\"}");
  }

  // --- recovery timelines: supervisor milestones + harvested flight ring ---
  for (const RecoveryTimeline& r : recoveries) {
    const int pid = kWorkerPidBase + r.pe;
    for (const auto& [when, what] : r.milestones) {
      const double ts = std::max(0.0, when);
      end_time = std::max(end_time, ts);
      push(ts, "{\"ph\":\"i\",\"pid\":" + std::to_string(pid) +
                   ",\"tid\":1,\"ts\":" + us(ts) + ",\"s\":\"t\",\"name\":\"" +
                   esc(what) + "\",\"cat\":\"recovery\"}");
    }
    if (!r.flight.events.empty()) {
      // The dead incarnation's clock model is the lane's: find it.
      WorkerClock clock;
      for (const auto& lane : lanes) {
        if (lane.pe == r.pe) clock = lane.clock;
      }
      const std::int64_t t0_ns = r.flight.events.front().t_ns;
      for (const FlightEvent& ev : r.flight.events) {
        const double ts = std::max(
            0.0, corrected_seconds(clock, ev.t_ns, opts.parent_epoch_ns));
        end_time = std::max(end_time, ts);
        push(ts, "{\"ph\":\"i\",\"pid\":" + std::to_string(pid) +
                     ",\"tid\":1,\"ts\":" + us(ts) +
                     ",\"s\":\"t\",\"name\":\"" +
                     esc(flight_describe(ev, t0_ns)) +
                     "\",\"cat\":\"flight\"}");
      }
    }
  }

  if (metrics != nullptr) {
    for (const auto& [key, value] : metrics->counters) {
      push(end_time,
           "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" + us(end_time) +
               ",\"name\":\"" + esc(key) + "\",\"args\":{\"value\":" +
               std::to_string(value) + "}}");
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  {
    bool first = true;
    auto kv = [&](const std::string& k, const std::string& v) {
      if (!first) os << ",";
      first = false;
      os << "\"" << esc(k) << "\":\"" << esc(v) << "\"";
    };
    kv("exporter", "navcpp_obs");
    kv("backend", "proc");
    kv("worker_lanes", std::to_string(lanes.size()));
    kv("recoveries", std::to_string(recoveries.size()));
    for (const auto& lane : lanes) {
      kv("clock_offset_ns{pe=" + std::to_string(lane.pe) + "}",
         std::to_string(lane.clock.offset_ns));
    }
    if (metrics != nullptr) {
      for (const auto& [key, value] : metrics->counters) {
        kv(key, std::to_string(value));
      }
      for (const auto& [key, value] : metrics->gauges) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        kv(key, buf);
      }
    }
  }
  os << "},\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n" << events[i].json;
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace navcpp::obs
