#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace navcpp::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  NAVCPP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(double v) noexcept {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels,
                               std::vector<double> bounds) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

namespace {

std::string bound_label(double bound) {
  std::ostringstream os;
  os << bound;
  return os.str();
}

}  // namespace

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, c] : counters_) {
    snap.counters[key] = c->value();
  }
  for (const auto& [key, g] : gauges_) {
    snap.gauges[key] = g->value();
  }
  for (const auto& [key, h] : histograms_) {
    const auto buckets = h->bucket_counts();
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      snap.counters[key + "/le_" + bound_label(bounds[i])] = buckets[i];
    }
    snap.counters[key + "/overflow"] = buckets[bounds.size()];
    snap.counters[key + "/count"] = h->count();
    snap.gauges[key + "/sum"] = h->sum();
  }
  return snap;
}

Snapshot Snapshot::delta(const Snapshot& earlier) const {
  Snapshot out;
  for (const auto& [key, value] : counters) {
    const std::uint64_t before = earlier.counter_or(key);
    out.counters[key] = value >= before ? value - before : 0;
  }
  out.gauges = gauges;
  return out;
}

std::string Snapshot::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : counters) {
    os << key << " = " << value << "\n";
  }
  for (const auto& [key, value] : gauges) {
    os << key << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace navcpp::obs
