// Crash flight recorder for the process-per-PE backend.
//
// Each worker process keeps a bounded ring of recent scheduler events —
// frames in/out, seq high-water, checkpoints, dedup drops — in a small
// file-backed mmap.  Because the pages are MAP_SHARED, whatever the worker
// managed to record is durable the instant record() returns: a SIGKILL (which
// no handler can intercept) loses nothing already written.  The supervising
// parent harvests the file when it detects the death and embeds the decoded
// timeline in the merged trace, so every recovery drill yields a readable
// post-mortem: what the worker last saw -> death detected -> backoff ->
// respawn -> replay.
//
// A respawned worker reopens the same file and keeps appending: the ring is
// continuous across incarnations (the header survives), which is exactly
// what you want when reading a multi-respawn drill.
//
// File layout (host-endian, one host by construction):
//   FlightHeader            — magic/version/capacity/next/pe
//   capacity * FlightEvent  — fixed slots, slot = seqno % capacity
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace navcpp::obs {

enum class FlightKind : std::uint8_t {
  kRunStart = 1,     ///< kStart handled; a = run id, b = last_seq high-water
  kConfig = 2,       ///< kConfig handled; a = flag bits, b = stats interval ns
  kFrameIn = 3,      ///< a data/control frame processed; a = seq, b = timers
  kFrameOut = 4,     ///< hop payload shipped; a = dst pe, b = payload bytes
  kDedupDrop = 5,    ///< replayed seq dropped; a = frame seq, b = high-water
  kCheckpointSave = 6,  ///< a = payload bytes
  kCheckpointLoad = 7,  ///< a = bytes returned, b = 1 if one existed
  kQuiesce = 8,      ///< quiesce acked; a = timers canceled
  kShutdown = 9,     ///< clean kShutdown received
};

/// One ring slot.  Fixed-size and trivially copyable: it is written straight
/// into the mmap and read back raw by the harvester.
struct FlightEvent {
  std::int64_t t_ns = 0;        ///< worker steady-clock ns at record()
  std::uint64_t token = 0;      ///< action token the event is about (0: none)
  std::uint64_t a = 0;          ///< kind-specific (see FlightKind)
  std::uint64_t b = 0;          ///< kind-specific
  std::uint8_t kind = 0;        ///< FlightKind
  std::uint8_t frame_type = 0;  ///< net::WireType byte for kFrameIn/Out, else 0
  std::uint8_t pad[6] = {};
};
static_assert(sizeof(FlightEvent) == 40, "ring slot layout is part of the format");

/// Writer side, lives in the worker process.  All operations are wait-free
/// single-writer stores into the mapping; there is no flush to forget.
class FlightRecorder {
 public:
  /// Open (or create, or re-open after a respawn) the ring at `path`.
  /// Returns nullptr and fills `error` if the file cannot be mapped — the
  /// caller should run un-recorded rather than die over telemetry.
  static std::unique_ptr<FlightRecorder> open(const std::string& path,
                                              std::uint32_t pe,
                                              std::uint32_t capacity,
                                              std::string* error);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightKind kind, std::uint8_t frame_type, std::uint64_t token,
              std::uint64_t a, std::uint64_t b);

  std::uint64_t recorded() const;  ///< total events ever recorded (not capped)

 private:
  FlightRecorder() = default;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
};

/// Harvested ring, oldest event first.  `total` counts everything ever
/// recorded; events.size() is min(total, capacity).
struct FlightLog {
  std::uint32_t pe = 0;
  std::uint64_t total = 0;
  std::vector<FlightEvent> events;
};

/// Read a ring file (parent side, after the worker died or quiesced).
/// Returns false and fills `error` on a missing/corrupt file.
bool flight_read(const std::string& path, FlightLog* out, std::string* error);

/// One-line human rendering of an event ("+12.345ms frame-in kHop seq=41
/// timers=2"), used by the CLI timeline printer and the merged trace.
/// `t0_ns` anchors the relative timestamp (pass the first event's t_ns).
std::string flight_describe(const FlightEvent& event, std::int64_t t0_ns);

}  // namespace navcpp::obs
