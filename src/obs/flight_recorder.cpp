#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace navcpp::obs {
namespace {

constexpr std::uint64_t kFlightMagic = 0x4e41564643524543ULL;  // "NAVFCREC"
constexpr std::uint32_t kFlightVersion = 1;

struct FlightHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t capacity = 0;
  std::uint64_t next = 0;  ///< total events ever recorded
  std::uint32_t pe = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(FlightHeader) == 32, "header layout is part of the format");

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* wire_type_name(std::uint8_t t) {
  // Mirrors net::WireType; kept as a plain table so obs never links net.
  switch (t) {
    case 1: return "kHello";
    case 2: return "kStart";
    case 3: return "kPost";
    case 4: return "kTimer";
    case 5: return "kSend";
    case 6: return "kHop";
    case 7: return "kGrant";
    case 8: return "kQuiesce";
    case 9: return "kQuiesceAck";
    case 10: return "kStatus";
    case 11: return "kStatusReply";
    case 12: return "kShutdown";
    case 13: return "kPing";
    case 14: return "kPong";
    case 15: return "kCheckpointSave";
    case 16: return "kCheckpointLoad";
    case 17: return "kCheckpointData";
    case 18: return "kConfig";
    case 19: return "kStatsDelta";
    case 20: return "kSpans";
    default: return "?";
  }
}

}  // namespace

std::unique_ptr<FlightRecorder> FlightRecorder::open(const std::string& path,
                                                     std::uint32_t pe,
                                                     std::uint32_t capacity,
                                                     std::string* error) {
  if (capacity == 0) capacity = 1;
  const std::size_t want =
      sizeof(FlightHeader) + static_cast<std::size_t>(capacity) * sizeof(FlightEvent);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0600);
  if (fd < 0) {
    if (error) *error = "open " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  struct stat st {};
  const bool fresh = ::fstat(fd, &st) != 0 ||
                     static_cast<std::size_t>(st.st_size) != want;
  if (fresh && ::ftruncate(fd, static_cast<off_t>(want)) != 0) {
    if (error) *error = "ftruncate " + path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  void* map = ::mmap(nullptr, want, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    if (error) *error = "mmap " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  auto* header = static_cast<FlightHeader*>(map);
  if (header->magic != kFlightMagic || header->version != kFlightVersion ||
      header->capacity != capacity) {
    // First use (or a stale/foreign file): initialize the ring.  A respawned
    // worker reopening its predecessor's ring hits the branch above instead
    // and keeps appending.
    std::memset(map, 0, want);
    header->magic = kFlightMagic;
    header->version = kFlightVersion;
    header->capacity = capacity;
    header->next = 0;
  }
  header->pe = pe;
  auto rec = std::unique_ptr<FlightRecorder>(new FlightRecorder());
  rec->map_ = map;
  rec->map_len_ = want;
  return rec;
}

FlightRecorder::~FlightRecorder() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

void FlightRecorder::record(FlightKind kind, std::uint8_t frame_type,
                            std::uint64_t token, std::uint64_t a,
                            std::uint64_t b) {
  auto* header = static_cast<FlightHeader*>(map_);
  auto* slots = reinterpret_cast<FlightEvent*>(
      static_cast<std::byte*>(map_) + sizeof(FlightHeader));
  FlightEvent& slot = slots[header->next % header->capacity];
  slot.t_ns = steady_ns();
  slot.token = token;
  slot.a = a;
  slot.b = b;
  slot.kind = static_cast<std::uint8_t>(kind);
  slot.frame_type = frame_type;
  // The slot must be fully written before the count admits it: a harvester
  // racing a live writer must never read a half-filled slot as valid.
  ++header->next;
}

std::uint64_t FlightRecorder::recorded() const {
  return static_cast<const FlightHeader*>(map_)->next;
}

bool flight_read(const std::string& path, FlightLog* out, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error) *error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  FlightHeader header{};
  ssize_t n = ::pread(fd, &header, sizeof(header), 0);
  if (n != static_cast<ssize_t>(sizeof(header)) ||
      header.magic != kFlightMagic || header.version != kFlightVersion ||
      header.capacity == 0) {
    if (error) *error = path + ": not a flight-recorder ring";
    ::close(fd);
    return false;
  }
  std::vector<FlightEvent> slots(header.capacity);
  n = ::pread(fd, slots.data(),
              slots.size() * sizeof(FlightEvent), sizeof(FlightHeader));
  ::close(fd);
  if (n != static_cast<ssize_t>(slots.size() * sizeof(FlightEvent))) {
    if (error) *error = path + ": truncated ring";
    return false;
  }
  out->pe = header.pe;
  out->total = header.next;
  out->events.clear();
  const std::uint64_t kept =
      header.next < header.capacity ? header.next : header.capacity;
  // Oldest first: the ring wraps at `next % capacity`.
  const std::uint64_t first = header.next - kept;
  for (std::uint64_t i = 0; i < kept; ++i) {
    out->events.push_back(slots[(first + i) % header.capacity]);
  }
  return true;
}

std::string flight_describe(const FlightEvent& event, std::int64_t t0_ns) {
  char when[32];
  std::snprintf(when, sizeof(when), "%+.3fms",
                static_cast<double>(event.t_ns - t0_ns) / 1e6);
  std::string s = when;
  auto num = [](std::uint64_t v) { return std::to_string(v); };
  switch (static_cast<FlightKind>(event.kind)) {
    case FlightKind::kRunStart:
      s += " run-start run=" + num(event.a) + " seq-high-water=" + num(event.b);
      break;
    case FlightKind::kConfig:
      s += " config flags=" + num(event.a) + " stats-interval-ns=" + num(event.b);
      break;
    case FlightKind::kFrameIn:
      s += " frame-in ";
      s += wire_type_name(event.frame_type);
      s += " token=" + num(event.token) + " seq=" + num(event.a) +
           " timers=" + num(event.b);
      break;
    case FlightKind::kFrameOut:
      s += " frame-out ";
      s += wire_type_name(event.frame_type);
      s += " token=" + num(event.token) + " dst=" + num(event.a) +
           " bytes=" + num(event.b);
      break;
    case FlightKind::kDedupDrop:
      s += " dedup-drop seq=" + num(event.a) + " high-water=" + num(event.b);
      break;
    case FlightKind::kCheckpointSave:
      s += " checkpoint-save bytes=" + num(event.a);
      break;
    case FlightKind::kCheckpointLoad:
      s += " checkpoint-load bytes=" + num(event.a) +
           (event.b != 0 ? " (present)" : " (none)");
      break;
    case FlightKind::kQuiesce:
      s += " quiesce timers-canceled=" + num(event.a);
      break;
    case FlightKind::kShutdown:
      s += " shutdown";
      break;
    default:
      s += " event kind=" + num(event.kind);
      break;
  }
  return s;
}

}  // namespace navcpp::obs
