// Run-wide observability: a lock-cheap metrics registry.
//
// The paper's argument is about *where time goes* (compute vs communication
// vs pipeline-fill idle), so every layer of the runtime reports here:
// navp::Runtime (hops, injects, event waits, checkpoint commits), both
// Engine backends (actions executed, queue depths, virtual/wall time),
// net::ReliableChannel (retransmits, dup-drops, acks), and the fault/chaos
// decorators (injected faults, deferrals).
//
// Design:
//  * Metric objects (Counter / Gauge / Histogram) are plain atomics; the
//    hot path is a relaxed fetch_add with no lock.  The registry mutex is
//    taken only on first lookup of a (name, labels) pair and on snapshot —
//    instrumented code resolves its metric pointers once and caches them.
//  * Label dimensions are pre-rendered strings ("pe=3", "ch=0->1",
//    "agent=7"); a metric's identity is "name{labels}".  Helpers below
//    build the conventional dimensions.
//  * Snapshot / delta semantics: snapshot() captures every value under the
//    registry lock; Snapshot::delta(earlier) subtracts counters so a
//    multi-run sweep reports per-run numbers instead of cumulative ones
//    (the reset-across-runs bug class PR 2 and PR 3 both shipped).
//  * Metric objects are never deleted while the registry lives, so cached
//    pointers stay valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace navcpp::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (virtual time, queue depth, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with running count and sum.  record() is lock-free.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds in ascending order; values above
  /// the last bound land in the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void record(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Conventional label dimensions.
inline std::string pe_label(int pe) { return "pe=" + std::to_string(pe); }
inline std::string channel_label(int src, int dst) {
  return "ch=" + std::to_string(src) + "->" + std::to_string(dst);
}
inline std::string agent_label(std::uint64_t id) {
  return "agent=" + std::to_string(id);
}

/// Point-in-time capture of a registry.  Keys are "name{labels}" (labels
/// braces omitted when empty); histograms expand to "<key>/le_<bound>",
/// "<key>/overflow", "<key>/count" counters and a "<key>/sum" gauge.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;

  /// Per-run view: counters become (this - earlier), missing keys read as
  /// zero (and subtraction clamps at zero so a reset between snapshots
  /// cannot produce a wrapped giant); gauges keep this snapshot's value.
  Snapshot delta(const Snapshot& earlier) const;

  std::uint64_t counter_or(const std::string& key,
                           std::uint64_t fallback = 0) const {
    auto it = counters.find(key);
    return it == counters.end() ? fallback : it->second;
  }

  bool empty() const { return counters.empty() && gauges.empty(); }

  /// Deterministic "key = value" lines, sorted by key; zero-valued counters
  /// are kept (a zero is information in a fault report).
  std::string to_string() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  The returned reference is valid for the registry's
  /// lifetime; call once and cache the pointer on hot paths.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  /// `bounds` are used only on first creation of the (name, labels) pair.
  Histogram& histogram(const std::string& name, const std::string& labels,
                       std::vector<double> bounds);

  Snapshot snapshot() const;
  std::string to_string() const { return snapshot().to_string(); }

 private:
  static std::string key_of(const std::string& name,
                            const std::string& labels) {
    return labels.empty() ? name : name + "{" + labels + "}";
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Scoped default registry (thread-local, like mm::MmTraceScope): while a
/// MetricsScope is alive, every navp::Runtime constructed on this thread
/// reports into the given registry.  This is how the harness suites and the
/// profile subcommand attach metrics to programs that build their Runtime
/// internally.
class MetricsScope {
 public:
  explicit MetricsScope(Registry* registry) : previous_(current_) {
    current_ = registry;
  }
  ~MetricsScope() { current_ = previous_; }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  static Registry* current() { return current_; }

 private:
  Registry* previous_;
  static inline thread_local Registry* current_ = nullptr;
};

}  // namespace navcpp::obs
