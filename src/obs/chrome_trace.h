// Chrome trace-event JSON export (chrome://tracing / Perfetto "JSON trace
// format").  Feeds from navp::TraceRecorder snapshots plus an optional
// metrics Snapshot, so a run can be inspected on the usual timeline UI:
// pid 0 carries one track per PE (compute/wait spans), pid 1 carries one
// track per directed channel (hop transits), and every metrics counter is
// emitted both as a trailing "C" counter event and under "otherData".
#pragma once

#include <string>
#include <vector>

#include "navp/trace.h"
#include "obs/metrics.h"

namespace navcpp::obs {

/// JSON string-body escaping applied to every string this module emits
/// (span labels, metric keys with arbitrary label values, otherData
/// key/values).  Exposed so sibling emitters (obs/proc_trace.h) share one
/// definition and so tests can pin the guarantee directly: quotes,
/// backslashes, and control characters never reach the output raw.
std::string trace_json_escape(const std::string& s);

struct ChromeTraceOptions {
  std::string process_name = "navcpp";
  /// Number of PE tracks to name in metadata; 0 derives it from the spans.
  int pe_count = 0;
};

/// Serialize a run to Chrome trace-event JSON.  Timestamps are engine
/// seconds scaled to microseconds, events sorted by timestamp; output is
/// deterministic for identical inputs (fixed formatting, sorted metrics).
std::string chrome_trace_json(const std::vector<navp::TraceSpan>& spans,
                              const std::vector<navp::TraceHop>& hops,
                              const Snapshot* metrics = nullptr,
                              const ChromeTraceOptions& opts = {});

/// Structural validation used by tests and `navcpp_cli profile --check`:
/// the string parses as JSON, has a non-empty `traceEvents` array, every
/// event carries a `ph`, timestamps are non-negative and non-decreasing in
/// array order, and durations are non-negative.  On failure returns false
/// and (if `error` is non-null) a human-readable reason.
bool validate_chrome_trace(const std::string& json,
                           std::string* error = nullptr);

}  // namespace navcpp::obs
