// Cross-process trace merging for the process-per-PE backend.
//
// The parent's navp::TraceRecorder sees only its own half of a proc run:
// actions executing in the parent, hops as parent-relative depart/arrive.
// The worker processes hold the other half — serialize/verify/wait spans
// recorded against each worker's own steady clock and shipped over the wire
// as packed ProcSpan records (kSpans frames).  This module turns the two
// halves into one Chrome-trace/Perfetto file:
//
//   pid 0         parent PE lanes (compute/wait spans, as chrome_trace.h)
//   pid 1         parent channel lanes (hop transits)
//   pid 100+pe    one lane per worker process (serialize/verify/wait spans,
//                 recovery instants, flight-recorder events)
//
// Worker timestamps are raw steady-clock nanoseconds from another process.
// They are mapped onto the parent's run-relative timeline with a per-worker
// clock model estimated from the kPing/kPong heartbeat piggyback: the parent
// records its steady ns at ping send and receive, the worker echoes its own
// steady ns in the pong, and offset = worker_ns - (send+recv)/2 — classic
// NTP, with the minimum-RTT sample winning because it bounds the error the
// tightest.  Cross-process hop flow arrows ("s"/"f" events) connect the
// serialize span on the source worker to the verify span on the destination
// worker via the frame's trace id; after correction the merger clamps each
// arrow causally (finish never precedes start) so clock noise can never draw
// time running backwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "navp/trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace navcpp::obs {

// --- worker-side span records (the wire payload of kSpans frames) ----------

enum class ProcSpanKind : std::uint8_t {
  kSerialize = 1,  ///< kSend handling: materialize + checksum + ship payload
  kVerify = 2,     ///< kHop handling: checksum verify + grant
  kWait = 3,       ///< blocked in poll() with nothing to do
  kTimerFire = 4,  ///< a due timer granted
  kVerifyDirect = 5,  ///< kHop off a mesh peer channel: verify + grant (the
                      ///< payload skipped the parent relay)
};

/// One worker-side span.  Timestamps are the worker's own steady-clock ns;
/// trace_id is the parent-stamped frame id (0 for wait spans, which belong
/// to no frame).
struct ProcSpan {
  std::uint64_t trace_id = 0;
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::uint64_t token = 0;
  std::uint32_t pe = 0;
  std::uint8_t kind = 0;  ///< ProcSpanKind
};

/// Packed wire size of one ProcSpan (no struct padding crosses the wire).
constexpr std::size_t kProcSpanWireBytes = 8 + 8 + 8 + 8 + 4 + 1;

/// Append `spans` to `out` in the packed wire layout (kSpans payload).
void pack_spans(const std::vector<ProcSpan>& spans,
                std::vector<std::byte>& out);

/// Decode a packed kSpans payload.  Trailing partial records are dropped
/// (a torn flush is possible around a worker death).
std::vector<ProcSpan> unpack_spans(const std::byte* data, std::size_t n);

/// Bounded span store, worker side.  push() refuses (and counts) once full;
/// the worker flushes it as a kSpans frame on the stats tick and before the
/// quiesce ack, so a healthy run never fills it.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::size_t capacity = 8192) : capacity_(capacity) {}

  bool push(const ProcSpan& span) {
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    spans_.push_back(span);
    return true;
  }

  bool empty() const { return spans_.empty(); }
  std::size_t size() const { return spans_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  std::vector<ProcSpan> drain() {
    std::vector<ProcSpan> out;
    out.swap(spans_);
    return out;
  }

  void clear() {
    spans_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<ProcSpan> spans_;
  std::uint64_t dropped_ = 0;
};

// --- clock-offset estimation -----------------------------------------------

/// One heartbeat round-trip observation (all steady-clock ns).
struct ClockSample {
  std::int64_t parent_send_ns = 0;  ///< parent clock at kPing send
  std::int64_t parent_recv_ns = 0;  ///< parent clock at kPong receive
  std::int64_t worker_ns = 0;       ///< worker clock, echoed in kPong.arg
};

/// Per-worker clock model: worker_ns ~= parent_ns + offset_ns, with rtt_ns
/// bounding the estimation error of the retained (minimum-RTT) sample.
struct WorkerClock {
  std::int64_t offset_ns = 0;
  std::int64_t rtt_ns = 0;
  int samples = 0;
};

/// Fold one heartbeat observation into the model.  The NTP midpoint
/// estimate offset = worker - (send+recv)/2 is kept only when this sample's
/// round trip beats the best seen so far (shorter RTT = tighter bound).
void clock_update(WorkerClock* clock, const ClockSample& sample);

/// Map a worker steady-clock timestamp onto the parent's run-relative
/// timeline (seconds since `parent_epoch_ns`, the parent clock at run
/// start).  With zero samples the offset is 0 — correct on one host, where
/// every process shares the steady clock.
double corrected_seconds(const WorkerClock& clock, std::int64_t worker_ns,
                         std::int64_t parent_epoch_ns);

// --- merger inputs ----------------------------------------------------------

/// Everything the parent harvested from (and about) one worker process.
struct WorkerLane {
  int pe = 0;
  std::string label;  ///< lane name, e.g. "worker pe 2 (pid 4711)"
  WorkerClock clock;
  std::vector<ProcSpan> spans;
};

/// One supervised recovery, parent side: milestones are (run-relative
/// seconds, description) in the order the supervisor hit them — death
/// detected, backoff, respawn, replay — plus the flight-recorder ring
/// harvested from the dead incarnation.
struct RecoveryTimeline {
  int pe = 0;
  int incarnation = 0;  ///< respawn count after this recovery
  std::vector<std::pair<double, std::string>> milestones;
  FlightLog flight;
};

/// One cross-process hop flow arrow, already clock-corrected and causally
/// clamped (recv_s >= send_s).  Exposed for tests; proc_trace_json draws
/// these as "s"/"f" flow events.
struct HopFlow {
  std::uint64_t trace_id = 0;
  int src_pe = 0;
  int dst_pe = 0;
  double send_s = 0.0;  ///< end of the serialize span on the source worker
  double recv_s = 0.0;  ///< start of the verify span on the destination
  /// True when the verify span was kVerifyDirect: the payload traveled a
  /// direct worker<->worker mesh channel, not the parent relay.
  bool direct = false;
};

/// Pair serialize spans with verify spans by trace id across `lanes` and
/// return the corrected, causally-ordered arrows (sorted by send time, then
/// trace id).
std::vector<HopFlow> proc_trace_flows(const std::vector<WorkerLane>& lanes,
                                      std::int64_t parent_epoch_ns);

struct ProcTraceOptions {
  std::string process_name = "navcpp";
  int pe_count = 0;  ///< 0 derives it from spans/lanes
  /// Parent steady-clock ns at run start; anchors every corrected worker
  /// timestamp.  Run-relative parent span times need no anchor.
  std::int64_t parent_epoch_ns = 0;
};

/// Serialize a merged proc run to Chrome trace-event JSON.  Superset of
/// chrome_trace_json: parent spans/hops/metrics exactly as there, plus one
/// lane per worker process, hop flow arrows, recovery-milestone and
/// flight-recorder instants.  Always passes validate_chrome_trace by
/// construction (corrected timestamps are clamped non-negative and the
/// event stream is globally sorted).
std::string proc_trace_json(const std::vector<navp::TraceSpan>& parent_spans,
                            const std::vector<navp::TraceHop>& parent_hops,
                            const std::vector<WorkerLane>& lanes,
                            const std::vector<RecoveryTimeline>& recoveries,
                            const Snapshot* metrics = nullptr,
                            const ProcTraceOptions& opts = {});

}  // namespace navcpp::obs
