#include "navtool/planner.h"

#include <memory>
#include <sstream>
#include <utility>

#include "navp/task.h"
#include "support/error.h"

namespace navcpp::navtool {

namespace {

/// Event family for planned cross-thread dependences: E(t, s) = "S(t, s)
/// has executed".
navp::EventKey done_event(int t, int s) {
  return navp::EventKey{21, t, s};
}

}  // namespace

Plan plan_nest(const NestSpec& spec, const mm::Dist1D& dist) {
  NAVCPP_CHECK(spec.threads >= 1 && spec.steps >= 1,
               "plan_nest: empty iteration space");
  NAVCPP_CHECK(dist.nb() == spec.steps,
               "plan_nest: distribution must cover the s dimension");

  std::ostringstream why;
  Plan plan;

  // --- Step 1: DSC is always available. --------------------------------
  why << "1. DSC Transformation: distribute the s dimension ("
      << spec.steps << " steps over " << dist.pes()
      << " PEs) and insert hop(owner(s)) into the sequential nest.\n";

  // --- Step 2: may the t-iterations overlap? ----------------------------
  const bool can_pipeline =
      spec.rows_independent || spec.needs_previous_thread_same_step;
  if (spec.rows_independent) {
    why << "2. Pipelining Transformation: S(t,*) are mutually independent; "
           "one carrier per t, staggered by injection order.\n";
  } else if (spec.needs_previous_thread_same_step) {
    why << "2. Pipelining Transformation: S(t,s) depends on S(t-1,s); the "
           "carriers may still overlap one PE apart, guarded by "
           "waitEvent(E(t-1,s)) / signalEvent(E(t,s)).\n";
  } else {
    why << "2. Pipelining Transformation: NOT applicable — the t-"
           "iterations conflict and no event guard was declared; the "
           "program stays DSC.\n";
  }

  // --- Step 3: may the carriers enter at different PEs? ------------------
  const bool can_phase_shift = can_pipeline && spec.start_rotatable &&
                               !spec.needs_previous_thread_same_step;
  if (can_phase_shift) {
    why << "3. Phase-shifting Transformation: each thread's s-loop is "
           "rotatable, so thread t enters at step (steps-1-t) mod steps "
           "and full parallelism is reached.\n";
  } else if (can_pipeline) {
    if (!spec.start_rotatable) {
      why << "3. Phase-shifting: NOT applicable — the s-loop is not "
             "rotatable (each thread must start at s = 0).\n";
    } else {
      why << "3. Phase-shifting: NOT applicable — the cross-thread "
             "same-step dependence pins every thread behind its "
             "predecessor.\n";
    }
  }

  plan.transformation = can_phase_shift  ? Transformation::kPhaseShifted
                        : can_pipeline   ? Transformation::kPipelined
                                         : Transformation::kDsc;
  plan.rationale = why.str();

  // --- Emit the itineraries. ---------------------------------------------
  const bool events = spec.needs_previous_thread_same_step;
  if (plan.transformation == Transformation::kDsc) {
    // One thread executes everything, t-major, s-ascending.
    ThreadPlan carrier;
    carrier.thread = 0;
    carrier.origin_pe = dist.owner(0);
    for (int t = 0; t < spec.threads; ++t) {
      for (int s = 0; s < spec.steps; ++s) {
        carrier.steps.push_back(PlannedStep{dist.owner(s), s, false, false});
      }
    }
    plan.threads.push_back(std::move(carrier));
    return plan;
  }

  for (int t = 0; t < spec.threads; ++t) {
    ThreadPlan thread;
    thread.thread = t;
    const int rotation =
        plan.transformation == Transformation::kPhaseShifted
            ? ((spec.steps - 1 - t) % spec.steps + spec.steps) % spec.steps
            : 0;
    thread.origin_pe = dist.owner(rotation);
    for (int k = 0; k < spec.steps; ++k) {
      const int s = (rotation + k) % spec.steps;
      PlannedStep step;
      step.pe = dist.owner(s);
      step.step = s;
      step.wait_prev = events && t > 0;
      step.signal_done = events && t + 1 < spec.threads;
      thread.steps.push_back(step);
    }
    plan.threads.push_back(std::move(thread));
  }
  return plan;
}

namespace {

struct InterpreterShared {
  const Plan* plan;
  const NestSpec* spec;
  const StatementBody* body;
};

navp::Mission planned_thread(navp::Ctx ctx, const InterpreterShared* shared,
                             std::size_t thread_index) {
  const ThreadPlan& thread = shared->plan->threads[thread_index];
  for (const PlannedStep& step : thread.steps) {
    co_await ctx.hop(step.pe, shared->spec->payload_bytes);
    if (step.wait_prev) {
      co_await ctx.wait_event(done_event(thread.thread - 1, step.step));
    }
    (*shared->body)(ctx, thread.thread, step.step);
    if (step.signal_done) {
      ctx.signal_event(done_event(thread.thread, step.step));
    }
  }
}

}  // namespace

ExecutionStats execute_plan(machine::Engine& engine, const Plan& plan,
                            const NestSpec& spec, const StatementBody& body,
                            const RuntimeHook& setup,
                            const RuntimeHook& teardown) {
  navp::Runtime rt(engine);
  if (setup) setup(rt);
  const InterpreterShared shared{&plan, &spec, &body};
  for (std::size_t i = 0; i < plan.threads.size(); ++i) {
    rt.inject(plan.threads[i].origin_pe,
              "planned(" + std::to_string(plan.threads[i].thread) + ")",
              planned_thread, &shared, i);
  }
  rt.run();
  if (teardown) teardown(rt);
  ExecutionStats stats;
  stats.seconds = engine.finish_time();
  stats.hops = rt.hop_count();
  stats.agents = rt.agents_completed();
  return stats;
}

}  // namespace navcpp::navtool
