// navtool: a mechanical planner for the NavP transformations — the paper's
// future-work claim ("The NavP transformations are at least partially
// automatable.  Building tools to automate them is part of our future
// work.") made executable.
//
// Input: an abstract two-level loop nest
//
//     for t in 0..threads-1:          // the "carrier" dimension
//       for s in 0..steps-1:          // the spatial dimension, distributed
//         S(t, s)
//
// plus its dependence facts (is S(t,*) independent across t?  may a
// thread's s-itinerary start anywhere, i.e. is the s-loop a rotatable
// reduction?  does S(t,s) need S(t-1,s) first?).  The planner applies the
// paper's transformations exactly as section 2 prescribes:
//
//   1. DSC Transformation        — always legal: one computation chases
//                                  the distributed data in s order.
//   2. Pipelining Transformation — legal when the t-iterations can overlap
//                                  (independent rows, or a cross-thread
//                                  chain guarded by events).
//   3. Phase-shifting            — legal when additionally each thread may
//                                  enter the pipeline at its own PE
//                                  (rotatable starts, no cross-thread
//                                  same-step dependence).
//
// Output: the chosen transformation, one itinerary per thread (which PE to
// hop to for each step, with event waits/signals where the dependence
// requires them), and a human-readable derivation.  An interpreter
// (execute_plan) runs any plan on a machine::Engine with a user-supplied
// statement body, so a planned program is a *runnable* program.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "machine/engine.h"
#include "mm/common.h"
#include "navp/runtime.h"

namespace navcpp::navtool {

/// Dependence summary of the loop nest (the facts a user — or one day a
/// compiler front end — must establish about S).
struct NestSpec {
  int threads = 1;  ///< extent of the carrier dimension t
  int steps = 1;    ///< extent of the spatial dimension s

  /// Bytes of private state a thread carries between PEs (agent payload).
  std::size_t payload_bytes = 0;
  /// Modeled compute cost of one S(t, s) on the testbed.
  double step_cost_seconds = 0.0;

  /// S(t, s) never reads or writes state touched by S(t', s') for t' != t
  /// (other than the PE-local data it owns per s).
  bool rows_independent = false;
  /// The s-loop of each thread may be rotated: executing s in the order
  /// k, k+1, ..., steps-1, 0, ..., k-1 is equivalent for every k (true
  /// for commutative-associative accumulations like C(t,s) += f(t,s)).
  bool start_rotatable = false;
  /// S(t, s) must observe the completion of S(t-1, s) (a cross-thread
  /// sweep chain, like successive Jacobi sweeps).
  bool needs_previous_thread_same_step = false;
};

/// The transformation the planner settled on.
enum class Transformation { kDsc, kPipelined, kPhaseShifted };

inline const char* to_string(Transformation t) {
  switch (t) {
    case Transformation::kDsc:
      return "DSC";
    case Transformation::kPipelined:
      return "pipelined";
    case Transformation::kPhaseShifted:
      return "phase-shifted";
  }
  return "?";
}

/// One stop of one thread's itinerary.
struct PlannedStep {
  int pe = 0;           ///< where to hop before executing
  int step = 0;         ///< the s index to execute there
  bool wait_prev = false;    ///< wait E(t-1, s) before executing
  bool signal_done = false;  ///< signal E(t, s) after executing
};

/// One migrating thread of the planned program.
struct ThreadPlan {
  int thread = 0;
  int origin_pe = 0;  ///< injection PE
  std::vector<PlannedStep> steps;
};

struct Plan {
  Transformation transformation = Transformation::kDsc;
  std::vector<ThreadPlan> threads;
  std::string rationale;  ///< the derivation, step by step
};

/// Apply the transformations mechanically; `dist` maps s to its owner PE.
Plan plan_nest(const NestSpec& spec, const mm::Dist1D& dist);

/// The statement body: executes S(t, s) on the PE owning s.  `ctx` gives
/// access to that PE's node variables; the body must charge its own
/// compute via ctx.work()/compute() (the planner's step_cost_seconds is
/// advisory for the body to use).
using StatementBody = std::function<void(navp::Ctx& ctx, int t, int s)>;

struct ExecutionStats {
  double seconds = 0.0;
  std::uint64_t hops = 0;
  std::uint64_t agents = 0;
};

/// Prepares the runtime before the planned agents start (install node
/// variables, pre-signal events) and collects results afterwards.
using RuntimeHook = std::function<void(navp::Runtime&)>;

/// Run a plan on `engine`.  `setup` runs before injection, `teardown`
/// after completion (both optional).  Returns finish time and statistics.
ExecutionStats execute_plan(machine::Engine& engine, const Plan& plan,
                            const NestSpec& spec, const StatementBody& body,
                            const RuntimeHook& setup = {},
                            const RuntimeHook& teardown = {});

}  // namespace navcpp::navtool
