// The discrete-event queue at the heart of SimMachine.
//
// Determinism: events are ordered by (time, sequence number), where the
// sequence number is assigned at schedule() time.  Two runs that schedule
// the same events in the same order therefore execute them in the same
// order, making simulated experiments exactly reproducible.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.h"
#include "support/move_function.h"

namespace navcpp::sim {

class EventQueue {
 public:
  /// Schedule `action` to run at virtual time `when` (>= 0).
  void schedule(Time when, support::MoveFunction action) {
    heap_.push(Entry{when, next_seq_++, std::move(action)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event.  Precondition: !empty().
  Time next_time() const { return heap_.top().when; }

  /// Pop and return the earliest event's action, advancing nothing else.
  /// Precondition: !empty().
  support::MoveFunction pop(Time* when_out = nullptr) {
    // std::priority_queue::top() is const; we need to move the action out.
    // Entry's action is declared mutable for exactly this purpose.
    Entry& top = const_cast<Entry&>(heap_.top());
    if (when_out != nullptr) *when_out = top.when;
    support::MoveFunction action = std::move(top.action);
    heap_.pop();
    return action;
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    mutable support::MoveFunction action;

    bool operator<(const Entry& other) const {
      // priority_queue is a max-heap; invert for earliest-first.
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace navcpp::sim
