// Virtual time for the discrete-event simulation.
//
// Virtual time is a plain double measured in seconds.  A strong typedef
// would buy little here (no unit mixing occurs: every producer of times is
// inside sim/net/perfmodel) and would add friction at the perfmodel
// boundary, where costs are naturally computed in double seconds.
#pragma once

namespace navcpp::sim {

/// Virtual seconds since simulation start.
using Time = double;

/// A duration in virtual seconds.
using Duration = double;

inline constexpr Time kTimeZero = 0.0;

}  // namespace navcpp::sim
