// A growable byte buffer with typed append/extract, used to model agent
// payload serialization (what MESSENGERS ships on a hop) and mini-MPI
// message bodies.  Trivially-copyable types only, plus vectors of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "support/error.h"

namespace navcpp::support {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::span<const std::byte> bytes() const { return data_; }
  void clear() {
    data_.clear();
    read_pos_ = 0;
  }

  /// Remaining unread bytes.
  std::size_t remaining() const { return data_.size() - read_pos_; }

  template <class T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteBuffer::put requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
  }

  template <class T>
  void put_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteBuffer::put_span requires a trivially copyable type");
    put<std::uint64_t>(values.size());
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    data_.insert(data_.end(), p, p + values.size_bytes());
  }

  template <class T>
  void put_vector(const std::vector<T>& values) {
    put_span(std::span<const T>(values));
  }

  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteBuffer::get requires a trivially copyable type");
    NAVCPP_CHECK(remaining() >= sizeof(T), "ByteBuffer underflow");
    T value;
    std::memcpy(&value, data_.data() + read_pos_, sizeof(T));
    read_pos_ += sizeof(T);
    return value;
  }

  template <class T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    NAVCPP_CHECK(remaining() >= n * sizeof(T), "ByteBuffer underflow (vector)");
    std::vector<T> out(n);
    std::memcpy(out.data(), data_.data() + read_pos_, n * sizeof(T));
    read_pos_ += n * sizeof(T);
    return out;
  }

 private:
  std::vector<std::byte> data_;
  std::size_t read_pos_ = 0;
};

}  // namespace navcpp::support
