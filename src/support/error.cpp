#include "support/error.h"

#include <sstream>

namespace navcpp::support {

void raise_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "NAVCPP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace navcpp::support
