// Lock-free multi-producer run queue with batched consumption, built for the
// threaded machine's hot path (see docs/architecture.md, "Run-queue design").
//
// Shape: a Treiber stack of heap nodes.  push() is one CAS; pop_all() grabs
// the whole stack with a single exchange and reverses it, so the items come
// out in global push order (the CAS on the head linearizes concurrent
// producers) and the consumer pays one synchronizing operation per *burst*
// rather than per item.  There is no blocking pop: the consumer side
// (ThreadedMachine's worker scan + parking lot) decides how to wait, which
// keeps this class a pure data structure.
//
// close()/reopen() support the machine's teardown protocol.  close() swaps
// the head for a tagged sentinel, so producers observe rejection with the
// same single CAS they use to push — no flag, no lock.  Items that were
// already queued when close() hit are retained on a mutex-guarded side list
// (cold path) and still come out of pop_all(): drain-after-close is how the
// machine destroys unexecuted actions without running them.
//
// Node allocations are recycled through a bounded thread-local free list, so
// a steady-state producer/consumer pair stops touching the allocator
// entirely.  The cache is per-thread and nodes carry no live T while cached,
// which sidesteps the ABA hazard a shared lock-free pool would have.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace navcpp::support {

template <class T>
class FastMpscQueue {
 public:
  FastMpscQueue() = default;

  FastMpscQueue(const FastMpscQueue&) = delete;
  FastMpscQueue& operator=(const FastMpscQueue&) = delete;

  ~FastMpscQueue() {
    std::vector<T> drain;
    pop_all(drain);  // destroys remaining items, recycles their nodes
  }

  /// Push an item; lock-free (one CAS on the uncontended path).  Returns
  /// false (and drops `item`, running its destructor at the call site) if
  /// the queue has been close()d — the poster gets an explicit signal
  /// instead of a black hole, exactly like MpscQueue::push.
  [[nodiscard]] bool push(T item) {
    Node* node = alloc_node();
    ::new (node->slot()) T(std::move(item));
    Node* head = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (head == closed_tag()) {
        node->slot()->~T();
        free_node(node);
        return false;
      }
      node->next = head;
      // seq_cst on success: the machine's parking protocol needs this store
      // and the consumer's "is anything queued?" load in a single total
      // order (see ThreadedMachine's parking-lot comment).
      if (head_.compare_exchange_weak(head, node, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Append every queued item to `out` in push order and return true if
  /// anything was popped.  One exchange per call; safe to call from any
  /// thread, though callers are expected to serialize consumers themselves
  /// (the machine does so with per-PE tokens).  After close(), drains the
  /// retained items.
  bool pop_all(std::vector<T>& out) {
    Node* leftovers = nullptr;
    if (has_leftovers_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(leftovers_mutex_);
      leftovers = leftovers_;
      leftovers_ = nullptr;
      has_leftovers_.store(false, std::memory_order_relaxed);
    }
    Node* chain = nullptr;
    Node* head = head_.load(std::memory_order_relaxed);
    while (head != nullptr && head != closed_tag()) {
      if (head_.compare_exchange_weak(head, nullptr,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        chain = head;
        break;
      }
    }
    // Leftovers predate anything currently on the live stack.
    const bool popped = leftovers != nullptr || chain != nullptr;
    append_reversed(leftovers, out);
    append_reversed(chain, out);
    return popped;
  }

  /// Reject subsequent pushes.  Already-queued items are retained and still
  /// drain through pop_all().  Lock-free for producers; the retention step
  /// itself takes a mutex (teardown cold path).
  void close() {
    Node* head = head_.exchange(closed_tag(), std::memory_order_acq_rel);
    if (head == closed_tag() || head == nullptr) return;
    std::lock_guard<std::mutex> lock(leftovers_mutex_);
    // Newest-first chains concatenate newest-chain-first so that one
    // reversal in pop_all restores global FIFO across repeated closes.
    Node* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    tail->next = leftovers_;
    leftovers_ = head;
    has_leftovers_.store(true, std::memory_order_release);
  }

  /// Reopen after close() (used when a machine instance is reused).
  void reopen() {
    Node* expected = closed_tag();
    head_.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
  }

  bool closed() const {
    return head_.load(std::memory_order_acquire) == closed_tag();
  }

  /// Approximate: exact when producers are quiescent.  seq_cst load so the
  /// parking protocol's rescan participates in the same total order as
  /// push's CAS.
  bool empty() const {
    const Node* head = head_.load(std::memory_order_seq_cst);
    return (head == nullptr || head == closed_tag()) &&
           !has_leftovers_.load(std::memory_order_acquire);
  }

 private:
  struct Node {
    Node* next = nullptr;
    alignas(T) unsigned char storage[sizeof(T)];
    T* slot() { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  static Node* closed_tag() {
    // Misaligned sentinel: can never equal a real allocation.
    return reinterpret_cast<Node*>(static_cast<std::uintptr_t>(1));
  }

  // Bounded per-thread node cache.  Cached nodes hold no constructed T.
  struct FreeCache {
    Node* head = nullptr;
    std::size_t count = 0;
    ~FreeCache() {
      while (head != nullptr) {
        Node* node = head;
        head = node->next;
        ::operator delete(node);
      }
    }
  };
  static constexpr std::size_t kCacheCap = 256;

  static FreeCache& cache() {
    static thread_local FreeCache instance;
    return instance;
  }

  static Node* alloc_node() {
    FreeCache& c = cache();
    if (c.head != nullptr) {
      Node* node = c.head;
      c.head = node->next;
      --c.count;
      return node;
    }
    return ::new (::operator new(sizeof(Node))) Node();
  }

  static void free_node(Node* node) {
    FreeCache& c = cache();
    if (c.count < kCacheCap) {
      node->next = c.head;
      c.head = node;
      ++c.count;
      return;
    }
    ::operator delete(node);
  }

  /// Walk a newest-first chain, appending items oldest-first; destroys the
  /// items in the nodes and recycles the nodes.
  static void append_reversed(Node* chain, std::vector<T>& out) {
    Node* reversed = nullptr;
    while (chain != nullptr) {
      Node* next = chain->next;
      chain->next = reversed;
      reversed = chain;
      chain = next;
    }
    while (reversed != nullptr) {
      Node* next = reversed->next;
      out.push_back(std::move(*reversed->slot()));
      reversed->slot()->~T();
      free_node(reversed);
      reversed = next;
    }
  }

  std::atomic<Node*> head_{nullptr};

  // Drain-after-close retention (cold path only).
  std::atomic<bool> has_leftovers_{false};
  std::mutex leftovers_mutex_;
  Node* leftovers_ = nullptr;
};

}  // namespace navcpp::support
