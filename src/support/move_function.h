// MoveFunction: a move-only std::function<void()> substitute.
// libstdc++ 12 only ships std::move_only_function under -std=c++23, and
// std::function requires copyability, which coroutine-handle-capturing
// lambdas and ByteBuffer payload captures do not want to provide.
//
// Small-buffer optimized: callables up to kInlineSize bytes (which covers
// the runtime's hop-delivery and resume closures — a handful of pointers,
// ids and a byte count) are stored inline and never touch the allocator.
// That matters because every hop on the threaded backend moves one of these
// through a run queue; with the inline path, enqueueing an action is
// allocation-free end to end (the queue recycles its nodes too).  Larger or
// throwing-move callables fall back to the heap exactly as before.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace navcpp::support {

class MoveFunction {
 public:
  /// Inline storage size.  The hop-delivery closure (runtime state pointer,
  /// two PE ids, a departure timestamp, a byte count, and an owned
  /// coroutine-resume handle with its keepalive) is ~64 bytes plus a vptr;
  /// 88 gives it headroom without bloating the queue nodes.
  static constexpr std::size_t kInlineSize = 88;

  MoveFunction() = default;

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, MoveFunction>>>
  MoveFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Model<Decayed>) <= kInlineSize &&
                  alignof(Model<Decayed>) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      impl_ = ::new (static_cast<void*>(buffer_))
          Model<Decayed>(std::forward<F>(f));
    } else {
      impl_ = new Model<Decayed>(std::forward<F>(f));
    }
  }

  MoveFunction(MoveFunction&& other) noexcept { steal(other); }

  MoveFunction& operator=(MoveFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  MoveFunction(const MoveFunction&) = delete;
  MoveFunction& operator=(const MoveFunction&) = delete;

  ~MoveFunction() { reset(); }

  explicit operator bool() const { return impl_ != nullptr; }

  void operator()() { impl_->invoke(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void invoke() = 0;
    /// Move-construct a clone of the most-derived object into `storage`
    /// (used when the source is inline).  noexcept by construction: only
    /// nothrow-movable callables are stored inline.
    virtual Concept* relocate_to(void* storage) noexcept = 0;
  };

  template <class F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void invoke() override { fn(); }
    Concept* relocate_to(void* storage) noexcept override {
      return ::new (storage) Model<F>(std::move(fn));
    }
    F fn;
  };

  bool is_inline() const {
    return static_cast<const void*>(impl_) ==
           static_cast<const void*>(buffer_);
  }

  void reset() {
    if (impl_ == nullptr) return;
    if (is_inline()) {
      impl_->~Concept();
    } else {
      delete impl_;
    }
    impl_ = nullptr;
  }

  void steal(MoveFunction& other) {
    if (other.impl_ == nullptr) return;
    if (other.is_inline()) {
      impl_ = other.impl_->relocate_to(static_cast<void*>(buffer_));
      other.impl_->~Concept();
    } else {
      impl_ = other.impl_;
    }
    other.impl_ = nullptr;
  }

  Concept* impl_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
};

}  // namespace navcpp::support
