// MoveFunction: a move-only std::function<void()> substitute.
// libstdc++ 12 only ships std::move_only_function under -std=c++23, and
// std::function requires copyability, which coroutine-handle-capturing
// lambdas and ByteBuffer payload captures do not want to provide.
#pragma once

#include <memory>
#include <utility>

namespace navcpp::support {

class MoveFunction {
 public:
  MoveFunction() = default;

  template <class F>
  MoveFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  MoveFunction(MoveFunction&&) = default;
  MoveFunction& operator=(MoveFunction&&) = default;
  MoveFunction(const MoveFunction&) = delete;
  MoveFunction& operator=(const MoveFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  void operator()() {
    impl_->invoke();
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void invoke() = 0;
  };

  template <class F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void invoke() override { fn(); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace navcpp::support
