// Minimal JSON value model and recursive-descent parser.
//
// The repo emits JSON by hand (obs/chrome_trace, harness/bench_runner) but
// the bench trajectory also needs to *read* it back: `bench_compare` diffs
// two BENCH_<rev>.json files and the schema validator checks what the
// runner emits.  This is a deliberately small, dependency-free reader:
// UTF-8 pass-through strings, doubles for all numbers, objects as ordered
// maps.  It is not a streaming parser and is not meant for huge documents —
// BENCH files are a few kilobytes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace navcpp::support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse `text` as a single JSON document.  On success returns true and
/// fills `*out`; on failure returns false and (if `error` is non-null)
/// writes a human-readable reason with a byte offset.
bool json_parse(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

/// Escape `s` for embedding in a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Shortest round-trip-ish rendering of a double ("%.10g"), with non-finite
/// values mapped to 0 (JSON has no NaN/Inf).
std::string json_number(double v);

}  // namespace navcpp::support
