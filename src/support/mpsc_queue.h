// Multi-producer single-consumer blocking queue used for per-PE run queues
// in the threaded machine backend.  Mutex+condvar based: at our message
// granularity (block transfers, agent migrations) lock cost is negligible,
// and the simple implementation is trivially correct (CppCoreGuidelines
// CP.20/CP.42: RAII locks, always wait with a predicate).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace navcpp::support {

template <class T>
class MpscQueue {
 public:
  /// Push an item; wakes the consumer if it is blocked.  Returns false (and
  /// drops `item`, running its destructor at the call site) if the queue has
  /// been close()d: enqueueing into a closed queue would silently destroy the
  /// item anyway — the consumer drains without executing — so the poster gets
  /// an explicit signal instead of a black hole.
  [[nodiscard]] bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pop one item, blocking until one is available or `closed()`.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<T> pop_blocking() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wake all blocked consumers; subsequent pops drain then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopen after close() (used when a machine instance is reused).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace navcpp::support
