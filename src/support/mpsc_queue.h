// Multi-producer single-consumer blocking queue.  Mutex+condvar based and
// trivially correct (CppCoreGuidelines CP.20/CP.42: RAII locks, always wait
// with a predicate), but NOT cheap on a hot path: every push takes the lock
// and a notify, and a blocked consumer costs a futex round-trip per wake.
// The threaded machine's per-PE run queues paid exactly that tax per hop,
// which is why they now use support::FastMpscQueue (lock-free push, batched
// pop_all) — see docs/architecture.md, "Run-queue design", for the
// measurements and the design note.  This queue remains the right tool when
// a blocking pop_blocking() consumer is wanted and throughput is not the
// concern.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace navcpp::support {

template <class T>
class MpscQueue {
 public:
  /// Push an item; wakes the consumer if it is blocked.  Returns false (and
  /// drops `item`, running its destructor at the call site) if the queue has
  /// been close()d: enqueueing into a closed queue would silently destroy the
  /// item anyway — the consumer drains without executing — so the poster gets
  /// an explicit signal instead of a black hole.
  [[nodiscard]] bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pop one item, blocking until one is available or `closed()`.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<T> pop_blocking() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Batched non-blocking drain: append everything queued to `out` in FIFO
  /// order under a single lock acquisition; returns true if anything was
  /// popped.  Works after close() too (drain-after-close), mirroring
  /// FastMpscQueue::pop_all.
  bool pop_all(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    for (auto& item : items_) out.push_back(std::move(item));
    items_.clear();
    return true;
  }

  /// Wake all blocked consumers; subsequent pops drain then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopen after close() (used when a machine instance is reused).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace navcpp::support
