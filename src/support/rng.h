// Deterministic, seedable PRNG used throughout tests and workload generators.
//
// We deliberately avoid std::mt19937's platform-dependent seeding helpers and
// use xoshiro256** with a SplitMix64 seeder, so the same seed produces the
// same matrices / schedules on every platform (reproducible experiments).
#pragma once

#include <cstdint>

namespace navcpp::support {

/// SplitMix64: stateless-ish seed expander (public domain, Vigna).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (public domain, Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill here; modulo
    // bias is negligible for the ranges we use (n << 2^64).
    return next() % n;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace navcpp::support
