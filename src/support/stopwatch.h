// Wall-clock stopwatch for the threaded backend and microbenchmarks.
#pragma once

#include <chrono>

namespace navcpp::support {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace navcpp::support
