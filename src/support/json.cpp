#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace navcpp::support {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    std::string s;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit in \\u escape");
              }
            }
            // Encode the code point as UTF-8 (surrogate pairs are passed
            // through as two 3-byte sequences; BENCH files are ASCII).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      s += c;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return fail("malformed number '" + token + "'");
    }
    *out = JsonValue::number(v);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      std::map<std::string, JsonValue> members;
      skip_ws();
      if (consume('}')) {
        *out = JsonValue::object(std::move(members));
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        members[std::move(key)] = std::move(v);
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) break;
        return fail("expected ',' or '}'");
      }
      *out = JsonValue::object(std::move(members));
      return true;
    }
    if (c == '[') {
      ++pos;
      std::vector<JsonValue> items;
      skip_ws();
      if (consume(']')) {
        *out = JsonValue::array(std::move(items));
        return true;
      }
      while (true) {
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        items.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) break;
        return fail("expected ',' or ']'");
      }
      *out = JsonValue::array(std::move(items));
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = JsonValue::string(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true", 4)) return fail("bad literal");
      *out = JsonValue::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return fail("bad literal");
      *out = JsonValue::boolean(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null", 4)) return fail("bad literal");
      *out = JsonValue::null();
      return true;
    }
    return parse_number(out);
  }
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out, std::string* error) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(&v, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at byte " + std::to_string(p.pos);
    }
    return false;
  }
  *out = std::move(v);
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace navcpp::support
