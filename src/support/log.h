// Minimal leveled logger.  Off (WARN) by default so tests and benches stay
// quiet; examples flip it to INFO/DEBUG to narrate runtime activity.
// Thread-safe: each emit() takes a global mutex (logging is never on a hot
// path in this project).
#pragma once

#include <sstream>
#include <string>

namespace navcpp::support {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single line at `level` (no newline needed in `message`).
void log_emit(LogLevel level, const std::string& message);

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_emit(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_emit(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_emit(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_emit(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace navcpp::support
