// Error types and checked assertions shared by all navcpp modules.
//
// Guideline (CppCoreGuidelines E.2/E.14): throw exceptions derived from a
// common project base so callers can distinguish navcpp failures from
// standard-library ones.  Hot paths use NAVCPP_CHECK, which is always on
// (these are logic-error guards, not profiling asserts).
#pragma once

#include <stdexcept>
#include <string>

namespace navcpp::support {

/// Base class of every exception thrown by navcpp.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition or internal invariant was violated.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// A runtime configuration is invalid (bad PE id, mismatched shapes, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// The runtime detected a stall: live agents remain but no progress is
/// possible (e.g. every remaining agent waits on an event nobody signals).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// The reliability layer exhausted its retry budget for a message: the
/// destination never acknowledged it within the configured number of
/// retransmits.  Raised instead of hanging so fault-injected runs always
/// terminate with a diagnosis (the message embeds the per-channel report).
class DeliveryError : public Error {
 public:
  explicit DeliveryError(const std::string& what) : Error(what) {}
};

/// A serialized cargo set did not match the one being restored into:
/// trailing bytes, truncation, or a mid-item underflow.  Typed (rather than
/// a NAVCPP_CHECK abort) because a version-skewed or corrupted peer frame
/// is an input error the caller can handle — it must not take down the
/// whole parent process on the process-per-PE backend.
class CargoSchemaError : public Error {
 public:
  explicit CargoSchemaError(const std::string& what) : Error(what) {}
};

/// The process-per-PE backend lost a worker (crash, unexpected exit) or the
/// wire protocol between parent and worker broke.  Typed so a dead worker
/// surfaces as a catchable run() failure instead of a hang.
class ProcError : public Error {
 public:
  explicit ProcError(const std::string& what) : Error(what) {}
};

[[noreturn]] void raise_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);

}  // namespace navcpp::support

/// Always-on invariant check.  `msg` may use std::string concatenation.
#define NAVCPP_CHECK(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::navcpp::support::raise_check_failure(#expr, __FILE__, __LINE__,      \
                                             (msg));                         \
    }                                                                        \
  } while (false)
