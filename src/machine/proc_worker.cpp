#include "machine/proc_worker.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

namespace navcpp::machine {

using net::GrantKind;
using net::WireFrame;
using net::WireType;

ProcWorker::ProcWorker(int fd, int pe) : conn_(fd), pe_(pe) {
  run_start_ns_ = 0;
}

std::int64_t ProcWorker::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ProcWorker::timer_later(const Timer& a, const Timer& b) {
  // push_heap/pop_heap keep a max-heap; invert for a min-heap on
  // (deadline, seq).
  if (a.deadline_ns != b.deadline_ns) return a.deadline_ns > b.deadline_ns;
  return a.seq > b.seq;
}

int ProcWorker::next_timeout_ms() const {
  if (timers_.empty()) return -1;
  const std::int64_t delta = timers_.front().deadline_ns - now_ns();
  if (delta <= 0) return 0;
  // Round up so we never wake a hair before the deadline and spin.
  return static_cast<int>(delta / 1000000 + 1);
}

void ProcWorker::fire_due_timers() {
  const std::int64_t now = now_ns();
  while (!timers_.empty() && timers_.front().deadline_ns <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    const Timer t = timers_.back();
    timers_.pop_back();
    ++stats_.timers_fired;
    WireFrame grant;
    grant.type = WireType::kGrant;
    grant.pe = static_cast<std::uint32_t>(pe_);
    grant.token = t.token;
    grant.arg = static_cast<std::uint64_t>(GrantKind::kTimer) |
                net::kGrantOkBit;
    if (!conn_.send_frame(grant)) shutdown_ = true;
  }
}

void ProcWorker::handle(const WireFrame& frame) {
  ++stats_.frames_seen;
  switch (frame.type) {
    case WireType::kStart:
      // Stats are per-run; timers are NOT cleared — a post_after issued
      // before run() is already ticking here, and stale timers from a
      // previous run were canceled by its quiesce.
      stats_ = net::WireWorkerStats{};
      stats_.frames_seen = 1;  // this frame
      break;

    case WireType::kPost: {
      // The grant is what makes the action runnable: scheduling authority
      // for this PE lives here, not in the parent.
      ++stats_.posts_granted;
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kPost) |
                  net::kGrantOkBit;
      if (!conn_.send_frame(grant)) shutdown_ = true;
      break;
    }

    case WireType::kTimer: {
      Timer t;
      t.deadline_ns = now_ns() + static_cast<std::int64_t>(frame.arg);
      t.seq = timer_seq_++;
      t.token = frame.token;
      timers_.push_back(t);
      std::push_heap(timers_.begin(), timers_.end(), timer_later);
      break;
    }

    case WireType::kSend: {
      // Materialize the payload in THIS address space; the bytes cross to
      // the parent and again to the destination worker, which re-derives
      // the checksum from (token, src, dst) and verifies it.
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(pe_) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      net::wire_fill_pattern(scratch_, static_cast<std::size_t>(frame.arg),
                             seed);
      WireFrame hop;
      hop.type = WireType::kHop;
      hop.pe = frame.pe;  // destination
      hop.src = static_cast<std::uint32_t>(pe_);
      hop.token = frame.token;
      hop.arg = net::wire_checksum(scratch_.data(), scratch_.size(), seed);
      hop.payload = scratch_;
      ++stats_.hops_out;
      stats_.hop_bytes_out += scratch_.size();
      if (!conn_.send_frame(hop)) shutdown_ = true;
      break;
    }

    case WireType::kHop: {
      // Inbound payload, routed by the parent from the source worker.
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(frame.src) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      const std::uint64_t sum =
          net::wire_checksum(frame.payload.data(), frame.payload.size(), seed);
      const bool ok = sum == frame.arg;
      ++stats_.hops_in;
      stats_.hop_bytes_in += frame.payload.size();
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kHop) |
                  (ok ? net::kGrantOkBit : 0);
      if (!conn_.send_frame(grant)) shutdown_ = true;
      break;
    }

    case WireType::kQuiesce: {
      WireFrame ack;
      ack.type = WireType::kQuiesceAck;
      ack.pe = static_cast<std::uint32_t>(pe_);
      for (const Timer& t : timers_) ack.tokens.push_back(t.token);
      stats_.timers_canceled += timers_.size();
      timers_.clear();
      ack.stats = stats_;
      if (!conn_.send_frame(ack)) shutdown_ = true;
      break;
    }

    case WireType::kStatus: {
      WireFrame reply;
      reply.type = WireType::kStatusReply;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.arg = timers_.size();
      reply.stats = stats_;
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kShutdown:
      shutdown_ = true;
      break;

    case WireType::kHello:
    case WireType::kGrant:
    case WireType::kQuiesceAck:
    case WireType::kStatusReply:
      // Parent-bound frames; a parent never sends them.
      break;
  }
}

int ProcWorker::run() {
  WireFrame hello;
  hello.type = WireType::kHello;
  hello.pe = static_cast<std::uint32_t>(pe_);
  hello.arg = net::kWireProtocolVersion;
  if (!conn_.send_frame(hello)) {
    conn_.close();
    return 0;  // parent already gone
  }

  while (!shutdown_) {
    pollfd pfd{conn_.fd(), POLLIN, 0};
    const int r = ::poll(&pfd, 1, next_timeout_ms());
    if (r < 0) continue;  // EINTR
    fire_due_timers();
    if (r == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (!conn_.read_some()) break;  // parent gone: exit quietly
      WireFrame frame;
      try {
        while (!shutdown_ && conn_.next_frame(&frame)) handle(frame);
      } catch (...) {
        conn_.close();
        return 1;  // malformed traffic from the parent
      }
    }
  }
  conn_.close();
  return 0;
}

int proc_worker_main(int fd, int pe) { return ProcWorker(fd, pe).run(); }

}  // namespace navcpp::machine
