#include "machine/proc_worker.h"

#include <poll.h>
#include <stdio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace navcpp::machine {

using net::GrantKind;
using net::WireFrame;
using net::WireType;

namespace {
/// Poll blocks shorter than this are scheduling noise, not "queue wait":
/// recording them as spans would swamp the trace with microscopic slivers.
constexpr std::int64_t kWaitSpanFloorNs = 100'000;  // 0.1 ms
}  // namespace

ProcWorker::ProcWorker(int fd, int pe, std::string ckpt_path,
                       std::string flight_path)
    : conn_(fd), pe_(pe), ckpt_path_(std::move(ckpt_path)) {
  run_start_ns_ = 0;
  if (!flight_path.empty()) {
    std::string error;
    flight_ = obs::FlightRecorder::open(
        flight_path, static_cast<std::uint32_t>(pe), 256, &error);
    // nullptr: run un-recorded rather than die over telemetry.
  }
}

void ProcWorker::flight(obs::FlightKind kind, std::uint8_t frame_type,
                        std::uint64_t token, std::uint64_t a,
                        std::uint64_t b) {
  if (flight_ != nullptr) flight_->record(kind, frame_type, token, a, b);
}

void ProcWorker::record_span(obs::ProcSpanKind kind, std::uint64_t trace_id,
                             std::uint64_t token, std::int64_t t0_ns,
                             std::int64_t t1_ns) {
  obs::ProcSpan span;
  span.trace_id = trace_id;
  span.t0_ns = t0_ns;
  span.t1_ns = t1_ns;
  span.token = token;
  span.pe = static_cast<std::uint32_t>(pe_);
  span.kind = static_cast<std::uint8_t>(kind);
  spans_.push(span);
}

void ProcWorker::refresh_stats_snapshot() {
  stats_.queue_depth = timers_.size();
  stats_.spans_dropped = spans_.dropped();
}

void ProcWorker::flush_spans() {
  if (spans_.empty()) return;
  const std::vector<obs::ProcSpan> batch = spans_.drain();
  WireFrame frame;
  frame.type = WireType::kSpans;
  frame.pe = static_cast<std::uint32_t>(pe_);
  frame.arg = batch.size();
  obs::pack_spans(batch, frame.payload);
  if (!conn_.send_frame(frame)) shutdown_ = true;
}

void ProcWorker::maybe_stats_tick() {
  if (!cfg_stats_ || stats_interval_ns_ <= 0 || shutdown_) return;
  const std::int64_t now = now_ns();
  if (now < next_stats_ns_) return;
  next_stats_ns_ = now + stats_interval_ns_;
  flush_spans();
  ++stats_.stats_deltas_sent;
  refresh_stats_snapshot();
  WireFrame frame;
  frame.type = WireType::kStatsDelta;
  frame.pe = static_cast<std::uint32_t>(pe_);
  frame.arg = timers_.size();
  frame.stats = stats_;
  if (!conn_.send_frame(frame)) shutdown_ = true;
}

void ProcWorker::save_checkpoint(const std::vector<std::byte>& bytes) {
  checkpoint_ = bytes;
  have_checkpoint_ = true;
  stats_.checkpoint_bytes = checkpoint_.size();
  if (ckpt_path_.empty()) return;
  // Spill atomically (write temp, rename) so a SIGKILL mid-write leaves the
  // previous checkpoint intact, never a torn file.
  const std::string tmp = ckpt_path_ + ".tmp";
  FILE* f = ::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;  // durability is best-effort; memory copy stands
  const bool wrote =
      bytes.empty() ||
      ::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ::fclose(f);
  if (wrote) {
    ::rename(tmp.c_str(), ckpt_path_.c_str());
  } else {
    ::unlink(tmp.c_str());
  }
}

bool ProcWorker::load_checkpoint(std::vector<std::byte>* out) {
  if (have_checkpoint_) {
    *out = checkpoint_;
    return true;
  }
  if (ckpt_path_.empty()) return false;
  FILE* f = ::fopen(ckpt_path_.c_str(), "rb");
  if (f == nullptr) return false;
  ::fseek(f, 0, SEEK_END);
  const long size = ::ftell(f);
  ::fseek(f, 0, SEEK_SET);
  out->resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool read_ok =
      out->empty() ||
      ::fread(out->data(), 1, out->size(), f) == out->size();
  ::fclose(f);
  if (!read_ok) return false;
  // Cache it: the next load should not re-hit the disk.
  checkpoint_ = *out;
  have_checkpoint_ = true;
  stats_.checkpoint_bytes = checkpoint_.size();
  return true;
}

std::int64_t ProcWorker::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ProcWorker::timer_later(const Timer& a, const Timer& b) {
  // push_heap/pop_heap keep a max-heap; invert for a min-heap on
  // (deadline, seq).
  if (a.deadline_ns != b.deadline_ns) return a.deadline_ns > b.deadline_ns;
  return a.seq > b.seq;
}

int ProcWorker::next_timeout_ms() const {
  std::int64_t delta = -1;
  if (!timers_.empty()) {
    delta = std::max<std::int64_t>(0, timers_.front().deadline_ns - now_ns());
  }
  if (cfg_stats_ && stats_interval_ns_ > 0) {
    const std::int64_t stats_delta =
        std::max<std::int64_t>(0, next_stats_ns_ - now_ns());
    if (delta < 0 || stats_delta < delta) delta = stats_delta;
  }
  if (delta < 0) return -1;
  if (delta == 0) return 0;
  // Round up so we never wake a hair before the deadline and spin.
  return static_cast<int>(delta / 1000000 + 1);
}

void ProcWorker::fire_due_timers() {
  const std::int64_t now = now_ns();
  while (!timers_.empty() && timers_.front().deadline_ns <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    const Timer t = timers_.back();
    timers_.pop_back();
    ++stats_.timers_fired;
    const std::int64_t t0 = now_ns();
    WireFrame grant;
    grant.type = WireType::kGrant;
    grant.pe = static_cast<std::uint32_t>(pe_);
    grant.token = t.token;
    grant.arg = static_cast<std::uint64_t>(GrantKind::kTimer) |
                net::kGrantOkBit;
    if (!conn_.send_frame(grant)) shutdown_ = true;
    if (cfg_trace_) {
      record_span(obs::ProcSpanKind::kTimerFire, 0, t.token, t0, now_ns());
    }
  }
}

void ProcWorker::handle(const WireFrame& frame) {
  // Sequenced frames (parent-retained, grant-bearing) are deduplicated
  // against a high-water mark: after a respawn the parent blind-resends its
  // whole retained window, and any frame this incarnation already granted
  // must be dropped unprocessed or its action would run twice.  Seqs are
  // monotone per connection and stamped once (a resend keeps its original
  // seq), so `<=` is exact, not heuristic.
  if (frame.seq != 0) {
    if (frame.seq <= last_seq_) {
      ++stats_.frames_deduped;
      flight(obs::FlightKind::kDedupDrop,
             static_cast<std::uint8_t>(frame.type), frame.token, frame.seq,
             last_seq_);
      return;
    }
    last_seq_ = frame.seq;
  }
  ++stats_.frames_seen;
  if (frame.type != WireType::kPing) {
    // Heartbeats are too chatty for a 256-slot ring meant to explain a
    // death; everything else the worker saw is part of the story.
    flight(obs::FlightKind::kFrameIn, static_cast<std::uint8_t>(frame.type),
           frame.token, frame.seq, timers_.size());
  }
  switch (frame.type) {
    case WireType::kStart:
      // Stats are per-run; timers are NOT cleared — a post_after issued
      // before run() is already ticking here, and stale timers from a
      // previous run were canceled by its quiesce.  The checkpoint (and its
      // size gauge) outlives runs: recovery may restore from a snapshot
      // taken in an earlier run.
      stats_ = net::WireWorkerStats{};
      stats_.frames_seen = 1;  // this frame
      stats_.checkpoint_bytes = have_checkpoint_ ? checkpoint_.size() : 0;
      spans_.clear();  // spans are per-run, like the stats
      flight(obs::FlightKind::kRunStart, 0, 0, frame.arg, last_seq_);
      break;

    case WireType::kConfig:
      cfg_trace_ = (frame.arg & net::kCfgTrace) != 0;
      cfg_stats_ = (frame.arg & net::kCfgStatsDelta) != 0;
      stats_interval_ns_ = static_cast<std::int64_t>(frame.token);
      next_stats_ns_ = now_ns() + stats_interval_ns_;
      flight(obs::FlightKind::kConfig, 0, 0, frame.arg, frame.token);
      break;

    case WireType::kPost: {
      // The grant is what makes the action runnable: scheduling authority
      // for this PE lives here, not in the parent.
      ++stats_.posts_granted;
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kPost) |
                  net::kGrantOkBit;
      if (!conn_.send_frame(grant)) shutdown_ = true;
      break;
    }

    case WireType::kTimer: {
      Timer t;
      t.deadline_ns = now_ns() + static_cast<std::int64_t>(frame.arg);
      t.seq = timer_seq_++;
      t.token = frame.token;
      timers_.push_back(t);
      std::push_heap(timers_.begin(), timers_.end(), timer_later);
      break;
    }

    case WireType::kSend: {
      // Materialize the payload in THIS address space; the bytes cross to
      // the parent and again to the destination worker, which re-derives
      // the checksum from (token, src, dst) and verifies it.
      const std::int64_t t0 = now_ns();
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(pe_) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      net::wire_fill_pattern(scratch_, static_cast<std::size_t>(frame.arg),
                             seed);
      WireFrame hop;
      hop.type = WireType::kHop;
      hop.pe = frame.pe;  // destination
      hop.src = static_cast<std::uint32_t>(pe_);
      hop.token = frame.token;
      hop.arg = net::wire_checksum(scratch_.data(), scratch_.size(), seed);
      hop.trace = frame.trace;  // the relayed frame keeps the trace id
      hop.payload = scratch_;
      ++stats_.hops_out;
      stats_.hop_bytes_out += scratch_.size();
      flight(obs::FlightKind::kFrameOut,
             static_cast<std::uint8_t>(WireType::kHop), frame.token, frame.pe,
             scratch_.size());
      if (!conn_.send_frame(hop)) shutdown_ = true;
      const std::int64_t t1 = now_ns();
      stats_.serialize_ns += static_cast<std::uint64_t>(t1 - t0);
      if (cfg_trace_) {
        record_span(obs::ProcSpanKind::kSerialize, frame.trace, frame.token,
                    t0, t1);
      }
      break;
    }

    case WireType::kHop: {
      // Inbound payload, routed by the parent from the source worker.
      const std::int64_t t0 = now_ns();
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(frame.src) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      const std::uint64_t sum =
          net::wire_checksum(frame.payload.data(), frame.payload.size(), seed);
      const bool ok = sum == frame.arg;
      ++stats_.hops_in;
      stats_.hop_bytes_in += frame.payload.size();
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kHop) |
                  (ok ? net::kGrantOkBit : 0);
      if (!conn_.send_frame(grant)) shutdown_ = true;
      const std::int64_t t1 = now_ns();
      stats_.verify_ns += static_cast<std::uint64_t>(t1 - t0);
      if (cfg_trace_) {
        record_span(obs::ProcSpanKind::kVerify, frame.trace, frame.token, t0,
                    t1);
      }
      break;
    }

    case WireType::kQuiesce: {
      // Flush buffered spans first: frames are ordered, so the parent holds
      // the complete span set before it sees the ack that ends the run.
      flush_spans();
      WireFrame ack;
      ack.type = WireType::kQuiesceAck;
      ack.pe = static_cast<std::uint32_t>(pe_);
      for (const Timer& t : timers_) ack.tokens.push_back(t.token);
      stats_.timers_canceled += timers_.size();
      flight(obs::FlightKind::kQuiesce, 0, 0, timers_.size(), 0);
      timers_.clear();
      refresh_stats_snapshot();
      ack.stats = stats_;
      if (!conn_.send_frame(ack)) shutdown_ = true;
      break;
    }

    case WireType::kStatus: {
      WireFrame reply;
      reply.type = WireType::kStatusReply;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.arg = timers_.size();
      refresh_stats_snapshot();
      reply.stats = stats_;
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kShutdown:
      flight(obs::FlightKind::kShutdown, 0, 0, 0, 0);
      shutdown_ = true;
      break;

    case WireType::kPing: {
      // Heartbeat.  Answering proves the loop is alive and draining its
      // socket — a wedged worker (stopped, spinning, deadlocked on a write
      // the parent will drain) is exactly what fails to pong in time.
      ++stats_.pings_answered;
      WireFrame pong;
      pong.type = WireType::kPong;
      pong.pe = static_cast<std::uint32_t>(pe_);
      pong.token = frame.token;
      // Clock-offset piggyback: our steady clock, sampled as close to the
      // send as possible.  The parent pairs it with its own send/recv
      // timestamps for the NTP midpoint estimate.
      pong.arg = static_cast<std::uint64_t>(now_ns());
      if (!conn_.send_frame(pong)) shutdown_ = true;
      break;
    }

    case WireType::kCheckpointSave:
      save_checkpoint(frame.payload);
      flight(obs::FlightKind::kCheckpointSave, 0, frame.token,
             frame.payload.size(), 0);
      break;

    case WireType::kCheckpointLoad: {
      WireFrame reply;
      reply.type = WireType::kCheckpointData;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.token = frame.token;
      std::vector<std::byte> bytes;
      reply.arg = load_checkpoint(&bytes) ? 1 : 0;
      flight(obs::FlightKind::kCheckpointLoad, 0, frame.token, bytes.size(),
             reply.arg);
      reply.payload = std::move(bytes);
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kHello:
    case WireType::kGrant:
    case WireType::kQuiesceAck:
    case WireType::kStatusReply:
    case WireType::kPong:
    case WireType::kCheckpointData:
    case WireType::kStatsDelta:
    case WireType::kSpans:
      // Parent-bound frames; a parent never sends them.
      break;
  }
}

int ProcWorker::run() {
  WireFrame hello;
  hello.type = WireType::kHello;
  hello.pe = static_cast<std::uint32_t>(pe_);
  hello.arg = net::kWireProtocolVersion;
  if (!conn_.send_frame(hello)) {
    conn_.close();
    return 0;  // parent already gone
  }

  while (!shutdown_) {
    pollfd pfd{conn_.fd(), POLLIN, 0};
    const std::int64_t wait0 = now_ns();
    const int r = ::poll(&pfd, 1, next_timeout_ms());
    const std::int64_t wait1 = now_ns();
    stats_.idle_ns += static_cast<std::uint64_t>(wait1 - wait0);
    if (cfg_trace_ && wait1 - wait0 >= kWaitSpanFloorNs) {
      record_span(obs::ProcSpanKind::kWait, 0, 0, wait0, wait1);
    }
    if (r < 0) continue;  // EINTR
    fire_due_timers();
    if (r > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (!conn_.read_some()) break;  // parent gone: exit quietly
      WireFrame frame;
      try {
        while (!shutdown_ && conn_.next_frame(&frame)) handle(frame);
      } catch (...) {
        conn_.close();
        return 1;  // malformed traffic from the parent
      }
    }
    maybe_stats_tick();
    stats_.busy_ns += static_cast<std::uint64_t>(now_ns() - wait1);
  }
  conn_.close();
  return 0;
}

int proc_worker_main(int fd, int pe, std::string ckpt_path,
                     std::string flight_path) {
  return ProcWorker(fd, pe, std::move(ckpt_path), std::move(flight_path))
      .run();
}

}  // namespace navcpp::machine
