#include "machine/proc_worker.h"

#include <poll.h>
#include <stdio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace navcpp::machine {

using net::GrantKind;
using net::WireFrame;
using net::WireType;

namespace {
/// Poll blocks shorter than this are scheduling noise, not "queue wait":
/// recording them as spans would swamp the trace with microscopic slivers.
constexpr std::int64_t kWaitSpanFloorNs = 100'000;  // 0.1 ms
}  // namespace

ProcWorker::ProcWorker(int fd, int pe, std::string ckpt_path,
                       std::string flight_path)
    : conn_(fd), pe_(pe), ckpt_path_(std::move(ckpt_path)) {
  run_start_ns_ = 0;
  if (!flight_path.empty()) {
    std::string error;
    flight_ = obs::FlightRecorder::open(
        flight_path, static_cast<std::uint32_t>(pe), 256, &error);
    // nullptr: run un-recorded rather than die over telemetry.
  }
}

ProcWorker::ProcWorker(const ProcWorkerConfig& config)
    : ProcWorker(config.fd, config.pe, config.ckpt_path, config.flight_path) {
  pe_count_ = config.pe_count;
  mesh_ = config.mesh;
  if (!mesh_) return;
  peers_.resize(static_cast<std::size_t>(pe_count_));
  // The dial-back listener exists on every mesh worker, both transports:
  // it is how the supervisor re-brokers this worker's edges after a peer
  // respawn (and how the initial TCP mesh is built at all).  Best-effort —
  // a worker that cannot listen still works, it just cannot be re-dialed.
  try {
    peer_listener_ = std::make_unique<net::WireListener>();
  } catch (...) {
    peer_listener_.reset();
  }
  for (const auto& [peer_pe, fd] : config.peer_fds) {
    if (peer_pe < 0 || peer_pe >= pe_count_ || peer_pe == pe_) continue;
    attach_peer(peer_pe, net::FrameConn(fd), /*replay=*/false);
  }
}

std::uint16_t ProcWorker::peer_port() const {
  return peer_listener_ ? peer_listener_->port() : 0;
}

void ProcWorker::flight(obs::FlightKind kind, std::uint8_t frame_type,
                        std::uint64_t token, std::uint64_t a,
                        std::uint64_t b) {
  if (flight_ != nullptr) flight_->record(kind, frame_type, token, a, b);
}

void ProcWorker::record_span(obs::ProcSpanKind kind, std::uint64_t trace_id,
                             std::uint64_t token, std::int64_t t0_ns,
                             std::int64_t t1_ns) {
  obs::ProcSpan span;
  span.trace_id = trace_id;
  span.t0_ns = t0_ns;
  span.t1_ns = t1_ns;
  span.token = token;
  span.pe = static_cast<std::uint32_t>(pe_);
  span.kind = static_cast<std::uint8_t>(kind);
  spans_.push(span);
}

void ProcWorker::refresh_stats_snapshot() {
  stats_.queue_depth = timers_.size();
  stats_.spans_dropped = spans_.dropped();
}

void ProcWorker::flush_spans() {
  if (spans_.empty()) return;
  const std::vector<obs::ProcSpan> batch = spans_.drain();
  WireFrame frame;
  frame.type = WireType::kSpans;
  frame.pe = static_cast<std::uint32_t>(pe_);
  frame.arg = batch.size();
  obs::pack_spans(batch, frame.payload);
  if (!conn_.send_frame(frame)) shutdown_ = true;
}

void ProcWorker::maybe_stats_tick() {
  if (!cfg_stats_ || stats_interval_ns_ <= 0 || shutdown_) return;
  const std::int64_t now = now_ns();
  if (now < next_stats_ns_) return;
  next_stats_ns_ = now + stats_interval_ns_;
  flush_spans();
  ++stats_.stats_deltas_sent;
  refresh_stats_snapshot();
  WireFrame frame;
  frame.type = WireType::kStatsDelta;
  frame.pe = static_cast<std::uint32_t>(pe_);
  frame.arg = timers_.size();
  frame.stats = stats_;
  if (!conn_.send_frame(frame)) shutdown_ = true;
}

void ProcWorker::save_checkpoint(const std::vector<std::byte>& bytes) {
  checkpoint_ = bytes;
  have_checkpoint_ = true;
  stats_.checkpoint_bytes = checkpoint_.size();
  if (ckpt_path_.empty()) return;
  // Spill atomically (write temp, rename) so a SIGKILL mid-write leaves the
  // previous checkpoint intact, never a torn file.
  const std::string tmp = ckpt_path_ + ".tmp";
  FILE* f = ::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;  // durability is best-effort; memory copy stands
  const bool wrote =
      bytes.empty() ||
      ::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ::fclose(f);
  if (wrote) {
    ::rename(tmp.c_str(), ckpt_path_.c_str());
  } else {
    ::unlink(tmp.c_str());
  }
}

bool ProcWorker::load_checkpoint(std::vector<std::byte>* out) {
  if (have_checkpoint_) {
    *out = checkpoint_;
    return true;
  }
  if (ckpt_path_.empty()) return false;
  FILE* f = ::fopen(ckpt_path_.c_str(), "rb");
  if (f == nullptr) return false;
  ::fseek(f, 0, SEEK_END);
  const long size = ::ftell(f);
  ::fseek(f, 0, SEEK_SET);
  out->resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool read_ok =
      out->empty() ||
      ::fread(out->data(), 1, out->size(), f) == out->size();
  ::fclose(f);
  if (!read_ok) return false;
  // Cache it: the next load should not re-hit the disk.
  checkpoint_ = *out;
  have_checkpoint_ = true;
  stats_.checkpoint_bytes = checkpoint_.size();
  return true;
}

std::int64_t ProcWorker::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ProcWorker::timer_later(const Timer& a, const Timer& b) {
  // push_heap/pop_heap keep a max-heap; invert for a min-heap on
  // (deadline, seq).
  if (a.deadline_ns != b.deadline_ns) return a.deadline_ns > b.deadline_ns;
  return a.seq > b.seq;
}

int ProcWorker::next_timeout_ms() const {
  std::int64_t delta = -1;
  if (!timers_.empty()) {
    delta = std::max<std::int64_t>(0, timers_.front().deadline_ns - now_ns());
  }
  if (cfg_stats_ && stats_interval_ns_ > 0) {
    const std::int64_t stats_delta =
        std::max<std::int64_t>(0, next_stats_ns_ - now_ns());
    if (delta < 0 || stats_delta < delta) delta = stats_delta;
  }
  if (delta < 0) return -1;
  if (delta == 0) return 0;
  // Round up so we never wake a hair before the deadline and spin.
  return static_cast<int>(delta / 1000000 + 1);
}

void ProcWorker::fire_due_timers() {
  const std::int64_t now = now_ns();
  while (!timers_.empty() && timers_.front().deadline_ns <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    const Timer t = timers_.back();
    timers_.pop_back();
    ++stats_.timers_fired;
    const std::int64_t t0 = now_ns();
    WireFrame grant;
    grant.type = WireType::kGrant;
    grant.pe = static_cast<std::uint32_t>(pe_);
    grant.token = t.token;
    grant.arg = static_cast<std::uint64_t>(GrantKind::kTimer) |
                net::kGrantOkBit;
    if (!conn_.send_frame(grant)) shutdown_ = true;
    if (cfg_trace_) {
      record_span(obs::ProcSpanKind::kTimerFire, 0, t.token, t0, now_ns());
    }
  }
}

void ProcWorker::attach_peer(int peer_pe, net::FrameConn conn, bool replay) {
  Peer& peer = peers_[static_cast<std::size_t>(peer_pe)];
  if (peer.conn.valid()) {
    // A live connection being replaced means the previous incarnation of
    // this peer died: drop it, unparsed bytes and all.  Any hop that was in
    // flight on it is covered by the supervisor replaying its kSend into
    // the fresh incarnation, which regenerates the payload whole.
    peer.conn.close();
  }
  peer.conn = std::move(conn);
  peer.conn.set_nonblocking();
  peer.last_seq_in = 0;  // dedup marks are per connection
  if (replay) {
    // Blind-replay the retained window in seq order.  The receiver's
    // per-connection high-water mark drops what it already verified; the
    // parent's token-keyed action map drops any duplicate grant.  Exactly
    // once, without a handshake round-trip.
    for (const WireFrame& hop : peer.retained) {
      ++stats_.hops_replayed;
      if (!peer.conn.send_frame(hop)) {
        peer.conn.close();
        return;
      }
    }
  }
  for (const WireFrame& hop : peer.queued) {
    if (!peer.conn.send_frame(hop)) {
      peer.conn.close();
      return;
    }
  }
  peer.queued.clear();
  // A dial-in may arrive with hops already buffered behind its kPeerHello;
  // they belong to this connection, so drain them now rather than waiting
  // for the next poll wake-up.
  WireFrame frame;
  try {
    while (!shutdown_ && peer.conn.valid() && peer.conn.next_frame(&frame)) {
      if (frame.type == WireType::kHop) handle_peer_hop(peer_pe, frame);
    }
  } catch (...) {
    peer.conn.close();
  }
}

void ProcWorker::send_direct_hop(const WireFrame& send) {
  const int dst = static_cast<int>(send.pe);
  const std::int64_t t0 = now_ns();
  const std::uint64_t seed =
      send.token ^ (static_cast<std::uint64_t>(pe_) << 32) ^
      (static_cast<std::uint64_t>(send.pe) << 48);
  net::wire_fill_pattern(scratch_, static_cast<std::size_t>(send.arg), seed);
  WireFrame hop;
  hop.type = WireType::kHop;
  hop.pe = send.pe;  // destination
  hop.src = static_cast<std::uint32_t>(pe_);
  hop.token = send.token;
  hop.arg = net::wire_checksum(scratch_.data(), scratch_.size(), seed);
  hop.run = run_id_;
  hop.trace = send.trace;
  hop.payload = scratch_;
  ++stats_.hops_out;
  stats_.hop_bytes_out += scratch_.size();
  flight(obs::FlightKind::kFrameOut, static_cast<std::uint8_t>(WireType::kHop),
         send.token, send.pe, scratch_.size());
  if (dst == pe_) {
    // Self-hop: the bytes never touch a socket.  Verify in place and grant;
    // seq stays 0 (nothing to dedup, nothing retained).
    const std::int64_t t1 = now_ns();
    stats_.serialize_ns += static_cast<std::uint64_t>(t1 - t0);
    if (cfg_trace_) {
      record_span(obs::ProcSpanKind::kSerialize, send.trace, send.token, t0,
                  t1);
    }
    handle_peer_hop(pe_, hop);
    return;
  }
  Peer& peer = peers_[static_cast<std::size_t>(dst)];
  hop.seq = peer.next_seq++;
  ++stats_.direct_hops_out;
  if (cfg_mesh_retain_) {
    // Retained until the parent's kHopRetire; the window doubles as the
    // send queue while the edge is down (attach_peer replays it in order).
    peer.retained.push_back(hop);
    if (peer.conn.valid() && !peer.conn.send_frame(hop)) peer.conn.close();
  } else {
    const bool sent = peer.conn.valid() && peer.conn.send_frame(hop);
    if (!sent) {
      if (peer.conn.valid()) peer.conn.close();
      peer.queued.push_back(hop);
    }
  }
  const std::int64_t t1 = now_ns();
  stats_.serialize_ns += static_cast<std::uint64_t>(t1 - t0);
  if (cfg_trace_) {
    record_span(obs::ProcSpanKind::kSerialize, send.trace, send.token, t0, t1);
  }
}

void ProcWorker::handle_peer_hop(int src_pe, const WireFrame& frame) {
  Peer& peer = peers_[static_cast<std::size_t>(src_pe)];
  if (frame.run != run_id_ && src_pe != pe_) {
    if (frame.run > run_id_) {
      // The hop outran its run's kStart (star and mesh channels have no
      // cross-channel ordering): park it until that run opens, so its
      // stats and spans land in the right epoch.
      peer.deferred.push_back(frame);
    }
    // A hop from an already-quiesced run carries a canceled action: drop
    // it (the parent's token map would ignore its grant anyway).
    return;
  }
  if (frame.seq != 0) {
    if (frame.seq <= peer.last_seq_in) {
      // A replayed hop this connection already verified (the sender blind-
      // resends its whole retained window after a re-broker).
      ++stats_.frames_deduped;
      flight(obs::FlightKind::kDedupDrop,
             static_cast<std::uint8_t>(frame.type), frame.token, frame.seq,
             peer.last_seq_in);
      return;
    }
    peer.last_seq_in = frame.seq;
  }
  ++stats_.frames_seen;
  flight(obs::FlightKind::kFrameIn, static_cast<std::uint8_t>(frame.type),
         frame.token, frame.seq, static_cast<std::uint64_t>(src_pe));
  const std::int64_t t0 = now_ns();
  const std::uint64_t seed =
      frame.token ^ (static_cast<std::uint64_t>(frame.src) << 32) ^
      (static_cast<std::uint64_t>(frame.pe) << 48);
  const std::uint64_t sum =
      net::wire_checksum(frame.payload.data(), frame.payload.size(), seed);
  const bool ok = sum == frame.arg;
  ++stats_.hops_in;
  ++stats_.direct_hops_in;
  stats_.hop_bytes_in += frame.payload.size();
  // The grant rides the parent star: execution order and exactly-once
  // bookkeeping stay with the supervisor even though the payload bytes
  // never passed through it.
  WireFrame grant;
  grant.type = WireType::kGrant;
  grant.pe = static_cast<std::uint32_t>(pe_);
  grant.token = frame.token;
  grant.arg = static_cast<std::uint64_t>(GrantKind::kHop) |
              (ok ? net::kGrantOkBit : 0);
  if (!conn_.send_frame(grant)) shutdown_ = true;
  const std::int64_t t1 = now_ns();
  stats_.verify_ns += static_cast<std::uint64_t>(t1 - t0);
  if (cfg_trace_) {
    record_span(obs::ProcSpanKind::kVerifyDirect, frame.trace, frame.token,
                t0, t1);
  }
}

void ProcWorker::accept_peers() {
  if (peer_listener_ == nullptr) return;
  for (;;) {
    const int fd = peer_listener_->accept_one(0.0);
    if (fd < 0) break;
    net::FrameConn conn(fd);
    conn.set_nonblocking();
    handshaking_.push_back(std::move(conn));
  }
}

void ProcWorker::pump_handshake(std::size_t idx) {
  net::FrameConn& conn = handshaking_[idx];
  bool drop = false;
  WireFrame frame;
  if (!conn.read_some()) {
    drop = true;
  } else {
    try {
      if (!conn.next_frame(&frame)) return;  // hello incomplete; wait
    } catch (...) {
      drop = true;
    }
  }
  if (!drop && (frame.type != WireType::kPeerHello ||
                frame.pe >= static_cast<std::uint32_t>(pe_count_) ||
                static_cast<int>(frame.pe) == pe_)) {
    drop = true;  // not a peer of ours; hang up
  }
  if (drop) {
    conn.close();
    handshaking_.erase(handshaking_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
    return;
  }
  const int peer_pe = static_cast<int>(frame.pe);
  net::FrameConn adopted = std::move(conn);
  handshaking_.erase(handshaking_.begin() + static_cast<std::ptrdiff_t>(idx));
  // A dial-in means the peer is a fresh incarnation (or we are): replay our
  // retained window into it.
  attach_peer(peer_pe, std::move(adopted), /*replay=*/true);
}

void ProcWorker::pump_peer(int peer_pe) {
  Peer& peer = peers_[static_cast<std::size_t>(peer_pe)];
  if (!peer.conn.valid()) return;
  if (!peer.conn.read_some()) {
    // Peer death.  A partly-received (torn) frame dies with the buffer; the
    // supervisor replays the lost hops' kSends into the respawned peer,
    // which regenerates them whole.
    peer.conn.close();
    return;
  }
  WireFrame frame;
  try {
    while (!shutdown_ && peer.conn.valid() && peer.conn.next_frame(&frame)) {
      if (frame.type == WireType::kHop) handle_peer_hop(peer_pe, frame);
      // Anything else on a peer channel is noise; drop it.
    }
  } catch (...) {
    peer.conn.close();  // malformed peer traffic: tear the edge down
  }
}

void ProcWorker::handle(const WireFrame& frame) {
  // Sequenced frames (parent-retained, grant-bearing) are deduplicated
  // against a high-water mark: after a respawn the parent blind-resends its
  // whole retained window, and any frame this incarnation already granted
  // must be dropped unprocessed or its action would run twice.  Seqs are
  // monotone per connection and stamped once (a resend keeps its original
  // seq), so `<=` is exact, not heuristic.
  if (frame.seq != 0) {
    if (frame.seq <= last_seq_) {
      ++stats_.frames_deduped;
      flight(obs::FlightKind::kDedupDrop,
             static_cast<std::uint8_t>(frame.type), frame.token, frame.seq,
             last_seq_);
      return;
    }
    last_seq_ = frame.seq;
  }
  ++stats_.frames_seen;
  if (frame.type != WireType::kPing) {
    // Heartbeats are too chatty for a 256-slot ring meant to explain a
    // death; everything else the worker saw is part of the story.
    flight(obs::FlightKind::kFrameIn, static_cast<std::uint8_t>(frame.type),
           frame.token, frame.seq, timers_.size());
  }
  switch (frame.type) {
    case WireType::kStart:
      // Stats are per-run; timers are NOT cleared — a post_after issued
      // before run() is already ticking here, and stale timers from a
      // previous run were canceled by its quiesce.  The checkpoint (and its
      // size gauge) outlives runs: recovery may restore from a snapshot
      // taken in an earlier run.
      stats_ = net::WireWorkerStats{};
      stats_.frames_seen = 1;  // this frame
      stats_.checkpoint_bytes = have_checkpoint_ ? checkpoint_.size() : 0;
      spans_.clear();  // spans are per-run, like the stats
      run_id_ = static_cast<std::uint32_t>(frame.arg);
      // Hop retention is per-run too: the parent canceled the actions any
      // leftover hop would grant.  Edge connections and seq counters stay —
      // they belong to this incarnation, not to a run.
      for (Peer& peer : peers_) {
        peer.retained.clear();
        peer.queued.clear();
      }
      flight(obs::FlightKind::kRunStart, 0, 0, frame.arg, last_seq_);
      // Direct hops that outran this kStart were parked; their run is open
      // now, so verify them inside it (stats and spans in the right epoch).
      for (std::size_t p = 0; p < peers_.size(); ++p) {
        Peer& peer = peers_[p];
        if (peer.deferred.empty()) continue;
        std::vector<WireFrame> parked;
        parked.swap(peer.deferred);
        for (const WireFrame& hop : parked) {
          if (shutdown_) break;
          handle_peer_hop(static_cast<int>(p), hop);
        }
      }
      break;

    case WireType::kConfig:
      cfg_trace_ = (frame.arg & net::kCfgTrace) != 0;
      cfg_stats_ = (frame.arg & net::kCfgStatsDelta) != 0;
      cfg_mesh_retain_ = (frame.arg & net::kCfgMeshRetain) != 0;
      stats_interval_ns_ = static_cast<std::int64_t>(frame.token);
      next_stats_ns_ = now_ns() + stats_interval_ns_;
      flight(obs::FlightKind::kConfig, 0, 0, frame.arg, frame.token);
      break;

    case WireType::kPost: {
      // The grant is what makes the action runnable: scheduling authority
      // for this PE lives here, not in the parent.
      ++stats_.posts_granted;
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kPost) |
                  net::kGrantOkBit;
      if (!conn_.send_frame(grant)) shutdown_ = true;
      break;
    }

    case WireType::kTimer: {
      Timer t;
      t.deadline_ns = now_ns() + static_cast<std::int64_t>(frame.arg);
      t.seq = timer_seq_++;
      t.token = frame.token;
      timers_.push_back(t);
      std::push_heap(timers_.begin(), timers_.end(), timer_later);
      break;
    }

    case WireType::kSend: {
      if (mesh_) {
        // Mesh data plane: the payload goes straight to the destination
        // worker; only the grant comes back over the star.
        send_direct_hop(frame);
        break;
      }
      // Materialize the payload in THIS address space; the bytes cross to
      // the parent and again to the destination worker, which re-derives
      // the checksum from (token, src, dst) and verifies it.
      const std::int64_t t0 = now_ns();
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(pe_) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      net::wire_fill_pattern(scratch_, static_cast<std::size_t>(frame.arg),
                             seed);
      WireFrame hop;
      hop.type = WireType::kHop;
      hop.pe = frame.pe;  // destination
      hop.src = static_cast<std::uint32_t>(pe_);
      hop.token = frame.token;
      hop.arg = net::wire_checksum(scratch_.data(), scratch_.size(), seed);
      hop.trace = frame.trace;  // the relayed frame keeps the trace id
      hop.payload = scratch_;
      ++stats_.hops_out;
      stats_.hop_bytes_out += scratch_.size();
      flight(obs::FlightKind::kFrameOut,
             static_cast<std::uint8_t>(WireType::kHop), frame.token, frame.pe,
             scratch_.size());
      if (!conn_.send_frame(hop)) shutdown_ = true;
      const std::int64_t t1 = now_ns();
      stats_.serialize_ns += static_cast<std::uint64_t>(t1 - t0);
      if (cfg_trace_) {
        record_span(obs::ProcSpanKind::kSerialize, frame.trace, frame.token,
                    t0, t1);
      }
      break;
    }

    case WireType::kHop: {
      // Inbound payload, routed by the parent from the source worker.
      const std::int64_t t0 = now_ns();
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(frame.src) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      const std::uint64_t sum =
          net::wire_checksum(frame.payload.data(), frame.payload.size(), seed);
      const bool ok = sum == frame.arg;
      ++stats_.hops_in;
      stats_.hop_bytes_in += frame.payload.size();
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kHop) |
                  (ok ? net::kGrantOkBit : 0);
      if (!conn_.send_frame(grant)) shutdown_ = true;
      const std::int64_t t1 = now_ns();
      stats_.verify_ns += static_cast<std::uint64_t>(t1 - t0);
      if (cfg_trace_) {
        record_span(obs::ProcSpanKind::kVerify, frame.trace, frame.token, t0,
                    t1);
      }
      break;
    }

    case WireType::kQuiesce: {
      // Flush buffered spans first: frames are ordered, so the parent holds
      // the complete span set before it sees the ack that ends the run.
      flush_spans();
      WireFrame ack;
      ack.type = WireType::kQuiesceAck;
      ack.pe = static_cast<std::uint32_t>(pe_);
      for (const Timer& t : timers_) ack.tokens.push_back(t.token);
      stats_.timers_canceled += timers_.size();
      flight(obs::FlightKind::kQuiesce, 0, 0, timers_.size(), 0);
      timers_.clear();
      // The run is over: every retained hop's action was either granted or
      // canceled by the parent, so the windows are dead weight.
      for (Peer& peer : peers_) {
        peer.retained.clear();
        peer.queued.clear();
      }
      refresh_stats_snapshot();
      ack.stats = stats_;
      if (!conn_.send_frame(ack)) shutdown_ = true;
      break;
    }

    case WireType::kStatus: {
      WireFrame reply;
      reply.type = WireType::kStatusReply;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.arg = timers_.size();
      refresh_stats_snapshot();
      reply.stats = stats_;
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kShutdown:
      flight(obs::FlightKind::kShutdown, 0, 0, 0, 0);
      shutdown_ = true;
      break;

    case WireType::kPing: {
      // Heartbeat.  Answering proves the loop is alive and draining its
      // socket — a wedged worker (stopped, spinning, deadlocked on a write
      // the parent will drain) is exactly what fails to pong in time.
      ++stats_.pings_answered;
      WireFrame pong;
      pong.type = WireType::kPong;
      pong.pe = static_cast<std::uint32_t>(pe_);
      pong.token = frame.token;
      // Clock-offset piggyback: our steady clock, sampled as close to the
      // send as possible.  The parent pairs it with its own send/recv
      // timestamps for the NTP midpoint estimate.
      pong.arg = static_cast<std::uint64_t>(now_ns());
      if (!conn_.send_frame(pong)) shutdown_ = true;
      break;
    }

    case WireType::kCheckpointSave:
      save_checkpoint(frame.payload);
      flight(obs::FlightKind::kCheckpointSave, 0, frame.token,
             frame.payload.size(), 0);
      break;

    case WireType::kCheckpointLoad: {
      WireFrame reply;
      reply.type = WireType::kCheckpointData;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.token = frame.token;
      std::vector<std::byte> bytes;
      reply.arg = load_checkpoint(&bytes) ? 1 : 0;
      flight(obs::FlightKind::kCheckpointLoad, 0, frame.token, bytes.size(),
             reply.arg);
      reply.payload = std::move(bytes);
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kPeerInfo: {
      // Supervisor: "peer `pe` listens on loopback port `arg`; dial it."
      // Sent when brokering an initial TCP mesh and after a peer respawn.
      if (!mesh_) break;
      const int peer_pe = static_cast<int>(frame.pe);
      if (peer_pe < 0 || peer_pe >= pe_count_ || peer_pe == pe_) break;
      int fd = -1;
      try {
        fd = net::wire_connect_loopback(static_cast<std::uint16_t>(frame.arg));
      } catch (...) {
        break;  // peer died again; the next kPeerInfo round retries
      }
      net::FrameConn conn(fd);
      WireFrame ident;
      ident.type = WireType::kPeerHello;
      ident.pe = static_cast<std::uint32_t>(pe_);
      if (!conn.send_frame(ident)) {  // still blocking: writes through
        conn.close();
        break;
      }
      attach_peer(peer_pe, std::move(conn), /*replay=*/true);
      break;
    }

    case WireType::kHopRetire: {
      // The hop to `pe` with this token was granted and its action ran:
      // drop it from the retained window (it must never be replayed).
      const int dst = static_cast<int>(frame.pe);
      if (dst < 0 || dst >= static_cast<int>(peers_.size())) break;
      auto& retained = peers_[static_cast<std::size_t>(dst)].retained;
      for (auto it = retained.begin(); it != retained.end(); ++it) {
        if (it->token == frame.token) {
          retained.erase(it);
          break;
        }
      }
      break;
    }

    case WireType::kHello:
    case WireType::kGrant:
    case WireType::kQuiesceAck:
    case WireType::kStatusReply:
    case WireType::kPong:
    case WireType::kCheckpointData:
    case WireType::kStatsDelta:
    case WireType::kSpans:
    case WireType::kPeerHello:  // peer-channel frame; never on the star
      // Parent-bound frames; a parent never sends them.
      break;
  }
}

int ProcWorker::run() {
  WireFrame hello;
  hello.type = WireType::kHello;
  hello.pe = static_cast<std::uint32_t>(pe_);
  hello.arg = net::kWireProtocolVersion;
  hello.token = peer_port();  // mesh dial-back port; 0 = no listener
  if (!conn_.send_frame(hello)) {
    conn_.close();
    return 0;  // parent already gone
  }

  std::vector<pollfd> pfds;
  std::vector<int> peer_pes;  // pe behind each peer pollfd slot
  while (!shutdown_) {
    pfds.clear();
    peer_pes.clear();
    pfds.push_back(pollfd{conn_.fd(), POLLIN, 0});
    std::size_t listener_at = 0;  // 0 = not polled
    std::size_t handshake_at = 0;
    std::size_t n_handshake = 0;
    std::size_t peers_at = 0;
    if (mesh_) {
      if (peer_listener_ != nullptr) {
        listener_at = pfds.size();
        pfds.push_back(pollfd{peer_listener_->fd(), POLLIN, 0});
      }
      handshake_at = pfds.size();
      n_handshake = handshaking_.size();
      for (const net::FrameConn& conn : handshaking_) {
        pfds.push_back(pollfd{conn.fd(), POLLIN, 0});
      }
      peers_at = pfds.size();
      for (std::size_t p = 0; p < peers_.size(); ++p) {
        const Peer& peer = peers_[p];
        if (!peer.conn.valid()) continue;
        short events = POLLIN;
        if (peer.conn.has_outgoing()) events |= POLLOUT;
        peer_pes.push_back(static_cast<int>(p));
        pfds.push_back(pollfd{peer.conn.fd(), events, 0});
      }
    }
    const std::int64_t wait0 = now_ns();
    const int r = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                         next_timeout_ms());
    const std::int64_t wait1 = now_ns();
    stats_.idle_ns += static_cast<std::uint64_t>(wait1 - wait0);
    if (cfg_trace_ && wait1 - wait0 >= kWaitSpanFloorNs) {
      record_span(obs::ProcSpanKind::kWait, 0, 0, wait0, wait1);
    }
    if (r < 0) continue;  // EINTR
    fire_due_timers();
    if (r > 0) {
      if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (!conn_.read_some()) break;  // parent gone: exit quietly
        WireFrame frame;
        try {
          while (!shutdown_ && conn_.next_frame(&frame)) handle(frame);
        } catch (...) {
          conn_.close();
          return 1;  // malformed traffic from the parent
        }
      }
      if (mesh_ && !shutdown_) {
        if (listener_at != 0 && (pfds[listener_at].revents & POLLIN) != 0) {
          accept_peers();
        }
        // Downward so an erase inside pump_handshake does not shift the
        // indices still to visit (new accepts land past n_handshake).
        for (std::size_t i = n_handshake; i-- > 0;) {
          if ((pfds[handshake_at + i].revents &
               (POLLIN | POLLHUP | POLLERR)) != 0) {
            pump_handshake(i);
          }
        }
        for (std::size_t i = 0; i < peer_pes.size(); ++i) {
          const pollfd& pfd = pfds[peers_at + i];
          Peer& peer = peers_[static_cast<std::size_t>(peer_pes[i])];
          // Skip slots whose connection was torn down or replaced while we
          // handled earlier events this pass.
          if (!peer.conn.valid() || peer.conn.fd() != pfd.fd) continue;
          if ((pfd.revents & POLLOUT) != 0 && !peer.conn.flush()) {
            peer.conn.close();
            continue;
          }
          if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            pump_peer(peer_pes[i]);
          }
        }
      }
    }
    maybe_stats_tick();
    stats_.busy_ns += static_cast<std::uint64_t>(now_ns() - wait1);
  }
  conn_.close();
  for (Peer& peer : peers_) {
    if (peer.conn.valid()) peer.conn.close();
  }
  for (net::FrameConn& conn : handshaking_) conn.close();
  return 0;
}

int proc_worker_main(int fd, int pe, std::string ckpt_path,
                     std::string flight_path) {
  return ProcWorker(fd, pe, std::move(ckpt_path), std::move(flight_path))
      .run();
}

int proc_worker_main(const ProcWorkerConfig& config) {
  return ProcWorker(config).run();
}

}  // namespace navcpp::machine
