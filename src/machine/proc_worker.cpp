#include "machine/proc_worker.h"

#include <poll.h>
#include <stdio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace navcpp::machine {

using net::GrantKind;
using net::WireFrame;
using net::WireType;

ProcWorker::ProcWorker(int fd, int pe, std::string ckpt_path)
    : conn_(fd), pe_(pe), ckpt_path_(std::move(ckpt_path)) {
  run_start_ns_ = 0;
}

void ProcWorker::save_checkpoint(const std::vector<std::byte>& bytes) {
  checkpoint_ = bytes;
  have_checkpoint_ = true;
  stats_.checkpoint_bytes = checkpoint_.size();
  if (ckpt_path_.empty()) return;
  // Spill atomically (write temp, rename) so a SIGKILL mid-write leaves the
  // previous checkpoint intact, never a torn file.
  const std::string tmp = ckpt_path_ + ".tmp";
  FILE* f = ::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;  // durability is best-effort; memory copy stands
  const bool wrote =
      bytes.empty() ||
      ::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ::fclose(f);
  if (wrote) {
    ::rename(tmp.c_str(), ckpt_path_.c_str());
  } else {
    ::unlink(tmp.c_str());
  }
}

bool ProcWorker::load_checkpoint(std::vector<std::byte>* out) {
  if (have_checkpoint_) {
    *out = checkpoint_;
    return true;
  }
  if (ckpt_path_.empty()) return false;
  FILE* f = ::fopen(ckpt_path_.c_str(), "rb");
  if (f == nullptr) return false;
  ::fseek(f, 0, SEEK_END);
  const long size = ::ftell(f);
  ::fseek(f, 0, SEEK_SET);
  out->resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool read_ok =
      out->empty() ||
      ::fread(out->data(), 1, out->size(), f) == out->size();
  ::fclose(f);
  if (!read_ok) return false;
  // Cache it: the next load should not re-hit the disk.
  checkpoint_ = *out;
  have_checkpoint_ = true;
  stats_.checkpoint_bytes = checkpoint_.size();
  return true;
}

std::int64_t ProcWorker::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ProcWorker::timer_later(const Timer& a, const Timer& b) {
  // push_heap/pop_heap keep a max-heap; invert for a min-heap on
  // (deadline, seq).
  if (a.deadline_ns != b.deadline_ns) return a.deadline_ns > b.deadline_ns;
  return a.seq > b.seq;
}

int ProcWorker::next_timeout_ms() const {
  if (timers_.empty()) return -1;
  const std::int64_t delta = timers_.front().deadline_ns - now_ns();
  if (delta <= 0) return 0;
  // Round up so we never wake a hair before the deadline and spin.
  return static_cast<int>(delta / 1000000 + 1);
}

void ProcWorker::fire_due_timers() {
  const std::int64_t now = now_ns();
  while (!timers_.empty() && timers_.front().deadline_ns <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    const Timer t = timers_.back();
    timers_.pop_back();
    ++stats_.timers_fired;
    WireFrame grant;
    grant.type = WireType::kGrant;
    grant.pe = static_cast<std::uint32_t>(pe_);
    grant.token = t.token;
    grant.arg = static_cast<std::uint64_t>(GrantKind::kTimer) |
                net::kGrantOkBit;
    if (!conn_.send_frame(grant)) shutdown_ = true;
  }
}

void ProcWorker::handle(const WireFrame& frame) {
  // Sequenced frames (parent-retained, grant-bearing) are deduplicated
  // against a high-water mark: after a respawn the parent blind-resends its
  // whole retained window, and any frame this incarnation already granted
  // must be dropped unprocessed or its action would run twice.  Seqs are
  // monotone per connection and stamped once (a resend keeps its original
  // seq), so `<=` is exact, not heuristic.
  if (frame.seq != 0) {
    if (frame.seq <= last_seq_) {
      ++stats_.frames_deduped;
      return;
    }
    last_seq_ = frame.seq;
  }
  ++stats_.frames_seen;
  switch (frame.type) {
    case WireType::kStart:
      // Stats are per-run; timers are NOT cleared — a post_after issued
      // before run() is already ticking here, and stale timers from a
      // previous run were canceled by its quiesce.  The checkpoint (and its
      // size gauge) outlives runs: recovery may restore from a snapshot
      // taken in an earlier run.
      stats_ = net::WireWorkerStats{};
      stats_.frames_seen = 1;  // this frame
      stats_.checkpoint_bytes = have_checkpoint_ ? checkpoint_.size() : 0;
      break;

    case WireType::kPost: {
      // The grant is what makes the action runnable: scheduling authority
      // for this PE lives here, not in the parent.
      ++stats_.posts_granted;
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kPost) |
                  net::kGrantOkBit;
      if (!conn_.send_frame(grant)) shutdown_ = true;
      break;
    }

    case WireType::kTimer: {
      Timer t;
      t.deadline_ns = now_ns() + static_cast<std::int64_t>(frame.arg);
      t.seq = timer_seq_++;
      t.token = frame.token;
      timers_.push_back(t);
      std::push_heap(timers_.begin(), timers_.end(), timer_later);
      break;
    }

    case WireType::kSend: {
      // Materialize the payload in THIS address space; the bytes cross to
      // the parent and again to the destination worker, which re-derives
      // the checksum from (token, src, dst) and verifies it.
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(pe_) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      net::wire_fill_pattern(scratch_, static_cast<std::size_t>(frame.arg),
                             seed);
      WireFrame hop;
      hop.type = WireType::kHop;
      hop.pe = frame.pe;  // destination
      hop.src = static_cast<std::uint32_t>(pe_);
      hop.token = frame.token;
      hop.arg = net::wire_checksum(scratch_.data(), scratch_.size(), seed);
      hop.payload = scratch_;
      ++stats_.hops_out;
      stats_.hop_bytes_out += scratch_.size();
      if (!conn_.send_frame(hop)) shutdown_ = true;
      break;
    }

    case WireType::kHop: {
      // Inbound payload, routed by the parent from the source worker.
      const std::uint64_t seed =
          frame.token ^ (static_cast<std::uint64_t>(frame.src) << 32) ^
          (static_cast<std::uint64_t>(frame.pe) << 48);
      const std::uint64_t sum =
          net::wire_checksum(frame.payload.data(), frame.payload.size(), seed);
      const bool ok = sum == frame.arg;
      ++stats_.hops_in;
      stats_.hop_bytes_in += frame.payload.size();
      WireFrame grant;
      grant.type = WireType::kGrant;
      grant.pe = static_cast<std::uint32_t>(pe_);
      grant.token = frame.token;
      grant.arg = static_cast<std::uint64_t>(GrantKind::kHop) |
                  (ok ? net::kGrantOkBit : 0);
      if (!conn_.send_frame(grant)) shutdown_ = true;
      break;
    }

    case WireType::kQuiesce: {
      WireFrame ack;
      ack.type = WireType::kQuiesceAck;
      ack.pe = static_cast<std::uint32_t>(pe_);
      for (const Timer& t : timers_) ack.tokens.push_back(t.token);
      stats_.timers_canceled += timers_.size();
      timers_.clear();
      ack.stats = stats_;
      if (!conn_.send_frame(ack)) shutdown_ = true;
      break;
    }

    case WireType::kStatus: {
      WireFrame reply;
      reply.type = WireType::kStatusReply;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.arg = timers_.size();
      reply.stats = stats_;
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kShutdown:
      shutdown_ = true;
      break;

    case WireType::kPing: {
      // Heartbeat.  Answering proves the loop is alive and draining its
      // socket — a wedged worker (stopped, spinning, deadlocked on a write
      // the parent will drain) is exactly what fails to pong in time.
      ++stats_.pings_answered;
      WireFrame pong;
      pong.type = WireType::kPong;
      pong.pe = static_cast<std::uint32_t>(pe_);
      pong.token = frame.token;
      if (!conn_.send_frame(pong)) shutdown_ = true;
      break;
    }

    case WireType::kCheckpointSave:
      save_checkpoint(frame.payload);
      break;

    case WireType::kCheckpointLoad: {
      WireFrame reply;
      reply.type = WireType::kCheckpointData;
      reply.pe = static_cast<std::uint32_t>(pe_);
      reply.token = frame.token;
      std::vector<std::byte> bytes;
      reply.arg = load_checkpoint(&bytes) ? 1 : 0;
      reply.payload = std::move(bytes);
      if (!conn_.send_frame(reply)) shutdown_ = true;
      break;
    }

    case WireType::kHello:
    case WireType::kGrant:
    case WireType::kQuiesceAck:
    case WireType::kStatusReply:
    case WireType::kPong:
    case WireType::kCheckpointData:
      // Parent-bound frames; a parent never sends them.
      break;
  }
}

int ProcWorker::run() {
  WireFrame hello;
  hello.type = WireType::kHello;
  hello.pe = static_cast<std::uint32_t>(pe_);
  hello.arg = net::kWireProtocolVersion;
  if (!conn_.send_frame(hello)) {
    conn_.close();
    return 0;  // parent already gone
  }

  while (!shutdown_) {
    pollfd pfd{conn_.fd(), POLLIN, 0};
    const int r = ::poll(&pfd, 1, next_timeout_ms());
    if (r < 0) continue;  // EINTR
    fire_due_timers();
    if (r == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (!conn_.read_some()) break;  // parent gone: exit quietly
      WireFrame frame;
      try {
        while (!shutdown_ && conn_.next_frame(&frame)) handle(frame);
      } catch (...) {
        conn_.close();
        return 1;  // malformed traffic from the parent
      }
    }
  }
  conn_.close();
  return 0;
}

int proc_worker_main(int fd, int pe, std::string ckpt_path) {
  return ProcWorker(fd, pe, std::move(ckpt_path)).run();
}

}  // namespace navcpp::machine
