// ProcMachine: one OS *process* per PE — the honest deployment model.
//
// The sim and threaded backends run every PE in one address space, so a hop
// closure that captures a raw pointer into the "remote" PE's memory works
// by accident.  ProcMachine makes the boundary real: each PE is a forked
// worker process (fork/exec of tools/navcpp_worker, with a fork-only
// fallback), connected to the parent over a Unix-domain socketpair
// (loopback TCP fallback) speaking the length-prefixed net/wire.h protocol.
//
// Division of labor (see docs/architecture.md, "Process-per-PE backend"):
//
//  * The PARENT executes action closures.  Engine payloads are move-only
//    closures owning C++ coroutine frames; no amount of serialization
//    moves a coroutine frame across an exec boundary, so the closures stay
//    here.  What the parent does NOT own is scheduling, timing, or
//    transport.
//  * Each WORKER owns its PE's substrate: a posted action becomes runnable
//    only when that PE's worker grants its token back; post_after timers
//    live in the worker's timer heap and fire on the worker's clock; and
//    every transmit()'s payload bytes are materialized in the source
//    worker's address space, shipped through the parent to the destination
//    worker, and checksum-verified there — the payload genuinely crosses
//    two address-space boundaries before on_delivery runs.
//
// Ordering: every leg is a FIFO stream socket, so actions on one PE run in
// grant order and transmit() keeps the Engine's per-(src,dst)
// non-overtaking guarantee end to end.  The parent is single-threaded;
// like SimMachine, all Engine calls must come from the constructing thread
// (actions run inside run(), so calls from actions are fine).
//
// Quiescence: the parent counts outstanding tokens.  run() returns when no
// actions are outstanding and every registered task finished; leftover
// timers (e.g. retransmit timers for already-acked frames) are canceled at
// quiesce, which also ships every worker's WireWorkerStats back for the
// metrics registry.  A stall with live tasks and nothing outstanding
// anywhere is a deterministic DeadlockError carrying the runtime's blocked
// report plus the per-worker status the quiesce collected.  A worker that
// dies mid-run surfaces as a typed support::ProcError, never a hang.
//
// Crash tolerance (see docs/architecture.md, "Crash recovery on the
// process backend"): the parent supervises its workers three ways —
// socket EOF (a dead process closes its end), SIGCHLD (a self-pipe wakes
// the poll loop so the zombie is reaped and its exit status captured), and
// heartbeat ping/pong (catches the wedged-but-alive worker EOF cannot see;
// a timed-out worker is escalated with SIGKILL so the EOF path completes
// the teardown).  Heartbeat deadlines are long-action-aware: time the
// parent spends inside an action closure is credited back to every
// worker's deadline, so a long visit never masquerades as a dead worker.
// With Options::recovery enabled, a detected death is survivable: the
// supervisor re-forks the worker (bounded respawns with backoff),
// re-handshakes, re-pushes the PE's checkpoint bytes, and blind-resends
// its retained window of unacknowledged grant-bearing frames — the wire
// seq/dedup layer makes the resend exactly-once and non-overtaking.
//
// Decorators compose unchanged: FaultMachine(ProcMachine) injects frame
// faults in the ReliableChannel layer above, whose retransmit timers run
// on the workers' wall clocks.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "machine/engine.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/proc_trace.h"
#include "support/stopwatch.h"

namespace navcpp::machine {

/// What the supervisor does when a worker dies mid-run.
struct RecoveryPolicy {
  /// Off by default: a worker death is a typed support::ProcError, exactly
  /// the pre-recovery behavior (tests and callers that treat death as
  /// fatal keep their contract).
  bool enabled = false;
  /// Respawn budget *per worker*; exceeding it triggers `on_exhausted`.
  int max_respawns = 3;
  /// Delay before the first respawn; doubles (factor below) per respawn of
  /// the same worker, capped at 1 s.
  double backoff_s = 0.01;
  double backoff_factor = 2.0;
  enum class OnExhausted {
    kFail,    ///< record a ProcError (run() throws)
    kDegrade  ///< black-hole the PE: cancel and drop its pending work,
              ///< keep the run going with the surviving workers
  };
  OnExhausted on_exhausted = OnExhausted::kFail;
};

class ProcMachine final : public Engine {
 public:
  struct Options {
    /// Path of the worker binary; empty = discover (NAVCPP_WORKER env, then
    /// next to /proc/self/exe, then ../tools/), falling back to fork-only.
    std::string worker_path;
    /// Use the loopback-TCP transport instead of a Unix socketpair (also
    /// enabled by NAVCPP_PROC_TCP=1 in the environment).
    bool use_tcp = false;
    /// Mesh data plane: hop payloads travel direct worker<->worker channels
    /// (socketpairs passed at fork on the one-host transport; loopback
    /// dial-back brokered by the supervisor on TCP and after any respawn).
    /// Control traffic — grants, heartbeats, checkpoints, stats, spans —
    /// stays on the parent star either way.  Default on; NAVCPP_PROC_MESH=0
    /// in the environment (or `navcpp_cli run --star`) forces the
    /// parent-relay star data plane.
    bool mesh = true;
    /// Never exec: fork and run the worker loop in the child directly.
    bool force_fork_only = false;
    double hello_timeout_s = 10.0;    ///< worker startup handshake
    double quiesce_timeout_s = 10.0;  ///< per-quiesce ack collection
    /// Heartbeats: ping every interval, escalate to SIGKILL when no pong
    /// lands within the timeout.  Deadlines exclude time the parent spends
    /// executing actions (see the header comment), so a slow *visit* never
    /// trips them — only a genuinely unresponsive worker does.  Interval 0
    /// disables pings entirely.
    double heartbeat_interval_s = 0.25;
    double heartbeat_timeout_s = 2.0;
    /// Worker death handling; disabled (fail-fast) by default.
    RecoveryPolicy recovery;
    /// Directory for per-PE checkpoint spill files (pe<N>.ckpt).  Empty =
    /// workers keep checkpoints in memory only, and a respawned worker is
    /// re-seeded from the parent's retained copy (modeled stable storage).
    std::string checkpoint_dir;
    /// Distributed tracing: workers record serialize/verify/wait/timer
    /// spans (obs::ProcSpan) against their own clocks and ship them over
    /// the wire; the parent stamps a trace id on every data frame and
    /// estimates per-worker clock offsets from the heartbeat piggyback.
    /// Read the merged result with worker_lanes() / obs::proc_trace_json.
    /// Also enabled by NAVCPP_PROC_TRACE=1 in the environment.
    bool trace = false;
    /// Period of the workers' mid-run kStatsDelta telemetry frames (live
    /// stats between quiesces; see worker_stats() and set_telemetry).
    /// <= 0 disables the deltas; quiesce-time stats always arrive.
    double stats_interval_s = 0.25;
    /// Directory for per-PE flight-recorder ring files (pe<N>.flight).
    /// Empty = a private temp dir, created when the recorder is active
    /// (tracing or recovery enabled) and removed on destruction.
    std::string flight_dir;
  };

  /// One row of live telemetry, assembled from the most recent kStatsDelta
  /// of each worker plus the parent's own action clock.
  struct LiveTelemetry {
    int pe = 0;
    bool alive = false;
    bool degraded = false;
    int respawns = 0;
    double compute_s = 0.0;  ///< parent-side action seconds for this PE
    std::uint64_t queue_depth = 0;  ///< worker timer-queue depth
    net::WireWorkerStats stats;     ///< cumulative worker-side counters
  };

  /// Typed report from kill_worker: what the signal actually hit.
  enum class KillResult {
    kSignaled,     ///< SIGKILL delivered to a live worker
    kAlreadyDead,  ///< worker already dead/reaped: a no-op, never UB
  };

  explicit ProcMachine(int pe_count) : ProcMachine(pe_count, Options{}) {}
  ProcMachine(int pe_count, Options options);
  ~ProcMachine() override;

  ProcMachine(const ProcMachine&) = delete;
  ProcMachine& operator=(const ProcMachine&) = delete;

  // --- Engine ------------------------------------------------------------
  int pe_count() const override { return pe_count_; }
  void post(int pe, support::MoveFunction action) override;
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override;
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int /*pe*/, double /*seconds*/) override {}
  double now(int pe) const override;
  double finish_time() const override { return finish_time_; }
  void task_started() override;
  void task_finished() override;
  void fail(std::exception_ptr error) noexcept override;
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    blocked_reporter_ = std::move(reporter);
  }
  void run() override;
  void set_metrics(obs::Registry* registry) override;

  // --- knobs / audits ----------------------------------------------------

  /// Abort run() with a diagnosis if no wire activity happens for this long
  /// while work is outstanding (a wedged-but-alive worker).  Zero disables
  /// (default); the deterministic outstanding==0 deadlock detection works
  /// regardless.
  void set_stall_timeout(double seconds) { stall_timeout_s_ = seconds; }

  /// Total bytes/messages passed to transmit() this run (cost audit, like
  /// the other backends).  run() resets them.
  std::uint64_t transmitted_bytes() const { return transmitted_bytes_; }
  std::uint64_t transmitted_messages() const { return transmitted_messages_; }
  /// Clear per-run state: transmit counters, worker stats/spans, clock
  /// samples, recovery timelines, per-PE action clocks.  run() calls this,
  /// so a reused engine never leaks spans or stats deltas from the previous
  /// run into the next one.
  void reset_stats();

  /// Worker-side counters of `pe`: live (updated by kStatsDelta frames
  /// mid-run when Options::stats_interval_s > 0) and final as of the last
  /// quiesce.
  const net::WireWorkerStats& worker_stats(int pe) const;

  bool worker_alive(int pe) const;

  // --- cross-process observability ----------------------------------------

  /// Parent steady-clock ns at the current run's start: the epoch that
  /// anchors every corrected worker timestamp.
  std::int64_t run_epoch_ns() const { return run_epoch_ns_; }

  /// Wall seconds the parent spent executing `pe`'s action closures this
  /// run (the proc backend's per-PE compute column).
  double action_seconds(int pe) const;

  /// Per-worker clock-offset model, estimated from the kPing/kPong
  /// timestamp piggyback (minimum-RTT NTP midpoint).
  const obs::WorkerClock& worker_clock(int pe) const;

  /// The worker-side halves of the merged trace: one lane per PE with its
  /// clock model and every ProcSpan harvested this run.  Requires
  /// Options::trace; feed to obs::proc_trace_json together with the
  /// parent's navp::TraceRecorder snapshot.
  std::vector<obs::WorkerLane> worker_lanes() const;

  /// Supervisor-side recovery timelines of this run (one per worker death
  /// handled), each with the milestones (death detected -> backoff ->
  /// respawn -> replay) and the flight-recorder ring harvested from the
  /// dead incarnation.
  const std::vector<obs::RecoveryTimeline>& recovery_timelines() const {
    return recovery_timelines_;
  }

  /// Live telemetry callback: invoked from inside run()'s poll loop every
  /// `interval_s` of run time with one row per PE (`navcpp_cli top`).  Pass
  /// nullptr to disable.
  void set_telemetry(std::function<void(double, const std::vector<LiveTelemetry>&)> callback,
                     double interval_s = 0.5) {
    telemetry_cb_ = std::move(callback);
    telemetry_interval_s_ = interval_s;
  }

  // --- crash injection (fault harness hooks) ------------------------------

  /// SIGKILL the worker of `pe` (a real fail-stop crash of the PE's
  /// process).  Without recovery the next run() — or the current one, from
  /// within an action — surfaces it as a support::ProcError; with recovery
  /// the supervisor respawns it.  Idempotent: killing an already-dead or
  /// already-reaped worker is a typed no-op, never UB (the pid is only
  /// signaled while the incarnation it names is known live, so a recycled
  /// pid can never be hit).
  KillResult kill_worker(int pe);

  /// SIGSTOP the worker of `pe`: a wedged-but-alive process, the failure
  /// mode socket EOF cannot detect.  Heartbeat supervision escalates it to
  /// SIGKILL after the pong timeout.  Same idempotency contract as
  /// kill_worker.
  KillResult stop_worker(int pe);

  /// Schedule a real SIGKILL of `pe`'s worker for the moment the machine's
  /// cumulative transmit() count reaches `transmits` (a deterministic
  /// mid-run anchor on a wall-clock backend), or for `seconds` after run()
  /// starts.  Used by the fault harness and `navcpp_cli run --kill`.
  void schedule_kill_after_transmits(int pe, std::uint64_t transmits);
  void schedule_kill_after(int pe, double seconds);

  // --- checkpoint transport (navp::Checkpointer's proc store) -------------

  /// Retain `bytes` as PE `pe`'s checkpoint: kept parent-side (modeled
  /// stable storage, re-pushed on respawn) and shipped to the worker, which
  /// spills it to its per-PE file when Options::checkpoint_dir is set.
  void save_checkpoint(int pe, std::span<const std::byte> bytes);

  /// Fetch `pe`'s checkpoint from its worker — a real wire round-trip; a
  /// freshly respawned worker answers from its spill file or the re-pushed
  /// copy.  nullopt when the worker has none or died before answering (the
  /// latter also records a ProcError).  Only valid during run().
  std::optional<std::vector<std::byte>> load_checkpoint(
      int pe, double timeout_s = 5.0);

  // --- recovery observability ---------------------------------------------

  /// Called after a successful respawn of `pe`, as a posted action on that
  /// PE (normal engine context): the application-level half of recovery —
  /// e.g. navp::Checkpointer::restore — goes here.
  void set_recovery_handler(std::function<void(int)> handler) {
    recovery_handler_ = std::move(handler);
  }

  int respawns(int pe) const;
  std::uint64_t total_respawns() const { return total_respawns_; }
  std::uint64_t worker_deaths() const { return worker_deaths_; }
  bool worker_degraded(int pe) const;
  /// Wall seconds of the most recent death-to-resend recovery cycle.
  double last_recovery_seconds() const { return last_recovery_s_; }

 private:
  enum class ActionKind : std::uint8_t { kPost, kTimer, kHop };

  struct PendingAction {
    int pe = 0;
    ActionKind kind = ActionKind::kPost;
    int src = -1;  ///< source PE of a kHop (mesh retire target); else -1
    support::MoveFunction fn;
  };

  struct Worker {
    pid_t pid = -1;
    net::FrameConn conn;
    bool alive = false;
    bool acked_quiesce = false;
    net::WireWorkerStats stats;
    // --- supervision ---
    bool exited = false;      ///< SIGCHLD reaped it; exit_status below valid
    int exit_status = 0;
    bool degraded = false;    ///< recovery exhausted, PE black-holed
    int respawns = 0;
    std::uint16_t peer_port = 0;  ///< mesh dial-back port (kHello.token)
    std::uint64_t next_seq = 1;   ///< next outbound sequenced frame
    /// Unacknowledged grant-bearing frames, in seq order: resent verbatim
    /// after a respawn (dedup at the worker makes the replay exact).
    std::vector<net::WireFrame> retained;
    // --- heartbeat ---
    bool ping_outstanding = false;
    double ping_sent_s = 0.0;   ///< parent clock, action time excluded
    double last_pong_s = 0.0;
    bool heartbeat_killed = false;
    // --- cross-process observability ---
    std::int64_t ping_sent_raw_ns = 0;  ///< raw steady ns of the last ping
    obs::WorkerClock clock;             ///< offset model from pong echoes
    std::vector<obs::ProcSpan> spans;   ///< harvested kSpans payloads
    std::uint64_t live_queue_depth = 0; ///< last kStatsDelta.arg
    // --- synchronous checkpoint fetch ---
    bool ckpt_waiting = false;
    std::optional<std::vector<std::byte>> ckpt_reply;
  };

  struct KillSchedule {
    int pe = -1;
    std::uint64_t after_transmits = 0;  ///< 0 = wall-clock trigger
    double after_seconds = 0.0;
  };

  void check_pe(int pe) const;
  void spawn_workers();
  /// `peer_fds` are this worker's pass-at-fork mesh edges (peer pe, fd);
  /// `mesh_fds_to_close` is every mesh fd in flight during the spawn burst —
  /// the child closes the ones that are not its own before exec, so no
  /// worker holds a stray reference that would mask a sibling's EOF.
  void spawn_one(int pe, const std::string& worker_path,
                 std::uint16_t tcp_port,
                 const std::vector<std::pair<int, int>>& peer_fds = {},
                 const std::vector<int>& mesh_fds_to_close = {});
  void await_hellos();
  /// Tell every alive worker except `pe` to dial `pe`'s listener (kPeerInfo)
  /// — the initial TCP mesh brokering and the post-respawn re-brokering.
  void broker_mesh_edges(int pe);
  void shutdown_workers() noexcept;

  void send_to(int pe, const net::WireFrame& frame);
  /// Stamp a per-worker seq on a grant-bearing frame, retain a copy for
  /// post-respawn resend, and dispatch it.
  void send_tracked(int pe, net::WireFrame frame);
  void retire_retained(int pe, std::uint64_t token);
  /// send_to, or park in prerun_frames_ when run() has not started yet.
  void dispatch(int pe, net::WireFrame frame);
  /// One poll iteration over the worker sockets; reads, writes, and
  /// processes frames (executing granted actions unless draining).
  void pump(int timeout_ms);
  void handle_frame(int pe, const net::WireFrame& frame);
  void on_worker_dead(int pe);
  void respawn_worker(int pe);
  void degrade_worker(int pe);
  void drain_sigchld();
  void heartbeat_tick();
  void check_kill_schedules_wall();
  void execute(std::uint64_t token, PendingAction action);
  /// Push the observability switches (tracing, stats interval) to `pe`.
  void send_config(int pe);
  /// Per-PE flight-recorder ring path ("" when the recorder is inactive).
  std::string flight_path(int pe) const;
  bool flight_active() const;
  /// Read pe's ring into the newest recovery timeline for that PE.
  void harvest_flight(obs::RecoveryTimeline* timeline, int pe);
  void telemetry_tick();
  /// Cancel timers at every live worker, collect stats, destroy leftovers.
  void quiesce();
  void record_worker_metrics();
  std::string status_summary() const;
  void record_error(std::exception_ptr error) noexcept;
  obs::Counter* recovery_counter(const char* name);

  int pe_count_ = 0;
  Options options_;
  bool mesh_ = false;         ///< resolved Options::mesh + NAVCPP_PROC_MESH
  bool mesh_retain_ = false;  ///< mesh && recovery: workers retain hops
  std::vector<Worker> workers_;
  std::unique_ptr<net::WireListener> listener_;  // TCP transport only
  /// Worker binary resolved at construction; respawns re-exec the same one.
  std::string resolved_worker_path_;
  bool sigchld_installed_ = false;

  std::unordered_map<std::uint64_t, PendingAction> actions_;
  /// Frames issued before run(): held back until kStart so workers see a
  /// clean run boundary and pre-run timers start ticking at run start
  /// (now() is seconds since run start, like the threaded backend).
  std::vector<std::pair<int, net::WireFrame>> prerun_frames_;
  std::uint64_t next_token_ = 1;
  std::int64_t outstanding_actions_ = 0;  // posts + hops awaiting grants
  std::int64_t outstanding_timers_ = 0;
  std::int64_t tasks_live_ = 0;
  bool tasks_seen_ = false;  // any task registered this run
  bool running_ = false;
  bool draining_ = false;  // quiesce/teardown: destroy grants, don't run
  std::exception_ptr first_error_;
  std::uint64_t run_id_ = 0;

  std::function<std::string()> blocked_reporter_;
  double stall_timeout_s_ = 0.0;
  double last_activity_s_ = 0.0;

  support::Stopwatch clock_;
  double finish_time_ = 0.0;
  std::uint64_t transmitted_bytes_ = 0;
  std::uint64_t transmitted_messages_ = 0;
  std::int64_t run_epoch_ns_ = 0;       ///< parent steady ns at run start
  std::vector<double> action_seconds_;  ///< per-PE parent action time
  /// Flight-recorder directory actually in use ("" = recorder inactive);
  /// owned (created + removed) when Options::flight_dir was empty.
  std::string flight_dir_;
  bool own_flight_dir_ = false;
  std::vector<obs::RecoveryTimeline> recovery_timelines_;
  std::function<void(double, const std::vector<LiveTelemetry>&)> telemetry_cb_;
  double telemetry_interval_s_ = 0.5;
  double telemetry_next_s_ = 0.0;
  /// Cumulative across runs: the anchor schedule_kill_after_transmits uses
  /// (per-run counters reset, so schedules set before run() stay valid).
  std::uint64_t lifetime_transmits_ = 0;

  // --- recovery state ------------------------------------------------------
  std::vector<KillSchedule> kill_schedules_;
  /// Parent-retained checkpoint bytes per PE (modeled stable storage).
  std::unordered_map<int, std::vector<std::byte>> checkpoints_;
  std::function<void(int)> recovery_handler_;
  /// >0: a synchronous load_checkpoint wait is pumping; granted actions are
  /// deferred so the restore stays atomic with respect to other PEs' work.
  int defer_grants_ = 0;
  std::vector<std::pair<std::uint64_t, PendingAction>> deferred_grants_;
  std::uint64_t worker_deaths_ = 0;
  std::uint64_t total_respawns_ = 0;
  std::uint64_t frames_resent_ = 0;
  double last_recovery_s_ = 0.0;
  std::uint64_t ping_token_counter_ = 0;

  // Cached metric handles (empty/null when metrics are off).
  obs::Registry* metrics_ = nullptr;
  std::vector<obs::Counter*> m_actions_;
  obs::Counter* m_net_messages_ = nullptr;
  obs::Counter* m_net_bytes_ = nullptr;
  obs::Gauge* m_wall_time_ = nullptr;
};

}  // namespace navcpp::machine
