// ProcMachine: one OS *process* per PE — the honest deployment model.
//
// The sim and threaded backends run every PE in one address space, so a hop
// closure that captures a raw pointer into the "remote" PE's memory works
// by accident.  ProcMachine makes the boundary real: each PE is a forked
// worker process (fork/exec of tools/navcpp_worker, with a fork-only
// fallback), connected to the parent over a Unix-domain socketpair
// (loopback TCP fallback) speaking the length-prefixed net/wire.h protocol.
//
// Division of labor (see docs/architecture.md, "Process-per-PE backend"):
//
//  * The PARENT executes action closures.  Engine payloads are move-only
//    closures owning C++ coroutine frames; no amount of serialization
//    moves a coroutine frame across an exec boundary, so the closures stay
//    here.  What the parent does NOT own is scheduling, timing, or
//    transport.
//  * Each WORKER owns its PE's substrate: a posted action becomes runnable
//    only when that PE's worker grants its token back; post_after timers
//    live in the worker's timer heap and fire on the worker's clock; and
//    every transmit()'s payload bytes are materialized in the source
//    worker's address space, shipped through the parent to the destination
//    worker, and checksum-verified there — the payload genuinely crosses
//    two address-space boundaries before on_delivery runs.
//
// Ordering: every leg is a FIFO stream socket, so actions on one PE run in
// grant order and transmit() keeps the Engine's per-(src,dst)
// non-overtaking guarantee end to end.  The parent is single-threaded;
// like SimMachine, all Engine calls must come from the constructing thread
// (actions run inside run(), so calls from actions are fine).
//
// Quiescence: the parent counts outstanding tokens.  run() returns when no
// actions are outstanding and every registered task finished; leftover
// timers (e.g. retransmit timers for already-acked frames) are canceled at
// quiesce, which also ships every worker's WireWorkerStats back for the
// metrics registry.  A stall with live tasks and nothing outstanding
// anywhere is a deterministic DeadlockError carrying the runtime's blocked
// report plus the per-worker status the quiesce collected.  A worker that
// dies mid-run surfaces as a typed support::ProcError, never a hang.
//
// Decorators compose unchanged: FaultMachine(ProcMachine) injects frame
// faults in the ReliableChannel layer above, whose retransmit timers run
// on the workers' wall clocks.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "machine/engine.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "support/stopwatch.h"

namespace navcpp::machine {

class ProcMachine final : public Engine {
 public:
  struct Options {
    /// Path of the worker binary; empty = discover (NAVCPP_WORKER env, then
    /// next to /proc/self/exe, then ../tools/), falling back to fork-only.
    std::string worker_path;
    /// Use the loopback-TCP transport instead of a Unix socketpair (also
    /// enabled by NAVCPP_PROC_TCP=1 in the environment).
    bool use_tcp = false;
    /// Never exec: fork and run the worker loop in the child directly.
    bool force_fork_only = false;
    double hello_timeout_s = 10.0;    ///< worker startup handshake
    double quiesce_timeout_s = 10.0;  ///< per-quiesce ack collection
  };

  explicit ProcMachine(int pe_count) : ProcMachine(pe_count, Options{}) {}
  ProcMachine(int pe_count, Options options);
  ~ProcMachine() override;

  ProcMachine(const ProcMachine&) = delete;
  ProcMachine& operator=(const ProcMachine&) = delete;

  // --- Engine ------------------------------------------------------------
  int pe_count() const override { return pe_count_; }
  void post(int pe, support::MoveFunction action) override;
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override;
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int /*pe*/, double /*seconds*/) override {}
  double now(int pe) const override;
  double finish_time() const override { return finish_time_; }
  void task_started() override;
  void task_finished() override;
  void fail(std::exception_ptr error) noexcept override;
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    blocked_reporter_ = std::move(reporter);
  }
  void run() override;
  void set_metrics(obs::Registry* registry) override;

  // --- knobs / audits ----------------------------------------------------

  /// Abort run() with a diagnosis if no wire activity happens for this long
  /// while work is outstanding (a wedged-but-alive worker).  Zero disables
  /// (default); the deterministic outstanding==0 deadlock detection works
  /// regardless.
  void set_stall_timeout(double seconds) { stall_timeout_s_ = seconds; }

  /// Total bytes/messages passed to transmit() this run (cost audit, like
  /// the other backends).  run() resets them.
  std::uint64_t transmitted_bytes() const { return transmitted_bytes_; }
  std::uint64_t transmitted_messages() const { return transmitted_messages_; }
  void reset_stats() {
    transmitted_bytes_ = 0;
    transmitted_messages_ = 0;
  }

  /// Worker-side counters of `pe`, as of the last quiesce (end of run()).
  const net::WireWorkerStats& worker_stats(int pe) const;

  bool worker_alive(int pe) const;

  /// Test hook: SIGKILL the worker of `pe` (a real fail-stop crash of the
  /// PE's process).  The next run() — or the current one, from within an
  /// action — surfaces it as a support::ProcError.
  void kill_worker(int pe);

 private:
  enum class ActionKind : std::uint8_t { kPost, kTimer, kHop };

  struct PendingAction {
    int pe = 0;
    ActionKind kind = ActionKind::kPost;
    support::MoveFunction fn;
  };

  struct Worker {
    pid_t pid = -1;
    net::FrameConn conn;
    bool alive = false;
    bool acked_quiesce = false;
    net::WireWorkerStats stats;
  };

  void check_pe(int pe) const;
  void spawn_workers();
  void spawn_one(int pe, const std::string& worker_path,
                 std::uint16_t tcp_port);
  void await_hellos();
  void shutdown_workers() noexcept;

  void send_to(int pe, const net::WireFrame& frame);
  /// send_to, or park in prerun_frames_ when run() has not started yet.
  void dispatch(int pe, net::WireFrame frame);
  /// One poll iteration over the worker sockets; reads, writes, and
  /// processes frames (executing granted actions unless draining).
  void pump(int timeout_ms);
  void handle_frame(int pe, const net::WireFrame& frame);
  void on_worker_dead(int pe);
  void execute(std::uint64_t token, PendingAction action);
  /// Cancel timers at every live worker, collect stats, destroy leftovers.
  void quiesce();
  void record_worker_metrics();
  std::string status_summary() const;
  void record_error(std::exception_ptr error) noexcept;

  int pe_count_ = 0;
  Options options_;
  std::vector<Worker> workers_;
  std::unique_ptr<net::WireListener> listener_;  // TCP transport only

  std::unordered_map<std::uint64_t, PendingAction> actions_;
  /// Frames issued before run(): held back until kStart so workers see a
  /// clean run boundary and pre-run timers start ticking at run start
  /// (now() is seconds since run start, like the threaded backend).
  std::vector<std::pair<int, net::WireFrame>> prerun_frames_;
  std::uint64_t next_token_ = 1;
  std::int64_t outstanding_actions_ = 0;  // posts + hops awaiting grants
  std::int64_t outstanding_timers_ = 0;
  std::int64_t tasks_live_ = 0;
  bool tasks_seen_ = false;  // any task registered this run
  bool running_ = false;
  bool draining_ = false;  // quiesce/teardown: destroy grants, don't run
  std::exception_ptr first_error_;
  std::uint64_t run_id_ = 0;

  std::function<std::string()> blocked_reporter_;
  double stall_timeout_s_ = 0.0;
  double last_activity_s_ = 0.0;

  support::Stopwatch clock_;
  double finish_time_ = 0.0;
  std::uint64_t transmitted_bytes_ = 0;
  std::uint64_t transmitted_messages_ = 0;

  // Cached metric handles (empty/null when metrics are off).
  obs::Registry* metrics_ = nullptr;
  std::vector<obs::Counter*> m_actions_;
  obs::Counter* m_net_messages_ = nullptr;
  obs::Counter* m_net_bytes_ = nullptr;
  obs::Gauge* m_wall_time_ = nullptr;
};

}  // namespace navcpp::machine
