// Engine: the execution substrate shared by the NavP runtime and mini-MPI.
//
// An Engine is a set of PEs (processing elements), each of which executes
// posted actions one at a time (a PE is a single-threaded executor).  All
// cross-PE interaction goes through transmit(), which models/performs the
// shipment of bytes across the interconnect.  Three implementations exist:
//
//  * ThreadedMachine — one OS thread per PE, real concurrency, wall-clock
//    time.  Used for functional verification and real-machine benchmarks.
//  * SimMachine — deterministic discrete-event simulation with virtual
//    per-PE clocks and a calibrated network model.  Used to regenerate the
//    paper's experiments at paper scale.
//  * ProcMachine — one OS *process* per PE, connected over real sockets.
//    Scheduling, timers, and payload transport live in the worker
//    processes; payload bytes genuinely cross address-space boundaries.
//
// The "PE executes one action at a time" rule is what makes NavP node
// variables and events race-free by construction: they are only ever touched
// by the computation currently resident on that PE (MESSENGERS semantics).
//
// Contract note — hop closures must be address-space-clean.  The sim and
// threaded backends share one address space, so an action or hop closure
// that captures a raw pointer/reference into another PE's node variables
// works there by accident and nowhere else.  Carried agent state must be
// the migrating computation's own (frame locals declared via navp::Cargo,
// moved out of the source PE's node store before the hop); anything
// reached through Ctx::node<T>() must be re-fetched after arrival.  The
// hop audit (navp/runtime.h) and strict migration mode exist to flag and
// exercise exactly this contract.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <string>

#include "support/move_function.h"

namespace navcpp::obs {
class Registry;
}  // namespace navcpp::obs

namespace navcpp::machine {

class Engine {
 public:
  virtual ~Engine() = default;

  /// Number of PEs in this machine.
  virtual int pe_count() const = 0;

  /// Enqueue `action` to run on `pe`.  Safe to call before run() (initial
  /// injections) and from within actions (including actions on other PEs in
  /// the threaded backend).
  virtual void post(int pe, support::MoveFunction action) = 0;

  /// Ship `bytes` from `src` to `dst`; execute `on_delivery` on `dst` once
  /// the message arrives.  In the simulated backend this advances through
  /// the network model; in the threaded backend delivery is immediate.
  ///
  /// Delivery on one (src, dst) pair is non-overtaking: two messages on the
  /// same channel arrive in send order, like TCP links or MPI channels.
  /// Messages on *different* channels may interleave arbitrarily.  The
  /// pipelined programs rely on this guarantee (see mm/navp_mm_2d.h), and
  /// the chaos fuzzer preserves it while perturbing everything else.
  virtual void transmit(int src, int dst, std::size_t bytes,
                        support::MoveFunction on_delivery) = 0;

  /// Enqueue `action` to run on `pe` no earlier than `delay_seconds` from
  /// the PE's current time (virtual seconds on the simulated backend,
  /// wall-clock on the threaded one).  This is the timer primitive the
  /// reliability layer builds retransmit timeouts on; ordering between a
  /// timer and other actions on the same PE is backend discretion beyond
  /// "not before the deadline".
  virtual void post_after(int pe, double delay_seconds,
                          support::MoveFunction action) = 0;

  /// Charge `seconds` of compute time to `pe`.  Advances the virtual clock
  /// in the simulated backend; a no-op in the threaded backend (where real
  /// computation takes real time).
  virtual void charge(int pe, double seconds) = 0;

  /// Current time at `pe`: virtual seconds (simulated) or wall-clock seconds
  /// since run() started (threaded).
  virtual double now(int pe) const = 0;

  /// Completion time of the whole run: max over PE clocks (simulated) or
  /// wall-clock duration of run() (threaded).  Valid after run() returns.
  virtual double finish_time() const = 0;

  // --- Quiescence bookkeeping -------------------------------------------
  // Long-lived logical tasks (NavP agents, MPI rank programs) register here;
  // run() returns when every registered task has finished and no actions
  // remain.  A task that blocks forever (event never signaled, message never
  // sent) produces a DeadlockError carrying the blocked_report().

  virtual void task_started() = 0;
  virtual void task_finished() = 0;

  /// Install a callback that describes currently-blocked tasks, used to
  /// produce actionable deadlock diagnostics.  The callback is invoked only
  /// when the machine has already stalled (no concurrent mutation).
  virtual void set_blocked_reporter(std::function<std::string()> reporter) = 0;

  /// Record a fatal error and stop the machine as soon as possible; run()
  /// rethrows the first recorded error.  Noexcept so it can be called from
  /// coroutine final-suspend paths.
  virtual void fail(std::exception_ptr error) noexcept = 0;

  /// Drive the machine until quiescence.  Rethrows the first exception an
  /// action raised; throws support::DeadlockError on a stall.
  virtual void run() = 0;

  /// The next engine in a decorator chain (ChaosMachine, FaultMachine), or
  /// nullptr for a terminal backend.  Lets the runtime discover injected
  /// fault layers regardless of how decorators are stacked.
  virtual Engine* decorated() { return nullptr; }

  /// Attach a metrics registry (nullptr = off).  Each layer reports its own
  /// dimensions (actions executed, queue depths, faults injected, ...);
  /// navp::Runtime::set_metrics walks the decorator chain and calls this on
  /// every layer, so decorators must not forward the call.  The registry
  /// must outlive the engine's use of it.  Default: no instrumentation.
  virtual void set_metrics(obs::Registry* /*registry*/) {}
};

}  // namespace navcpp::machine
