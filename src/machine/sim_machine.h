// SimMachine: a deterministic discrete-event simulation of a cluster.
//
// Each PE has a virtual clock.  Actions posted to a PE run at
// max(event arrival time, PE clock) — a PE is busy while an action charges
// compute to it, so later arrivals queue up behind it, exactly like a real
// single-core workstation.  Cross-PE messages go through net::NetworkModel,
// which accounts sender/receiver NIC occupancy, per-message latency, and
// bandwidth.
//
// Determinism: the event queue breaks time ties by insertion sequence, all
// model arithmetic is plain double, and nothing consults wall-clock or OS
// scheduling, so a given program produces bit-identical virtual times and
// traces on every run.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "machine/engine.h"
#include "net/link_model.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace navcpp::machine {

class SimMachine final : public Engine {
 public:
  SimMachine(int pe_count, net::LinkParams link = net::LinkParams{});

  int pe_count() const override { return static_cast<int>(clock_.size()); }

  void post(int pe, support::MoveFunction action) override;
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override;
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int pe, double seconds) override;
  double now(int pe) const override;
  double finish_time() const override;

  void task_started() override { ++tasks_live_; }
  void task_finished() override { --tasks_live_; }
  void fail(std::exception_ptr error) noexcept override {
    if (!error_) error_ = error;
  }
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    blocked_reporter_ = std::move(reporter);
  }

  void run() override;

  /// Metrics: per-PE "sim.actions{pe=N}" counters, "net.messages" /
  /// "net.bytes" counters mirroring the NetworkModel's admission counts
  /// byte-for-byte (so an exported trace can be cross-checked against
  /// network().stats() exactly), and a "sim.virtual_time" gauge updated when
  /// run() drains.
  void set_metrics(obs::Registry* registry) override;

  /// The network model (for message/byte statistics in benches).
  net::NetworkModel& network() { return network_; }
  const net::NetworkModel& network() const { return network_; }

  /// Total busy (non-idle) virtual seconds accumulated by `pe`.
  double busy_time(int pe) const;

  /// Rewind the machine to its freshly-constructed state for reuse: PE
  /// clocks and busy counters to zero, network model fully reset (stats AND
  /// NIC occupancy — see net::NetworkModel::reset()), and the blocked
  /// reporter dropped (it captures the previous run's Runtime; keeping it
  /// across a reset left a dangling diagnostic callback).  Requires an
  /// empty event queue, i.e. call it between runs, not during one.
  void reset();

 private:
  void check_pe(int pe) const;
  void count_action(int pe) {
    if (!m_actions_.empty()) m_actions_[static_cast<std::size_t>(pe)]->add();
  }

  net::NetworkModel network_;
  sim::EventQueue queue_;
  std::vector<sim::Time> clock_;
  std::vector<sim::Duration> busy_;
  std::int64_t tasks_live_ = 0;
  bool ran_ = false;
  std::exception_ptr error_;
  std::function<std::string()> blocked_reporter_;

  // Cached metric handles (empty/null when metrics are off).
  std::vector<obs::Counter*> m_actions_;
  obs::Counter* m_net_messages_ = nullptr;
  obs::Counter* m_net_bytes_ = nullptr;
  obs::Gauge* m_virtual_time_ = nullptr;
};

}  // namespace navcpp::machine
