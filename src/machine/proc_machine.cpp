#include "machine/proc_machine.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "machine/proc_worker.h"
#include "support/error.h"

namespace navcpp::machine {
namespace {

using net::FrameConn;
using net::GrantKind;
using net::WireFrame;
using net::WireType;

// --- SIGCHLD self-pipe -----------------------------------------------------
//
// One process-wide pipe: the handler's only job is to make the supervising
// poll loop wake up promptly so it can reap with waitpid(WNOHANG).  The
// handler is installed while a recovery-enabled ProcMachine exists and the
// previous disposition is restored when the last one goes away.  The parent
// is single-threaded by contract, so the user count needs no lock.

int g_sigchld_pipe[2] = {-1, -1};
int g_sigchld_users = 0;
struct sigaction g_sigchld_prev;

void sigchld_notify(int /*signo*/) {
  const int saved_errno = errno;
  if (g_sigchld_pipe[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_sigchld_pipe[1], &b, 1);
  }
  errno = saved_errno;
}

void install_sigchld_watch() {
  if (g_sigchld_users++ > 0) return;
  if (::pipe2(g_sigchld_pipe, O_NONBLOCK | O_CLOEXEC) != 0) {
    g_sigchld_pipe[0] = g_sigchld_pipe[1] = -1;
    return;  // EOF + heartbeat detection still stand; reaping stays lazy
  }
  struct sigaction sa;
  ::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = sigchld_notify;
  ::sigemptyset(&sa.sa_mask);
  // SA_NOCLDSTOP: a SIGSTOPped (wedged) worker must NOT look reapable —
  // that is the heartbeat path's case, not the exit path's.
  sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  ::sigaction(SIGCHLD, &sa, &g_sigchld_prev);
}

void remove_sigchld_watch() {
  if (--g_sigchld_users > 0) return;
  ::sigaction(SIGCHLD, &g_sigchld_prev, nullptr);
  for (int& fd : g_sigchld_pipe) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

/// Locate the navcpp_worker binary: explicit env override, then next to the
/// running executable, then the sibling tools/ directory (the build-tree
/// layout: tests run from build/tests, the binary lands in build/tools).
/// Empty when nothing is found — the caller falls back to fork-only.
std::string discover_worker_binary() {
  const char* env = ::getenv("NAVCPP_WORKER");
  if (env != nullptr && env[0] != '\0') return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string dir(buf);
  const std::size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return "";
  dir.resize(slash);
  for (const std::string& cand :
       {dir + "/navcpp_worker", dir + "/../tools/navcpp_worker"}) {
    if (::access(cand.c_str(), X_OK) == 0) return cand;
  }
  return "";
}

std::string describe_exit(pid_t pid, bool reaped, int status) {
  if (!reaped) return "pid " + std::to_string(pid) + ", not yet reaped";
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  return "status " + std::to_string(status);
}

std::string ckpt_path_for(const std::string& dir, int pe) {
  if (dir.empty()) return "";
  return dir + "/pe" + std::to_string(pe) + ".ckpt";
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProcMachine::ProcMachine(int pe_count, Options options)
    : pe_count_(pe_count), options_(std::move(options)) {
  NAVCPP_CHECK(pe_count_ > 0, "ProcMachine needs at least one PE");
  const char* tcp_env = ::getenv("NAVCPP_PROC_TCP");
  if (tcp_env != nullptr && tcp_env[0] == '1') options_.use_tcp = true;
  const char* trace_env = ::getenv("NAVCPP_PROC_TRACE");
  if (trace_env != nullptr && trace_env[0] == '1') options_.trace = true;
  mesh_ = options_.mesh;
  const char* mesh_env = ::getenv("NAVCPP_PROC_MESH");
  if (mesh_env != nullptr && mesh_env[0] != '\0') {
    mesh_ = mesh_env[0] != '0';
  }
  mesh_retain_ = mesh_ && options_.recovery.enabled;
  workers_.resize(static_cast<std::size_t>(pe_count_));
  reset_stats();
  if (flight_active()) {
    if (!options_.flight_dir.empty()) {
      flight_dir_ = options_.flight_dir;
    } else {
      const char* tmp = ::getenv("TMPDIR");
      std::string templ = std::string(tmp != nullptr && tmp[0] != '\0'
                                          ? tmp
                                          : "/tmp") + "/navcpp-flight-XXXXXX";
      std::vector<char> buf(templ.begin(), templ.end());
      buf.push_back('\0');
      if (::mkdtemp(buf.data()) != nullptr) {
        flight_dir_ = buf.data();
        own_flight_dir_ = true;
      }
      // Failure: run without a flight recorder rather than refuse to start.
    }
  }
  if (options_.recovery.enabled) {
    install_sigchld_watch();
    sigchld_installed_ = true;
  }
  try {
    spawn_workers();
    await_hellos();
  } catch (...) {
    shutdown_workers();
    if (sigchld_installed_) remove_sigchld_watch();
    throw;
  }
}

ProcMachine::~ProcMachine() {
  shutdown_workers();
  if (sigchld_installed_) remove_sigchld_watch();
  if (own_flight_dir_ && !flight_dir_.empty()) {
    for (int pe = 0; pe < pe_count_; ++pe) {
      ::unlink(flight_path(pe).c_str());
    }
    ::rmdir(flight_dir_.c_str());
  }
}

bool ProcMachine::flight_active() const {
  return options_.trace || options_.recovery.enabled ||
         !options_.flight_dir.empty();
}

std::string ProcMachine::flight_path(int pe) const {
  if (flight_dir_.empty()) return "";
  return flight_dir_ + "/pe" + std::to_string(pe) + ".flight";
}

void ProcMachine::check_pe(int pe) const {
  NAVCPP_CHECK(pe >= 0 && pe < pe_count_,
               "PE id " + std::to_string(pe) + " out of range [0, " +
                   std::to_string(pe_count_) + ")");
}

void ProcMachine::spawn_workers() {
  if (!options_.force_fork_only) {
    resolved_worker_path_ = options_.worker_path.empty()
                                ? discover_worker_binary()
                                : options_.worker_path;
  }
  if (options_.use_tcp) listener_ = std::make_unique<net::WireListener>();
  const std::uint16_t port = listener_ ? listener_->port() : 0;

  // One-host mesh: every C(n,2) edge is a socketpair created BEFORE any
  // fork, so both endpoints can be passed at fork time.  Each child keeps
  // only its own edges and closes the rest pre-exec; the parent closes
  // everything once the spawn burst is over — after that, each edge's two
  // fds live in exactly the two workers it connects, and a worker death
  // shows up at its peers as EOF.  The TCP transport gets its mesh by
  // dial-back instead (see the kPeerInfo brokering after await_hellos).
  std::vector<std::vector<std::pair<int, int>>> peer_fds(
      static_cast<std::size_t>(pe_count_));
  std::vector<int> all_mesh_fds;
  if (mesh_ && !options_.use_tcp) {
    for (int p = 0; p < pe_count_; ++p) {
      for (int q = p + 1; q < pe_count_; ++q) {
        int fds[2] = {-1, -1};
        net::wire_peer_socketpair(fds);
        peer_fds[static_cast<std::size_t>(p)].emplace_back(q, fds[0]);
        peer_fds[static_cast<std::size_t>(q)].emplace_back(p, fds[1]);
        all_mesh_fds.push_back(fds[0]);
        all_mesh_fds.push_back(fds[1]);
      }
    }
  }
  try {
    for (int pe = 0; pe < pe_count_; ++pe) {
      spawn_one(pe, resolved_worker_path_, port,
                peer_fds[static_cast<std::size_t>(pe)], all_mesh_fds);
    }
  } catch (...) {
    for (const int fd : all_mesh_fds) ::close(fd);
    throw;
  }
  for (const int fd : all_mesh_fds) ::close(fd);
}

void ProcMachine::spawn_one(int pe, const std::string& worker_path,
                            std::uint16_t tcp_port,
                            const std::vector<std::pair<int, int>>& peer_fds,
                            const std::vector<int>& mesh_fds_to_close) {
  int fds[2] = {-1, -1};
  if (!options_.use_tcp) net::wire_socketpair(fds);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
    throw support::ProcError("ProcMachine: fork failed: " +
                             std::string(::strerror(errno)));
  }

  if (pid == 0) {
    // Child.  Drop every parent-side fd we inherited so a sibling worker's
    // death is visible to the parent as EOF (and the parent's death to us).
    // Also shed the supervisor's SIGCHLD machinery: the worker forks no
    // children and must not hold the self-pipe open.
    ::signal(SIGCHLD, SIG_DFL);
    for (const int fd : g_sigchld_pipe) {
      if (fd >= 0) ::close(fd);
    }
    if (fds[0] >= 0) ::close(fds[0]);
    for (const Worker& w : workers_) {
      if (w.conn.valid()) ::close(w.conn.fd());
    }
    // Mesh fds: keep this worker's own edge endpoints, close every other
    // edge's — a stray reference here would keep a dead sibling's channel
    // open and mask the EOF its peers rely on.
    for (const int fd : mesh_fds_to_close) {
      bool mine = false;
      for (const auto& [peer_pe, own_fd] : peer_fds) {
        if (own_fd == fd) {
          mine = true;
          break;
        }
      }
      if (!mine) ::close(fd);
    }
    const std::string ckpt = ckpt_path_for(options_.checkpoint_dir, pe);
    const std::string flight = flight_path(pe);
    if (!worker_path.empty()) {
      std::vector<std::string> args = {"navcpp_worker", "--pe",
                                       std::to_string(pe)};
      if (options_.use_tcp) {
        args.push_back("--port");
        args.push_back(std::to_string(tcp_port));
      } else {
        args.push_back("--fd");
        args.push_back(std::to_string(fds[1]));
      }
      if (mesh_) {
        args.push_back("--npes");
        args.push_back(std::to_string(pe_count_));
        args.push_back("--mesh");
        for (const auto& [peer_pe, fd] : peer_fds) {
          args.push_back("--peer");
          args.push_back(std::to_string(peer_pe) + ":" + std::to_string(fd));
        }
      }
      if (!ckpt.empty()) {
        args.push_back("--ckpt");
        args.push_back(ckpt);
      }
      if (!flight.empty()) {
        args.push_back("--flight");
        args.push_back(flight);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(worker_path.c_str(), argv.data());
      // exec failed; fall through to the in-process worker loop.
    }
    int code = 1;
    try {
      ProcWorkerConfig config;
      config.fd = fds[1];
      if (options_.use_tcp) config.fd = net::wire_connect_loopback(tcp_port);
      config.pe = pe;
      config.pe_count = pe_count_;
      config.mesh = mesh_;
      config.peer_fds = peer_fds;
      config.ckpt_path = ckpt;
      config.flight_path = flight;
      code = proc_worker_main(config);
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }

  // Parent.
  if (fds[1] >= 0) ::close(fds[1]);
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  w.pid = pid;
  w.alive = true;
  if (!options_.use_tcp) {
    w.conn.set_fd(fds[0]);
    w.conn.set_nonblocking();
  }
}

void ProcMachine::await_hellos() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(options_.hello_timeout_s * 1e3));

  if (options_.use_tcp) {
    // Workers connect in arbitrary order and identify themselves by the pe
    // field of their kHello.
    for (int i = 0; i < pe_count_; ++i) {
      const double left = std::chrono::duration<double>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      const int fd = listener_->accept_one(left);
      if (fd < 0) {
        throw support::ProcError(
            "ProcMachine: timed out waiting for workers to connect");
      }
      FrameConn conn(fd);
      WireFrame frame;
      while (!conn.next_frame(&frame)) {
        if (!conn.read_some()) {
          throw support::ProcError(
              "ProcMachine: worker hung up during handshake");
        }
      }
      if (frame.type != WireType::kHello ||
          frame.arg != net::kWireProtocolVersion ||
          frame.pe >= static_cast<std::uint32_t>(pe_count_)) {
        throw support::ProcError("ProcMachine: bad handshake from worker");
      }
      Worker& w = workers_[frame.pe];
      if (w.conn.valid()) {
        ::close(fd);
        throw support::ProcError("ProcMachine: duplicate hello for PE " +
                                 std::to_string(frame.pe));
      }
      w.conn.set_fd(fd);
      w.conn.set_nonblocking();
      w.peer_port = static_cast<std::uint16_t>(frame.token);
    }
    if (mesh_) {
      // Broker the initial mesh: one direction per edge (p dials q for
      // p < q).  A single stream socket serves both directions of an edge;
      // brokering only one direction means two dials can never race into a
      // crossed pair of half-used connections.
      for (int q = 1; q < pe_count_; ++q) {
        const std::uint16_t port = workers_[static_cast<std::size_t>(q)]
                                       .peer_port;
        if (port == 0) {
          throw support::ProcError(
              "ProcMachine: mesh worker for PE " + std::to_string(q) +
              " reported no dial-back port");
        }
        for (int p = 0; p < q; ++p) {
          WireFrame info;
          info.type = WireType::kPeerInfo;
          info.pe = static_cast<std::uint32_t>(q);
          info.arg = port;
          send_to(p, info);
        }
      }
    }
    return;
  }

  std::vector<char> greeted(static_cast<std::size_t>(pe_count_), 0);
  int missing = pe_count_;
  while (missing > 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw support::ProcError(
          "ProcMachine: timed out waiting for worker hello(s); " +
          std::to_string(missing) + " worker(s) silent");
    }
    std::vector<pollfd> fds;
    std::vector<int> pes;
    for (int pe = 0; pe < pe_count_; ++pe) {
      if (greeted[static_cast<std::size_t>(pe)] != 0) continue;
      fds.push_back(pollfd{workers_[static_cast<std::size_t>(pe)].conn.fd(),
                           POLLIN, 0});
      pes.push_back(pe);
    }
    if (::poll(fds.data(), fds.size(), 100) < 0 && errno != EINTR) {
      throw support::ProcError("ProcMachine: poll failed during handshake");
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers_[static_cast<std::size_t>(pes[i])];
      if (!w.conn.read_some()) {
        throw support::ProcError("ProcMachine: worker for PE " +
                                 std::to_string(pes[i]) +
                                 " died before its hello");
      }
      WireFrame frame;
      while (w.conn.next_frame(&frame)) {
        if (frame.type != WireType::kHello ||
            frame.arg != net::kWireProtocolVersion) {
          throw support::ProcError("ProcMachine: bad handshake from PE " +
                                   std::to_string(pes[i]));
        }
        // The dial-back port is only needed for post-respawn re-brokering
        // here (the initial socketpair mesh was passed at fork), so a
        // 0 ("could not listen") is tolerated until a recovery needs it.
        w.peer_port = static_cast<std::uint16_t>(frame.token);
        greeted[static_cast<std::size_t>(pes[i])] = 1;
        --missing;
      }
    }
  }
}

void ProcMachine::broker_mesh_edges(int pe) {
  if (!mesh_) return;
  const Worker& fresh = workers_[static_cast<std::size_t>(pe)];
  if (!fresh.alive || fresh.peer_port == 0) return;
  // Survivors dial the fresh incarnation (never the reverse): each dial-in
  // replaces the survivor's stale edge and triggers its retained-hop
  // replay.  An edge whose other endpoint is also dead gets re-brokered
  // when THAT worker's respawn runs this same pass.
  WireFrame info;
  info.type = WireType::kPeerInfo;
  info.pe = static_cast<std::uint32_t>(pe);
  info.arg = fresh.peer_port;
  for (int p = 0; p < pe_count_; ++p) {
    if (p == pe) continue;
    const Worker& w = workers_[static_cast<std::size_t>(p)];
    if (!w.alive || w.degraded) continue;
    send_to(p, info);
  }
}

void ProcMachine::shutdown_workers() noexcept {
  for (Worker& w : workers_) {
    if (!w.alive || !w.conn.valid()) continue;
    WireFrame bye;
    bye.type = WireType::kShutdown;
    w.conn.send_frame(bye);
    // A blocked outgoing buffer is drained by the worker once it reads;
    // give it a brief window below either way.
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(2000);
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    if (w.exited) {
      // Already reaped via the SIGCHLD path; nothing to wait for.
      w.pid = -1;
      w.alive = false;
      w.conn.close();
      continue;
    }
    bool reaped = false;
    int status = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (w.conn.valid() && w.conn.has_outgoing()) w.conn.flush();
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid || (r < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &status, 0);
    }
    w.pid = -1;
    w.alive = false;
    w.conn.close();
  }
}

void ProcMachine::record_error(std::exception_ptr error) noexcept {
  if (!first_error_) first_error_ = error;
}

void ProcMachine::fail(std::exception_ptr error) noexcept {
  record_error(error);
}

void ProcMachine::task_started() {
  ++tasks_live_;
  tasks_seen_ = true;
}

void ProcMachine::task_finished() { --tasks_live_; }

double ProcMachine::now(int pe) const {
  check_pe(pe);
  return clock_.seconds();
}

void ProcMachine::send_to(int pe, const WireFrame& frame) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (!w.alive) return;  // death already recorded; frames go nowhere
  if (!w.conn.send_frame(frame)) on_worker_dead(pe);
}

void ProcMachine::send_tracked(int pe, WireFrame frame) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (w.degraded) return;  // black-holed: callers already dropped the action
  if (options_.recovery.enabled) {
    // Stamp and retain BEFORE attempting delivery: a frame issued while the
    // worker is down (mid-recovery window) must still be in the retained
    // set the respawn resends.
    frame.seq = w.next_seq++;
    w.retained.push_back(frame);
  }
  dispatch(pe, std::move(frame));
}

void ProcMachine::retire_retained(int pe, std::uint64_t token) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (w.retained.empty()) return;
  const auto it = std::find_if(
      w.retained.begin(), w.retained.end(),
      [token](const WireFrame& f) { return f.token == token; });
  if (it != w.retained.end()) w.retained.erase(it);
}

void ProcMachine::dispatch(int pe, WireFrame frame) {
  if (!running_) {
    prerun_frames_.emplace_back(pe, std::move(frame));
    return;
  }
  send_to(pe, frame);
}

void ProcMachine::post(int pe, support::MoveFunction action) {
  check_pe(pe);
  if (draining_ || first_error_) return;  // stopping: drop, don't enqueue
  if (workers_[static_cast<std::size_t>(pe)].degraded) return;
  const std::uint64_t token = next_token_++;
  PendingAction pending;
  pending.pe = pe;
  pending.kind = ActionKind::kPost;
  pending.fn = std::move(action);
  actions_.emplace(token, std::move(pending));
  ++outstanding_actions_;
  WireFrame frame;
  frame.type = WireType::kPost;
  frame.pe = static_cast<std::uint32_t>(pe);
  frame.token = token;
  if (options_.trace) frame.trace = token;
  send_tracked(pe, std::move(frame));
}

void ProcMachine::post_after(int pe, double delay_seconds,
                             support::MoveFunction action) {
  check_pe(pe);
  if (draining_ || first_error_) return;
  if (workers_[static_cast<std::size_t>(pe)].degraded) return;
  if (delay_seconds < 0.0) delay_seconds = 0.0;
  const std::uint64_t token = next_token_++;
  PendingAction pending;
  pending.pe = pe;
  pending.kind = ActionKind::kTimer;
  pending.fn = std::move(action);
  actions_.emplace(token, std::move(pending));
  ++outstanding_timers_;
  WireFrame frame;
  frame.type = WireType::kTimer;
  frame.pe = static_cast<std::uint32_t>(pe);
  frame.token = token;
  frame.arg = static_cast<std::uint64_t>(delay_seconds * 1e9);
  if (options_.trace) frame.trace = token;
  send_tracked(pe, std::move(frame));
}

void ProcMachine::transmit(int src, int dst, std::size_t bytes,
                           support::MoveFunction on_delivery) {
  check_pe(src);
  check_pe(dst);
  if (draining_ || first_error_) return;
  ++lifetime_transmits_;
  if (!kill_schedules_.empty()) {
    for (auto it = kill_schedules_.begin(); it != kill_schedules_.end();) {
      if (it->after_transmits != 0 &&
          lifetime_transmits_ >= it->after_transmits) {
        const int victim = it->pe;
        it = kill_schedules_.erase(it);
        kill_worker(victim);
      } else {
        ++it;
      }
    }
  }
  if (workers_[static_cast<std::size_t>(src)].degraded ||
      workers_[static_cast<std::size_t>(dst)].degraded) {
    return;  // either endpoint black-holed: the hop is dropped
  }
  const std::uint64_t token = next_token_++;
  PendingAction pending;
  pending.pe = dst;
  pending.kind = ActionKind::kHop;
  pending.src = src;  // mesh: where the kSend (and the hop copy) is retained
  pending.fn = std::move(on_delivery);
  actions_.emplace(token, std::move(pending));
  ++outstanding_actions_;
  transmitted_bytes_ += bytes;
  ++transmitted_messages_;
  if (m_net_messages_ != nullptr) {
    m_net_messages_->add();
    m_net_bytes_->add(bytes);
  }
  WireFrame frame;
  frame.type = WireType::kSend;
  frame.pe = static_cast<std::uint32_t>(dst);
  frame.src = static_cast<std::uint32_t>(src);
  frame.token = token;
  frame.arg = bytes;
  // The trace id follows the hop across three address spaces: the source
  // worker copies frame.trace into the kHop it materializes, and the parent
  // relays the kHop verbatim, so source serialize span, channel span, and
  // destination verify span all share this id.
  if (options_.trace) frame.trace = token;
  send_tracked(src, std::move(frame));
}

void ProcMachine::on_worker_dead(int pe) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (!w.alive) return;
  w.alive = false;
  w.conn.close();  // discards any torn partial frame from the dead process
  ++worker_deaths_;
  if (auto* c = recovery_counter("proc.recovery.worker_deaths")) c->add();
  bool reaped = w.exited;
  int status = w.exit_status;
  if (!reaped) {
    // The socket closes a beat before the zombie is reapable; retry briefly.
    for (int i = 0; i < 100; ++i) {
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        reaped = true;
        break;
      }
      if (r < 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const std::string why = describe_exit(w.pid, reaped, status);
  if (reaped) {
    w.exited = true;
    w.exit_status = status;
  }

  const RecoveryPolicy& rp = options_.recovery;
  if (rp.enabled && running_ && !draining_) {
    // Open a recovery timeline for this death; the respawn path appends its
    // milestones to it.  Harvest the flight-recorder ring NOW, before the
    // respawned incarnation reopens the file and starts appending — the ring
    // survives SIGKILL because record() writes through a MAP_SHARED mapping.
    obs::RecoveryTimeline timeline;
    timeline.pe = pe;
    timeline.incarnation = w.respawns + 1;
    timeline.milestones.emplace_back(clock_.seconds(),
                                     "death detected (" + why + ")");
    harvest_flight(&timeline, pe);
    recovery_timelines_.push_back(std::move(timeline));
  }
  if (rp.enabled && draining_) {
    // Death during quiesce with recovery on: the run's work is complete
    // (or already failed); respawning would be pure churn.  Tolerate it.
    return;
  }
  if (rp.enabled && running_ && !first_error_) {
    if (w.respawns < rp.max_respawns) {
      try {
        respawn_worker(pe);
      } catch (...) {
        record_error(std::current_exception());
      }
      return;
    }
    if (rp.on_exhausted == RecoveryPolicy::OnExhausted::kDegrade) {
      degrade_worker(pe);
      return;
    }
    record_error(std::make_exception_ptr(support::ProcError(
        "ProcMachine: worker for PE " + std::to_string(pe) +
        " exited unexpectedly (" + why + ") and its recovery budget of " +
        std::to_string(rp.max_respawns) +
        " respawn(s) is exhausted; " + status_summary())));
    return;
  }
  record_error(std::make_exception_ptr(support::ProcError(
      "ProcMachine: worker for PE " + std::to_string(pe) +
      " exited unexpectedly (" + why + "); " + status_summary())));
}

void ProcMachine::respawn_worker(int pe) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  const auto wall0 = std::chrono::steady_clock::now();
  const auto milestone = [this, pe](const std::string& text) {
    if (!recovery_timelines_.empty() && recovery_timelines_.back().pe == pe) {
      recovery_timelines_.back().milestones.emplace_back(clock_.seconds(),
                                                         text);
    }
  };
  const RecoveryPolicy& rp = options_.recovery;
  const double backoff = std::min(
      rp.backoff_s * std::pow(rp.backoff_factor, w.respawns), 1.0);
  if (backoff > 0.0) {
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.1f", backoff * 1e3);
    milestone("backoff " + std::string(ms) + " ms");
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
  ++w.respawns;
  ++total_respawns_;
  if (auto* c = recovery_counter("proc.recovery.respawns")) c->add();

  spawn_one(pe, resolved_worker_path_, listener_ ? listener_->port() : 0);

  // Re-handshake with the fresh incarnation.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(options_.hello_timeout_s * 1e3));
  if (options_.use_tcp) {
    const double left =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    const int fd = listener_->accept_one(left);
    if (fd < 0) {
      throw support::ProcError(
          "ProcMachine: respawned worker for PE " + std::to_string(pe) +
          " never connected");
    }
    FrameConn conn(fd);
    WireFrame frame;
    while (!conn.next_frame(&frame)) {
      if (!conn.read_some()) {
        throw support::ProcError(
            "ProcMachine: respawned worker for PE " + std::to_string(pe) +
            " hung up during handshake");
      }
    }
    // Mid-run only our own fresh child is connecting, so any mismatch is a
    // failed handshake, not another PE's stray hello.
    if (frame.type != WireType::kHello ||
        frame.arg != net::kWireProtocolVersion ||
        frame.pe != static_cast<std::uint32_t>(pe)) {
      ::close(fd);
      throw support::ProcError(
          "ProcMachine: bad handshake from respawned worker for PE " +
          std::to_string(pe));
    }
    w.conn.set_fd(fd);
    w.conn.set_nonblocking();
    w.peer_port = static_cast<std::uint16_t>(frame.token);
  } else {
    WireFrame frame;
    bool greeted = false;
    while (!greeted) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw support::ProcError(
            "ProcMachine: respawned worker for PE " + std::to_string(pe) +
            " never said hello");
      }
      pollfd pfd{w.conn.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 50) < 0 && errno != EINTR) {
        throw support::ProcError(
            "ProcMachine: poll failed during respawn handshake");
      }
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!w.conn.read_some()) {
        throw support::ProcError(
            "ProcMachine: respawned worker for PE " + std::to_string(pe) +
            " died before its hello");
      }
      while (w.conn.next_frame(&frame)) {
        if (frame.type == WireType::kHello &&
            frame.arg == net::kWireProtocolVersion) {
          w.peer_port = static_cast<std::uint16_t>(frame.token);
          greeted = true;
        }
      }
    }
  }

  w.exited = false;
  w.exit_status = 0;
  w.acked_quiesce = false;
  w.ping_outstanding = false;
  w.heartbeat_killed = false;
  w.last_pong_s = clock_.seconds();
  // The clock-offset estimate belongs to the dead incarnation; the fresh
  // process re-estimates from its own pongs.
  w.clock = obs::WorkerClock{};
  w.ping_sent_raw_ns = 0;
  w.live_queue_depth = 0;
  milestone("respawned (pid " + std::to_string(w.pid) + ")");

  if (running_) {
    WireFrame start;
    start.type = WireType::kStart;
    start.arg = run_id_;
    send_to(pe, start);
    send_config(pe);
    // Re-seed the checkpoint from the parent's retained copy (modeled
    // stable storage) before any replayed frame can reference it.
    const auto ck = checkpoints_.find(pe);
    if (ck != checkpoints_.end()) {
      WireFrame save;
      save.type = WireType::kCheckpointSave;
      save.pe = static_cast<std::uint32_t>(pe);
      save.payload = ck->second;
      send_to(pe, save);
      milestone("checkpoint re-seeded (" +
                std::to_string(ck->second.size()) + " bytes)");
    }
    // Blind-resend the retained window in seq order.  The worker's dedup
    // high-water mark makes this exactly-once even if a nested recovery
    // already replayed a prefix.  Index-based: a nested failure path may
    // shrink the vector under us.
    std::uint64_t resent = 0;
    for (std::size_t i = 0; i < w.retained.size(); ++i) {
      const WireFrame copy = w.retained[i];
      ++resent;
      send_to(pe, copy);
    }
    frames_resent_ += resent;
    milestone("replayed " + std::to_string(resent) + " frame(s)");
    if (auto* c = recovery_counter("proc.recovery.frames_resent")) {
      c->add(resent);
    }
    if (mesh_) {
      // Re-broker the fresh incarnation's mesh edges: every survivor dials
      // its new listener and replays its retained hop window into it.
      broker_mesh_edges(pe);
      milestone("mesh edges re-brokered (port " +
                std::to_string(w.peer_port) + ")");
    }
    if (w.ckpt_waiting && w.alive) {
      // A synchronous load_checkpoint was in flight when the worker died;
      // re-ask the fresh incarnation (it answers from its spill file or
      // the copy re-pushed above).
      WireFrame load;
      load.type = WireType::kCheckpointLoad;
      load.pe = static_cast<std::uint32_t>(pe);
      send_to(pe, load);
    }
    if (recovery_handler_ && w.alive) {
      const int revived = pe;
      post(revived, [this, revived] { recovery_handler_(revived); });
    }
  }

  last_recovery_s_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (metrics_ != nullptr) {
    metrics_->gauge("proc.recovery.last_recovery_ms")
        .set(last_recovery_s_ * 1e3);
  }
}

void ProcMachine::degrade_worker(int pe) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (!recovery_timelines_.empty() && recovery_timelines_.back().pe == pe) {
    recovery_timelines_.back().milestones.emplace_back(
        clock_.seconds(), "degraded (recovery budget exhausted)");
  }
  w.degraded = true;
  w.retained.clear();
  w.ckpt_waiting = false;
  w.ckpt_reply.reset();
  // Cancel the black-holed PE's pending work so the run can converge on
  // the survivors; destroying the closures releases captured coroutine
  // frames, like a failure drain scoped to one PE.
  for (auto it = actions_.begin(); it != actions_.end();) {
    if (it->second.pe == pe) {
      if (it->second.kind == ActionKind::kTimer) {
        --outstanding_timers_;
      } else {
        --outstanding_actions_;
      }
      it = actions_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(deferred_grants_,
                [pe](const std::pair<std::uint64_t, PendingAction>& p) {
                  return p.second.pe == pe;
                });
  if (auto* c = recovery_counter("proc.recovery.degraded")) c->add();
}

void ProcMachine::drain_sigchld() {
  if (g_sigchld_pipe[0] < 0) return;
  char buf[64];
  while (::read(g_sigchld_pipe[0], buf, sizeof(buf)) > 0) {
  }
  // Reap and stash the status; teardown stays with the EOF path so frames
  // still buffered on the dead worker's socket are drained first.
  for (Worker& w : workers_) {
    if (w.pid <= 0 || w.exited) continue;
    int status = 0;
    if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
      w.exited = true;
      w.exit_status = status;
    }
  }
}

void ProcMachine::heartbeat_tick() {
  if (options_.heartbeat_interval_s <= 0.0) return;
  const double now = clock_.seconds();
  for (int pe = 0; pe < pe_count_; ++pe) {
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    if (!w.alive) continue;
    if (!w.ping_outstanding) {
      if (now - w.last_pong_s >= options_.heartbeat_interval_s) {
        w.ping_outstanding = true;
        w.ping_sent_s = now;
        WireFrame ping;
        ping.type = WireType::kPing;
        ping.pe = static_cast<std::uint32_t>(pe);
        ping.token = ++ping_token_counter_;
        // Clock-offset piggyback: raw send timestamp rides in arg, the
        // worker answers with its own steady clock in the pong's arg, and
        // the receive side of the exchange closes the NTP-style sample.
        w.ping_sent_raw_ns = steady_ns();
        ping.arg = static_cast<std::uint64_t>(w.ping_sent_raw_ns);
        send_to(pe, ping);
      }
    } else if (!w.heartbeat_killed &&
               now - w.ping_sent_s > options_.heartbeat_timeout_s) {
      // Escalate, don't tear down: SIGKILL makes the kernel close the
      // worker's socket end, and the EOF path then drains every complete
      // frame it had buffered before running death handling.
      w.heartbeat_killed = true;
      if (auto* c = recovery_counter("proc.recovery.heartbeat_kills")) {
        c->add();
      }
      if (w.pid > 0 && !w.exited) ::kill(w.pid, SIGKILL);
    }
  }
}

void ProcMachine::check_kill_schedules_wall() {
  if (kill_schedules_.empty()) return;
  const double now = clock_.seconds();
  for (auto it = kill_schedules_.begin(); it != kill_schedules_.end();) {
    if (it->after_transmits == 0 && now >= it->after_seconds) {
      const int victim = it->pe;
      it = kill_schedules_.erase(it);
      kill_worker(victim);
    } else {
      ++it;
    }
  }
}

void ProcMachine::execute(std::uint64_t /*token*/, PendingAction action) {
  if (!m_actions_.empty()) {
    m_actions_[static_cast<std::size_t>(action.pe)]->add();
  }
  const double t0 = clock_.seconds();
  try {
    action.fn();
  } catch (...) {
    record_error(std::current_exception());
  }
  const double dt = clock_.seconds() - t0;
  action_seconds_[static_cast<std::size_t>(action.pe)] += dt;
  if (dt > 0.0 && options_.heartbeat_interval_s > 0.0) {
    // Long-action awareness: while the parent runs a closure it cannot
    // pump, so no pong can land.  Credit the action's duration to every
    // worker's heartbeat clock — a long visit must never read as a dead
    // worker (the PR 2 false-deadlock lesson, applied to liveness).
    for (Worker& w : workers_) {
      w.last_pong_s += dt;
      if (w.ping_outstanding) w.ping_sent_s += dt;
    }
  }
}

void ProcMachine::handle_frame(int pe, const WireFrame& frame) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  switch (frame.type) {
    case WireType::kHop: {
      if (frame.pe >= static_cast<std::uint32_t>(pe_count_)) {
        record_error(std::make_exception_ptr(support::ProcError(
            "ProcMachine: hop routed to unknown PE " +
            std::to_string(frame.pe))));
        return;
      }
      // The hop's arrival retires the kSend that produced it: the source
      // worker has materialized and shipped the payload, so a respawn of
      // the source must not regenerate it.
      retire_retained(pe, frame.token);
      const int dst = static_cast<int>(frame.pe);
      if (workers_[static_cast<std::size_t>(dst)].degraded) {
        return;  // pending action already canceled by degrade_worker
      }
      if (options_.recovery.enabled) {
        send_tracked(dst, frame);
      } else {
        send_to(dst, frame);  // no retention copy on the hot path
      }
      return;
    }

    case WireType::kGrant: {
      retire_retained(pe, frame.token);
      auto it = actions_.find(frame.token);
      if (it == actions_.end()) return;  // canceled by a racing quiesce
                                         // (or a mesh replay's duplicate
                                         // grant — the exactly-once backstop)
      if (it->second.kind == ActionKind::kTimer) {
        --outstanding_timers_;
      } else {
        --outstanding_actions_;
      }
      PendingAction action = std::move(it->second);
      actions_.erase(it);
      if (mesh_ && action.kind == ActionKind::kHop && action.src >= 0 &&
          action.src != action.pe) {
        // Mesh hop completed: the parent's retained kSend lives at the
        // SOURCE worker's window (the grant came from the destination), and
        // the source worker holds its own copy of the materialized hop —
        // retire both so neither gets replayed into a future respawn.
        retire_retained(action.src, frame.token);
        if (mesh_retain_) {
          WireFrame retire;
          retire.type = WireType::kHopRetire;
          retire.pe = static_cast<std::uint32_t>(action.pe);
          retire.token = frame.token;
          send_to(action.src, retire);
        }
      }
      if ((frame.arg & net::kGrantOkBit) == 0) {
        record_error(std::make_exception_ptr(support::ProcError(
            "ProcMachine: hop payload failed checksum verification at PE " +
            std::to_string(pe))));
        return;  // action destroyed, not run
      }
      if (draining_ || first_error_) return;  // drain: destroy, don't run
      if (defer_grants_ > 0) {
        // A synchronous checkpoint fetch is pumping: keep the restore
        // atomic by queuing the action for after the wait completes.
        deferred_grants_.emplace_back(frame.token, std::move(action));
        return;
      }
      execute(frame.token, std::move(action));
      return;
    }

    case WireType::kQuiesceAck: {
      w.acked_quiesce = true;
      w.stats = frame.stats;
      for (const std::uint64_t token : frame.tokens) {
        retire_retained(pe, token);
        auto it = actions_.find(token);
        if (it == actions_.end()) continue;
        if (it->second.kind == ActionKind::kTimer) --outstanding_timers_;
        actions_.erase(it);
      }
      return;
    }

    case WireType::kStatusReply:
      w.stats = frame.stats;
      return;

    case WireType::kPong:
      w.ping_outstanding = false;
      w.last_pong_s = clock_.seconds();
      if (frame.arg != 0 && w.ping_sent_raw_ns != 0) {
        // Close the NTP-style exchange: the worker's steady clock rode back
        // in arg; the send/receive pair bounds the network delay.
        obs::ClockSample sample;
        sample.parent_send_ns = w.ping_sent_raw_ns;
        sample.parent_recv_ns = steady_ns();
        sample.worker_ns = static_cast<std::int64_t>(frame.arg);
        obs::clock_update(&w.clock, sample);
      }
      return;

    case WireType::kStatsDelta:
      // Live telemetry: cumulative snapshot, so overwrite — the quiesce-time
      // record_worker_metrics() pass stays the only place counters
      // accumulate into the registry (no double counting).
      w.stats = frame.stats;
      w.live_queue_depth = frame.arg;
      return;

    case WireType::kSpans: {
      std::vector<obs::ProcSpan> batch =
          obs::unpack_spans(frame.payload.data(), frame.payload.size());
      // Bound parent memory on pathological runs; the trace is best-effort.
      constexpr std::size_t kMaxSpansPerWorker = 1u << 20;
      for (const obs::ProcSpan& s : batch) {
        if (w.spans.size() >= kMaxSpansPerWorker) break;
        w.spans.push_back(s);
      }
      return;
    }

    case WireType::kCheckpointData:
      if (w.ckpt_waiting) {
        if (frame.arg != 0) {
          w.ckpt_reply = frame.payload;
        } else {
          w.ckpt_reply.reset();
        }
        w.ckpt_waiting = false;
      }
      return;

    case WireType::kHello:
      return;  // late duplicate; harmless

    default:
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)) + " from PE " +
          std::to_string(pe))));
      return;
  }
}

void ProcMachine::pump(int timeout_ms) {
  // Actions deferred by a synchronous checkpoint wait run first, in the
  // order their grants arrived.
  if (defer_grants_ == 0 && !deferred_grants_.empty()) {
    std::vector<std::pair<std::uint64_t, PendingAction>> batch;
    batch.swap(deferred_grants_);
    for (auto& [token, action] : batch) {
      if (draining_ || first_error_) break;  // rest destroyed with batch
      execute(token, std::move(action));
    }
  }
  if (running_) {
    heartbeat_tick();
    check_kill_schedules_wall();
    telemetry_tick();
  }
  std::vector<pollfd> fds;
  std::vector<int> pes;
  for (int pe = 0; pe < pe_count_; ++pe) {
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    if (!w.alive) continue;
    short events = POLLIN;
    if (w.conn.has_outgoing()) events |= POLLOUT;
    fds.push_back(pollfd{w.conn.fd(), events, 0});
    pes.push_back(pe);
  }
  if (fds.empty()) {
    record_error(std::make_exception_ptr(
        support::ProcError("ProcMachine: every worker is dead")));
    return;
  }
  const std::size_t worker_fds = fds.size();
  if (sigchld_installed_ && g_sigchld_pipe[0] >= 0) {
    fds.push_back(pollfd{g_sigchld_pipe[0], POLLIN, 0});
  }
  const int r = ::poll(fds.data(), fds.size(), timeout_ms);
  if (r < 0) {
    if (errno != EINTR) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: poll failed: " + std::string(::strerror(errno)))));
    }
    return;
  }
  if (fds.size() > worker_fds && (fds[worker_fds].revents & POLLIN) != 0) {
    drain_sigchld();
  }
  for (std::size_t i = 0; i < worker_fds; ++i) {
    const int pe = pes[i];
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    if (!w.alive) continue;
    if ((fds[i].revents & POLLOUT) != 0 && !w.conn.flush()) {
      on_worker_dead(pe);
      continue;
    }
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (!w.conn.read_some()) {
      on_worker_dead(pe);
      continue;
    }
    WireFrame frame;
    try {
      while (w.alive && w.conn.next_frame(&frame)) {
        // Pongs are liveness and periodic stats/span shipments are
        // observability, not progress: none of them may defeat the
        // stall-timeout diagnosis of a wedged run.
        if (frame.type != WireType::kPong &&
            frame.type != WireType::kStatsDelta &&
            frame.type != WireType::kSpans) {
          last_activity_s_ = clock_.seconds();
        }
        handle_frame(pe, frame);
      }
    } catch (...) {
      record_error(std::current_exception());
    }
  }
}

void ProcMachine::quiesce() {
  draining_ = true;
  int expected = 0;
  for (int pe = 0; pe < pe_count_; ++pe) {
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    w.acked_quiesce = false;
    if (!w.alive) continue;
    WireFrame frame;
    frame.type = WireType::kQuiesce;
    send_to(pe, frame);
    if (w.alive) ++expected;
  }
  (void)expected;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(options_.quiesce_timeout_s * 1e3));
  for (;;) {
    int n = 0;
    int alive = 0;
    for (const Worker& w : workers_) {
      if (!w.alive) continue;
      ++alive;
      if (w.acked_quiesce) ++n;
    }
    if (n >= alive) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: quiesce timed out waiting for worker ack(s); " +
          status_summary())));
      break;
    }
    pump(20);
  }
  // Anything still in the table — canceled timers already left, so these
  // are in-flight posts/hops of an aborted run — is destroyed, which
  // releases any captured coroutine frames, exactly like the other
  // backends' failure drains.  The retained windows and deferred grants
  // reference the same run's tokens, so they go with it.
  actions_.clear();
  outstanding_actions_ = 0;
  outstanding_timers_ = 0;
  deferred_grants_.clear();
  for (Worker& w : workers_) {
    w.retained.clear();
    w.ckpt_waiting = false;
    w.ckpt_reply.reset();
  }
  record_worker_metrics();
  draining_ = false;
}

void ProcMachine::run() {
  NAVCPP_CHECK(!running_, "ProcMachine::run is not reentrant");
  running_ = true;
  draining_ = false;
  clock_.reset();
  run_epoch_ns_ = steady_ns();  // anchors worker-span clock correction
  finish_time_ = 0.0;
  reset_stats();
  last_activity_s_ = 0.0;
  telemetry_next_s_ = telemetry_interval_s_;
  tasks_seen_ = tasks_live_ > 0;
  ++run_id_;
  for (Worker& w : workers_) {
    // Heartbeat clocks are in run time (clock_ was just reset).
    w.ping_outstanding = false;
    w.last_pong_s = 0.0;
    w.heartbeat_killed = false;
  }
  for (int pe = 0; pe < pe_count_; ++pe) {
    WireFrame frame;
    frame.type = WireType::kStart;
    frame.arg = run_id_;
    send_to(pe, frame);
    send_config(pe);
  }
  for (auto& [pe, frame] : prerun_frames_) send_to(pe, frame);
  prerun_frames_.clear();

  bool deadlocked = false;
  while (!first_error_) {
    if (outstanding_actions_ == 0 && deferred_grants_.empty()) {
      if (tasks_live_ <= 0) {
        // Leftover timers after every task finished are pure bookkeeping
        // (retransmit timers for acked frames); quiesce cancels them.  A
        // task-free run (timer smoke tests) waits them out instead.
        if (outstanding_timers_ == 0 || tasks_seen_) break;
      } else if (outstanding_timers_ == 0) {
        deadlocked = true;
        break;
      }
    }
    pump(100);
    if (stall_timeout_s_ > 0.0 &&
        outstanding_actions_ + outstanding_timers_ > 0 &&
        clock_.seconds() - last_activity_s_ > stall_timeout_s_) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: no wire activity for " +
          std::to_string(stall_timeout_s_) +
          " s with work outstanding; " + status_summary())));
      break;
    }
  }

  quiesce();
  finish_time_ = clock_.seconds();
  if (m_wall_time_ != nullptr) m_wall_time_->set(finish_time_);
  running_ = false;

  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (deadlocked) {
    std::string report =
        "ProcMachine: deadlock — " + std::to_string(tasks_live_) +
        " task(s) live with no actions or timers outstanding at any "
        "worker\n";
    if (blocked_reporter_) report += blocked_reporter_();
    report += status_summary();
    throw support::DeadlockError(report);
  }
}

const net::WireWorkerStats& ProcMachine::worker_stats(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].stats;
}

bool ProcMachine::worker_alive(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].alive;
}

ProcMachine::KillResult ProcMachine::kill_worker(int pe) {
  check_pe(pe);
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  // Idempotent: once the worker is known dead (or reaped) the pid may have
  // been recycled by the OS, so it must never be signaled again.
  if (!w.alive || w.pid <= 0 || w.exited) return KillResult::kAlreadyDead;
  ::kill(w.pid, SIGKILL);
  return KillResult::kSignaled;
}

ProcMachine::KillResult ProcMachine::stop_worker(int pe) {
  check_pe(pe);
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (!w.alive || w.pid <= 0 || w.exited) return KillResult::kAlreadyDead;
  ::kill(w.pid, SIGSTOP);
  return KillResult::kSignaled;
}

void ProcMachine::schedule_kill_after_transmits(int pe,
                                                std::uint64_t transmits) {
  check_pe(pe);
  NAVCPP_CHECK(transmits >= 1,
               "schedule_kill_after_transmits needs a count of at least 1");
  KillSchedule s;
  s.pe = pe;
  s.after_transmits = lifetime_transmits_ + transmits;
  kill_schedules_.push_back(s);
}

void ProcMachine::schedule_kill_after(int pe, double seconds) {
  check_pe(pe);
  NAVCPP_CHECK(seconds >= 0.0, "schedule_kill_after needs seconds >= 0");
  KillSchedule s;
  s.pe = pe;
  s.after_transmits = 0;
  s.after_seconds = seconds;
  kill_schedules_.push_back(s);
}

void ProcMachine::save_checkpoint(int pe, std::span<const std::byte> bytes) {
  check_pe(pe);
  checkpoints_[pe].assign(bytes.begin(), bytes.end());
  if (workers_[static_cast<std::size_t>(pe)].degraded) return;
  WireFrame frame;
  frame.type = WireType::kCheckpointSave;
  frame.pe = static_cast<std::uint32_t>(pe);
  frame.payload.assign(bytes.begin(), bytes.end());
  dispatch(pe, std::move(frame));
  if (auto* c = recovery_counter("proc.recovery.checkpoints_saved")) {
    c->add();
  }
}

std::optional<std::vector<std::byte>> ProcMachine::load_checkpoint(
    int pe, double timeout_s) {
  check_pe(pe);
  NAVCPP_CHECK(running_,
               "ProcMachine::load_checkpoint is a wire round-trip and "
               "requires an active run");
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (w.degraded) return std::nullopt;
  w.ckpt_waiting = true;
  w.ckpt_reply.reset();
  WireFrame frame;
  frame.type = WireType::kCheckpointLoad;
  frame.pe = static_cast<std::uint32_t>(pe);
  send_to(pe, frame);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  ++defer_grants_;
  while (w.ckpt_waiting && !first_error_ && !w.degraded) {
    if (std::chrono::steady_clock::now() >= deadline) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: checkpoint fetch for PE " + std::to_string(pe) +
          " timed out after " + std::to_string(timeout_s) + " s")));
      break;
    }
    pump(20);
  }
  --defer_grants_;
  w.ckpt_waiting = false;
  std::optional<std::vector<std::byte>> reply = std::move(w.ckpt_reply);
  w.ckpt_reply.reset();
  if (reply.has_value()) {
    if (auto* c = recovery_counter("proc.recovery.checkpoints_fetched")) {
      c->add();
    }
  }
  return reply;
}

int ProcMachine::respawns(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].respawns;
}

bool ProcMachine::worker_degraded(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].degraded;
}

obs::Counter* ProcMachine::recovery_counter(const char* name) {
  if (metrics_ == nullptr) return nullptr;
  return &metrics_->counter(name);
}

std::string ProcMachine::status_summary() const {
  std::string out = "per-worker status:\n";
  for (int pe = 0; pe < pe_count_; ++pe) {
    const Worker& w = workers_[static_cast<std::size_t>(pe)];
    out += "  pe " + std::to_string(pe) + ": " +
           (w.degraded ? "DEGRADED" : (w.alive ? "alive" : "DEAD")) +
           (w.respawns > 0 ? " respawns=" + std::to_string(w.respawns) : "") +
           " posts=" + std::to_string(w.stats.posts_granted) +
           " timers_fired=" + std::to_string(w.stats.timers_fired) +
           " hops_in=" + std::to_string(w.stats.hops_in) +
           (mesh_ ? " direct_in=" + std::to_string(w.stats.direct_hops_in)
                  : std::string()) +
           " hop_bytes_in=" + std::to_string(w.stats.hop_bytes_in) + "\n";
  }
  out += "  parent: outstanding_actions=" +
         std::to_string(outstanding_actions_) +
         " outstanding_timers=" + std::to_string(outstanding_timers_) +
         " tasks_live=" + std::to_string(tasks_live_) + "\n";
  return out;
}

void ProcMachine::record_worker_metrics() {
  if (metrics_ == nullptr) return;
  for (int pe = 0; pe < pe_count_; ++pe) {
    const net::WireWorkerStats& s =
        workers_[static_cast<std::size_t>(pe)].stats;
    const std::string label = obs::pe_label(pe);
    metrics_->counter("proc.worker.posts", label).add(s.posts_granted);
    metrics_->counter("proc.worker.timers_fired", label).add(s.timers_fired);
    metrics_->counter("proc.worker.hops_in", label).add(s.hops_in);
    metrics_->counter("proc.worker.hop_bytes_in", label).add(s.hop_bytes_in);
    metrics_->counter("proc.worker.hops_out", label).add(s.hops_out);
    metrics_->counter("proc.worker.hop_bytes_out", label)
        .add(s.hop_bytes_out);
    metrics_->counter("proc.worker.pings_answered", label)
        .add(s.pings_answered);
    metrics_->counter("proc.worker.frames_deduped", label)
        .add(s.frames_deduped);
    metrics_->counter("proc.worker.busy_ns", label).add(s.busy_ns);
    metrics_->counter("proc.worker.idle_ns", label).add(s.idle_ns);
    metrics_->counter("proc.worker.serialize_ns", label).add(s.serialize_ns);
    metrics_->counter("proc.worker.verify_ns", label).add(s.verify_ns);
    metrics_->counter("proc.worker.stats_deltas", label)
        .add(s.stats_deltas_sent);
    metrics_->counter("proc.worker.spans_dropped", label)
        .add(s.spans_dropped);
    metrics_->counter("proc.worker.direct_hops_out", label)
        .add(s.direct_hops_out);
    metrics_->counter("proc.worker.direct_hops_in", label)
        .add(s.direct_hops_in);
    metrics_->counter("proc.worker.hops_replayed", label)
        .add(s.hops_replayed);
  }
}

void ProcMachine::reset_stats() {
  transmitted_bytes_ = 0;
  transmitted_messages_ = 0;
  action_seconds_.assign(static_cast<std::size_t>(pe_count_), 0.0);
  recovery_timelines_.clear();
  for (Worker& w : workers_) {
    w.stats = net::WireWorkerStats{};
    w.spans.clear();
    w.clock = obs::WorkerClock{};
    w.live_queue_depth = 0;
    w.ping_sent_raw_ns = 0;
  }
}

double ProcMachine::action_seconds(int pe) const {
  check_pe(pe);
  return action_seconds_[static_cast<std::size_t>(pe)];
}

const obs::WorkerClock& ProcMachine::worker_clock(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].clock;
}

std::vector<obs::WorkerLane> ProcMachine::worker_lanes() const {
  std::vector<obs::WorkerLane> lanes;
  lanes.reserve(workers_.size());
  for (int pe = 0; pe < pe_count_; ++pe) {
    const Worker& w = workers_[static_cast<std::size_t>(pe)];
    obs::WorkerLane lane;
    lane.pe = pe;
    lane.label = "worker pe " + std::to_string(pe) + " (pid " +
                 std::to_string(w.pid) + ")";
    lane.clock = w.clock;
    lane.spans = w.spans;
    lanes.push_back(std::move(lane));
  }
  return lanes;
}

void ProcMachine::send_config(int pe) {
  std::uint64_t flags = 0;
  if (options_.trace) flags |= net::kCfgTrace;
  if (options_.stats_interval_s > 0.0) flags |= net::kCfgStatsDelta;
  if (mesh_retain_) flags |= net::kCfgMeshRetain;
  if (flags == 0) return;  // nothing to switch on; workers default to off
  WireFrame frame;
  frame.type = WireType::kConfig;
  frame.pe = static_cast<std::uint32_t>(pe);
  frame.arg = flags;
  if ((flags & net::kCfgStatsDelta) != 0) {
    frame.token =
        static_cast<std::uint64_t>(options_.stats_interval_s * 1e9);
  }
  send_to(pe, frame);
}

void ProcMachine::harvest_flight(obs::RecoveryTimeline* timeline, int pe) {
  const std::string path = flight_path(pe);
  if (path.empty()) return;
  std::string error;
  obs::FlightLog log;
  if (obs::flight_read(path, &log, &error)) {
    timeline->flight = std::move(log);
  } else {
    // Unreadable ring (worker died before creating it): the timeline keeps
    // its milestones, and the reason lands there for the drill output.
    timeline->milestones.emplace_back(
        clock_.seconds(), "flight recorder unavailable (" + error + ")");
  }
}

void ProcMachine::telemetry_tick() {
  if (!telemetry_cb_ || telemetry_interval_s_ <= 0.0) return;
  const double now = clock_.seconds();
  if (now < telemetry_next_s_) return;
  telemetry_next_s_ = now + telemetry_interval_s_;
  std::vector<LiveTelemetry> rows;
  rows.reserve(static_cast<std::size_t>(pe_count_));
  for (int pe = 0; pe < pe_count_; ++pe) {
    const Worker& w = workers_[static_cast<std::size_t>(pe)];
    LiveTelemetry row;
    row.pe = pe;
    row.alive = w.alive;
    row.degraded = w.degraded;
    row.respawns = w.respawns;
    row.compute_s = action_seconds_[static_cast<std::size_t>(pe)];
    row.queue_depth = w.live_queue_depth;
    row.stats = w.stats;
    rows.push_back(row);
  }
  telemetry_cb_(now, rows);
}

void ProcMachine::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  m_actions_.clear();
  m_net_messages_ = nullptr;
  m_net_bytes_ = nullptr;
  m_wall_time_ = nullptr;
  if (registry == nullptr) return;
  m_actions_.reserve(static_cast<std::size_t>(pe_count_));
  for (int pe = 0; pe < pe_count_; ++pe) {
    m_actions_.push_back(&registry->counter("proc.actions", obs::pe_label(pe)));
  }
  m_net_messages_ = &registry->counter("net.messages");
  m_net_bytes_ = &registry->counter("net.bytes");
  m_wall_time_ = &registry->gauge("proc.wall_time");
}

}  // namespace navcpp::machine
