#include "machine/proc_machine.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "machine/proc_worker.h"
#include "support/error.h"

namespace navcpp::machine {
namespace {

using net::FrameConn;
using net::GrantKind;
using net::WireFrame;
using net::WireType;

/// Locate the navcpp_worker binary: explicit env override, then next to the
/// running executable, then the sibling tools/ directory (the build-tree
/// layout: tests run from build/tests, the binary lands in build/tools).
/// Empty when nothing is found — the caller falls back to fork-only.
std::string discover_worker_binary() {
  const char* env = ::getenv("NAVCPP_WORKER");
  if (env != nullptr && env[0] != '\0') return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string dir(buf);
  const std::size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return "";
  dir.resize(slash);
  for (const std::string& cand :
       {dir + "/navcpp_worker", dir + "/../tools/navcpp_worker"}) {
    if (::access(cand.c_str(), X_OK) == 0) return cand;
  }
  return "";
}

std::string describe_exit(pid_t pid, bool reaped, int status) {
  if (!reaped) return "pid " + std::to_string(pid) + ", not yet reaped";
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  return "status " + std::to_string(status);
}

}  // namespace

ProcMachine::ProcMachine(int pe_count, Options options)
    : pe_count_(pe_count), options_(std::move(options)) {
  NAVCPP_CHECK(pe_count_ > 0, "ProcMachine needs at least one PE");
  const char* tcp_env = ::getenv("NAVCPP_PROC_TCP");
  if (tcp_env != nullptr && tcp_env[0] == '1') options_.use_tcp = true;
  workers_.resize(static_cast<std::size_t>(pe_count_));
  try {
    spawn_workers();
    await_hellos();
  } catch (...) {
    shutdown_workers();
    throw;
  }
}

ProcMachine::~ProcMachine() { shutdown_workers(); }

void ProcMachine::check_pe(int pe) const {
  NAVCPP_CHECK(pe >= 0 && pe < pe_count_,
               "PE id " + std::to_string(pe) + " out of range [0, " +
                   std::to_string(pe_count_) + ")");
}

void ProcMachine::spawn_workers() {
  std::string worker_path;
  if (!options_.force_fork_only) {
    worker_path = options_.worker_path.empty() ? discover_worker_binary()
                                               : options_.worker_path;
  }
  if (options_.use_tcp) listener_ = std::make_unique<net::WireListener>();
  const std::uint16_t port = listener_ ? listener_->port() : 0;
  for (int pe = 0; pe < pe_count_; ++pe) spawn_one(pe, worker_path, port);
}

void ProcMachine::spawn_one(int pe, const std::string& worker_path,
                            std::uint16_t tcp_port) {
  int fds[2] = {-1, -1};
  if (!options_.use_tcp) net::wire_socketpair(fds);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
    throw support::ProcError("ProcMachine: fork failed: " +
                             std::string(::strerror(errno)));
  }

  if (pid == 0) {
    // Child.  Drop every parent-side fd we inherited so a sibling worker's
    // death is visible to the parent as EOF (and the parent's death to us).
    if (fds[0] >= 0) ::close(fds[0]);
    for (const Worker& w : workers_) {
      if (w.conn.valid()) ::close(w.conn.fd());
    }
    if (!worker_path.empty()) {
      const std::string pe_s = std::to_string(pe);
      if (options_.use_tcp) {
        const std::string port_s = std::to_string(tcp_port);
        ::execl(worker_path.c_str(), "navcpp_worker", "--pe", pe_s.c_str(),
                "--port", port_s.c_str(), static_cast<char*>(nullptr));
      } else {
        const std::string fd_s = std::to_string(fds[1]);
        ::execl(worker_path.c_str(), "navcpp_worker", "--pe", pe_s.c_str(),
                "--fd", fd_s.c_str(), static_cast<char*>(nullptr));
      }
      // exec failed; fall through to the in-process worker loop.
    }
    int code = 1;
    try {
      int fd = fds[1];
      if (options_.use_tcp) fd = net::wire_connect_loopback(tcp_port);
      code = proc_worker_main(fd, pe);
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }

  // Parent.
  if (fds[1] >= 0) ::close(fds[1]);
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  w.pid = pid;
  w.alive = true;
  if (!options_.use_tcp) {
    w.conn.set_fd(fds[0]);
    w.conn.set_nonblocking();
  }
}

void ProcMachine::await_hellos() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(options_.hello_timeout_s * 1e3));

  if (options_.use_tcp) {
    // Workers connect in arbitrary order and identify themselves by the pe
    // field of their kHello.
    for (int i = 0; i < pe_count_; ++i) {
      const double left = std::chrono::duration<double>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      const int fd = listener_->accept_one(left);
      if (fd < 0) {
        throw support::ProcError(
            "ProcMachine: timed out waiting for workers to connect");
      }
      FrameConn conn(fd);
      WireFrame frame;
      while (!conn.next_frame(&frame)) {
        if (!conn.read_some()) {
          throw support::ProcError(
              "ProcMachine: worker hung up during handshake");
        }
      }
      if (frame.type != WireType::kHello ||
          frame.arg != net::kWireProtocolVersion ||
          frame.pe >= static_cast<std::uint32_t>(pe_count_)) {
        throw support::ProcError("ProcMachine: bad handshake from worker");
      }
      Worker& w = workers_[frame.pe];
      if (w.conn.valid()) {
        ::close(fd);
        throw support::ProcError("ProcMachine: duplicate hello for PE " +
                                 std::to_string(frame.pe));
      }
      w.conn.set_fd(fd);
      w.conn.set_nonblocking();
    }
    return;
  }

  std::vector<char> greeted(static_cast<std::size_t>(pe_count_), 0);
  int missing = pe_count_;
  while (missing > 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw support::ProcError(
          "ProcMachine: timed out waiting for worker hello(s); " +
          std::to_string(missing) + " worker(s) silent");
    }
    std::vector<pollfd> fds;
    std::vector<int> pes;
    for (int pe = 0; pe < pe_count_; ++pe) {
      if (greeted[static_cast<std::size_t>(pe)] != 0) continue;
      fds.push_back(pollfd{workers_[static_cast<std::size_t>(pe)].conn.fd(),
                           POLLIN, 0});
      pes.push_back(pe);
    }
    if (::poll(fds.data(), fds.size(), 100) < 0 && errno != EINTR) {
      throw support::ProcError("ProcMachine: poll failed during handshake");
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers_[static_cast<std::size_t>(pes[i])];
      if (!w.conn.read_some()) {
        throw support::ProcError("ProcMachine: worker for PE " +
                                 std::to_string(pes[i]) +
                                 " died before its hello");
      }
      WireFrame frame;
      while (w.conn.next_frame(&frame)) {
        if (frame.type != WireType::kHello ||
            frame.arg != net::kWireProtocolVersion) {
          throw support::ProcError("ProcMachine: bad handshake from PE " +
                                   std::to_string(pes[i]));
        }
        greeted[static_cast<std::size_t>(pes[i])] = 1;
        --missing;
      }
    }
  }
}

void ProcMachine::shutdown_workers() noexcept {
  for (Worker& w : workers_) {
    if (!w.alive || !w.conn.valid()) continue;
    WireFrame bye;
    bye.type = WireType::kShutdown;
    w.conn.send_frame(bye);
    // A blocked outgoing buffer is drained by the worker once it reads;
    // give it a brief window below either way.
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(2000);
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    bool reaped = false;
    int status = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (w.conn.valid() && w.conn.has_outgoing()) w.conn.flush();
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid || (r < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &status, 0);
    }
    w.pid = -1;
    w.alive = false;
    w.conn.close();
  }
}

void ProcMachine::record_error(std::exception_ptr error) noexcept {
  if (!first_error_) first_error_ = error;
}

void ProcMachine::fail(std::exception_ptr error) noexcept {
  record_error(error);
}

void ProcMachine::task_started() {
  ++tasks_live_;
  tasks_seen_ = true;
}

void ProcMachine::task_finished() { --tasks_live_; }

double ProcMachine::now(int pe) const {
  check_pe(pe);
  return clock_.seconds();
}

void ProcMachine::send_to(int pe, const WireFrame& frame) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (!w.alive) return;  // death already recorded; frames go nowhere
  if (!w.conn.send_frame(frame)) on_worker_dead(pe);
}

void ProcMachine::dispatch(int pe, WireFrame frame) {
  if (!running_) {
    prerun_frames_.emplace_back(pe, std::move(frame));
    return;
  }
  send_to(pe, frame);
}

void ProcMachine::post(int pe, support::MoveFunction action) {
  check_pe(pe);
  if (draining_ || first_error_) return;  // stopping: drop, don't enqueue
  const std::uint64_t token = next_token_++;
  PendingAction pending;
  pending.pe = pe;
  pending.kind = ActionKind::kPost;
  pending.fn = std::move(action);
  actions_.emplace(token, std::move(pending));
  ++outstanding_actions_;
  WireFrame frame;
  frame.type = WireType::kPost;
  frame.pe = static_cast<std::uint32_t>(pe);
  frame.token = token;
  dispatch(pe, std::move(frame));
}

void ProcMachine::post_after(int pe, double delay_seconds,
                             support::MoveFunction action) {
  check_pe(pe);
  if (draining_ || first_error_) return;
  if (delay_seconds < 0.0) delay_seconds = 0.0;
  const std::uint64_t token = next_token_++;
  PendingAction pending;
  pending.pe = pe;
  pending.kind = ActionKind::kTimer;
  pending.fn = std::move(action);
  actions_.emplace(token, std::move(pending));
  ++outstanding_timers_;
  WireFrame frame;
  frame.type = WireType::kTimer;
  frame.pe = static_cast<std::uint32_t>(pe);
  frame.token = token;
  frame.arg = static_cast<std::uint64_t>(delay_seconds * 1e9);
  dispatch(pe, std::move(frame));
}

void ProcMachine::transmit(int src, int dst, std::size_t bytes,
                           support::MoveFunction on_delivery) {
  check_pe(src);
  check_pe(dst);
  if (draining_ || first_error_) return;
  const std::uint64_t token = next_token_++;
  PendingAction pending;
  pending.pe = dst;
  pending.kind = ActionKind::kHop;
  pending.fn = std::move(on_delivery);
  actions_.emplace(token, std::move(pending));
  ++outstanding_actions_;
  transmitted_bytes_ += bytes;
  ++transmitted_messages_;
  if (m_net_messages_ != nullptr) {
    m_net_messages_->add();
    m_net_bytes_->add(bytes);
  }
  WireFrame frame;
  frame.type = WireType::kSend;
  frame.pe = static_cast<std::uint32_t>(dst);
  frame.src = static_cast<std::uint32_t>(src);
  frame.token = token;
  frame.arg = bytes;
  dispatch(src, std::move(frame));
}

void ProcMachine::on_worker_dead(int pe) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (!w.alive) return;
  w.alive = false;
  w.conn.close();
  bool reaped = false;
  int status = 0;
  // The socket closes a beat before the zombie is reapable; retry briefly.
  for (int i = 0; i < 100; ++i) {
    const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
    if (r == w.pid) {
      reaped = true;
      break;
    }
    if (r < 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  record_error(std::make_exception_ptr(support::ProcError(
      "ProcMachine: worker for PE " + std::to_string(pe) +
      " exited unexpectedly (" + describe_exit(w.pid, reaped, status) +
      "); " + status_summary())));
}

void ProcMachine::execute(std::uint64_t /*token*/, PendingAction action) {
  if (!m_actions_.empty()) {
    m_actions_[static_cast<std::size_t>(action.pe)]->add();
  }
  try {
    action.fn();
  } catch (...) {
    record_error(std::current_exception());
  }
}

void ProcMachine::handle_frame(int pe, const WireFrame& frame) {
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  switch (frame.type) {
    case WireType::kHop: {
      if (frame.pe >= static_cast<std::uint32_t>(pe_count_)) {
        record_error(std::make_exception_ptr(support::ProcError(
            "ProcMachine: hop routed to unknown PE " +
            std::to_string(frame.pe))));
        return;
      }
      send_to(static_cast<int>(frame.pe), frame);
      return;
    }

    case WireType::kGrant: {
      auto it = actions_.find(frame.token);
      if (it == actions_.end()) return;  // canceled by a racing quiesce
      if (it->second.kind == ActionKind::kTimer) {
        --outstanding_timers_;
      } else {
        --outstanding_actions_;
      }
      PendingAction action = std::move(it->second);
      actions_.erase(it);
      if ((frame.arg & net::kGrantOkBit) == 0) {
        record_error(std::make_exception_ptr(support::ProcError(
            "ProcMachine: hop payload failed checksum verification at PE " +
            std::to_string(pe))));
        return;  // action destroyed, not run
      }
      if (draining_ || first_error_) return;  // drain: destroy, don't run
      execute(frame.token, std::move(action));
      return;
    }

    case WireType::kQuiesceAck: {
      w.acked_quiesce = true;
      w.stats = frame.stats;
      for (const std::uint64_t token : frame.tokens) {
        auto it = actions_.find(token);
        if (it == actions_.end()) continue;
        if (it->second.kind == ActionKind::kTimer) --outstanding_timers_;
        actions_.erase(it);
      }
      return;
    }

    case WireType::kStatusReply:
      w.stats = frame.stats;
      return;

    case WireType::kHello:
      return;  // late duplicate; harmless

    default:
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)) + " from PE " +
          std::to_string(pe))));
      return;
  }
}

void ProcMachine::pump(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<int> pes;
  for (int pe = 0; pe < pe_count_; ++pe) {
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    if (!w.alive) continue;
    short events = POLLIN;
    if (w.conn.has_outgoing()) events |= POLLOUT;
    fds.push_back(pollfd{w.conn.fd(), events, 0});
    pes.push_back(pe);
  }
  if (fds.empty()) {
    record_error(std::make_exception_ptr(
        support::ProcError("ProcMachine: every worker is dead")));
    return;
  }
  const int r = ::poll(fds.data(), fds.size(), timeout_ms);
  if (r < 0) {
    if (errno != EINTR) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: poll failed: " + std::string(::strerror(errno)))));
    }
    return;
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const int pe = pes[i];
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    if (!w.alive) continue;
    if ((fds[i].revents & POLLOUT) != 0 && !w.conn.flush()) {
      on_worker_dead(pe);
      continue;
    }
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (!w.conn.read_some()) {
      on_worker_dead(pe);
      continue;
    }
    WireFrame frame;
    try {
      while (w.alive && w.conn.next_frame(&frame)) {
        last_activity_s_ = clock_.seconds();
        handle_frame(pe, frame);
      }
    } catch (...) {
      record_error(std::current_exception());
    }
  }
}

void ProcMachine::quiesce() {
  draining_ = true;
  int expected = 0;
  for (int pe = 0; pe < pe_count_; ++pe) {
    Worker& w = workers_[static_cast<std::size_t>(pe)];
    w.acked_quiesce = false;
    if (!w.alive) continue;
    WireFrame frame;
    frame.type = WireType::kQuiesce;
    send_to(pe, frame);
    if (w.alive) ++expected;
  }
  (void)expected;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(options_.quiesce_timeout_s * 1e3));
  for (;;) {
    int n = 0;
    int alive = 0;
    for (const Worker& w : workers_) {
      if (!w.alive) continue;
      ++alive;
      if (w.acked_quiesce) ++n;
    }
    if (n >= alive) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: quiesce timed out waiting for worker ack(s); " +
          status_summary())));
      break;
    }
    pump(20);
  }
  // Anything still in the table — canceled timers already left, so these
  // are in-flight posts/hops of an aborted run — is destroyed, which
  // releases any captured coroutine frames, exactly like the other
  // backends' failure drains.
  actions_.clear();
  outstanding_actions_ = 0;
  outstanding_timers_ = 0;
  record_worker_metrics();
  draining_ = false;
}

void ProcMachine::run() {
  NAVCPP_CHECK(!running_, "ProcMachine::run is not reentrant");
  running_ = true;
  draining_ = false;
  clock_.reset();
  finish_time_ = 0.0;
  reset_stats();
  last_activity_s_ = 0.0;
  tasks_seen_ = tasks_live_ > 0;
  ++run_id_;
  for (int pe = 0; pe < pe_count_; ++pe) {
    WireFrame frame;
    frame.type = WireType::kStart;
    frame.arg = run_id_;
    send_to(pe, frame);
  }
  for (auto& [pe, frame] : prerun_frames_) send_to(pe, frame);
  prerun_frames_.clear();

  bool deadlocked = false;
  while (!first_error_) {
    if (outstanding_actions_ == 0) {
      if (tasks_live_ <= 0) {
        // Leftover timers after every task finished are pure bookkeeping
        // (retransmit timers for acked frames); quiesce cancels them.  A
        // task-free run (timer smoke tests) waits them out instead.
        if (outstanding_timers_ == 0 || tasks_seen_) break;
      } else if (outstanding_timers_ == 0) {
        deadlocked = true;
        break;
      }
    }
    pump(100);
    if (stall_timeout_s_ > 0.0 &&
        outstanding_actions_ + outstanding_timers_ > 0 &&
        clock_.seconds() - last_activity_s_ > stall_timeout_s_) {
      record_error(std::make_exception_ptr(support::ProcError(
          "ProcMachine: no wire activity for " +
          std::to_string(stall_timeout_s_) +
          " s with work outstanding; " + status_summary())));
      break;
    }
  }

  quiesce();
  finish_time_ = clock_.seconds();
  if (m_wall_time_ != nullptr) m_wall_time_->set(finish_time_);
  running_ = false;

  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (deadlocked) {
    std::string report =
        "ProcMachine: deadlock — " + std::to_string(tasks_live_) +
        " task(s) live with no actions or timers outstanding at any "
        "worker\n";
    if (blocked_reporter_) report += blocked_reporter_();
    report += status_summary();
    throw support::DeadlockError(report);
  }
}

const net::WireWorkerStats& ProcMachine::worker_stats(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].stats;
}

bool ProcMachine::worker_alive(int pe) const {
  check_pe(pe);
  return workers_[static_cast<std::size_t>(pe)].alive;
}

void ProcMachine::kill_worker(int pe) {
  check_pe(pe);
  Worker& w = workers_[static_cast<std::size_t>(pe)];
  if (w.alive && w.pid > 0) ::kill(w.pid, SIGKILL);
}

std::string ProcMachine::status_summary() const {
  std::string out = "per-worker status:\n";
  for (int pe = 0; pe < pe_count_; ++pe) {
    const Worker& w = workers_[static_cast<std::size_t>(pe)];
    out += "  pe " + std::to_string(pe) + ": " +
           (w.alive ? "alive" : "DEAD") +
           " posts=" + std::to_string(w.stats.posts_granted) +
           " timers_fired=" + std::to_string(w.stats.timers_fired) +
           " hops_in=" + std::to_string(w.stats.hops_in) +
           " hop_bytes_in=" + std::to_string(w.stats.hop_bytes_in) + "\n";
  }
  out += "  parent: outstanding_actions=" +
         std::to_string(outstanding_actions_) +
         " outstanding_timers=" + std::to_string(outstanding_timers_) +
         " tasks_live=" + std::to_string(tasks_live_) + "\n";
  return out;
}

void ProcMachine::record_worker_metrics() {
  if (metrics_ == nullptr) return;
  for (int pe = 0; pe < pe_count_; ++pe) {
    const net::WireWorkerStats& s =
        workers_[static_cast<std::size_t>(pe)].stats;
    const std::string label = obs::pe_label(pe);
    metrics_->counter("proc.worker.posts", label).add(s.posts_granted);
    metrics_->counter("proc.worker.timers_fired", label).add(s.timers_fired);
    metrics_->counter("proc.worker.hops_in", label).add(s.hops_in);
    metrics_->counter("proc.worker.hop_bytes_in", label).add(s.hop_bytes_in);
    metrics_->counter("proc.worker.hops_out", label).add(s.hops_out);
    metrics_->counter("proc.worker.hop_bytes_out", label)
        .add(s.hop_bytes_out);
  }
}

void ProcMachine::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  m_actions_.clear();
  m_net_messages_ = nullptr;
  m_net_bytes_ = nullptr;
  m_wall_time_ = nullptr;
  if (registry == nullptr) return;
  m_actions_.reserve(static_cast<std::size_t>(pe_count_));
  for (int pe = 0; pe < pe_count_; ++pe) {
    m_actions_.push_back(&registry->counter("proc.actions", obs::pe_label(pe)));
  }
  m_net_messages_ = &registry->counter("net.messages");
  m_net_bytes_ = &registry->counter("net.bytes");
  m_wall_time_ = &registry->gauge("proc.wall_time");
}

}  // namespace navcpp::machine
