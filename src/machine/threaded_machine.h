// ThreadedMachine: one OS thread per PE, real concurrency.
//
// Each PE owns an MPSC run queue; its worker thread executes queued actions
// strictly one at a time, so PE-confined state (NavP node variables, events,
// mini-MPI mailboxes) needs no further locking.  transmit() is an immediate
// enqueue on the destination PE — on a single shared-memory machine there is
// no network to model, and "migration" is just rescheduling a coroutine on
// another PE's executor (the byte count still feeds the statistics so the
// same program can be cost-audited on either backend).
//
// Termination: run() returns when every registered task has finished.  An
// optional stall timeout turns a silent distributed deadlock (all workers
// idle, live tasks remain, nothing queued) into a DeadlockError carrying the
// runtime's description of who is blocked on what.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "machine/engine.h"
#include "obs/metrics.h"
#include "support/mpsc_queue.h"
#include "support/stopwatch.h"

namespace navcpp::machine {

class ThreadedMachine final : public Engine {
 public:
  explicit ThreadedMachine(int pe_count);
  ~ThreadedMachine() override;

  ThreadedMachine(const ThreadedMachine&) = delete;
  ThreadedMachine& operator=(const ThreadedMachine&) = delete;

  int pe_count() const override { return static_cast<int>(queues_.size()); }

  void post(int pe, support::MoveFunction action) override;
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override;
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int /*pe*/, double /*seconds*/) override {}
  double now(int pe) const override;
  double finish_time() const override { return finish_time_; }

  void task_started() override;
  void task_finished() override;
  void fail(std::exception_ptr error) noexcept override;
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    blocked_reporter_ = std::move(reporter);
  }

  /// If no action completes, none is executing, and no task finishes for
  /// this long while tasks remain live, run() aborts with DeadlockError.
  /// A single action running longer than the timeout is NOT a stall (the
  /// worker is busy, not blocked).  Zero disables (default).
  void set_stall_timeout(double seconds) { stall_timeout_s_ = seconds; }

  void run() override;

  /// Total bytes passed to transmit() (both backends expose cost audits).
  /// Counts only messages actually enqueued for delivery; messages dropped
  /// because the machine is stopping are excluded.
  std::uint64_t transmitted_bytes() const {
    return transmitted_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t transmitted_messages() const {
    return transmitted_messages_.load(std::memory_order_relaxed);
  }

  /// Zero the transmit statistics (mirrors net::NetworkModel::reset_stats).
  /// run() calls this automatically so a reused machine reports per-run
  /// numbers rather than accumulating across runs.
  void reset_stats() {
    transmitted_bytes_.store(0, std::memory_order_relaxed);
    transmitted_messages_.store(0, std::memory_order_relaxed);
  }

  /// Metrics: per-PE "threaded.actions{pe=N}" counters, a
  /// "threaded.queue_depth" histogram sampled at every enqueue,
  /// "net.messages" / "net.bytes" counters beside the transmit audit, and a
  /// "threaded.wall_time" gauge set when run() returns.  Attach before
  /// run() — the worker threads read the cached handles unsynchronized.
  void set_metrics(obs::Registry* registry) override;

 private:
  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::uint64_t seq;  // FIFO among equal deadlines
    int pe;
    support::MoveFunction action;
  };

  // push_heap/pop_heap comparator: min-heap on (deadline, seq).
  static bool timer_later(const Timer& a, const Timer& b);

  void worker_loop(int pe);
  void timer_loop();
  void check_pe(int pe) const;
  void record_exception();

  /// Queue-depth bookkeeping around the MPSC queues (which expose no size).
  void note_enqueue(int pe) {
    const std::int64_t depth =
        enqueued_[static_cast<std::size_t>(pe)].fetch_add(
            1, std::memory_order_relaxed) +
        1 - dequeued_[static_cast<std::size_t>(pe)].load(
                std::memory_order_relaxed);
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->record(static_cast<double>(depth));
    }
  }
  void note_dequeue(int pe) {
    dequeued_[static_cast<std::size_t>(pe)].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<support::MpscQueue<support::MoveFunction>>>
      queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  std::int64_t tasks_live_ = 0;
  std::uint64_t progress_counter_ = 0;  // bumps on every executed action
  std::int64_t actions_in_flight_ = 0;  // actions currently executing
  bool stopping_ = false;
  std::exception_ptr first_exception_;

  std::function<std::string()> blocked_reporter_;
  double stall_timeout_s_ = 0.0;

  // post_after timers: a binary heap serviced by one timer thread that runs
  // only inside run().  timers_pending_ is atomic so the stall watchdog can
  // consult it without nesting timer_mutex_ under state_mutex_.
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<Timer> timers_;
  std::uint64_t timer_seq_ = 0;
  bool timers_stop_ = false;
  std::thread timer_thread_;
  std::atomic<std::int64_t> timers_pending_{0};

  support::Stopwatch clock_;
  double finish_time_ = 0.0;
  std::atomic<std::uint64_t> transmitted_bytes_{0};
  std::atomic<std::uint64_t> transmitted_messages_{0};

  // Cached metric handles (empty/null when metrics are off) and the per-PE
  // enqueue/dequeue tallies backing the queue-depth histogram.
  std::vector<obs::Counter*> m_actions_;
  obs::Histogram* m_queue_depth_ = nullptr;
  obs::Counter* m_net_messages_ = nullptr;
  obs::Counter* m_net_bytes_ = nullptr;
  obs::Gauge* m_wall_time_ = nullptr;
  std::unique_ptr<std::atomic<std::int64_t>[]> enqueued_;
  std::unique_ptr<std::atomic<std::int64_t>[]> dequeued_;
};

}  // namespace navcpp::machine
