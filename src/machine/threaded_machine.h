// ThreadedMachine: one OS thread per PE, real concurrency.
//
// Each PE owns a lock-free FastMpscQueue run queue plus a *consumer token*
// (an atomic flag).  Workers scan every PE's queue round-robin: whoever
// claims a PE's token drains that queue in pop_all() batches and executes
// the actions one at a time.  The token — not thread identity — is what
// serializes a PE, so PE-confined state (NavP node variables, events,
// mini-MPI mailboxes) still needs no locking, while an idle worker can
// *help* a busy neighbour instead of sleeping.  On a machine with fewer
// cores than PEs (the common CI case) a ping-pong between two PEs collapses
// onto a single worker with zero context switches, which is where most of
// the hop-rate win over the old mutex+condvar design comes from (see
// docs/architecture.md, "Run-queue design").
//
// transmit() coalesces per (src,dst) channel: deliveries CAS onto the
// channel's pending stack, and only the first in a burst enqueues a drain
// marker on the destination PE, which then delivers the whole burst as one
// run-queue action.  Per-channel FIFO (the Engine non-overtaking guarantee)
// is preserved: the pending stack linearizes producers and drains in push
// order, and markers for one channel are never concurrent.
//
// Workers that find every queue empty park on a machine-wide lot; producers
// wake the lot only when *no* worker is awake, so a busy worker absorbs new
// work without any futex traffic.  A short parked timeout (kParkPollMs)
// bounds the latency of the one theoretical miss left: work queued behind a
// long-running action while every other worker sleeps.
//
// Termination: run() returns when every registered task has finished.  An
// optional stall timeout turns a silent distributed deadlock (all workers
// idle, live tasks remain, nothing queued) into a DeadlockError carrying
// the runtime's description of who is blocked on what.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "machine/engine.h"
#include "obs/metrics.h"
#include "support/fast_mpsc_queue.h"
#include "support/stopwatch.h"

namespace navcpp::machine {

class ThreadedMachine final : public Engine {
 public:
  explicit ThreadedMachine(int pe_count);
  ~ThreadedMachine() override;

  ThreadedMachine(const ThreadedMachine&) = delete;
  ThreadedMachine& operator=(const ThreadedMachine&) = delete;

  int pe_count() const override { return pe_count_; }

  void post(int pe, support::MoveFunction action) override;
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override;
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int /*pe*/, double /*seconds*/) override {}
  double now(int pe) const override;
  double finish_time() const override { return finish_time_; }

  void task_started() override;
  void task_finished() override;
  void fail(std::exception_ptr error) noexcept override;
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    blocked_reporter_ = std::move(reporter);
  }

  /// If no action completes, none is executing, and no task finishes for
  /// this long while tasks remain live, run() aborts with DeadlockError.
  /// A single action running longer than the timeout is NOT a stall (the
  /// worker is busy, not blocked).  Zero disables (default).
  void set_stall_timeout(double seconds) { stall_timeout_s_ = seconds; }

  void run() override;

  /// Total bytes passed to transmit() (both backends expose cost audits).
  /// Counts only messages actually enqueued for delivery; messages dropped
  /// because the machine is stopping are excluded.
  std::uint64_t transmitted_bytes() const {
    return transmitted_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t transmitted_messages() const {
    return transmitted_messages_.load(std::memory_order_relaxed);
  }

  /// Zero the transmit statistics (mirrors net::NetworkModel::reset_stats).
  /// run() calls this automatically so a reused machine reports per-run
  /// numbers rather than accumulating across runs.
  void reset_stats() {
    transmitted_bytes_.store(0, std::memory_order_relaxed);
    transmitted_messages_.store(0, std::memory_order_relaxed);
  }

  /// Metrics: per-PE "threaded.actions{pe=N}" counters (labelled by the PE
  /// whose queue the action came from, not the thread that ran it), a
  /// "threaded.queue_depth" histogram sampled by the *consumer* once per
  /// drained batch (producers only bump a relaxed tally, so the hot path
  /// stays wait-free; samples are clamped at zero because the two tallies
  /// are read without mutual ordering), "net.messages" / "net.bytes"
  /// counters beside the transmit audit, and a "threaded.wall_time" gauge
  /// set when run() returns.  Attach before run() — the worker threads read
  /// the cached handles unsynchronized.
  void set_metrics(obs::Registry* registry) override;

 private:
  /// Parked-worker poll interval: bounds the wake-up latency of work that
  /// arrives while every producer-visible worker is busy executing.
  static constexpr std::chrono::milliseconds kParkPollMs{2};

  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::uint64_t seq;  // FIFO among equal deadlines
    int pe;
    support::MoveFunction action;
  };

  /// Per-(src,dst) delivery coalescing cell: transmits stack their
  /// on_delivery closures here, and `scheduled` dedups the drain marker so
  /// a burst costs the destination run queue a single entry.
  struct Channel {
    support::FastMpscQueue<support::MoveFunction> pending;
    std::atomic<bool> scheduled{false};
  };

  // push_heap/pop_heap comparator: min-heap on (deadline, seq).
  static bool timer_later(const Timer& a, const Timer& b);

  void worker_loop(int home_pe);
  bool drain_pe(int pe, std::vector<support::MoveFunction>& batch);
  void execute(int pe, support::MoveFunction& action);
  void park();
  void wake_lot_if_idle();
  void deliver_channel(int src, int dst);
  void timer_loop();
  void check_pe(int pe) const;
  void record_exception();

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(pe_count_) +
                      static_cast<std::size_t>(dst)];
  }

  /// Producer-side half of the queue-depth metric: a wait-free tally bump.
  /// The histogram sample happens on the consumer, once per batch.
  void note_enqueue(int pe) {
    enqueued_[static_cast<std::size_t>(pe)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void note_dequeue(int pe) {
    dequeued_[static_cast<std::size_t>(pe)].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// Consumer-side sample: enqueued - dequeued, clamped at zero (the
  /// tallies are independently relaxed, so a transient negative read is
  /// possible and must not reach the histogram).
  void sample_queue_depth(int pe) {
    if (m_queue_depth_ == nullptr) return;
    const std::int64_t depth =
        enqueued_[static_cast<std::size_t>(pe)].load(
            std::memory_order_relaxed) -
        dequeued_[static_cast<std::size_t>(pe)].load(
            std::memory_order_relaxed);
    m_queue_depth_->record(static_cast<double>(depth < 0 ? 0 : depth));
  }

  int pe_count_ = 0;
  std::vector<std::unique_ptr<support::FastMpscQueue<support::MoveFunction>>>
      queues_;
  std::unique_ptr<std::atomic<bool>[]> pe_busy_;  // per-PE consumer tokens
  std::vector<std::unique_ptr<Channel>> channels_;  // pe_count^2 cells
  std::vector<std::thread> workers_;

  std::atomic<bool> stop_workers_{false};  // run() teardown signal
  std::atomic<bool> stopping_{false};      // failure: drain, don't execute
  std::atomic<int> worker_count_{0};       // workers spawned by this run
  std::atomic<std::int64_t> tasks_live_{0};
  std::atomic<std::uint64_t> progress_counter_{0};  // completed actions
  std::atomic<std::int64_t> actions_in_flight_{0};

  // run()'s completion wait + the first-failure slot.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::exception_ptr first_exception_;  // guarded by done_mutex_

  // Parking lot for idle workers.  parked_workers_ is seq_cst against the
  // queues' push CAS: a producer that sees every worker parked wakes the
  // lot; a parker registers, rescans, and only then waits (holding the lot
  // mutex across register+rescan makes the handoff race-free).
  std::mutex lot_mutex_;
  std::condition_variable lot_cv_;
  std::atomic<int> parked_workers_{0};

  std::function<std::string()> blocked_reporter_;
  double stall_timeout_s_ = 0.0;

  // post_after timers: a binary heap serviced by one timer thread.  The
  // thread is only spawned by run() once a post_after has ever happened
  // (timers_used_ is sticky), so timer-free programs skip the thread
  // entirely.  timers_pending_ is atomic so the stall watchdog can consult
  // it without taking timer_mutex_.
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<Timer> timers_;
  std::uint64_t timer_seq_ = 0;
  bool timers_stop_ = false;
  bool machine_running_ = false;  // guarded by timer_mutex_
  std::thread timer_thread_;
  std::atomic<std::int64_t> timers_pending_{0};
  std::atomic<bool> timers_used_{false};

  support::Stopwatch clock_;
  double finish_time_ = 0.0;
  std::atomic<std::uint64_t> transmitted_bytes_{0};
  std::atomic<std::uint64_t> transmitted_messages_{0};

  // Cached metric handles (empty/null when metrics are off) and the per-PE
  // enqueue/dequeue tallies backing the queue-depth histogram.
  std::vector<obs::Counter*> m_actions_;
  obs::Histogram* m_queue_depth_ = nullptr;
  obs::Counter* m_net_messages_ = nullptr;
  obs::Counter* m_net_bytes_ = nullptr;
  obs::Gauge* m_wall_time_ = nullptr;
  std::unique_ptr<std::atomic<std::int64_t>[]> enqueued_;
  std::unique_ptr<std::atomic<std::int64_t>[]> dequeued_;
};

}  // namespace navcpp::machine
