// ChaosMachine: a schedule-fuzzing decorator over any machine::Engine.
//
// The Engine contract makes exactly one scheduling promise: each PE executes
// its actions one at a time.  Everything else — when a cross-PE message is
// delivered, how deliveries interleave with locally posted actions, how long
// an action waits in a queue — is backend discretion, and correct programs
// (NavP missions, mini-MPI rank programs, the MM variants) must tolerate any
// legal choice.  In practice we only ever exercise two choices: the threaded
// machine's OS timing and the sim machine's deterministic (time, seq) order.
//
// ChaosMachine widens that coverage.  Driven by a seeded support::Rng it
// legally perturbs execution:
//
//  * transmit() deliveries may be *deferred*: the delivery action, once it
//    arrives at the destination PE, re-posts itself to the back of that PE's
//    queue k times before running.  This delays and reorders cross-PE
//    deliveries relative to each other and to local actions.  Deliveries on
//    the same (src, dst) pair are never reordered against each other: the
//    payloads of one channel execute strictly in send order (a per-channel
//    FIFO holds them; a deferred delivery consumes the oldest pending
//    payload).  Real interconnects in this model (TCP links, MPI channels)
//    are non-overtaking, and the pipelined programs' correctness argument
//    depends on it — see the event-keying note in mm/navp_mm_2d.h.
//  * post() scheduling may be *jittered*: the action charges a small random
//    compute cost to its PE before running (perturbing virtual time on the
//    sim backend) and, when `wall_jitter` is on, also sleeps that long in
//    wall time (perturbing real interleavings on the threaded backend).
//  * optionally, same-PE ready actions are *shuffled*: post() itself gets
//    the defer treatment, so locally queued actions overtake each other.
//    Off by default — it breaks per-PE FIFO, which the Engine contract does
//    not promise but which is a stronger perturbation than most programs
//    are ever exposed to.
//
// Per-PE one-at-a-time execution is preserved (every trick reduces to extra
// post() calls on the same PE), every defer chain is finite, and all random
// choices are drawn from the seed in call order — so any failure ChaosMachine
// provokes is a real bug in the program or runtime, and on the deterministic
// sim backend it is reproducible from the seed alone.  trace_summary()
// returns a compact log of every decision and every delivery execution;
// byte-equality of two summaries certifies identical schedules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "machine/engine.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace navcpp::machine {

/// Perturbation knobs.  All probabilities are in [0, 1]; all defer maxima
/// are inclusive upper bounds on the uniformly drawn defer count (>= 1 when
/// the perturbation fires).
struct ChaosConfig {
  std::uint64_t seed = 1;

  /// Chance that a transmit() delivery is deferred at the destination.
  double transmit_delay_prob = 0.5;
  int max_transmit_defer = 4;

  /// Keep same-(src, dst) deliveries in send order while deferring (the
  /// non-overtaking guarantee of real channels; see the header comment).
  /// Turning this off lets same-channel messages overtake each other — an
  /// interleaving no modeled interconnect produces, useful only to probe
  /// which programs *depend* on channel FIFO (the pipelined MM variants do,
  /// by design, and will legitimately fail).
  bool preserve_pair_fifo = true;

  /// Chance that a post()ed action is charged a random activation delay.
  double post_jitter_prob = 0.25;
  double max_post_jitter_s = 50e-6;
  /// Also sleep the jitter in wall time (use when wrapping the threaded
  /// backend, where charge() is a no-op).
  bool wall_jitter = false;

  /// Shuffle same-PE ready actions by deferring post()s too.  Breaks per-PE
  /// FIFO order (legal, but aggressive); off by default.
  bool shuffle_same_pe = false;
  double shuffle_prob = 0.5;
  int max_post_defer = 3;
};

class ChaosMachine final : public Engine {
 public:
  explicit ChaosMachine(Engine& inner, ChaosConfig cfg = ChaosConfig{});

  int pe_count() const override { return inner_.pe_count(); }
  void post(int pe, support::MoveFunction action) override;
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int pe, double seconds) override { inner_.charge(pe, seconds); }
  double now(int pe) const override { return inner_.now(pe); }
  double finish_time() const override { return inner_.finish_time(); }
  void task_started() override { inner_.task_started(); }
  void task_finished() override { inner_.task_finished(); }
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    inner_.set_blocked_reporter(std::move(reporter));
  }
  void fail(std::exception_ptr error) noexcept override { inner_.fail(error); }
  void run() override { inner_.run(); }
  // Timers pass through untouched: deferring a retransmit timeout would only
  // re-jitter what is already jittered, and the reliability layer depends on
  // deadlines being honored for its liveness argument.
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override {
    inner_.post_after(pe, delay_seconds, std::move(action));
  }
  Engine* decorated() override { return &inner_; }
  /// Metrics: "chaos.decisions" / "chaos.perturbations" counters mirroring
  /// decisions()/perturbations().
  void set_metrics(obs::Registry* registry) override;

  Engine& inner() { return inner_; }
  const ChaosConfig& config() const { return cfg_; }

  /// Number of post()/transmit() calls that passed through the decorator.
  std::uint64_t decisions() const;
  /// Number of calls that were actually perturbed (deferred or jittered).
  std::uint64_t perturbations() const;

  /// Compact decision-and-delivery log: one token per post() decision
  /// ("p<pe>d<defer>j<jitter_us>"), per transmit() decision
  /// ("t<src>-<dst>d<defer>"), and per delivery execution ("x<dst>").
  /// On the sim backend two runs with the same seed produce byte-identical
  /// summaries; any divergence means the schedule differed.
  std::string trace_summary() const;

  /// Clear the log and counters and reseed the RNG (machine reuse).
  void reset_trace(std::uint64_t seed);

 private:
  /// Wrap `action` so that, when first executed on `pe`, it re-posts itself
  /// to the back of `pe`'s queue `times` more times before really running.
  support::MoveFunction deferred(int pe, int times,
                                 support::MoveFunction action);

  Engine& inner_;
  ChaosConfig cfg_;

  mutable std::mutex mutex_;  // guards rng_, log_, channels_, counters
  support::Rng rng_;
  // Pending payloads per (src, dst) channel, in send order.  Each deferred
  // delivery wrapper consumes the *oldest* pending payload of its channel,
  // so defers delay deliveries without breaking non-overtaking.
  std::map<std::pair<int, int>, std::deque<support::MoveFunction>> channels_;
  std::string log_;
  std::uint64_t decisions_ = 0;
  std::uint64_t perturbations_ = 0;

  // Cached metric handles (null when metrics are off).
  obs::Counter* m_decisions_ = nullptr;
  obs::Counter* m_perturbations_ = nullptr;
};

}  // namespace navcpp::machine
