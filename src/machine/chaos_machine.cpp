#include "machine/chaos_machine.h"

#include <chrono>
#include <thread>
#include <utility>

#include "support/error.h"

namespace navcpp::machine {

ChaosMachine::ChaosMachine(Engine& inner, ChaosConfig cfg)
    : inner_(inner), cfg_(cfg), rng_(cfg.seed) {
  NAVCPP_CHECK(cfg_.max_transmit_defer >= 1 && cfg_.max_post_defer >= 1,
               "defer maxima must be >= 1");
  NAVCPP_CHECK(cfg_.max_post_jitter_s >= 0.0,
               "jitter magnitude must be >= 0");
}

support::MoveFunction ChaosMachine::deferred(int pe, int times,
                                             support::MoveFunction action) {
  if (times <= 0) return action;
  // Each layer, when dequeued, pushes the next layer to the back of the same
  // PE's queue instead of running the payload: the payload slips behind
  // whatever is ready on that PE right now.  The chain is finite, every hop
  // is an ordinary post() on the same PE (one-at-a-time preserved), and each
  // hop executes an action, so the threaded backend's stall detector keeps
  // seeing progress.
  return [this, pe, times, action = std::move(action)]() mutable {
    inner_.post(pe, deferred(pe, times - 1, std::move(action)));
  };
}

void ChaosMachine::post(int pe, support::MoveFunction action) {
  int defer = 0;
  double jitter = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++decisions_;
    if (m_decisions_ != nullptr) m_decisions_->add();
    if (cfg_.shuffle_same_pe && rng_.uniform() < cfg_.shuffle_prob) {
      defer = 1 + static_cast<int>(rng_.below(
                      static_cast<std::uint64_t>(cfg_.max_post_defer)));
    }
    if (cfg_.post_jitter_prob > 0.0 &&
        rng_.uniform() < cfg_.post_jitter_prob) {
      jitter = rng_.uniform(0.0, cfg_.max_post_jitter_s);
    }
    if (defer > 0 || jitter > 0.0) {
      ++perturbations_;
      if (m_perturbations_ != nullptr) m_perturbations_->add();
    }
    log_ += 'p';
    log_ += std::to_string(pe);
    log_ += 'd';
    log_ += std::to_string(defer);
    log_ += 'j';
    log_ += std::to_string(static_cast<long long>(jitter * 1e6));
    log_ += ';';
  }
  if (jitter > 0.0) {
    const bool sleep_too = cfg_.wall_jitter;
    action = [this, pe, jitter, sleep_too,
              inner_action = std::move(action)]() mutable {
      inner_.charge(pe, jitter);
      if (sleep_too) {
        std::this_thread::sleep_for(std::chrono::duration<double>(jitter));
      }
      inner_action();
    };
  }
  inner_.post(pe, deferred(pe, defer, std::move(action)));
}

void ChaosMachine::transmit(int src, int dst, std::size_t bytes,
                            support::MoveFunction on_delivery) {
  int defer = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++decisions_;
    if (m_decisions_ != nullptr) m_decisions_->add();
    if (rng_.uniform() < cfg_.transmit_delay_prob) {
      defer = 1 + static_cast<int>(rng_.below(
                      static_cast<std::uint64_t>(cfg_.max_transmit_defer)));
      ++perturbations_;
      if (m_perturbations_ != nullptr) m_perturbations_->add();
    }
    log_ += 't';
    log_ += std::to_string(src);
    log_ += '-';
    log_ += std::to_string(dst);
    log_ += 'd';
    log_ += std::to_string(defer);
    log_ += ';';
  }
  // Record the moment the payload really executes, so the summary captures
  // the final delivery order, not just the decisions that shaped it.
  support::MoveFunction logged = [this, dst,
                                  payload = std::move(on_delivery)]() mutable {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      log_ += 'x';
      log_ += std::to_string(dst);
      log_ += ';';
    }
    payload();
  };
  if (!cfg_.preserve_pair_fifo) {
    inner_.transmit(src, dst, bytes, deferred(dst, defer, std::move(logged)));
    return;
  }
  // Non-overtaking: the payload is banked in its channel's queue *at send
  // time*, and what travels through the (possibly deferred) delivery path is
  // only a puller that consumes the oldest pending payload of that channel.
  // A deferral therefore delays *a* delivery on the channel, but the payloads
  // themselves still execute strictly in send order.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    channels_[{src, dst}].push_back(std::move(logged));
  }
  support::MoveFunction pull = [this, src, dst] {
    support::MoveFunction payload;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& queue = channels_[{src, dst}];
      payload = std::move(queue.front());
      queue.pop_front();
    }
    payload();  // outside the lock: payloads transmit()/post() re-entrantly
  };
  inner_.transmit(src, dst, bytes, deferred(dst, defer, std::move(pull)));
}

std::uint64_t ChaosMachine::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

std::uint64_t ChaosMachine::perturbations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return perturbations_;
}

std::string ChaosMachine::trace_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

void ChaosMachine::reset_trace(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_.reseed(seed);
  // A failed run can leave undelivered payloads banked (their pullers were
  // dropped in the shutdown drain); destroy them like the drain would have.
  channels_.clear();
  log_.clear();
  decisions_ = 0;
  perturbations_ = 0;
}

void ChaosMachine::set_metrics(obs::Registry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    m_decisions_ = nullptr;
    m_perturbations_ = nullptr;
    return;
  }
  m_decisions_ = &registry->counter("chaos.decisions");
  m_perturbations_ = &registry->counter("chaos.perturbations");
}

}  // namespace navcpp::machine
