// FaultMachine: a seeded, deterministic fault injector over any Engine.
//
// ChaosMachine (chaos_machine.h) perturbs *orderings* within the Engine
// contract; FaultMachine deliberately steps outside it and models the
// failures a production interconnect and fleet would see:
//
//  * message faults — drop, duplication, payload corruption — injected at
//    *frame* granularity through the net::FrameFaults interface.  Engine
//    payloads are one-shot move-only closures (often owning a migrating
//    agent's coroutine stack), so the injector never touches payloads
//    directly: net::ReliableChannel banks the payload sender-side and asks
//    decide_frame() for the fate of each small copyable frame it puts on
//    the wire.  Dropping a frame loses nothing but time; the protocol
//    retransmits.  A FaultMachine without a ReliableChannel on top delivers
//    faithfully (transmit passes through), so programs opt into the fault
//    model by routing traffic through the reliability layer — which
//    navp::Runtime does automatically when it finds a FaultMachine in the
//    engine decorator chain.
//
//  * PE crashes — fail-stop at a planned virtual time with optional restart.
//    While a PE is down, transmit() to or from it parks the payload in a
//    limbo list (closures are kept alive and destroyed at teardown, never
//    executed — mirroring a host whose memory vanished), and inbound frames
//    are black-holed by is_down().  Crash and restart handlers let the
//    runtime kill resident agents and restore from a checkpoint
//    (navp/checkpoint.h).  The crash model is fail-stop with volatile
//    memory: anything delivered after the last checkpoint is lost and must
//    be re-created by recovery; sender-side retain buffers are modeled as
//    surviving (stable) storage.
//
// All randomness comes from one seeded support::Rng consulted in call
// order, so on the sim backend a (program, FaultPlan) pair replays
// bit-identically; trace_summary() certifies schedules byte-for-byte, like
// ChaosMachine's.  Composable: FaultMachine(ChaosMachine(SimMachine)) and
// ChaosMachine(FaultMachine(SimMachine)) both work — decorated() lets the
// runtime find the fault layer anywhere in the chain.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "machine/engine.h"
#include "net/reliable_channel.h"
#include "obs/metrics.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace navcpp::machine {

/// One planned fail-stop crash.
///
/// Trigger modes: kEngineTime schedules through post_after on the inner
/// engine's clock — exact on the sim backend, but on a real-time backend
/// "0.004 s in" lands at an arbitrary point of the program's *progress*
/// (machine speed decides what has run by then).  kHopCount anchors the
/// crash to the machine's cumulative transmit() count instead — a
/// deterministic mid-run position on any backend — and kWallClock fires
/// once the wall clock of the current run() passes `at` (checked at
/// transmit granularity).  Both non-timer modes run the crash sequence as
/// a posted engine action on the victim PE, same as kEngineTime.
struct CrashSpec {
  int pe = -1;
  double at = 0.0;             ///< virtual seconds (sim) / wall (threaded)
  double restart_after = -1.0; ///< seconds after the crash; < 0 = no restart
  enum class Trigger {
    kEngineTime,  ///< post_after at `at` engine seconds (the default)
    kWallClock,   ///< wall seconds since run() started reaches `at`
    kHopCount,    ///< cumulative transmit() count reaches `after_hops`
  };
  Trigger trigger = Trigger::kEngineTime;
  std::uint64_t after_hops = 0;  ///< kHopCount threshold (>= 1)
};

/// Declarative description of the faults to inject.  Probabilities are per
/// frame and independent; local (src == dst) traffic is never faulted.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double corrupt_prob = 0.0;
  std::vector<CrashSpec> crashes;
};

class FaultMachine final : public Engine, public net::FrameFaults {
 public:
  FaultMachine(Engine& inner, FaultPlan plan,
               net::ReliableConfig reliable = net::ReliableConfig{});

  // --- Engine ------------------------------------------------------------
  int pe_count() const override { return inner_.pe_count(); }
  void post(int pe, support::MoveFunction action) override {
    inner_.post(pe, std::move(action));
  }
  void post_after(int pe, double delay_seconds,
                  support::MoveFunction action) override {
    inner_.post_after(pe, delay_seconds, std::move(action));
  }
  void transmit(int src, int dst, std::size_t bytes,
                support::MoveFunction on_delivery) override;
  void charge(int pe, double seconds) override { inner_.charge(pe, seconds); }
  double now(int pe) const override { return inner_.now(pe); }
  double finish_time() const override { return inner_.finish_time(); }
  void task_started() override { inner_.task_started(); }
  void task_finished() override { inner_.task_finished(); }
  void set_blocked_reporter(std::function<std::string()> reporter) override {
    inner_.set_blocked_reporter(std::move(reporter));
  }
  void fail(std::exception_ptr error) noexcept override { inner_.fail(error); }
  void run() override;
  Engine* decorated() override { return &inner_; }
  /// Metrics: injected-fault counters under "fault.*" (drops, dups,
  /// corruptions, limboed payloads, crashes fired).  Reports only this
  /// layer's dimensions — Runtime::set_metrics walks the chain.
  void set_metrics(obs::Registry* registry) override;

  // --- net::FrameFaults --------------------------------------------------
  net::FrameFate decide_frame(int src, int dst) override;
  bool is_down(int pe) const override;

  // --- wiring ------------------------------------------------------------
  Engine& inner() { return inner_; }
  const FaultPlan& plan() const { return plan_; }
  /// The protocol config navp::Runtime uses when it auto-installs a
  /// ReliableChannel over this machine.
  const net::ReliableConfig& reliable_config() const { return reliable_; }

  /// Invoked on the crashed PE the moment it goes down (kill resident
  /// agents, void volatile state).  Runs as an engine action on that PE.
  void set_crash_handler(std::function<void(int)> handler) {
    crash_handler_ = std::move(handler);
  }
  /// Invoked on the PE when it restarts (restore from checkpoint).
  void set_restart_handler(std::function<void(int)> handler) {
    restart_handler_ = std::move(handler);
  }

  // --- statistics / replay ----------------------------------------------
  std::uint64_t frames_dropped() const;
  std::uint64_t frames_duplicated() const;
  std::uint64_t frames_corrupted() const;
  /// transmit() payloads parked because an endpoint was down.
  std::uint64_t messages_limboed() const;
  std::uint64_t crashes_fired() const;

  /// One token per decision ("f<src>-<dst>" plus D=drop, 2=dup, C=corrupt;
  /// "X<pe>" crash, "R<pe>" restart).  Byte-equal across same-seed sim runs.
  std::string trace_summary() const;
  /// Clear the log and counters and reseed the RNG (machine reuse).
  void reset_trace(std::uint64_t seed);

 private:
  void arm_crashes();
  /// The crash sequence (mark down, log, handlers, optional restart timer);
  /// runs as an engine action on the victim PE.
  void fire_crash(const CrashSpec& spec);
  /// Fire due kWallClock/kHopCount triggers; called from transmit().
  void check_triggers();

  Engine& inner_;
  FaultPlan plan_;
  net::ReliableConfig reliable_;

  mutable std::mutex mutex_;  // guards rng_, log_, crashed_, limbo_, counters
  support::Rng rng_;
  std::string log_;
  std::vector<char> crashed_;
  /// Indexes into plan_.crashes of unfired wall-clock / hop-count triggers.
  std::vector<std::size_t> pending_triggers_;
  std::uint64_t transmit_count_ = 0;  // cumulative; kHopCount anchor
  support::Stopwatch run_clock_;      // kWallClock anchor, reset at run()
  bool run_started_ = false;
  // Payloads addressed to/from a downed PE.  Destroyed (never run) at
  // teardown: destruction releases captured coroutine frames, exactly like
  // the failure-drain path.
  std::vector<support::MoveFunction> limbo_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t limboed_ = 0;
  std::uint64_t crashes_fired_ = 0;
  bool crashes_armed_ = false;

  std::function<void(int)> crash_handler_;
  std::function<void(int)> restart_handler_;

  // Cached metric handles (null when metrics are off).
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_dups_ = nullptr;
  obs::Counter* m_corrupts_ = nullptr;
  obs::Counter* m_limboed_ = nullptr;
  obs::Counter* m_crashes_ = nullptr;
};

}  // namespace navcpp::machine
