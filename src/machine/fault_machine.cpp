#include "machine/fault_machine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace navcpp::machine {

FaultMachine::FaultMachine(Engine& inner, FaultPlan plan,
                           net::ReliableConfig reliable)
    : inner_(inner),
      plan_(std::move(plan)),
      reliable_(reliable),
      rng_(plan_.seed),
      crashed_(static_cast<std::size_t>(inner.pe_count()), 0) {
  auto check_prob = [](double p, const char* name) {
    NAVCPP_CHECK(p >= 0.0 && p <= 1.0,
                 std::string(name) + " must be a probability in [0, 1]");
  };
  check_prob(plan_.drop_prob, "drop_prob");
  check_prob(plan_.duplicate_prob, "duplicate_prob");
  check_prob(plan_.corrupt_prob, "corrupt_prob");
  for (const CrashSpec& c : plan_.crashes) {
    NAVCPP_CHECK(c.pe >= 0 && c.pe < inner.pe_count(),
                 "CrashSpec.pe " + std::to_string(c.pe) + " out of range");
    if (c.trigger == CrashSpec::Trigger::kHopCount) {
      NAVCPP_CHECK(c.after_hops >= 1,
                   "CrashSpec.after_hops must be >= 1 for a hop-count "
                   "trigger");
    } else {
      NAVCPP_CHECK(c.at >= 0.0, "CrashSpec.at must be >= 0");
    }
  }
}

void FaultMachine::transmit(int src, int dst, std::size_t bytes,
                            support::MoveFunction on_delivery) {
  check_triggers();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_[static_cast<std::size_t>(src)] != 0 ||
        crashed_[static_cast<std::size_t>(dst)] != 0) {
      // A downed endpoint: the payload goes to limbo instead of the wire.
      // Kept alive (a destroyed closure would tear down its agent stack
      // while the runtime still tracks it) and destroyed at teardown.
      limbo_.push_back(std::move(on_delivery));
      ++limboed_;
      if (m_limboed_ != nullptr) m_limboed_->add();
      return;
    }
  }
  inner_.transmit(src, dst, bytes, std::move(on_delivery));
}

net::FrameFate FaultMachine::decide_frame(int src, int dst) {
  net::FrameFate fate;
  if (src == dst) return fate;  // local traffic is never faulted
  std::lock_guard<std::mutex> lock(mutex_);
  // Always draw all three so the RNG stream stays aligned per call no
  // matter which faults fire (replayability of the decision trace).
  const bool drop = rng_.uniform() < plan_.drop_prob;
  const bool dup = rng_.uniform() < plan_.duplicate_prob;
  const bool corrupt = rng_.uniform() < plan_.corrupt_prob;
  fate.drop = drop;
  fate.corrupt = corrupt;
  fate.copies = dup ? 2 : 1;
  if (drop) ++dropped_;
  if (dup) ++duplicated_;
  if (corrupt) ++corrupted_;
  if (drop && m_drops_ != nullptr) m_drops_->add();
  if (dup && m_dups_ != nullptr) m_dups_->add();
  if (corrupt && m_corrupts_ != nullptr) m_corrupts_->add();
  log_ += "f" + std::to_string(src) + "-" + std::to_string(dst);
  if (drop) log_ += "D";
  if (dup) log_ += "2";
  if (corrupt) log_ += "C";
  log_ += ";";
  return fate;
}

bool FaultMachine::is_down(int pe) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_[static_cast<std::size_t>(pe)] != 0;
}

void FaultMachine::fire_crash(const CrashSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    crashed_[static_cast<std::size_t>(spec.pe)] = 1;
    ++crashes_fired_;
    if (m_crashes_ != nullptr) m_crashes_->add();
    log_ += "X" + std::to_string(spec.pe) + ";";
  }
  if (crash_handler_) crash_handler_(spec.pe);
  if (spec.restart_after >= 0.0) {
    inner_.post_after(spec.pe, spec.restart_after, [this, spec]() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        crashed_[static_cast<std::size_t>(spec.pe)] = 0;
        log_ += "R" + std::to_string(spec.pe) + ";";
      }
      if (restart_handler_) restart_handler_(spec.pe);
    });
  }
}

void FaultMachine::arm_crashes() {
  if (crashes_armed_) return;
  crashes_armed_ = true;
  pending_triggers_.clear();
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashSpec& spec = plan_.crashes[i];
    if (spec.trigger == CrashSpec::Trigger::kEngineTime) {
      const double delay = std::max(0.0, spec.at - inner_.now(spec.pe));
      inner_.post_after(spec.pe, delay,
                        [this, spec]() { fire_crash(spec); });
    } else {
      pending_triggers_.push_back(i);
    }
  }
}

void FaultMachine::check_triggers() {
  std::vector<CrashSpec> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++transmit_count_;
    if (pending_triggers_.empty()) return;
    const double wall = run_started_ ? run_clock_.seconds() : 0.0;
    for (auto it = pending_triggers_.begin();
         it != pending_triggers_.end();) {
      const CrashSpec& spec = plan_.crashes[*it];
      const bool fire =
          spec.trigger == CrashSpec::Trigger::kHopCount
              ? transmit_count_ >= spec.after_hops
              : (run_started_ && wall >= spec.at);
      if (fire) {
        due.push_back(spec);
        it = pending_triggers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const CrashSpec& spec : due) {
    // Post rather than fire inline: the crash sequence must run as an
    // engine action on the victim PE (handlers expect engine context), and
    // transmit() may be called from any thread on a real-time backend.
    inner_.post(spec.pe, [this, spec]() { fire_crash(spec); });
  }
}

void FaultMachine::run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run_clock_.reset();
    run_started_ = true;
  }
  arm_crashes();
  inner_.run();
}

std::uint64_t FaultMachine::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t FaultMachine::frames_duplicated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return duplicated_;
}

std::uint64_t FaultMachine::frames_corrupted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupted_;
}

std::uint64_t FaultMachine::messages_limboed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limboed_;
}

std::uint64_t FaultMachine::crashes_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashes_fired_;
}

std::string FaultMachine::trace_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "seed=" << plan_.seed << " dropped=" << dropped_ << " duplicated="
     << duplicated_ << " corrupted=" << corrupted_ << " limboed=" << limboed_
     << " crashes=" << crashes_fired_ << "\n"
     << log_;
  return os.str();
}

void FaultMachine::reset_trace(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_.seed = seed;
  rng_.reseed(seed);
  log_.clear();
  dropped_ = duplicated_ = corrupted_ = limboed_ = crashes_fired_ = 0;
  // limbo_ is NOT cleared here: parked payloads own agent stacks that the
  // runtime of the previous run may still sweep; they die with the machine.
  crashes_armed_ = false;
  pending_triggers_.clear();
  transmit_count_ = 0;
  std::fill(crashed_.begin(), crashed_.end(), 0);
}

void FaultMachine::set_metrics(obs::Registry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    m_drops_ = m_dups_ = m_corrupts_ = m_limboed_ = m_crashes_ = nullptr;
    return;
  }
  m_drops_ = &registry->counter("fault.frames_dropped");
  m_dups_ = &registry->counter("fault.frames_duplicated");
  m_corrupts_ = &registry->counter("fault.frames_corrupted");
  m_limboed_ = &registry->counter("fault.messages_limboed");
  m_crashes_ = &registry->counter("fault.crashes_fired");
}

}  // namespace navcpp::machine
