#include "machine/threaded_machine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace navcpp::machine {

ThreadedMachine::ThreadedMachine(int pe_count) : pe_count_(pe_count) {
  NAVCPP_CHECK(pe_count >= 1, "ThreadedMachine needs at least one PE");
  queues_.reserve(static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    queues_.push_back(
        std::make_unique<support::FastMpscQueue<support::MoveFunction>>());
  }
  pe_busy_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(pe_count));
  const std::size_t n_channels = static_cast<std::size_t>(pe_count) *
                                 static_cast<std::size_t>(pe_count);
  channels_.reserve(n_channels);
  for (std::size_t i = 0; i < n_channels; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  enqueued_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(pe_count));
  dequeued_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    pe_busy_[static_cast<std::size_t>(pe)].store(false,
                                                 std::memory_order_relaxed);
    enqueued_[static_cast<std::size_t>(pe)].store(0,
                                                  std::memory_order_relaxed);
    dequeued_[static_cast<std::size_t>(pe)].store(0,
                                                  std::memory_order_relaxed);
  }
}

ThreadedMachine::~ThreadedMachine() {
  // run() joins its workers; this only guards against a machine destroyed
  // mid-failure.  Queue destructors drain unexecuted actions, destroying
  // their captures (coroutine frames, payloads).
  stop_workers_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(lot_mutex_);
  }
  lot_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timers_stop_ = true;
    machine_running_ = false;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

void ThreadedMachine::check_pe(int pe) const {
  NAVCPP_CHECK(pe >= 0 && pe < pe_count(),
               "PE id " + std::to_string(pe) + " out of range [0, " +
                   std::to_string(pe_count()) + ")");
}

void ThreadedMachine::post(int pe, support::MoveFunction action) {
  check_pe(pe);
  // A rejected push means the machine is stopping (failure or teardown);
  // dropping the action destroys its captures, which is exactly what the
  // post-failure drain would have done.
  if (queues_[static_cast<std::size_t>(pe)]->push(std::move(action))) {
    note_enqueue(pe);
    wake_lot_if_idle();
  }
}

void ThreadedMachine::wake_lot_if_idle() {
  // Wake the lot only when *every* worker is parked: an awake worker always
  // completes a full empty scan before parking, so it is guaranteed to see
  // this push — waking a helper that would lose the race to the busy worker
  // is pure futex churn.  (Work queued behind a long-running action while
  // the rest of the lot sleeps is picked up by the kParkPollMs poll.)
  if (parked_workers_.load(std::memory_order_seq_cst) <
      worker_count_.load(std::memory_order_relaxed)) {
    return;
  }
  // Taking the lot mutex orders this notify after any parker that
  // registered but has not yet begun waiting (it holds the mutex from
  // registration until wait), so the wake cannot be lost.
  std::lock_guard<std::mutex> lock(lot_mutex_);
  lot_cv_.notify_one();
}

void ThreadedMachine::post_after(int pe, double delay_seconds,
                                 support::MoveFunction action) {
  check_pe(pe);
  NAVCPP_CHECK(delay_seconds >= 0.0, "post_after needs a non-negative delay");
  timers_used_.store(true, std::memory_order_release);
  const auto when =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(delay_seconds));
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timers_.push_back(Timer{when, timer_seq_++, pe, std::move(action)});
    std::push_heap(timers_.begin(), timers_.end(), timer_later);
    timers_pending_.fetch_add(1, std::memory_order_relaxed);
    // The timer thread is spawned lazily: timer-free programs (most of
    // them) never pay for it.  First post_after mid-run starts it here;
    // run() starts it up front when timers are already queued.
    if (machine_running_ && !timer_thread_.joinable()) {
      timers_stop_ = false;
      timer_thread_ = std::thread([this] { timer_loop(); });
    }
  }
  timer_cv_.notify_all();
}

bool ThreadedMachine::timer_later(const Timer& a, const Timer& b) {
  if (a.when != b.when) return a.when > b.when;
  return a.seq > b.seq;
}

void ThreadedMachine::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!timers_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto next = timers_.front().when;
    if (std::chrono::steady_clock::now() < next) {
      // Wake early if stopped or an earlier deadline arrives.
      timer_cv_.wait_until(lock, next, [&] {
        return timers_stop_ ||
               (!timers_.empty() && timers_.front().when < next);
      });
      continue;
    }
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    Timer due = std::move(timers_.back());
    timers_.pop_back();
    lock.unlock();
    // post() outside the lock: a rejected push (machine stopping) simply
    // destroys the action, same as any other shutdown stray.
    post(due.pe, std::move(due.action));
    timers_pending_.fetch_sub(1, std::memory_order_relaxed);
    lock.lock();
  }
  // Unfired timers are dropped; destroying the actions releases captures.
  timers_pending_.fetch_sub(static_cast<std::int64_t>(timers_.size()),
                            std::memory_order_relaxed);
  timers_.clear();
}

void ThreadedMachine::transmit(int src, int dst, std::size_t bytes,
                               support::MoveFunction on_delivery) {
  check_pe(src);
  check_pe(dst);
  Channel& ch = channel(src, dst);
  // A rejected push means the machine is stopping; only messages actually
  // enqueued count toward the cost audit.
  if (!ch.pending.push(std::move(on_delivery))) return;
  transmitted_messages_.fetch_add(1, std::memory_order_relaxed);
  transmitted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  note_enqueue(dst);
  if (m_net_messages_ != nullptr) {
    m_net_messages_->add();
    m_net_bytes_->add(bytes);
  }
  // First transmit of a burst schedules the drain marker; the rest ride
  // along for free.  Per-channel FIFO holds because the pending stack
  // linearizes pushes and markers for one channel are never concurrent.
  if (!ch.scheduled.exchange(true, std::memory_order_acq_rel)) {
    support::MoveFunction marker([this, src, dst] {
      deliver_channel(src, dst);
    });
    if (queues_[static_cast<std::size_t>(dst)]->push(std::move(marker))) {
      note_enqueue(dst);
      wake_lot_if_idle();
    } else {
      // Run queue closed mid-shutdown: the delivery stays in the channel
      // and is destroyed by the teardown drain.
      ch.scheduled.store(false, std::memory_order_release);
    }
  }
}

void ThreadedMachine::deliver_channel(int src, int dst) {
  Channel& ch = channel(src, dst);
  // Scratch vector swap-out: reuses capacity across markers on this thread
  // without sharing state if a delivery ever re-enters.
  static thread_local std::vector<support::MoveFunction> scratch;
  std::vector<support::MoveFunction> batch = std::move(scratch);
  batch.clear();
  for (;;) {
    if (!ch.pending.pop_all(batch)) {
      ch.scheduled.store(false, std::memory_order_release);
      // A transmit may have pushed between our final pop_all and the store
      // above and seen scheduled still true (so posted no marker).  Re-check
      // and re-claim; if a racing transmit claims first, its marker owns
      // the channel now.
      if (ch.pending.empty() ||
          ch.scheduled.exchange(true, std::memory_order_acq_rel)) {
        break;
      }
      continue;
    }
    for (auto& fn : batch) {
      note_dequeue(dst);
      if (!stopping_.load(std::memory_order_relaxed)) {
        fn();
        progress_counter_.fetch_add(1, std::memory_order_release);
      }
    }
    batch.clear();
  }
  scratch = std::move(batch);
}

double ThreadedMachine::now(int pe) const {
  check_pe(pe);
  return clock_.seconds();
}

void ThreadedMachine::task_started() {
  tasks_live_.fetch_add(1, std::memory_order_acq_rel);
}

void ThreadedMachine::task_finished() {
  tasks_live_.fetch_sub(1, std::memory_order_acq_rel);
  progress_counter_.fetch_add(1, std::memory_order_release);
  // Empty critical section: orders the notify after run()'s predicate
  // check, closing the check-then-wait race.
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
  }
  done_cv_.notify_all();
}

void ThreadedMachine::record_exception() {
  fail(std::current_exception());
}

void ThreadedMachine::fail(std::exception_ptr error) noexcept {
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    if (!first_exception_) first_exception_ = error;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& q : queues_) q->close();
  for (auto& ch : channels_) ch->pending.close();
  {
    std::lock_guard<std::mutex> lock(lot_mutex_);
  }
  lot_cv_.notify_all();  // parked workers wake to drain the closed queues
  done_cv_.notify_all();
}

void ThreadedMachine::execute(int pe, support::MoveFunction& action) {
  note_dequeue(pe);
  // After a failure, drain without executing: MoveFunction destruction
  // (when the batch is cleared) releases captured coroutine frames and
  // payloads.
  if (stopping_.load(std::memory_order_relaxed)) return;
  actions_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!m_actions_.empty()) m_actions_[static_cast<std::size_t>(pe)]->add();
  try {
    action();
  } catch (...) {
    actions_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    record_exception();
    return;
  }
  actions_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  progress_counter_.fetch_add(1, std::memory_order_release);
}

bool ThreadedMachine::drain_pe(int pe,
                               std::vector<support::MoveFunction>& batch) {
  std::atomic<bool>& busy = pe_busy_[static_cast<std::size_t>(pe)];
  if (busy.load(std::memory_order_relaxed)) return false;
  auto& queue = *queues_[static_cast<std::size_t>(pe)];
  if (queue.empty()) return false;
  // Claim the PE's consumer token.  acquire pairs with the release below,
  // handing PE-confined state from the previous draining worker to us.
  if (busy.exchange(true, std::memory_order_acquire)) return false;
  bool did_work = false;
  for (;;) {
    batch.clear();
    if (!queue.pop_all(batch)) break;
    did_work = true;
    sample_queue_depth(pe);
    for (auto& action : batch) execute(pe, action);
  }
  batch.clear();
  busy.store(false, std::memory_order_release);
  return did_work;
}

void ThreadedMachine::worker_loop(int home_pe) {
  std::vector<support::MoveFunction> batch;
  while (!stop_workers_.load(std::memory_order_acquire)) {
    bool did_work = false;
    for (int i = 0; i < pe_count_; ++i) {
      did_work |= drain_pe((home_pe + i) % pe_count_, batch);
    }
    if (!did_work) park();
  }
}

void ThreadedMachine::park() {
  std::unique_lock<std::mutex> lock(lot_mutex_);
  parked_workers_.fetch_add(1, std::memory_order_seq_cst);
  // Rescan while registered and holding the lot mutex: any push either
  // happened before this rescan (we see the item and bail out) or after our
  // registration (the producer sees every worker parked and notifies; the
  // notify cannot fire before our wait starts because the producer needs
  // the mutex we hold).  The seq_cst fences on push / empty() / the parked
  // counter make "either-or" airtight rather than best-effort.
  bool work = stop_workers_.load(std::memory_order_acquire);
  for (int pe = 0; pe < pe_count_ && !work; ++pe) {
    work = !queues_[static_cast<std::size_t>(pe)]->empty();
  }
  // kParkPollMs bounds the one remaining latency hole: work queued while
  // some worker is awake but stuck in a long action, so nobody is scanning
  // and nobody gets notified.
  if (!work) lot_cv_.wait_for(lock, kParkPollMs);
  parked_workers_.fetch_sub(1, std::memory_order_seq_cst);
}

void ThreadedMachine::run() {
  clock_.reset();
  reset_stats();
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    first_exception_ = nullptr;
  }
  stopping_.store(false, std::memory_order_relaxed);
  stop_workers_.store(false, std::memory_order_relaxed);
  actions_in_flight_.store(0, std::memory_order_relaxed);
  for (auto& q : queues_) q->reopen();
  for (auto& ch : channels_) {
    ch->pending.reopen();
    ch->scheduled.store(false, std::memory_order_relaxed);
  }

  workers_.clear();
  workers_.reserve(queues_.size());
  worker_count_.store(pe_count_, std::memory_order_release);
  for (int pe = 0; pe < pe_count_; ++pe) {
    workers_.emplace_back([this, pe] { worker_loop(pe); });
  }
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    machine_running_ = true;
    if (!timers_.empty() && !timer_thread_.joinable()) {
      timers_stop_ = false;
      timer_thread_ = std::thread([this] { timer_loop(); });
    }
  }

  bool deadlocked = false;
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    const auto done = [&] {
      return tasks_live_.load(std::memory_order_acquire) <= 0 ||
             stopping_.load(std::memory_order_acquire);
    };
    while (!done()) {
      if (stall_timeout_s_ <= 0.0) {
        done_cv_.wait(lock);
        continue;
      }
      const std::uint64_t seen =
          progress_counter_.load(std::memory_order_acquire);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(stall_timeout_s_));
      const bool progressed = done_cv_.wait_until(lock, deadline, [&] {
        return done() ||
               progress_counter_.load(std::memory_order_acquire) != seen;
      });
      if (progressed) continue;  // done, failed, or re-arm with new baseline
      // The progress counter only ticks when an action *completes*, so a
      // single action running longer than the timeout (one long GEMM
      // block, say) must not be mistaken for a stall: a worker with an
      // action in flight is making progress by definition.  Pending
      // post_after timers (retransmit timeouts) likewise count as future
      // progress, not a stall.
      if (actions_in_flight_.load(std::memory_order_acquire) > 0 ||
          timers_pending_.load(std::memory_order_relaxed) > 0) {
        continue;
      }
      // No action executing, none completed, and no task finished for a
      // full timeout window: every remaining task is blocked.
      deadlocked = true;
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    machine_running_ = false;
    timers_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();

  stop_workers_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(lot_mutex_);
  }
  lot_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  worker_count_.store(0, std::memory_order_relaxed);

  // Stray work pushed after the workers' final scans (or parked behind a
  // failure) is destroyed here, releasing captures; then everything reopens
  // so a reused machine accepts its next run's initial post()s.
  for (auto& q : queues_) q->close();
  for (auto& ch : channels_) ch->pending.close();
  {
    std::vector<support::MoveFunction> drain;
    for (auto& q : queues_) q->pop_all(drain);
    for (auto& ch : channels_) ch->pending.pop_all(drain);
  }
  for (auto& q : queues_) q->reopen();
  for (auto& ch : channels_) {
    ch->pending.reopen();
    ch->scheduled.store(false, std::memory_order_relaxed);
  }

  finish_time_ = clock_.seconds();
  if (m_wall_time_ != nullptr) m_wall_time_->set(finish_time_);

  std::exception_ptr eptr;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    eptr = first_exception_;
  }
  if (eptr) std::rethrow_exception(eptr);
  if (deadlocked) {
    std::ostringstream os;
    os << "threaded machine stalled with "
       << tasks_live_.load(std::memory_order_relaxed)
       << " live task(s); no progress for " << stall_timeout_s_ << "s";
    if (blocked_reporter_) os << "\n" << blocked_reporter_();
    throw support::DeadlockError(os.str());
  }
}

void ThreadedMachine::set_metrics(obs::Registry* registry) {
  m_actions_.clear();
  if (registry == nullptr) {
    m_queue_depth_ = nullptr;
    m_net_messages_ = nullptr;
    m_net_bytes_ = nullptr;
    m_wall_time_ = nullptr;
    return;
  }
  for (int pe = 0; pe < pe_count(); ++pe) {
    m_actions_.push_back(
        &registry->counter("threaded.actions", obs::pe_label(pe)));
  }
  m_queue_depth_ = &registry->histogram(
      "threaded.queue_depth", "", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0});
  m_net_messages_ = &registry->counter("net.messages");
  m_net_bytes_ = &registry->counter("net.bytes");
  m_wall_time_ = &registry->gauge("threaded.wall_time");
}

}  // namespace navcpp::machine
