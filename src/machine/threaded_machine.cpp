#include "machine/threaded_machine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace navcpp::machine {

ThreadedMachine::ThreadedMachine(int pe_count) {
  NAVCPP_CHECK(pe_count >= 1, "ThreadedMachine needs at least one PE");
  queues_.reserve(static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    queues_.push_back(
        std::make_unique<support::MpscQueue<support::MoveFunction>>());
  }
  enqueued_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(pe_count));
  dequeued_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    enqueued_[static_cast<std::size_t>(pe)].store(0,
                                                  std::memory_order_relaxed);
    dequeued_[static_cast<std::size_t>(pe)].store(0,
                                                  std::memory_order_relaxed);
  }
}

ThreadedMachine::~ThreadedMachine() {
  // run() joins its workers; this only guards against a machine destroyed
  // without ever running (queues may hold unexecuted coroutine starters,
  // which MoveFunction destroys along with their captures).
  for (auto& q : queues_) q->close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (timer_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(timer_mutex_);
      timers_stop_ = true;
    }
    timer_cv_.notify_all();
    timer_thread_.join();
  }
}

void ThreadedMachine::check_pe(int pe) const {
  NAVCPP_CHECK(pe >= 0 && pe < pe_count(),
               "PE id " + std::to_string(pe) + " out of range [0, " +
                   std::to_string(pe_count()) + ")");
}

void ThreadedMachine::post(int pe, support::MoveFunction action) {
  check_pe(pe);
  // A rejected push means the machine is stopping (failure or teardown);
  // dropping the action destroys its captures, which is exactly what the
  // post-failure drain would have done.
  if (queues_[static_cast<std::size_t>(pe)]->push(std::move(action))) {
    note_enqueue(pe);
  }
}

void ThreadedMachine::post_after(int pe, double delay_seconds,
                                 support::MoveFunction action) {
  check_pe(pe);
  NAVCPP_CHECK(delay_seconds >= 0.0, "post_after needs a non-negative delay");
  const auto when =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(delay_seconds));
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timers_.push_back(Timer{when, timer_seq_++, pe, std::move(action)});
    std::push_heap(timers_.begin(), timers_.end(), timer_later);
    timers_pending_.fetch_add(1, std::memory_order_relaxed);
  }
  timer_cv_.notify_all();
}

bool ThreadedMachine::timer_later(const Timer& a, const Timer& b) {
  if (a.when != b.when) return a.when > b.when;
  return a.seq > b.seq;
}

void ThreadedMachine::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!timers_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto next = timers_.front().when;
    if (std::chrono::steady_clock::now() < next) {
      // Wake early if stopped or an earlier deadline arrives.
      timer_cv_.wait_until(lock, next, [&] {
        return timers_stop_ ||
               (!timers_.empty() && timers_.front().when < next);
      });
      continue;
    }
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    Timer due = std::move(timers_.back());
    timers_.pop_back();
    lock.unlock();
    // post() outside the lock: a rejected push (machine stopping) simply
    // destroys the action, same as any other shutdown stray.
    post(due.pe, std::move(due.action));
    timers_pending_.fetch_sub(1, std::memory_order_relaxed);
    lock.lock();
  }
  // Unfired timers are dropped; destroying the actions releases captures.
  timers_pending_.fetch_sub(static_cast<std::int64_t>(timers_.size()),
                            std::memory_order_relaxed);
  timers_.clear();
}

void ThreadedMachine::transmit(int src, int dst, std::size_t bytes,
                               support::MoveFunction on_delivery) {
  check_pe(src);
  check_pe(dst);
  if (queues_[static_cast<std::size_t>(dst)]->push(std::move(on_delivery))) {
    // Only messages actually enqueued count toward the cost audit.
    transmitted_messages_.fetch_add(1, std::memory_order_relaxed);
    transmitted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    note_enqueue(dst);
    if (m_net_messages_ != nullptr) {
      m_net_messages_->add();
      m_net_bytes_->add(bytes);
    }
  }
}

double ThreadedMachine::now(int pe) const {
  check_pe(pe);
  return clock_.seconds();
}

void ThreadedMachine::task_started() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ++tasks_live_;
}

void ThreadedMachine::task_finished() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    --tasks_live_;
    ++progress_counter_;
  }
  state_cv_.notify_all();
}

void ThreadedMachine::record_exception() {
  fail(std::current_exception());
}

void ThreadedMachine::fail(std::exception_ptr error) noexcept {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!first_exception_) first_exception_ = error;
    stopping_ = true;
  }
  for (auto& q : queues_) q->close();
  state_cv_.notify_all();
}

void ThreadedMachine::worker_loop(int pe) {
  auto& queue = *queues_[static_cast<std::size_t>(pe)];
  while (true) {
    std::optional<support::MoveFunction> action = queue.pop_blocking();
    if (!action.has_value()) return;  // queue closed and drained
    note_dequeue(pe);
    {
      // After a failure, drain without executing: MoveFunction destruction
      // releases captured coroutine frames and payloads.
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stopping_) continue;
      ++actions_in_flight_;
    }
    if (!m_actions_.empty()) m_actions_[static_cast<std::size_t>(pe)]->add();
    try {
      (*action)();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --actions_in_flight_;
      }
      record_exception();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      --actions_in_flight_;
      ++progress_counter_;
    }
    state_cv_.notify_all();
  }
}

void ThreadedMachine::run() {
  clock_.reset();
  reset_stats();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = false;
    first_exception_ = nullptr;
    actions_in_flight_ = 0;  // workers are joined; defensively re-zero
  }
  for (auto& q : queues_) q->reopen();
  workers_.clear();
  workers_.reserve(queues_.size());
  for (int pe = 0; pe < pe_count(); ++pe) {
    workers_.emplace_back([this, pe] { worker_loop(pe); });
  }
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timers_stop_ = false;
  }
  timer_thread_ = std::thread([this] { timer_loop(); });

  bool deadlocked = false;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    while (tasks_live_ > 0 && !stopping_) {
      if (stall_timeout_s_ <= 0.0) {
        state_cv_.wait(lock);
        continue;
      }
      const std::uint64_t seen = progress_counter_;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(stall_timeout_s_));
      state_cv_.wait_until(lock, deadline, [&] {
        return tasks_live_ == 0 || stopping_ || progress_counter_ != seen;
      });
      if (tasks_live_ > 0 && !stopping_ && progress_counter_ == seen) {
        // The progress counter only ticks when an action *completes*, so a
        // single action running longer than the timeout (one long GEMM
        // block, say) must not be mistaken for a stall: a worker with an
        // action in flight is making progress by definition.  Re-arm and
        // keep waiting.  Pending post_after timers (retransmit timeouts)
        // likewise count as future progress, not a stall.
        if (actions_in_flight_ > 0 ||
            timers_pending_.load(std::memory_order_relaxed) > 0) {
          continue;
        }
        // No action executing, none completed, and no task finished for a
        // full timeout window: every remaining task is blocked.
        deadlocked = true;
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timers_stop_ = true;
  }
  timer_cv_.notify_all();
  timer_thread_.join();

  for (auto& q : queues_) q->close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  finish_time_ = clock_.seconds();
  if (m_wall_time_ != nullptr) m_wall_time_->set(finish_time_);
  // The workers are gone, so the queues can accept work again: a reused
  // machine receives its next run's initial post()s *before* the next
  // run() call, and those must not be dropped as shutdown strays.
  for (auto& q : queues_) q->reopen();

  std::exception_ptr eptr;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    eptr = first_exception_;
  }
  if (eptr) std::rethrow_exception(eptr);
  if (deadlocked) {
    std::ostringstream os;
    os << "threaded machine stalled with " << tasks_live_
       << " live task(s); no progress for " << stall_timeout_s_ << "s";
    if (blocked_reporter_) os << "\n" << blocked_reporter_();
    throw support::DeadlockError(os.str());
  }
}

void ThreadedMachine::set_metrics(obs::Registry* registry) {
  m_actions_.clear();
  if (registry == nullptr) {
    m_queue_depth_ = nullptr;
    m_net_messages_ = nullptr;
    m_net_bytes_ = nullptr;
    m_wall_time_ = nullptr;
    return;
  }
  for (int pe = 0; pe < pe_count(); ++pe) {
    m_actions_.push_back(
        &registry->counter("threaded.actions", obs::pe_label(pe)));
  }
  m_queue_depth_ = &registry->histogram(
      "threaded.queue_depth", "", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0});
  m_net_messages_ = &registry->counter("net.messages");
  m_net_bytes_ = &registry->counter("net.bytes");
  m_wall_time_ = &registry->gauge("threaded.wall_time");
}

}  // namespace navcpp::machine
