#include "machine/threaded_machine.h"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace navcpp::machine {

ThreadedMachine::ThreadedMachine(int pe_count) {
  NAVCPP_CHECK(pe_count >= 1, "ThreadedMachine needs at least one PE");
  queues_.reserve(static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    queues_.push_back(
        std::make_unique<support::MpscQueue<support::MoveFunction>>());
  }
}

ThreadedMachine::~ThreadedMachine() {
  // run() joins its workers; this only guards against a machine destroyed
  // without ever running (queues may hold unexecuted coroutine starters,
  // which MoveFunction destroys along with their captures).
  for (auto& q : queues_) q->close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadedMachine::check_pe(int pe) const {
  NAVCPP_CHECK(pe >= 0 && pe < pe_count(),
               "PE id " + std::to_string(pe) + " out of range [0, " +
                   std::to_string(pe_count()) + ")");
}

void ThreadedMachine::post(int pe, support::MoveFunction action) {
  check_pe(pe);
  // A rejected push means the machine is stopping (failure or teardown);
  // dropping the action destroys its captures, which is exactly what the
  // post-failure drain would have done.
  (void)queues_[static_cast<std::size_t>(pe)]->push(std::move(action));
}

void ThreadedMachine::transmit(int src, int dst, std::size_t bytes,
                               support::MoveFunction on_delivery) {
  check_pe(src);
  check_pe(dst);
  if (queues_[static_cast<std::size_t>(dst)]->push(std::move(on_delivery))) {
    // Only messages actually enqueued count toward the cost audit.
    transmitted_messages_.fetch_add(1, std::memory_order_relaxed);
    transmitted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
}

double ThreadedMachine::now(int pe) const {
  check_pe(pe);
  return clock_.seconds();
}

void ThreadedMachine::task_started() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ++tasks_live_;
}

void ThreadedMachine::task_finished() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    --tasks_live_;
    ++progress_counter_;
  }
  state_cv_.notify_all();
}

void ThreadedMachine::record_exception() {
  fail(std::current_exception());
}

void ThreadedMachine::fail(std::exception_ptr error) noexcept {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!first_exception_) first_exception_ = error;
    stopping_ = true;
  }
  for (auto& q : queues_) q->close();
  state_cv_.notify_all();
}

void ThreadedMachine::worker_loop(int pe) {
  auto& queue = *queues_[static_cast<std::size_t>(pe)];
  while (true) {
    std::optional<support::MoveFunction> action = queue.pop_blocking();
    if (!action.has_value()) return;  // queue closed and drained
    {
      // After a failure, drain without executing: MoveFunction destruction
      // releases captured coroutine frames and payloads.
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stopping_) continue;
      ++actions_in_flight_;
    }
    try {
      (*action)();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --actions_in_flight_;
      }
      record_exception();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      --actions_in_flight_;
      ++progress_counter_;
    }
    state_cv_.notify_all();
  }
}

void ThreadedMachine::run() {
  clock_.reset();
  reset_stats();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = false;
    first_exception_ = nullptr;
    actions_in_flight_ = 0;  // workers are joined; defensively re-zero
  }
  for (auto& q : queues_) q->reopen();
  workers_.clear();
  workers_.reserve(queues_.size());
  for (int pe = 0; pe < pe_count(); ++pe) {
    workers_.emplace_back([this, pe] { worker_loop(pe); });
  }

  bool deadlocked = false;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    while (tasks_live_ > 0 && !stopping_) {
      if (stall_timeout_s_ <= 0.0) {
        state_cv_.wait(lock);
        continue;
      }
      const std::uint64_t seen = progress_counter_;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(stall_timeout_s_));
      state_cv_.wait_until(lock, deadline, [&] {
        return tasks_live_ == 0 || stopping_ || progress_counter_ != seen;
      });
      if (tasks_live_ > 0 && !stopping_ && progress_counter_ == seen) {
        // The progress counter only ticks when an action *completes*, so a
        // single action running longer than the timeout (one long GEMM
        // block, say) must not be mistaken for a stall: a worker with an
        // action in flight is making progress by definition.  Re-arm and
        // keep waiting.
        if (actions_in_flight_ > 0) continue;
        // No action executing, none completed, and no task finished for a
        // full timeout window: every remaining task is blocked.
        deadlocked = true;
        break;
      }
    }
  }

  for (auto& q : queues_) q->close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  finish_time_ = clock_.seconds();
  // The workers are gone, so the queues can accept work again: a reused
  // machine receives its next run's initial post()s *before* the next
  // run() call, and those must not be dropped as shutdown strays.
  for (auto& q : queues_) q->reopen();

  std::exception_ptr eptr;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    eptr = first_exception_;
  }
  if (eptr) std::rethrow_exception(eptr);
  if (deadlocked) {
    std::ostringstream os;
    os << "threaded machine stalled with " << tasks_live_
       << " live task(s); no progress for " << stall_timeout_s_ << "s";
    if (blocked_reporter_) os << "\n" << blocked_reporter_();
    throw support::DeadlockError(os.str());
  }
}

}  // namespace navcpp::machine
