// ProcWorker: the per-PE worker process of the process-per-PE backend.
//
// One worker runs per PE, in its own address space, connected to the parent
// by a stream socket speaking net/wire.h frames.  The worker owns the PE's
// *substrate*: scheduling order (a kPost is not runnable until this worker
// grants it), the timer heap behind Engine::post_after, and the transport
// leg of every hop — it materializes outgoing payload bytes, and verifies
// the checksum of inbound payloads after they crossed two address-space
// boundaries (src worker -> parent -> dst worker).  The parent executes the
// action *closures* (C++ coroutine frames cannot cross an exec boundary);
// see docs/architecture.md, "Process-per-PE backend", for the split.
//
// The worker is single-threaded and uses blocking writes: the parent's end
// is non-blocking with an outgoing queue, so the parent always drains
// worker output and a blocking worker write can never deadlock the pair.
//
// proc_worker_main() is the whole worker program; tools/navcpp_worker.cpp
// is a thin exec wrapper around it, and ProcMachine falls back to calling
// it directly in a fork()ed child when the binary cannot be found.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"

namespace navcpp::machine {

class ProcWorker {
 public:
  /// Takes ownership of `fd` (closed when the loop exits).  `ckpt_path`,
  /// when non-empty, is the file this PE's checkpoint is spilled to on
  /// kCheckpointSave and re-read from on kCheckpointLoad — it is what makes
  /// a checkpoint survive this process being SIGKILLed: the respawned
  /// incarnation reopens the same path.
  ProcWorker(int fd, int pe, std::string ckpt_path = {});

  /// Serve the parent until kShutdown or parent EOF.  Returns the process
  /// exit code (0 on a clean shutdown or parent disappearance; nonzero on
  /// a protocol error, which the parent surfaces as a ProcError).
  int run();

 private:
  struct Timer {
    std::int64_t deadline_ns;  // since run start
    std::uint64_t seq;         // FIFO among equal deadlines
    std::uint64_t token;
  };
  static bool timer_later(const Timer& a, const Timer& b);

  void handle(const net::WireFrame& frame);
  void fire_due_timers();
  void save_checkpoint(const std::vector<std::byte>& bytes);
  /// Retained checkpoint: the in-memory copy, else the spill file (the
  /// memory copy died with the previous incarnation).  False when neither
  /// exists.
  bool load_checkpoint(std::vector<std::byte>* out);
  std::int64_t now_ns() const;
  /// Milliseconds until the next timer deadline (poll timeout), or -1.
  int next_timeout_ms() const;

  net::FrameConn conn_;
  int pe_ = 0;
  std::string ckpt_path_;
  bool shutdown_ = false;
  std::int64_t run_start_ns_ = 0;
  std::uint64_t timer_seq_ = 0;
  std::uint64_t last_seq_ = 0;  ///< dedup high-water mark (frame.seq)
  std::vector<Timer> timers_;  // binary min-heap on (deadline, seq)
  net::WireWorkerStats stats_;
  std::vector<std::byte> scratch_;  // payload materialization buffer
  std::vector<std::byte> checkpoint_;  // retained kCheckpointSave payload
  bool have_checkpoint_ = false;
};

/// Run a worker for PE `pe` over connected socket `fd` until shutdown.
/// `ckpt_path` (optional) is the per-PE checkpoint spill file.
int proc_worker_main(int fd, int pe, std::string ckpt_path = {});

}  // namespace navcpp::machine
