// ProcWorker: the per-PE worker process of the process-per-PE backend.
//
// One worker runs per PE, in its own address space, connected to the parent
// by a stream socket speaking net/wire.h frames.  The worker owns the PE's
// *substrate*: scheduling order (a kPost is not runnable until this worker
// grants it), the timer heap behind Engine::post_after, and the transport
// leg of every hop — it materializes outgoing payload bytes, and verifies
// the checksum of inbound payloads after they crossed two address-space
// boundaries (src worker -> parent -> dst worker).  The parent executes the
// action *closures* (C++ coroutine frames cannot cross an exec boundary);
// see docs/architecture.md, "Process-per-PE backend", for the split.
//
// The worker is single-threaded and uses blocking writes: the parent's end
// is non-blocking with an outgoing queue, so the parent always drains
// worker output and a blocking worker write can never deadlock the pair.
//
// proc_worker_main() is the whole worker program; tools/navcpp_worker.cpp
// is a thin exec wrapper around it, and ProcMachine falls back to calling
// it directly in a fork()ed child when the binary cannot be found.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/proc_trace.h"

namespace navcpp::machine {

class ProcWorker {
 public:
  /// Takes ownership of `fd` (closed when the loop exits).  `ckpt_path`,
  /// when non-empty, is the file this PE's checkpoint is spilled to on
  /// kCheckpointSave and re-read from on kCheckpointLoad — it is what makes
  /// a checkpoint survive this process being SIGKILLed: the respawned
  /// incarnation reopens the same path.  `flight_path`, when non-empty, is
  /// the mmap'd flight-recorder ring (obs/flight_recorder.h): recent
  /// scheduler events land there wait-free, survive SIGKILL, and are
  /// harvested by the supervising parent for the recovery timeline.
  ProcWorker(int fd, int pe, std::string ckpt_path = {},
             std::string flight_path = {});

  /// Serve the parent until kShutdown or parent EOF.  Returns the process
  /// exit code (0 on a clean shutdown or parent disappearance; nonzero on
  /// a protocol error, which the parent surfaces as a ProcError).
  int run();

 private:
  struct Timer {
    std::int64_t deadline_ns;  // since run start
    std::uint64_t seq;         // FIFO among equal deadlines
    std::uint64_t token;
  };
  static bool timer_later(const Timer& a, const Timer& b);

  void handle(const net::WireFrame& frame);
  void fire_due_timers();
  /// Ship buffered spans to the parent as one kSpans frame (no-op if empty).
  void flush_spans();
  /// Periodic observability tick: flush spans, emit kStatsDelta.
  void maybe_stats_tick();
  void record_span(obs::ProcSpanKind kind, std::uint64_t trace_id,
                   std::uint64_t token, std::int64_t t0_ns,
                   std::int64_t t1_ns);
  void flight(obs::FlightKind kind, std::uint8_t frame_type,
              std::uint64_t token, std::uint64_t a, std::uint64_t b);
  /// Snapshot the point-in-time stats fields before a stats-bearing send.
  void refresh_stats_snapshot();
  void save_checkpoint(const std::vector<std::byte>& bytes);
  /// Retained checkpoint: the in-memory copy, else the spill file (the
  /// memory copy died with the previous incarnation).  False when neither
  /// exists.
  bool load_checkpoint(std::vector<std::byte>* out);
  std::int64_t now_ns() const;
  /// Milliseconds until the next timer deadline (poll timeout), or -1.
  int next_timeout_ms() const;

  net::FrameConn conn_;
  int pe_ = 0;
  std::string ckpt_path_;
  bool shutdown_ = false;
  std::int64_t run_start_ns_ = 0;
  std::uint64_t timer_seq_ = 0;
  std::uint64_t last_seq_ = 0;  ///< dedup high-water mark (frame.seq)
  std::vector<Timer> timers_;  // binary min-heap on (deadline, seq)
  net::WireWorkerStats stats_;
  std::vector<std::byte> scratch_;  // payload materialization buffer
  std::vector<std::byte> checkpoint_;  // retained kCheckpointSave payload
  bool have_checkpoint_ = false;
  // Observability (kConfig-switched; all off by default).
  bool cfg_trace_ = false;        ///< record + ship ProcSpans
  bool cfg_stats_ = false;        ///< periodic kStatsDelta frames
  std::int64_t stats_interval_ns_ = 0;
  std::int64_t next_stats_ns_ = 0;
  obs::SpanBuffer spans_;
  std::unique_ptr<obs::FlightRecorder> flight_;
};

/// Run a worker for PE `pe` over connected socket `fd` until shutdown.
/// `ckpt_path` (optional) is the per-PE checkpoint spill file; `flight_path`
/// (optional) the flight-recorder ring file.
int proc_worker_main(int fd, int pe, std::string ckpt_path = {},
                     std::string flight_path = {});

}  // namespace navcpp::machine
