// ProcWorker: the per-PE worker process of the process-per-PE backend.
//
// One worker runs per PE, in its own address space, connected to the parent
// by a stream socket speaking net/wire.h frames.  The worker owns the PE's
// *substrate*: scheduling order (a kPost is not runnable until this worker
// grants it), the timer heap behind Engine::post_after, and the transport
// leg of every hop — it materializes outgoing payload bytes, and verifies
// the checksum of inbound payloads after they crossed two address-space
// boundaries (src worker -> parent -> dst worker).  The parent executes the
// action *closures* (C++ coroutine frames cannot cross an exec boundary);
// see docs/architecture.md, "Process-per-PE backend", for the split.
//
// The worker is single-threaded and uses blocking writes on the parent
// star: the parent's end is non-blocking with an outgoing queue, so the
// parent always drains worker output and a blocking worker write can never
// deadlock the pair.  Mesh peer channels are non-blocking on BOTH ends with
// per-peer outgoing queues flushed on POLLOUT — two workers flooding each
// other simultaneously must never deadlock on mutual blocking writes.
//
// Mesh mode (ProcWorkerConfig::mesh): hops leave on worker<->worker
// channels instead of the parent relay.  Initial one-host channels are
// socketpairs passed at fork (`peer_fds`); every mesh worker additionally
// opens a loopback listener (port reported in kHello.token) so the
// supervisor can re-broker edges after a respawn (kPeerInfo -> survivor
// dials the fresh incarnation, identifies itself with kPeerHello, and
// replays its retained hop window).  Grants for direct hops still travel
// the parent star: supervision, ordering of execution, and exactly-once
// bookkeeping stay with the supervisor.
//
// proc_worker_main() is the whole worker program; tools/navcpp_worker.cpp
// is a thin exec wrapper around it, and ProcMachine falls back to calling
// it directly in a fork()ed child when the binary cannot be found.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/proc_trace.h"

namespace navcpp::machine {

/// Everything a worker process needs to know at startup.
struct ProcWorkerConfig {
  int fd = -1;        ///< connected parent-star socket (ownership passes)
  int pe = 0;
  int pe_count = 1;   ///< mesh workers size their peer table with this
  bool mesh = false;  ///< direct worker<->worker hop data plane
  /// Pre-connected mesh edges passed at fork: (peer pe, connected fd).
  std::vector<std::pair<int, int>> peer_fds;
  std::string ckpt_path;
  std::string flight_path;
};

class ProcWorker {
 public:
  /// Takes ownership of `fd` (closed when the loop exits).  `ckpt_path`,
  /// when non-empty, is the file this PE's checkpoint is spilled to on
  /// kCheckpointSave and re-read from on kCheckpointLoad — it is what makes
  /// a checkpoint survive this process being SIGKILLed: the respawned
  /// incarnation reopens the same path.  `flight_path`, when non-empty, is
  /// the mmap'd flight-recorder ring (obs/flight_recorder.h): recent
  /// scheduler events land there wait-free, survive SIGKILL, and are
  /// harvested by the supervising parent for the recovery timeline.
  ProcWorker(int fd, int pe, std::string ckpt_path = {},
             std::string flight_path = {});
  explicit ProcWorker(const ProcWorkerConfig& config);

  /// Serve the parent until kShutdown or parent EOF.  Returns the process
  /// exit code (0 on a clean shutdown or parent disappearance; nonzero on
  /// a protocol error, which the parent surfaces as a ProcError).
  int run();

  /// The mesh dial-back listener port (0 when not in mesh mode); rides in
  /// kHello.token so the supervisor can broker edges to this worker.
  std::uint16_t peer_port() const;

 private:
  struct Timer {
    std::int64_t deadline_ns;  // since run start
    std::uint64_t seq;         // FIFO among equal deadlines
    std::uint64_t token;
  };
  static bool timer_later(const Timer& a, const Timer& b);

  /// One mesh edge to a peer worker.  The connection comes and goes (peer
  /// death, re-brokered dial-back); the outbound seq counter does not — it
  /// is monotone for this incarnation, so a receiver's per-connection
  /// high-water mark dedups any replay exactly.
  struct Peer {
    net::FrameConn conn;    ///< invalid while the edge is down
    std::uint64_t next_seq = 1;     ///< outbound hop seq for this edge
    std::uint64_t last_seq_in = 0;  ///< inbound high-water, per CONNECTION
                                    ///< (reset when a fresh conn attaches)
    /// Hops awaiting the parent's kHopRetire (kCfgMeshRetain): replayed in
    /// seq order into a re-brokered channel.
    std::vector<net::WireFrame> retained;
    /// Hops produced while the edge was down, retention off: flushed in
    /// order once a channel exists.
    std::vector<net::WireFrame> queued;
    /// Inbound hops stamped with a run epoch this worker has not started
    /// yet (the star and mesh channels have no mutual ordering, so a hop
    /// can outrun its run's kStart).  Drained, in arrival order, by the
    /// kStart that opens their run.
    std::vector<net::WireFrame> deferred;
  };

  void handle(const net::WireFrame& frame);
  /// Mesh kSend path: materialize + ship (or queue) a hop on a peer edge;
  /// `dst == pe_` short-circuits without touching a socket.
  void send_direct_hop(const net::WireFrame& send);
  /// Verify + grant an inbound direct hop off the edge to `src_pe`.
  void handle_peer_hop(int src_pe, const net::WireFrame& frame);
  /// Adopt `conn` (buffers and all — a dial-in may arrive with hops already
  /// behind its kPeerHello) as the live connection of the edge to
  /// `peer_pe`, closing any stale one.  Resets the per-connection dedup
  /// mark, replays the retained window / flushes the queue in order, then
  /// drains any frames already buffered.
  void attach_peer(int peer_pe, net::FrameConn conn, bool replay);
  /// Accept pending dial-backs off the mesh listener into handshaking_.
  void accept_peers();
  /// Read a handshaking conn; on kPeerHello, promote it to its edge.
  void pump_handshake(std::size_t idx);
  /// Read + dispatch frames on the edge to `peer_pe`; EOF tears the
  /// connection down (the edge waits for a re-brokered dial-back).
  void pump_peer(int peer_pe);
  void fire_due_timers();
  /// Ship buffered spans to the parent as one kSpans frame (no-op if empty).
  void flush_spans();
  /// Periodic observability tick: flush spans, emit kStatsDelta.
  void maybe_stats_tick();
  void record_span(obs::ProcSpanKind kind, std::uint64_t trace_id,
                   std::uint64_t token, std::int64_t t0_ns,
                   std::int64_t t1_ns);
  void flight(obs::FlightKind kind, std::uint8_t frame_type,
              std::uint64_t token, std::uint64_t a, std::uint64_t b);
  /// Snapshot the point-in-time stats fields before a stats-bearing send.
  void refresh_stats_snapshot();
  void save_checkpoint(const std::vector<std::byte>& bytes);
  /// Retained checkpoint: the in-memory copy, else the spill file (the
  /// memory copy died with the previous incarnation).  False when neither
  /// exists.
  bool load_checkpoint(std::vector<std::byte>* out);
  std::int64_t now_ns() const;
  /// Milliseconds until the next timer deadline (poll timeout), or -1.
  int next_timeout_ms() const;

  net::FrameConn conn_;
  int pe_ = 0;
  int pe_count_ = 1;
  bool mesh_ = false;
  bool cfg_mesh_retain_ = false;  ///< kCfgMeshRetain: retain-until-retired
  std::vector<Peer> peers_;       ///< indexed by peer PE; [pe_] unused
  std::unique_ptr<net::WireListener> peer_listener_;  ///< mesh dial-back
  std::vector<net::FrameConn> handshaking_;  ///< accepted, pre-kPeerHello
  std::string ckpt_path_;
  bool shutdown_ = false;
  std::int64_t run_start_ns_ = 0;
  std::uint32_t run_id_ = 0;  ///< current run epoch (kStart.arg); stamps
                              ///< outgoing direct hops, gates inbound ones
  std::uint64_t timer_seq_ = 0;
  std::uint64_t last_seq_ = 0;  ///< dedup high-water mark (frame.seq)
  std::vector<Timer> timers_;  // binary min-heap on (deadline, seq)
  net::WireWorkerStats stats_;
  std::vector<std::byte> scratch_;  // payload materialization buffer
  std::vector<std::byte> checkpoint_;  // retained kCheckpointSave payload
  bool have_checkpoint_ = false;
  // Observability (kConfig-switched; all off by default).
  bool cfg_trace_ = false;        ///< record + ship ProcSpans
  bool cfg_stats_ = false;        ///< periodic kStatsDelta frames
  std::int64_t stats_interval_ns_ = 0;
  std::int64_t next_stats_ns_ = 0;
  obs::SpanBuffer spans_;
  std::unique_ptr<obs::FlightRecorder> flight_;
};

/// Run a worker for PE `pe` over connected socket `fd` until shutdown.
/// `ckpt_path` (optional) is the per-PE checkpoint spill file; `flight_path`
/// (optional) the flight-recorder ring file.
int proc_worker_main(int fd, int pe, std::string ckpt_path = {},
                     std::string flight_path = {});

/// Full-config entry point (mesh workers need pe_count + peer channels).
int proc_worker_main(const ProcWorkerConfig& config);

}  // namespace navcpp::machine
