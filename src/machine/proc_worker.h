// ProcWorker: the per-PE worker process of the process-per-PE backend.
//
// One worker runs per PE, in its own address space, connected to the parent
// by a stream socket speaking net/wire.h frames.  The worker owns the PE's
// *substrate*: scheduling order (a kPost is not runnable until this worker
// grants it), the timer heap behind Engine::post_after, and the transport
// leg of every hop — it materializes outgoing payload bytes, and verifies
// the checksum of inbound payloads after they crossed two address-space
// boundaries (src worker -> parent -> dst worker).  The parent executes the
// action *closures* (C++ coroutine frames cannot cross an exec boundary);
// see docs/architecture.md, "Process-per-PE backend", for the split.
//
// The worker is single-threaded and uses blocking writes: the parent's end
// is non-blocking with an outgoing queue, so the parent always drains
// worker output and a blocking worker write can never deadlock the pair.
//
// proc_worker_main() is the whole worker program; tools/navcpp_worker.cpp
// is a thin exec wrapper around it, and ProcMachine falls back to calling
// it directly in a fork()ed child when the binary cannot be found.
#pragma once

#include <cstdint>
#include <vector>

#include "net/wire.h"

namespace navcpp::machine {

class ProcWorker {
 public:
  /// Takes ownership of `fd` (closed when the loop exits).
  ProcWorker(int fd, int pe);

  /// Serve the parent until kShutdown or parent EOF.  Returns the process
  /// exit code (0 on a clean shutdown or parent disappearance; nonzero on
  /// a protocol error, which the parent surfaces as a ProcError).
  int run();

 private:
  struct Timer {
    std::int64_t deadline_ns;  // since run start
    std::uint64_t seq;         // FIFO among equal deadlines
    std::uint64_t token;
  };
  static bool timer_later(const Timer& a, const Timer& b);

  void handle(const net::WireFrame& frame);
  void fire_due_timers();
  std::int64_t now_ns() const;
  /// Milliseconds until the next timer deadline (poll timeout), or -1.
  int next_timeout_ms() const;

  net::FrameConn conn_;
  int pe_ = 0;
  bool shutdown_ = false;
  std::int64_t run_start_ns_ = 0;
  std::uint64_t timer_seq_ = 0;
  std::vector<Timer> timers_;  // binary min-heap on (deadline, seq)
  net::WireWorkerStats stats_;
  std::vector<std::byte> scratch_;  // payload materialization buffer
};

/// Run a worker for PE `pe` over connected socket `fd` until shutdown.
int proc_worker_main(int fd, int pe);

}  // namespace navcpp::machine
