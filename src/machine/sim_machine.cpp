#include "machine/sim_machine.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace navcpp::machine {

SimMachine::SimMachine(int pe_count, net::LinkParams link)
    : network_(pe_count, link),
      clock_(static_cast<std::size_t>(pe_count), sim::kTimeZero),
      busy_(static_cast<std::size_t>(pe_count), 0.0) {
  NAVCPP_CHECK(pe_count >= 1, "SimMachine needs at least one PE");
}

void SimMachine::check_pe(int pe) const {
  NAVCPP_CHECK(pe >= 0 && pe < pe_count(),
               "PE id " + std::to_string(pe) + " out of range [0, " +
                   std::to_string(pe_count()) + ")");
}

void SimMachine::post(int pe, support::MoveFunction action) {
  check_pe(pe);
  const sim::Time when = clock_[static_cast<std::size_t>(pe)];
  // The wrapper pins the event to its PE: on execution the PE clock jumps
  // to the later of (event time, current PE clock) — the PE may still be
  // busy with an earlier action when this event "arrives".
  queue_.schedule(
      when, [this, pe, when, action = std::move(action)]() mutable {
        auto& clk = clock_[static_cast<std::size_t>(pe)];
        clk = std::max(clk, when);
        count_action(pe);
        action();
      });
}

void SimMachine::post_after(int pe, double delay_seconds,
                            support::MoveFunction action) {
  check_pe(pe);
  NAVCPP_CHECK(delay_seconds >= 0.0, "post_after needs a non-negative delay");
  const sim::Time when = clock_[static_cast<std::size_t>(pe)] + delay_seconds;
  queue_.schedule(
      when, [this, pe, when, action = std::move(action)]() mutable {
        auto& clk = clock_[static_cast<std::size_t>(pe)];
        clk = std::max(clk, when);
        count_action(pe);
        action();
      });
}

void SimMachine::transmit(int src, int dst, std::size_t bytes,
                          support::MoveFunction on_delivery) {
  check_pe(src);
  check_pe(dst);
  auto& src_clk = clock_[static_cast<std::size_t>(src)];
  const net::Transfer tr = network_.admit(src, dst, bytes, src_clk);
  // Mirror the model's admission counts byte-for-byte: the acceptance check
  // "exported trace totals == NetworkModel stats" depends on this pairing.
  if (m_net_messages_ != nullptr) {
    m_net_messages_->add();
    m_net_bytes_->add(bytes);
  }
  // Sender CPU is occupied until the message is handed to the NIC.
  busy_[static_cast<std::size_t>(src)] += tr.sender_cpu_free - src_clk;
  src_clk = tr.sender_cpu_free;
  const sim::Time when = tr.delivered_at;
  const sim::Duration recv_cost = tr.recv_overhead;
  queue_.schedule(when, [this, dst, when, recv_cost,
                         action = std::move(on_delivery)]() mutable {
    auto& clk = clock_[static_cast<std::size_t>(dst)];
    clk = std::max(clk, when);
    charge(dst, recv_cost);
    count_action(dst);
    action();
  });
}

void SimMachine::charge(int pe, double seconds) {
  check_pe(pe);
  NAVCPP_CHECK(seconds >= 0.0, "cannot charge negative time");
  clock_[static_cast<std::size_t>(pe)] += seconds;
  busy_[static_cast<std::size_t>(pe)] += seconds;
}

double SimMachine::now(int pe) const {
  check_pe(pe);
  return clock_[static_cast<std::size_t>(pe)];
}

double SimMachine::finish_time() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

double SimMachine::busy_time(int pe) const {
  check_pe(pe);
  return busy_[static_cast<std::size_t>(pe)];
}

void SimMachine::reset() {
  NAVCPP_CHECK(queue_.empty(), "SimMachine::reset with pending events");
  NAVCPP_CHECK(tasks_live_ == 0, "SimMachine::reset with live tasks");
  std::fill(clock_.begin(), clock_.end(), sim::kTimeZero);
  std::fill(busy_.begin(), busy_.end(), 0.0);
  network_.reset();
  ran_ = false;
  // The reporter captures the previous run's Runtime by reference; a reused
  // machine must not invoke it after that Runtime is gone.
  blocked_reporter_ = nullptr;
}

void SimMachine::set_metrics(obs::Registry* registry) {
  m_actions_.clear();
  if (registry == nullptr) {
    m_net_messages_ = nullptr;
    m_net_bytes_ = nullptr;
    m_virtual_time_ = nullptr;
    return;
  }
  for (int pe = 0; pe < pe_count(); ++pe) {
    m_actions_.push_back(&registry->counter("sim.actions", obs::pe_label(pe)));
  }
  m_net_messages_ = &registry->counter("net.messages");
  m_net_bytes_ = &registry->counter("net.bytes");
  m_virtual_time_ = &registry->gauge("sim.virtual_time");
}

void SimMachine::run() {
  while (!queue_.empty() && !error_) {
    support::MoveFunction action = queue_.pop();
    action();
  }
  ran_ = true;
  if (m_virtual_time_ != nullptr) m_virtual_time_->set(finish_time());
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
  if (tasks_live_ > 0) {
    std::ostringstream os;
    os << "simulation stalled with " << tasks_live_
       << " live task(s) and no pending events";
    if (blocked_reporter_) os << "\n" << blocked_reporter_();
    throw support::DeadlockError(os.str());
  }
}

}  // namespace navcpp::machine
