#include "apps/jacobi.h"

#include <memory>
#include <utility>

#include "navp/cargo.h"
#include "navp/task.h"

namespace navcpp::apps {

void jacobi_sweep(const JacobiGrid& g, JacobiGrid& next) {
  NAVCPP_CHECK(g.rows == next.rows && g.cols == next.cols,
               "jacobi_sweep: shape mismatch");
  next = g;  // boundary rows/cols copy through
  for (int r = 1; r + 1 < g.rows; ++r) {
    for (int c = 1; c + 1 < g.cols; ++c) {
      next.at(r, c) = 0.25 * (g.at(r - 1, c) + g.at(r + 1, c) +
                              g.at(r, c - 1) + g.at(r, c + 1));
    }
  }
}

JacobiGrid jacobi_sequential(JacobiGrid g, int sweeps) {
  JacobiGrid next(g.rows, g.cols);
  for (int t = 0; t < sweeps; ++t) {
    jacobi_sweep(g, next);
    std::swap(g, next);
  }
  return g;
}

double jacobi_sequential_seconds(const perfmodel::Testbed& tb, int rows,
                                 int cols, int sweeps) {
  const double points = static_cast<double>(rows - 2) * (cols - 2);
  const double core = 6.0 * points * sweeps / tb.flops_per_sec;
  // Two grid buffers resident.
  const std::size_t working_set = 2ull * static_cast<std::size_t>(rows) *
                                  static_cast<std::size_t>(cols) *
                                  sizeof(double);
  return core * tb.paging_factor(working_set);
}

namespace detail {

void update_slab(Slab& slab) {
  const int nrows = static_cast<int>(slab.rows.size());
  const int cols = static_cast<int>(slab.ghost_above.size());
  if (static_cast<int>(slab.next.size()) != nrows) {
    slab.next = slab.rows;  // allocate scratch lazily
  }
  for (int r = 0; r < nrows; ++r) {
    const std::vector<double>& up =
        (r == 0) ? slab.ghost_above : slab.rows[static_cast<std::size_t>(
                                          r - 1)];
    const std::vector<double>& down =
        (r + 1 == nrows)
            ? slab.ghost_below
            : slab.rows[static_cast<std::size_t>(r + 1)];
    const std::vector<double>& mid = slab.rows[static_cast<std::size_t>(r)];
    std::vector<double>& out = slab.next[static_cast<std::size_t>(r)];
    out[0] = mid[0];
    out[static_cast<std::size_t>(cols - 1)] =
        mid[static_cast<std::size_t>(cols - 1)];
    for (int c = 1; c + 1 < cols; ++c) {
      // Same operand order as jacobi_sweep so results match bit for bit.
      out[static_cast<std::size_t>(c)] =
          0.25 * (up[static_cast<std::size_t>(c)] +
                  down[static_cast<std::size_t>(c)] +
                  mid[static_cast<std::size_t>(c - 1)] +
                  mid[static_cast<std::size_t>(c + 1)]);
    }
  }
  std::swap(slab.rows, slab.next);
}

navp::Mission ghost_carrier(navp::Ctx ctx, const JacobiPlan* plan,
                            std::vector<double> top_row) {
  const int dest = ctx.here() - 1;
  (void)plan;
  navp::Cargo cargo;
  cargo.attach(&top_row);
  co_await navp::hop_cargo(ctx, dest, cargo);
  ctx.node<Slab>().ghost_below = std::move(top_row);
  ctx.signal_event(wg_ghost_ready(dest));
}

navp::Task<void> east_pass(navp::Ctx ctx, const JacobiPlan* plan,
                           bool pipelined) {
  std::vector<double> carried_bottom;  // previous slab's NEW bottom row
  navp::Cargo cargo;
  cargo.attach(&carried_bottom);
  for (int p = 0; p < plan->pes; ++p) {
    co_await navp::hop_cargo(ctx, p, cargo);
    if (pipelined && p + 1 < plan->pes) {
      // ghost_below(p) must hold the previous sweep's values, refreshed by
      // the previous sweep's one-hop ghost carrier from p+1.
      co_await ctx.wait_event(wg_ghost_ready(p));
    }
    Slab& slab = ctx.node<Slab>();
    ctx.work("jacobi-slab", slab_update_seconds(*plan),
             [&] { update_slab(slab); });
    // Prepare the NEXT sweep: the carried row is p-1's bottom at the sweep
    // just computed; it becomes ghost_above(p) for sweep t+1.
    if (p > 0) slab.ghost_above = std::move(carried_bottom);
    carried_bottom = slab.rows.back();
    if (pipelined && p > 0) {
      // Send this slab's new top row one PE west for sweep t+1.
      ctx.inject("Ghost", ghost_carrier, plan, slab.rows.front());
    }
  }
}

navp::Task<void> west_pass(navp::Ctx ctx, const JacobiPlan* plan) {
  std::vector<double> carried_top;  // eastern slab's NEW top row
  navp::Cargo cargo;
  cargo.attach(&carried_top);
  for (int p = plan->pes - 1; p >= 0; --p) {
    co_await navp::hop_cargo(ctx, p, cargo);
    Slab& slab = ctx.node<Slab>();
    if (p + 1 < plan->pes) slab.ghost_below = std::move(carried_top);
    carried_top = slab.rows.front();
  }
}

navp::Mission dsc_agent(navp::Ctx ctx, const JacobiPlan* plan) {
  for (int t = 0; t < plan->cfg.sweeps; ++t) {
    co_await east_pass(ctx, plan, /*pipelined=*/false);
    co_await west_pass(ctx, plan);
    // The west pass ends at PE 0, where the next sweep starts.
  }
}

navp::Mission east_agent(navp::Ctx ctx, const JacobiPlan* plan) {
  co_await east_pass(ctx, plan, /*pipelined=*/true);
}

navp::Mission dataflow_ghost_carrier(navp::Ctx ctx, int dest, bool to_west,
                                     std::vector<double> row) {
  navp::Cargo cargo;
  cargo.attach(&row);
  co_await navp::hop_cargo(ctx, dest, cargo);
  // Do not overwrite a boundary row the destination has not read yet.
  co_await ctx.wait_event(to_west ? wg_ghost_consumed(dest)
                                  : wa_ghost_consumed(dest));
  Slab& slab = ctx.node<Slab>();
  if (to_west) {
    slab.ghost_below = std::move(row);
    ctx.signal_event(wg_ghost_ready(dest));
  } else {
    slab.ghost_above = std::move(row);
    ctx.signal_event(wa_ghost_ready(dest));
  }
}

navp::Mission dataflow_agent(navp::Ctx ctx, const JacobiPlan* plan) {
  const int p = ctx.here();
  for (int t = 0; t < plan->cfg.sweeps; ++t) {
    // Both ghosts must hold sweep t-1 (counting events; the initial state
    // is pre-signaled by the runner).
    if (p > 0) co_await ctx.wait_event(wa_ghost_ready(p));
    if (p + 1 < plan->pes) co_await ctx.wait_event(wg_ghost_ready(p));
    Slab& slab = ctx.node<Slab>();
    ctx.work("jacobi-slab", slab_update_seconds(*plan),
             [&] { update_slab(slab); });
    // The ghosts were read: allow the next deposits (EP/EC-style ack).
    if (p > 0) ctx.signal_event(wa_ghost_consumed(p));
    if (p + 1 < plan->pes) ctx.signal_event(wg_ghost_consumed(p));
    // Publish the new boundary rows to both neighbors.
    if (p > 0) {
      ctx.inject("GhostW", dataflow_ghost_carrier, p - 1, true,
                 slab.rows.front());
    }
    if (p + 1 < plan->pes) {
      ctx.inject("GhostE", dataflow_ghost_carrier, p + 1, false,
                 slab.rows.back());
    }
  }
}

}  // namespace detail

JacobiGrid jacobi_navp(machine::Engine& engine, const JacobiConfig& cfg,
                       JacobiVariant variant, const JacobiGrid& initial,
                       JacobiStats* stats) {
  using detail::Slab;
  NAVCPP_CHECK(initial.rows == cfg.rows && initial.cols == cfg.cols,
               "initial grid does not match the configuration");
  const auto plan =
      std::make_unique<detail::JacobiPlan>(cfg, engine.pe_count());

  navp::Runtime rt(engine);
  rt.set_hop_state_bytes(cfg.testbed.hop_state_bytes);
  rt.set_hop_cpu_overhead(cfg.testbed.hop_software_overhead);
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);

  // Distribute: slab p holds interior rows [1 + p*slab_rows, ...), with
  // ghosts seeded from the initial state.
  for (int p = 0; p < plan->pes; ++p) {
    Slab& slab = rt.node_store(p).emplace<Slab>();
    slab.first_row = 1 + p * plan->slab_rows;
    slab.rows.reserve(static_cast<std::size_t>(plan->slab_rows));
    for (int r = 0; r < plan->slab_rows; ++r) {
      const int gr = slab.first_row + r;
      std::vector<double> row(static_cast<std::size_t>(cfg.cols));
      for (int c = 0; c < cfg.cols; ++c) {
        row[static_cast<std::size_t>(c)] = initial.at(gr, c);
      }
      slab.rows.push_back(std::move(row));
    }
    auto grid_row = [&](int gr) {
      std::vector<double> row(static_cast<std::size_t>(cfg.cols));
      for (int c = 0; c < cfg.cols; ++c) {
        row[static_cast<std::size_t>(c)] = initial.at(gr, c);
      }
      return row;
    };
    slab.ghost_above = grid_row(slab.first_row - 1);
    slab.ghost_below = grid_row(slab.first_row + plan->slab_rows);
  }

  switch (variant) {
    case JacobiVariant::kDsc:
      rt.inject(0, "JacobiCarrier", detail::dsc_agent, plan.get());
      break;
    case JacobiVariant::kPipelined:
      // Sweep 0 may compute immediately: ghosts hold the initial state.
      for (int p = 0; p + 1 < plan->pes; ++p) {
        rt.pre_signal(p, detail::wg_ghost_ready(p));
      }
      for (int t = 0; t < cfg.sweeps; ++t) {
        rt.inject(0, "East(" + std::to_string(t) + ")", detail::east_agent,
                  plan.get());
      }
      break;
    case JacobiVariant::kDataflow:
      for (int p = 0; p < plan->pes; ++p) {
        if (p > 0) rt.pre_signal(p, detail::wa_ghost_ready(p));
        if (p + 1 < plan->pes) rt.pre_signal(p, detail::wg_ghost_ready(p));
        rt.inject(p, "Sweeper(" + std::to_string(p) + ")",
                  detail::dataflow_agent, plan.get());
      }
      break;
  }
  rt.run();

  // Gather the final grid (boundary rows come from the initial state).
  JacobiGrid result = initial;
  for (int p = 0; p < plan->pes; ++p) {
    const Slab& slab = rt.node_store(p).get<Slab>();
    for (int r = 0; r < plan->slab_rows; ++r) {
      for (int c = 0; c < cfg.cols; ++c) {
        result.at(slab.first_row + r, c) =
            slab.rows[static_cast<std::size_t>(r)]
                     [static_cast<std::size_t>(c)];
      }
    }
  }
  if (stats != nullptr) {
    stats->seconds = engine.finish_time();
    stats->hops = rt.hop_count();
  }
  return result;
}

}  // namespace navcpp::apps
