// A third case study: block LU factorization (right-looking, no pivoting)
// under the NavP transformations.
//
// The matrix is distributed by block-columns over a 1-D PE array (the
// paper's section 3.1 layout).  Step k factors the diagonal block and the
// panel below it at owner(k), then updates every trailing column j > k:
//
//     A(k,k) = L(k,k) U(k,k)                      (factor, at owner(k))
//     L(i,k) = A(i,k) U(k,k)^-1        i > k      (panel,  at owner(k))
//     U(k,j) = L(k,k)^-1 A(k,j)        j > k      (row,    at owner(j))
//     A(i,j) -= L(i,k) U(k,j)          i,j > k    (update, at owner(j))
//
// A PanelCarrier(k) performs step k: it factors at owner(k), then carries
// {L(k,k), L(i,k)} east, updating each trailing column at its owner.
//
//   * DSC       — one carrier performs all steps in sequence.
//   * Pipelined — one carrier per step; carrier k+1 may not factor column
//     k+1 before carrier k has updated it (event EU(k+1)), after which it
//     follows carrier k through the trailing columns.  Work shrinks
//     triangularly with k, so utilization decays in the drain — a
//     different pipeline shape from matmul's rectangular one.
//
// Phase shifting is inapplicable: the k-chain orders every column's
// updates (carrier k's visit to column j must precede carrier k+1's), so
// no carrier may enter the pipeline elsewhere — the planner's condition
// fails exactly as in the Jacobi sweep chain.
#pragma once

#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "machine/engine.h"
#include "perfmodel/testbed.h"
#include "support/error.h"

namespace navcpp::apps {

/// In-place dense LU without pivoting: returns {L (unit diagonal), U}.
/// Requires a matrix whose leading minors are well conditioned (e.g.
/// diagonally dominant); checked via a pivot-magnitude guard.
std::pair<linalg::Matrix, linalg::Matrix> lu_sequential(linalg::Matrix a);

/// Make a deterministic, diagonally dominant test matrix.
linalg::Matrix diagonally_dominant(int order, std::uint64_t seed);

/// Reconstruction error ||A - L U||_max (validation helper).
double lu_reconstruction_error(const linalg::Matrix& a,
                               const linalg::Matrix& l,
                               const linalg::Matrix& u);

struct LuConfig {
  int order = 256;
  int block_order = 64;
  perfmodel::Testbed testbed{};

  int nb() const {
    NAVCPP_CHECK(order % block_order == 0,
                 "order must be a multiple of block_order");
    return order / block_order;
  }
};

enum class LuVariant { kDsc, kPipelined };

inline const char* to_string(LuVariant v) {
  return v == LuVariant::kDsc ? "NavP LU DSC" : "NavP LU pipeline";
}

struct LuStats {
  double seconds = 0.0;
  std::uint64_t hops = 0;
};

/// Distributed block LU on the PEs of `engine` (block-columns over a 1-D
/// array).  Returns {L, U} gathered; fills `stats` when given.
std::pair<linalg::Matrix, linalg::Matrix> lu_navp(machine::Engine& engine,
                                                  const LuConfig& cfg,
                                                  LuVariant variant,
                                                  const linalg::Matrix& a,
                                                  LuStats* stats = nullptr);

/// Modeled sequential time: sum of the factor/panel/update flop costs on
/// the calibrated testbed (~(2/3) N^3 flops total).
double lu_sequential_seconds(const LuConfig& cfg);

}  // namespace navcpp::apps
