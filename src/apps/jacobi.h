// A second case study: incremental parallelization of Jacobi iteration
// (5-point stencil / heat diffusion) with the NavP transformations.
//
// The paper presents its transformations as a general methodology; this
// module applies them to a different dependence structure.  The grid is
// decomposed into horizontal slabs of rows, one slab per PE, with ghost
// rows for the neighbor boundaries:
//
//   * Sequential — plain double-buffered sweeps (reference).
//   * DSC — ONE self-migrating computation performs each sweep: an
//     eastbound pass computes every slab and refreshes the ghost rows
//     above (carrying each slab's new bottom row along), then a westbound
//     pass refreshes the ghost rows below (carrying each slab's new top
//     row back).  Invariant: before sweep t computes slab p,
//     ghost_above(p) and ghost_below(p) hold the t-1 boundary rows.
//   * Pipelined — one EastAgent per sweep, injected in sweep order.  After
//     updating slab p it locally injects a one-hop GhostCarrier that takes
//     p's new top row west to refresh ghost_below(p-1) and signal
//     WG(p-1); the next sweep's EastAgent waits one WG(p) signal before
//     computing at p.  The cross-sweep dependency is therefore one hop
//     (slab p at sweep t+1 waits only for slab p+1 at sweep t), so up to
//     min(P, sweeps) PEs compute concurrently.  (A single westbound
//     refresher per sweep would re-serialize the sweeps: its full
//     traversal would make the dependency depth P instead of 1.)
//
//   * Dataflow — one *stationary* agent per PE looping over sweeps,
//     exchanging both ghost rows through one-hop carriers and counting
//     events.  This is the end point of the methodology for this
//     dependence structure: the traveling-agent pipeline is limited to
//     ~P/2 (each sweep at slab p waits for sweep t-1 at p+1, which itself
//     trails p — a 2-slot wavefront period), while stationary agents
//     reach ~P.  It is also the paper's closing observation made
//     executable: for neighbor-synchronous algorithms the NavP view
//     converges to the SPMD view, with hop+inject playing the role of a
//     message.
//
// Phase shifting does NOT apply here, and that is itself faithful to the
// paper ("sometimes the dependency among different computations allows
// different DSC threads to enter the pipeline from different PEs" — here
// it does not: sweep t at slab p reads sweep t-1's values of both
// neighbors, so every sweep must enter from the same side and stay behind
// its predecessor).
#pragma once

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "navp/runtime.h"
#include "navp/task.h"
#include "perfmodel/testbed.h"
#include "support/error.h"

namespace navcpp::apps {

/// Dense 2-D grid with Dirichlet boundary (row 0, last row, col 0, last
/// col held fixed).
struct JacobiGrid {
  int rows = 0;
  int cols = 0;
  std::vector<double> u;

  JacobiGrid() = default;
  JacobiGrid(int r, int c)
      : rows(r), cols(c),
        u(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.0) {
    NAVCPP_CHECK(r >= 3 && c >= 3, "Jacobi grid needs at least 3x3 points");
  }

  double& at(int r, int c) {
    return u[static_cast<std::size_t>(r) * cols + c];
  }
  double at(int r, int c) const {
    return u[static_cast<std::size_t>(r) * cols + c];
  }

  /// The classical heated-plate setup: top edge at 1, other edges at 0.
  static JacobiGrid heated_plate(int rows, int cols) {
    JacobiGrid g(rows, cols);
    for (int c = 0; c < cols; ++c) g.at(0, c) = 1.0;
    return g;
  }
};

/// One full Jacobi sweep over `g` into `next` (interior points only).
void jacobi_sweep(const JacobiGrid& g, JacobiGrid& next);

/// Reference solver: `sweeps` double-buffered sweeps.  Returns the final
/// grid.
JacobiGrid jacobi_sequential(JacobiGrid g, int sweeps);

/// Modeled time of the sequential solver on the calibrated testbed.
double jacobi_sequential_seconds(const perfmodel::Testbed& tb, int rows,
                                 int cols, int sweeps);

struct JacobiConfig {
  int rows = 256;
  int cols = 256;
  int sweeps = 32;
  perfmodel::Testbed testbed{};
};

enum class JacobiVariant { kDsc, kPipelined, kDataflow };

inline const char* to_string(JacobiVariant v) {
  switch (v) {
    case JacobiVariant::kDsc:
      return "NavP Jacobi DSC";
    case JacobiVariant::kPipelined:
      return "NavP Jacobi pipeline";
    case JacobiVariant::kDataflow:
      return "NavP Jacobi dataflow";
  }
  return "?";
}

struct JacobiStats {
  double seconds = 0.0;
  std::uint64_t hops = 0;
};

namespace detail {

/// Node variables: one slab of interior rows plus the two ghost rows.
struct Slab {
  int first_row = 0;  ///< global index of the slab's first (interior) row
  std::vector<std::vector<double>> rows;
  std::vector<double> ghost_above;
  std::vector<double> ghost_below;
  std::vector<std::vector<double>> next;  ///< scratch for double buffering
};

struct JacobiPlan {
  JacobiConfig cfg;
  int pes = 0;
  int interior_rows = 0;  ///< rows - 2 (updatable rows)
  int slab_rows = 0;      ///< interior rows per PE
  std::size_t row_bytes = 0;

  JacobiPlan(const JacobiConfig& c, int pe_count)
      : cfg(c), pes(pe_count) {
    NAVCPP_CHECK(c.rows >= 3 && c.cols >= 3, "grid too small");
    NAVCPP_CHECK(c.sweeps >= 1, "need at least one sweep");
    interior_rows = c.rows - 2;
    NAVCPP_CHECK(interior_rows % pe_count == 0,
                 "interior rows must divide evenly over the PEs");
    slab_rows = interior_rows / pe_count;
    row_bytes = static_cast<std::size_t>(c.cols) * sizeof(double);
  }
};

/// Per-point stencil cost: 4 adds + 1 multiply + loads, modeled at the
/// testbed's effective flop rate.
inline double slab_update_seconds(const JacobiPlan& plan) {
  const double points = static_cast<double>(plan.slab_rows) *
                        (plan.cfg.cols - 2);
  return 6.0 * points / plan.cfg.testbed.flops_per_sec;
}

/// Compute slab p's new rows from its rows + ghosts (real data).
void update_slab(Slab& slab);

// Event families (counting).  The produced/consumed pairing mirrors the
// paper's EP/EC: a ghost deposit signals *_ready; the slab's sweep signals
// *_consumed after reading, and the next deposit waits for it — without
// the ack, a fast neighbor can overwrite a ghost row that a slow PE has
// not read yet (a race the threaded backend actually exposes).
inline navp::EventKey wg_ghost_ready(int pe) {  // ghost_below(pe) refreshed
  return navp::EventKey{11, pe, 0};
}
inline navp::EventKey wa_ghost_ready(int pe) {  // ghost_above(pe) refreshed
  return navp::EventKey{12, pe, 0};
}
inline navp::EventKey wg_ghost_consumed(int pe) {  // ghost_below(pe) read
  return navp::EventKey{13, pe, 0};
}
inline navp::EventKey wa_ghost_consumed(int pe) {  // ghost_above(pe) read
  return navp::EventKey{14, pe, 0};
}

/// Eastbound compute pass of one sweep.  When `pipelined`, waits WG(p)
/// before each slab and injects the one-hop ghost carriers.
navp::Task<void> east_pass(navp::Ctx ctx, const JacobiPlan* plan,
                           bool pipelined);

/// Westbound ghost-refresh pass of one sweep (DSC only: the single agent
/// refreshes all ghost_below rows itself on the way back).
navp::Task<void> west_pass(navp::Ctx ctx, const JacobiPlan* plan);

navp::Mission dsc_agent(navp::Ctx ctx, const JacobiPlan* plan);
navp::Mission east_agent(navp::Ctx ctx, const JacobiPlan* plan);
/// Carries slab p's new top row one PE west (pipelined variant).
navp::Mission ghost_carrier(navp::Ctx ctx, const JacobiPlan* plan,
                            std::vector<double> top_row);
/// Stationary per-PE agent exchanging both ghosts per sweep (dataflow).
navp::Mission dataflow_agent(navp::Ctx ctx, const JacobiPlan* plan);
/// Carries a boundary row one PE in either direction (dataflow variant);
/// `to_west` selects the ghost slot and event family at the destination.
navp::Mission dataflow_ghost_carrier(navp::Ctx ctx, int dest, bool to_west,
                                     std::vector<double> row);

}  // namespace detail

/// Run the distributed Jacobi solver on all PEs of `engine`; returns the
/// final grid (gathered) and fills `stats`.
JacobiGrid jacobi_navp(machine::Engine& engine, const JacobiConfig& cfg,
                       JacobiVariant variant, const JacobiGrid& initial,
                       JacobiStats* stats = nullptr);

}  // namespace navcpp::apps
