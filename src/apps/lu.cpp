#include "apps/lu.h"

#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "mm/common.h"
#include "navp/cargo.h"
#include "navp/runtime.h"
#include "navp/task.h"
#include "support/rng.h"

namespace navcpp::apps {

namespace {

/// In-place b x b LU without pivoting; L unit-lower and U packed together.
void lu_inplace(linalg::MatrixView a) {
  const int n = a.rows();
  for (int k = 0; k < n; ++k) {
    NAVCPP_CHECK(std::abs(a(k, k)) > 1e-10,
                 "lu: vanishing pivot (matrix not LU-factorable without "
                 "pivoting)");
    for (int i = k + 1; i < n; ++i) {
      a(i, k) /= a(k, k);
      const double lik = a(i, k);
      for (int j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
}

/// X := X * U^{-1} with U upper-triangular (non-unit diagonal).
void trsm_right_upper(linalg::MatrixView x, linalg::ConstMatrixView u) {
  const int m = x.rows();
  const int n = x.cols();
  for (int r = 0; r < m; ++r) {
    for (int j = 0; j < n; ++j) {
      double sum = x(r, j);
      for (int k = 0; k < j; ++k) sum -= x(r, k) * u(k, j);
      x(r, j) = sum / u(j, j);
    }
  }
}

/// X := L^{-1} * X with L unit-lower-triangular.
void trsm_left_unit_lower(linalg::MatrixView x, linalg::ConstMatrixView l) {
  const int m = x.rows();
  const int n = x.cols();
  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < m; ++r) {
      double sum = x(r, j);
      for (int k = 0; k < r; ++k) sum -= l(r, k) * x(k, j);
      x(r, j) = sum;
    }
  }
}

/// C -= A * B.
void gemm_sub(linalg::MatrixView c, linalg::ConstMatrixView a,
              linalg::ConstMatrixView b) {
  const int m = c.rows();
  const int n = c.cols();
  const int kk = a.cols();
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < kk; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < n; ++j) c(i, j) -= aik * b(k, j);
    }
  }
}

}  // namespace

std::pair<linalg::Matrix, linalg::Matrix> lu_sequential(linalg::Matrix a) {
  NAVCPP_CHECK(a.rows() == a.cols(), "lu_sequential needs a square matrix");
  const int n = a.rows();
  lu_inplace(a.view());
  linalg::Matrix l = linalg::Matrix::identity(n);
  linalg::Matrix u(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i > j) {
        l(i, j) = a(i, j);
      } else {
        u(i, j) = a(i, j);
      }
    }
  }
  return {std::move(l), std::move(u)};
}

linalg::Matrix diagonally_dominant(int order, std::uint64_t seed) {
  linalg::Matrix m = linalg::Matrix::random(order, order, seed);
  for (int i = 0; i < order; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < order; ++j) row_sum += std::abs(m(i, j));
    m(i, i) = row_sum + 1.0;
  }
  return m;
}

double lu_reconstruction_error(const linalg::Matrix& a,
                               const linalg::Matrix& l,
                               const linalg::Matrix& u) {
  return linalg::max_abs_diff(a, linalg::multiply(l, u));
}

double lu_sequential_seconds(const LuConfig& cfg) {
  const double n = cfg.order;
  return (2.0 / 3.0) * n * n * n / cfg.testbed.flops_per_sec;
}

namespace detail_lu {

/// Node variables: the block-column panels this PE owns, each an
/// order x block matrix that is factored in place (packed L\U layout).
struct LuCols {
  std::unordered_map<int, linalg::Matrix> col;  // keyed by block column j
};

struct LuPlan {
  LuConfig cfg;
  mm::Dist1D dist;
  LuPlan(const LuConfig& c, int pes) : cfg(c), dist(c.nb(), pes) {}
};

navp::EventKey es_step_done(int k, int j) {
  return navp::EventKey{30, k, j};
}

/// Costs on the calibrated testbed.
double factor_cost(const LuPlan& plan, int k) {
  const double b = plan.cfg.block_order;
  const int below = plan.cfg.nb() - k - 1;
  // (2/3) b^3 for the diagonal block + b^3 per panel TRSM.
  return ((2.0 / 3.0) * b * b * b + below * b * b * b) /
         plan.cfg.testbed.flops_per_sec;
}

double column_update_cost(const LuPlan& plan, int k) {
  const double b = plan.cfg.block_order;
  const int below = plan.cfg.nb() - k - 1;
  // One TRSM (b^3) + `below` GEMMs (2 b^3 each).
  return (b * b * b + below * 2.0 * b * b * b) /
         plan.cfg.testbed.flops_per_sec;
}

/// Register an owning dense matrix with a Cargo: the wire cost is its
/// rows x cols doubles (zero while empty), and strict-migration runs
/// round-trip shape plus elements.
void attach_matrix(navp::Cargo& cargo, linalg::Matrix* m) {
  cargo.attach_custom(
      [m] {
        return static_cast<std::size_t>(m->rows()) *
               static_cast<std::size_t>(m->cols()) * sizeof(double);
      },
      [m](support::ByteBuffer& buf) {
        buf.put(m->rows());
        buf.put(m->cols());
        for (int r = 0; r < m->rows(); ++r) {
          for (int c = 0; c < m->cols(); ++c) buf.put((*m)(r, c));
        }
      },
      [m](support::ByteBuffer& buf) {
        const int rows = buf.get<int>();
        const int cols = buf.get<int>();
        linalg::Matrix restored(rows, cols);
        for (int r = 0; r < rows; ++r) {
          for (int c = 0; c < cols; ++c) restored(r, c) = buf.get<double>();
        }
        *m = std::move(restored);
      });
}

/// One factorization step: factor column k, then update the trailing
/// columns.  `pipelined` adds the ES(k-1, j) ordering guards.
navp::Task<void> lu_step(navp::Ctx ctx, const LuPlan* plan, int k,
                         bool pipelined) {
  const int nb = plan->cfg.nb();
  const int b = plan->cfg.block_order;

  // Agent variables, declared (empty) before the first hop so the cargo
  // carries them everywhere the step goes: the hop to owner(k) charges
  // zero bytes, each trailing hop charges the factored diag + panel.
  linalg::Matrix diag;   // packed L\U of A(k,k)
  linalg::Matrix panel;  // L(k+1.., k), stacked
  navp::Cargo cargo;
  attach_matrix(cargo, &diag);
  attach_matrix(cargo, &panel);

  co_await navp::hop_cargo(ctx, plan->dist.owner(k), cargo);
  if (pipelined && k > 0) {
    // Column k must have absorbed update k-1 before factoring.
    co_await ctx.wait_event(es_step_done(k - 1, k));
  }

  // --- factor at owner(k); stash L(k,k) and the panel in agent variables.
  diag = linalg::Matrix(b, b);
  {
    auto& cols = ctx.node<LuCols>().col;
    auto it = cols.find(k);
    NAVCPP_CHECK(it != cols.end(), "block column not resident at owner");
    linalg::Matrix& colk = it->second;
    ctx.work("lu-factor", factor_cost(*plan, k), [&] {
      lu_inplace(colk.window(k * b, 0, b, b));
      if (k + 1 < nb) {
        trsm_right_upper(colk.window((k + 1) * b, 0, (nb - k - 1) * b, b),
                         colk.window(k * b, 0, b, b));
      }
    });
    for (int r = 0; r < b; ++r) {
      for (int c = 0; c < b; ++c) diag(r, c) = colk(k * b + r, c);
    }
    if (k + 1 < nb) {
      panel = linalg::Matrix((nb - k - 1) * b, b);
      for (int r = 0; r < (nb - k - 1) * b; ++r) {
        for (int c = 0; c < b; ++c) panel(r, c) = colk((k + 1) * b + r, c);
      }
    }
  }

  // --- trailing updates, east-bound.
  for (int j = k + 1; j < nb; ++j) {
    co_await navp::hop_cargo(ctx, plan->dist.owner(j), cargo);
    if (pipelined && k > 0) {
      co_await ctx.wait_event(es_step_done(k - 1, j));
    }
    auto& cols = ctx.node<LuCols>().col;
    auto it = cols.find(j);
    NAVCPP_CHECK(it != cols.end(), "block column not resident at owner");
    linalg::Matrix& colj = it->second;
    ctx.work("lu-update", column_update_cost(*plan, k), [&] {
      // U(k, j) = L(k,k)^{-1} A(k, j)  (diag's strict lower part is L).
      trsm_left_unit_lower(colj.window(k * b, 0, b, b), diag.view());
      if (k + 1 < nb) {
        gemm_sub(colj.window((k + 1) * b, 0, (nb - k - 1) * b, b),
                 panel.view(), colj.window(k * b, 0, b, b));
      }
    });
    if (pipelined) ctx.signal_event(es_step_done(k, j));
  }
}

navp::Mission lu_dsc_agent(navp::Ctx ctx, const LuPlan* plan) {
  for (int k = 0; k < plan->cfg.nb(); ++k) {
    co_await lu_step(ctx, plan, k, /*pipelined=*/false);
  }
}

navp::Mission lu_panel_carrier(navp::Ctx ctx, const LuPlan* plan, int k) {
  co_await lu_step(ctx, plan, k, /*pipelined=*/true);
}

}  // namespace detail_lu

std::pair<linalg::Matrix, linalg::Matrix> lu_navp(machine::Engine& engine,
                                                  const LuConfig& cfg,
                                                  LuVariant variant,
                                                  const linalg::Matrix& a,
                                                  LuStats* stats) {
  using detail_lu::LuCols;
  NAVCPP_CHECK(a.rows() == cfg.order && a.cols() == cfg.order,
               "lu_navp: matrix does not match the configuration");
  const auto plan =
      std::make_unique<detail_lu::LuPlan>(cfg, engine.pe_count());
  const int nb = cfg.nb();
  const int b = cfg.block_order;

  navp::Runtime rt(engine);
  rt.set_hop_state_bytes(cfg.testbed.hop_state_bytes);
  rt.set_hop_cpu_overhead(cfg.testbed.hop_software_overhead);
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);

  // Distribute the block columns.
  for (int pe = 0; pe < engine.pe_count(); ++pe) {
    rt.node_store(pe).emplace<LuCols>();
  }
  for (int j = 0; j < nb; ++j) {
    linalg::Matrix panel(cfg.order, b);
    for (int r = 0; r < cfg.order; ++r) {
      for (int c = 0; c < b; ++c) panel(r, c) = a(r, j * b + c);
    }
    rt.node_store(plan->dist.owner(j))
        .get<LuCols>()
        .col.emplace(j, std::move(panel));
  }

  if (variant == LuVariant::kDsc) {
    rt.inject(plan->dist.owner(0), "LuCarrier", detail_lu::lu_dsc_agent,
              plan.get());
  } else {
    for (int k = 0; k < nb; ++k) {
      rt.inject(plan->dist.owner(k), "Panel(" + std::to_string(k) + ")",
                detail_lu::lu_panel_carrier, plan.get(), k);
    }
  }
  rt.run();

  // Gather the packed columns into L and U.
  linalg::Matrix l = linalg::Matrix::identity(cfg.order);
  linalg::Matrix u(cfg.order, cfg.order);
  for (int j = 0; j < nb; ++j) {
    const auto& cols =
        rt.node_store(plan->dist.owner(j)).get<LuCols>().col;
    const linalg::Matrix& panel = cols.at(j);
    for (int r = 0; r < cfg.order; ++r) {
      for (int c = 0; c < b; ++c) {
        const int gc = j * b + c;
        if (r > gc) {
          l(r, gc) = panel(r, c);
        } else {
          u(r, gc) = panel(r, c);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->seconds = engine.finish_time();
    stats->hops = rt.hop_count();
  }
  return {std::move(l), std::move(u)};
}

}  // namespace navcpp::apps
