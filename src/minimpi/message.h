// Message and per-PE mailbox for mini-MPI.
//
// Sends are eager and buffered (LAM/MPI-style for the message sizes the
// paper's algorithms use): the payload is shipped immediately and deposited
// into the destination rank's mailbox, where a banked event signal marks its
// availability.  Matching is by (source, tag), FIFO within a match — the
// delivery order of our network model preserves per-(src,dst) send order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "support/error.h"

namespace navcpp::minimpi {

using Tag = std::int32_t;

/// One in-flight or delivered message.  `data` may be empty when the sender
/// runs with phantom storage (timing-only simulation); `wire_bytes` is what
/// the network model charged either way.
struct Message {
  int src = 0;
  Tag tag = 0;
  std::vector<double> data;
  std::size_t wire_bytes = 0;
};

/// Node variable holding a rank's undelivered messages.
class Mailbox {
 public:
  void deposit(Message msg) { messages_.push_back(std::move(msg)); }

  /// Pop the oldest message matching (src, tag).
  std::optional<Message> pop(int src, Tag tag) {
    for (auto it = messages_.begin(); it != messages_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message msg = std::move(*it);
        messages_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  std::size_t pending() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

 private:
  std::deque<Message> messages_;
};

}  // namespace navcpp::minimpi
