// Comm: the mini-MPI communicator, our stand-in for the subset of LAM/MPI
// the paper's SPMD programs (Gentleman's algorithm, Cannon, SUMMA) need.
//
// Built *on top of* the NavP runtime, in the spirit of the paper's closing
// argument that NavP subsumes message passing: an MPI "rank" is a stationary
// agent pinned on its PE; MPI_Send is a transmit that deposits into the
// destination's mailbox node variable and signals a node-local event;
// MPI_Irecv/MPI_Wait await that event and pop the matching message.
//
// Semantics (documented differences from full MPI):
//  * Sends are eager and buffered: they never block on the receiver, so the
//    blocking-send + nonblocking-recv discipline the paper uses to avoid
//    deadlock is trivially safe here.
//  * irecv() only records the match terms; the transfer is not accelerated
//    by posting early (our network model delivers eagerly regardless), so
//    wait() is where the rank actually blocks.
//  * Matching is exact (no ANY_SOURCE / ANY_TAG) and FIFO per (src, tag).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "minimpi/message.h"
#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::minimpi {

/// Event-key tag reserved for mailbox notifications.  User event tags in
/// NavP programs are small non-negative ints; this cannot collide.
inline constexpr std::int32_t kMailEventTag = -1001;
/// Tag reserved for barrier traffic.
inline constexpr Tag kBarrierTag = -7;

/// Handle to a posted non-blocking receive.
struct Request {
  int src = -1;
  Tag tag = 0;
  bool completed = false;
};

class Comm {
 public:
  /// Wrap the calling rank's agent context.  rank == the PE the agent was
  /// launched on; ranks must not hop.
  explicit Comm(navp::Ctx ctx) : ctx_(ctx), rank_(ctx.here()) {}

  int rank() const { return rank_; }
  int size() const { return ctx_.pe_count(); }
  navp::Ctx& ctx() { return ctx_; }

  /// Eager buffered send.  `wire_bytes` defaults to the payload size (plus
  /// a small header); pass it explicitly for phantom-storage runs where
  /// `data` is empty but the modeled transfer is not.
  void send(int dst, Tag tag, std::vector<double> data,
            std::size_t wire_bytes = kAutoBytes) {
    NAVCPP_CHECK(dst >= 0 && dst < size(),
                 "send to invalid rank " + std::to_string(dst));
    if (wire_bytes == kAutoBytes) {
      wire_bytes = data.size() * sizeof(double) + kHeaderBytes;
    }
    navp::Runtime& rt = ctx_.runtime();
    Message msg{rank_, tag, std::move(data), wire_bytes};
    // ship() routes through the reliability layer when a fault injector is
    // present, so MPI sends get the same exactly-once masking as hops.
    rt.ship(
        rank_, dst, wire_bytes,
        [&rt, dst, msg = std::move(msg)]() mutable {
          // Runs on the destination PE: deposit, then wake a waiter.
          const int src = msg.src;
          const Tag tag = msg.tag;
          rt.node_store(dst).get<Mailbox>().deposit(std::move(msg));
          rt.signal_on(dst, mail_key(src, tag));
        });
  }

  /// Post a non-blocking receive for (src, tag).
  Request irecv(int src, Tag tag) const {
    NAVCPP_CHECK(src >= 0 && src < size(),
                 "irecv from invalid rank " + std::to_string(src));
    return Request{src, tag, false};
  }

  /// Complete a posted receive, blocking until the message is available.
  navp::Task<Message> wait(Request req) {
    NAVCPP_CHECK(!req.completed, "Request already completed");
    NAVCPP_CHECK(req.src >= 0, "wait on a default-constructed Request");
    co_await ctx_.wait_event(mail_key(req.src, req.tag));
    auto msg = ctx_.node<Mailbox>().pop(req.src, req.tag);
    NAVCPP_CHECK(msg.has_value(),
                 "mailbox event fired without a matching message");
    co_return std::move(*msg);
  }

  /// Blocking receive: irecv + wait.
  navp::Task<Message> recv(int src, Tag tag) { return wait(irecv(src, tag)); }

  /// Synchronize all ranks (centralized gather-then-release on rank 0).
  navp::Task<void> barrier() {
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r) {
        (void)co_await recv(r, kBarrierTag);
      }
      for (int r = 1; r < size(); ++r) {
        send(r, kBarrierTag, {}, kHeaderBytes);
      }
    } else {
      send(0, kBarrierTag, {}, kHeaderBytes);
      (void)co_await recv(0, kBarrierTag);
    }
  }

  /// Charge modeled compute (forwarding helper so SPMD code reads well).
  template <class Fn>
  void work(const char* label, double cost_seconds, Fn&& body) {
    ctx_.work(label, cost_seconds, std::forward<Fn>(body));
  }

  static navp::EventKey mail_key(int src, Tag tag) {
    return navp::EventKey{kMailEventTag, src, tag};
  }

  static constexpr std::size_t kAutoBytes =
      std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kHeaderBytes = 64;

 private:
  navp::Ctx ctx_;
  int rank_;
};

}  // namespace navcpp::minimpi
