// World: launches one SPMD rank program per PE (the mpirun of mini-MPI).
#pragma once

#include <string>
#include <utility>

#include "minimpi/comm.h"
#include "navp/runtime.h"

namespace navcpp::minimpi {

class World {
 public:
  /// Install a Mailbox on every PE of `rt` (idempotent).
  explicit World(navp::Runtime& rt) : rt_(rt) {
    for (int pe = 0; pe < rt_.pe_count(); ++pe) {
      if (!rt_.node_store(pe).has<Mailbox>()) {
        rt_.node_store(pe).emplace<Mailbox>();
      }
    }
  }

  navp::Runtime& runtime() { return rt_; }
  int size() const { return rt_.pe_count(); }

  /// Inject `fn(Comm, args...)` as rank r on PE r, for every r.  Call
  /// Runtime::run() (or Engine::run()) afterwards to execute the program.
  template <class F, class... Args>
  void launch(F fn, Args... args) {
    for (int r = 0; r < size(); ++r) {
      rt_.inject(
          r, "rank" + std::to_string(r),
          [fn](navp::Ctx ctx, Args... as) -> navp::Mission {
            return fn(Comm(ctx), std::move(as)...);
          },
          args...);
    }
  }

  /// Post-run audit: true if any rank left undelivered messages behind
  /// (usually a tag mismatch bug in an SPMD program).
  bool has_leftover_messages() const {
    for (int pe = 0; pe < rt_.pe_count(); ++pe) {
      if (!rt_.node_store(pe).get<Mailbox>().empty()) return true;
    }
    return false;
  }

 private:
  navp::Runtime& rt_;
};

}  // namespace navcpp::minimpi
