// Collective operations over mini-MPI, built from the point-to-point
// primitives the way early MPI implementations built theirs: linear
// fan-out/fan-in rooted at a designated rank (the paper's grids are 2x2
// and 3x3 — trees win nothing at that scale, and the collision-free
// switch serializes at the root NIC either way).
//
// All collectives are Task<>s awaited from rank programs, and every rank
// of the communicator must call the collective exactly once per matching
// "round" (tags carry a user-chosen round id so concurrent collectives on
// disjoint tags cannot cross-match).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "minimpi/comm.h"
#include "navp/task.h"

namespace navcpp::minimpi {

/// Tag bases reserved for the collectives (shifted by the round id).
inline constexpr Tag kTagBcast = 10 << 20;
inline constexpr Tag kTagReduce = 11 << 20;
inline constexpr Tag kTagGather = 12 << 20;
inline constexpr Tag kTagScatter = 13 << 20;
inline constexpr Tag kTagAllreduce = 14 << 20;

/// Broadcast `data` from `root` to every rank; each rank's call returns
/// the broadcast payload.
inline navp::Task<std::vector<double>> bcast(Comm& comm, int root,
                                             std::vector<double> data,
                                             int round = 0) {
  const Tag tag = kTagBcast + round;
  if (comm.rank() == root) {
    for (int r = 0; r < comm.size(); ++r) {
      if (r != root) comm.send(r, tag, data);
    }
    co_return data;
  }
  Message msg = co_await comm.recv(root, tag);
  co_return std::move(msg.data);
}

/// Element-wise reduction onto `root` with a binary combiner; non-root
/// ranks receive an empty vector.
inline navp::Task<std::vector<double>> reduce(
    Comm& comm, int root, std::vector<double> data,
    const std::function<double(double, double)>& op, int round = 0) {
  const Tag tag = kTagReduce + round;
  if (comm.rank() == root) {
    std::vector<double> acc = std::move(data);
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      Message msg = co_await comm.recv(r, tag);
      NAVCPP_CHECK(msg.data.size() == acc.size(),
                   "reduce: contribution size mismatch");
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = op(acc[i], msg.data[i]);
      }
    }
    co_return acc;
  }
  comm.send(root, tag, std::move(data));
  co_return std::vector<double>{};
}

/// Gather every rank's vector onto `root`, concatenated in rank order;
/// non-root ranks receive an empty vector.
inline navp::Task<std::vector<double>> gather(Comm& comm, int root,
                                              std::vector<double> data,
                                              int round = 0) {
  const Tag tag = kTagGather + round;
  if (comm.rank() == root) {
    std::vector<std::vector<double>> parts(
        static_cast<std::size_t>(comm.size()));
    parts[static_cast<std::size_t>(root)] = std::move(data);
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      Message msg = co_await comm.recv(r, tag);
      parts[static_cast<std::size_t>(r)] = std::move(msg.data);
    }
    std::vector<double> all;
    for (auto& part : parts) {
      all.insert(all.end(), part.begin(), part.end());
    }
    co_return all;
  }
  comm.send(root, tag, std::move(data));
  co_return std::vector<double>{};
}

/// Scatter equal-sized chunks of root's `data` to every rank (including
/// the root); each call returns that rank's chunk.
inline navp::Task<std::vector<double>> scatter(Comm& comm, int root,
                                               std::vector<double> data,
                                               int round = 0) {
  const Tag tag = kTagScatter + round;
  if (comm.rank() == root) {
    NAVCPP_CHECK(data.size() % static_cast<std::size_t>(comm.size()) == 0,
                 "scatter: data must divide evenly over the ranks");
    const std::size_t chunk = data.size() /
                              static_cast<std::size_t>(comm.size());
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      std::vector<double> part(
          data.begin() + static_cast<std::ptrdiff_t>(chunk) * r,
          data.begin() + static_cast<std::ptrdiff_t>(chunk) * (r + 1));
      comm.send(r, tag, std::move(part));
    }
    co_return std::vector<double>(
        data.begin() + static_cast<std::ptrdiff_t>(chunk) * root,
        data.begin() + static_cast<std::ptrdiff_t>(chunk) * (root + 1));
  }
  Message msg = co_await comm.recv(root, tag);
  co_return std::move(msg.data);
}

/// Reduce onto rank 0 then broadcast: every rank returns the reduction.
inline navp::Task<std::vector<double>> allreduce(
    Comm& comm, std::vector<double> data,
    const std::function<double(double, double)>& op, int round = 0) {
  std::vector<double> reduced =
      co_await reduce(comm, 0, std::move(data), op, kTagAllreduce + round);
  co_return co_await bcast(comm, 0, std::move(reduced),
                           kTagAllreduce + round);
}

}  // namespace navcpp::minimpi
