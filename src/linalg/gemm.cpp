#include "linalg/gemm.h"

namespace navcpp::linalg {

namespace {
void check_shapes(const MatrixView& c, const ConstMatrixView& a,
                  const ConstMatrixView& b) {
  NAVCPP_CHECK(a.cols() == b.rows(),
               "gemm: inner dimensions disagree (" +
                   std::to_string(a.cols()) + " vs " +
                   std::to_string(b.rows()) + ")");
  NAVCPP_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: output shape mismatch");
}
}  // namespace

void gemm_acc_naive(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  check_shapes(c, a, b);
  for (int i = 0; i < c.rows(); ++i) {
    for (int j = 0; j < c.cols(); ++j) {
      double t = 0.0;
      for (int k = 0; k < a.cols(); ++k) t += a(i, k) * b(k, j);
      c(i, j) += t;
    }
  }
}

void gemm_acc(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  check_shapes(c, a, b);
  const int m = c.rows();
  const int n = c.cols();
  const int kk = a.cols();
  for (int i = 0; i < m; ++i) {
    double* crow = c.data() + static_cast<std::size_t>(i) * c.stride();
    for (int k = 0; k < kk; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + static_cast<std::size_t>(k) * b.stride();
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  NAVCPP_CHECK(a.cols() == b.rows(), "multiply: inner dimensions disagree");
  Matrix c(a.rows(), b.cols());
  gemm_acc(c.view(), a.view(), b.view());
  return c;
}

}  // namespace navcpp::linalg
