// GEMM kernels: C += A * B on views.
//
// Two implementations:
//  * gemm_acc_naive — textbook i-j-k triple loop (the paper's Figure 2 at
//    kernel granularity); reference for correctness tests.
//  * gemm_acc — i-k-j loop order with the A(i,k) scalar hoisted, giving
//    unit-stride inner loops over B and C rows.  This is the kernel every
//    algorithm in src/mm/ uses, so sequential and parallel versions do
//    identical arithmetic.
#pragma once

#include "linalg/matrix.h"

namespace navcpp::linalg {

/// Reference kernel: C += A * B, i-j-k order.
void gemm_acc_naive(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// Production kernel: C += A * B, i-k-j order (cache-friendly row access).
void gemm_acc(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// Full product helper: returns A * B as a fresh matrix (reference path for
/// tests and small examples).
Matrix multiply(const Matrix& a, const Matrix& b);

/// Flop count of one C(m,n) += A(m,k) * B(k,n) accumulation.
inline double gemm_flops(int m, int n, int k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace navcpp::linalg
