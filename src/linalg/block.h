// Blocked matrices and the Real/Phantom storage policies.
//
// The paper distinguishes "distribution blocks" (the unit of data placement
// on a PE) from "algorithmic blocks" (the unit of computation and
// communication; section 3.6).  Our mm/ algorithms manipulate algorithmic
// blocks held in BlockGrid node variables and carried in agent variables.
//
// Storage policies let the same algorithm run with real data (correctness:
// results are checked against the sequential product) or phantom data
// (paper-scale timing simulation: a block is just its shape, GEMMs charge
// the cost model without executing).  A cross-validation test asserts the
// two produce identical virtual times.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "support/error.h"

namespace navcpp::linalg {

/// A block that owns its elements.
struct RealBlock {
  int rows = 0;
  int cols = 0;
  std::vector<double> data;  // row-major rows x cols

  RealBlock() = default;
  RealBlock(int r, int c)
      : rows(r),
        cols(c),
        data(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.0) {}

  double& at(int r, int c) {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
  double at(int r, int c) const {
    return data[static_cast<std::size_t>(r) * cols + c];
  }

  MatrixView view() { return MatrixView(data.data(), rows, cols, cols); }
  ConstMatrixView view() const {
    return ConstMatrixView(data.data(), rows, cols, cols);
  }
};

/// A block that carries only its shape.
struct PhantomBlock {
  int rows = 0;
  int cols = 0;

  PhantomBlock() = default;
  PhantomBlock(int r, int c) : rows(r), cols(c) {}
};

struct RealStorage {
  using Block = RealBlock;
  static constexpr bool kReal = true;

  static Block make(int rows, int cols) { return Block(rows, cols); }

  /// C += A * B on real data.
  static void gemm_acc(Block& c, const Block& a, const Block& b) {
    linalg::gemm_acc(c.view(), a.view(), b.view());
  }

  /// B := B^T (out-of-place for rectangular blocks).
  static void transpose(Block& b) {
    Block t(b.cols, b.rows);
    for (int r = 0; r < b.rows; ++r) {
      for (int c = 0; c < b.cols; ++c) t.at(c, r) = b.at(r, c);
    }
    b = std::move(t);
  }
};

struct PhantomStorage {
  using Block = PhantomBlock;
  static constexpr bool kReal = false;

  static Block make(int rows, int cols) { return Block(rows, cols); }

  static void gemm_acc(Block& c, const Block& a, const Block& b) {
    NAVCPP_CHECK(a.cols == b.rows && c.rows == a.rows && c.cols == b.cols,
                 "phantom gemm: shape mismatch");
  }

  static void transpose(Block& b) { std::swap(b.rows, b.cols); }
};

/// Wire size of a block (identical for both storages: phantom runs charge
/// the same network costs real runs would).
template <class Block>
std::size_t block_wire_bytes(const Block& b) {
  return static_cast<std::size_t>(b.rows) * static_cast<std::size_t>(b.cols) *
         sizeof(double);
}

/// A dense grid of algorithmic blocks, each `block_order` square (edge
/// blocks may be smaller when the matrix order is not a multiple).
template <class Storage>
class BlockGrid {
 public:
  using Block = typename Storage::Block;

  BlockGrid() = default;

  /// Grid covering an `order` x `order` matrix with `block_order` blocks.
  BlockGrid(int order, int block_order)
      : order_(order), block_order_(block_order) {
    NAVCPP_CHECK(order >= 1, "matrix order must be positive");
    NAVCPP_CHECK(block_order >= 1, "block order must be positive");
    nb_ = (order + block_order - 1) / block_order;
    blocks_.reserve(static_cast<std::size_t>(nb_) * nb_);
    for (int bi = 0; bi < nb_; ++bi) {
      for (int bj = 0; bj < nb_; ++bj) {
        blocks_.push_back(
            Storage::make(block_rows(bi), block_cols(bj)));
      }
    }
  }

  int order() const { return order_; }
  int block_order() const { return block_order_; }
  /// Number of blocks along one dimension.
  int nb() const { return nb_; }

  int block_rows(int bi) const {
    check_index(bi);
    return std::min(block_order_, order_ - bi * block_order_);
  }
  int block_cols(int bj) const {
    check_index(bj);
    return std::min(block_order_, order_ - bj * block_order_);
  }

  Block& at(int bi, int bj) {
    check_index(bi);
    check_index(bj);
    return blocks_[static_cast<std::size_t>(bi) * nb_ + bj];
  }
  const Block& at(int bi, int bj) const {
    check_index(bi);
    check_index(bj);
    return blocks_[static_cast<std::size_t>(bi) * nb_ + bj];
  }

 private:
  void check_index(int b) const {
    NAVCPP_CHECK(b >= 0 && b < nb_, "block index out of range");
  }

  int order_ = 0;
  int block_order_ = 0;
  int nb_ = 0;
  std::vector<Block> blocks_;
};

/// Split a matrix into a RealStorage grid of algorithmic blocks.
BlockGrid<RealStorage> to_blocks(const Matrix& m, int block_order);

/// Reassemble a matrix from a RealStorage grid.
Matrix from_blocks(const BlockGrid<RealStorage>& grid);

}  // namespace navcpp::linalg
