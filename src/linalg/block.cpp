#include "linalg/block.h"

namespace navcpp::linalg {

BlockGrid<RealStorage> to_blocks(const Matrix& m, int block_order) {
  NAVCPP_CHECK(m.rows() == m.cols(), "to_blocks expects a square matrix");
  BlockGrid<RealStorage> grid(m.rows(), block_order);
  for (int bi = 0; bi < grid.nb(); ++bi) {
    for (int bj = 0; bj < grid.nb(); ++bj) {
      RealBlock& blk = grid.at(bi, bj);
      const int r0 = bi * block_order;
      const int c0 = bj * block_order;
      for (int r = 0; r < blk.rows; ++r) {
        for (int c = 0; c < blk.cols; ++c) {
          blk.at(r, c) = m(r0 + r, c0 + c);
        }
      }
    }
  }
  return grid;
}

Matrix from_blocks(const BlockGrid<RealStorage>& grid) {
  Matrix m(grid.order(), grid.order());
  for (int bi = 0; bi < grid.nb(); ++bi) {
    for (int bj = 0; bj < grid.nb(); ++bj) {
      const RealBlock& blk = grid.at(bi, bj);
      const int r0 = bi * grid.block_order();
      const int c0 = bj * grid.block_order();
      for (int r = 0; r < blk.rows; ++r) {
        for (int c = 0; c < blk.cols; ++c) {
          m(r0 + r, c0 + c) = blk.at(r, c);
        }
      }
    }
  }
  return m;
}

}  // namespace navcpp::linalg
