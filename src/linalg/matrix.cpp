#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace navcpp::linalg {

double max_abs_diff(const Matrix& a, const Matrix& b) {
  NAVCPP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    }
  }
  return worst;
}

double frobenius_norm(const Matrix& a) {
  double sum = 0.0;
  for (double x : a.flat()) sum += x * x;
  return std::sqrt(sum);
}

}  // namespace navcpp::linalg
