#include "linalg/stagger.h"

#include <algorithm>
#include <functional>

namespace navcpp::linalg {

namespace {
void check_permutation(const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  std::vector<bool> seen(perm.size(), false);
  for (int x : perm) {
    NAVCPP_CHECK(x >= 0 && x < n, "permutation value out of range");
    NAVCPP_CHECK(!seen[static_cast<std::size_t>(x)],
                 "duplicate value: not a permutation");
    seen[static_cast<std::size_t>(x)] = true;
  }
}
}  // namespace

bool is_involution(const std::vector<int>& perm) {
  check_permutation(perm);
  for (std::size_t x = 0; x < perm.size(); ++x) {
    if (perm[static_cast<std::size_t>(perm[x])] != static_cast<int>(x)) {
      return false;
    }
  }
  return true;
}

std::vector<int> cycle_lengths(const std::vector<int>& perm) {
  check_permutation(perm);
  std::vector<bool> seen(perm.size(), false);
  std::vector<int> lengths;
  for (std::size_t start = 0; start < perm.size(); ++start) {
    if (seen[start]) continue;
    int len = 0;
    std::size_t x = start;
    while (!seen[x]) {
      seen[x] = true;
      ++len;
      x = static_cast<std::size_t>(perm[x]);
    }
    lengths.push_back(len);
  }
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  return lengths;
}

int min_comm_phases(const std::vector<int>& perm) {
  int phases = 0;
  for (int len : cycle_lengths(perm)) {
    int need = 0;
    if (len == 1) {
      need = 0;  // message to self: pointer swap, no network
    } else if (len % 2 == 0) {
      need = 2;  // even cycle: 2-edge-colorable
    } else {
      need = 3;  // odd cycle: needs a third phase
    }
    phases = std::max(phases, need);
  }
  return phases;
}

std::vector<int> forward_row_permutation(int i, int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(k)] = forward_stagger_col(i, k, n);
  }
  return perm;
}

std::vector<int> reverse_row_permutation(int i, int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(k)] = reverse_stagger_col(i, k, n);
  }
  return perm;
}

std::vector<int> schedule_comm_phases(const std::vector<int>& perm) {
  check_permutation(perm);
  const std::size_t n = perm.size();
  std::vector<int> schedule(n, kNoMessage);
  std::vector<bool> seen(n, false);
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    // Collect the cycle through `start`.
    std::vector<std::size_t> cycle;
    std::size_t x = start;
    while (!seen[x]) {
      seen[x] = true;
      cycle.push_back(x);
      x = static_cast<std::size_t>(perm[x]);
    }
    if (cycle.size() == 1) continue;  // fixed point: no message
    // Edge-color the cycle: alternate phases 0/1 along it; an odd cycle
    // needs phase 2 for its closing edge (adjacent to both phase-0 and
    // phase-1 edges at the shared vertices).
    for (std::size_t k = 0; k < cycle.size(); ++k) {
      const bool closing = (k + 1 == cycle.size());
      int phase = static_cast<int>(k % 2);
      if (closing && cycle.size() % 2 == 1) phase = 2;
      schedule[cycle[k]] = phase;
    }
  }
  return schedule;
}

int validate_comm_schedule(const std::vector<int>& perm,
                           const std::vector<int>& schedule) {
  check_permutation(perm);
  NAVCPP_CHECK(schedule.size() == perm.size(),
               "schedule/permutation size mismatch");
  int phases = 0;
  for (std::size_t p = 0; p < perm.size(); ++p) {
    const bool fixed = perm[p] == static_cast<int>(p);
    NAVCPP_CHECK(fixed == (schedule[p] == kNoMessage),
                 "schedule must mark exactly the fixed points as silent");
    if (schedule[p] != kNoMessage) {
      NAVCPP_CHECK(schedule[p] >= 0, "negative phase");
      phases = std::max(phases, schedule[p] + 1);
    }
  }
  // Half-duplex feasibility: within a phase, each PE is an endpoint of at
  // most one message.
  for (int phase = 0; phase < phases; ++phase) {
    std::vector<int> endpoint_uses(perm.size(), 0);
    for (std::size_t p = 0; p < perm.size(); ++p) {
      if (schedule[p] != phase) continue;
      ++endpoint_uses[p];
      ++endpoint_uses[static_cast<std::size_t>(perm[p])];
    }
    for (std::size_t p = 0; p < perm.size(); ++p) {
      NAVCPP_CHECK(endpoint_uses[p] <= 1,
                   "PE " + std::to_string(p) +
                       " is an endpoint of two messages in phase " +
                       std::to_string(phase));
    }
  }
  return phases;
}

int forward_stagger_phases(int n) {
  int worst = 0;
  for (int i = 0; i < n; ++i) {
    worst = std::max(worst, min_comm_phases(forward_row_permutation(i, n)));
  }
  return worst;
}

int reverse_stagger_phases(int n) {
  int worst = 0;
  for (int i = 0; i < n; ++i) {
    worst = std::max(worst, min_comm_phases(reverse_row_permutation(i, n)));
  }
  return worst;
}

}  // namespace navcpp::linalg
