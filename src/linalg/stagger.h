// Initial-staggering utilities and the communication-phase analysis behind
// the paper's section 5, point 3:
//
//   "reverse staggering never requires more than two communication phases,
//    while forward staggering often requires three."
//
// Forward staggering (Gentleman, Cannon) shifts row i of A west by i and
// column j of B north by j: within each row/column that is a cyclic shift
// of the PEs.  Reverse staggering (NavP) both shifts and reverses the
// order: the resulting permutation is an involution (all cycles have length
// <= 2).
//
// Phase model: half-duplex NICs — in one communication phase a PE can be an
// endpoint of at most one message (sender or receiver); messages to self
// are free.  The messages of a permutation form its functional graph, whose
// cycles must be edge-colored: a fixed point needs 0 phases, any even cycle
// (including a 2-cycle, i.e. an exchange) needs 2, and an odd cycle needs 3.
// Hence involutions (reverse staggering) need at most 2 phases, while
// cyclic shifts of odd cycle length (forward staggering) need 3.
#pragma once

#include <vector>

#include "support/error.h"

namespace navcpp::linalg {

/// Gentleman/Cannon forward staggering: A(i,k) moves to column (k - i) mod N.
inline int forward_stagger_col(int i, int k, int n) {
  return ((k - i) % n + n) % n;
}

/// Forward staggering of B: B(k,j) moves to row (k - j) mod N.
inline int forward_stagger_row(int k, int j, int n) {
  return ((k - j) % n + n) % n;
}

/// NavP reverse staggering: A(i,k) starts at column (N-1-i-k) mod N — the
/// chain is shifted *and* reverse-ordered (see Figure 12 and the ACarrier
/// itinerary of Figure 13).
inline int reverse_stagger_col(int i, int k, int n) {
  return ((n - 1 - i - k) % n + n) % n;
}

/// Reverse staggering of B: B(k,j) starts at row (N-1-j-k) mod N.
inline int reverse_stagger_row(int k, int j, int n) {
  return ((n - 1 - j - k) % n + n) % n;
}

/// True if perm(perm(x)) == x for all x.
bool is_involution(const std::vector<int>& perm);

/// Cycle lengths of a permutation, largest first.
std::vector<int> cycle_lengths(const std::vector<int>& perm);

/// Minimum communication phases to realize `perm` (PE p sends to perm[p])
/// under the half-duplex model described above.
int min_comm_phases(const std::vector<int>& perm);

/// The column permutation forward staggering applies to row `i` of A on an
/// N-PE row: perm[k] = (k - i) mod N.
std::vector<int> forward_row_permutation(int i, int n);

/// The column permutation reverse staggering applies to row `i` of A:
/// perm[k] = (N-1-i-k) mod N.
std::vector<int> reverse_row_permutation(int i, int n);

/// Worst-case phases over all rows (and by symmetry, columns) of an N x N
/// staggering, for each scheme.
int forward_stagger_phases(int n);
int reverse_stagger_phases(int n);

/// A concrete schedule realizing a permutation: schedule[p] is the phase
/// (0-based) in which PE p transmits to perm[p]; kNoMessage for fixed
/// points.  The returned schedule is feasible (within a phase no PE is an
/// endpoint of two messages) and uses exactly min_comm_phases(perm)
/// phases — a constructive witness for the bound.
inline constexpr int kNoMessage = -1;
std::vector<int> schedule_comm_phases(const std::vector<int>& perm);

/// Validate feasibility of a schedule for `perm` under the half-duplex
/// model; returns the number of phases used (max entry + 1).
int validate_comm_schedule(const std::vector<int>& perm,
                           const std::vector<int>& schedule);

}  // namespace navcpp::linalg
