// Dense row-major matrices and views.
//
// Matrix owns storage; MatrixView/ConstMatrixView are non-owning strided
// windows used by the GEMM kernels and by block extraction, so a kernel can
// run on a sub-matrix without copying (CppCoreGuidelines: prefer spans/views
// over pointer+size pairs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace navcpp::linalg {

class ConstMatrixView {
 public:
  ConstMatrixView(const double* data, int rows, int cols, int stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    NAVCPP_CHECK(rows >= 0 && cols >= 0 && stride >= cols,
                 "invalid matrix view shape");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int stride() const { return stride_; }
  const double* data() const { return data_; }

  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * stride_ + c];
  }

  /// Sub-window of this view.
  ConstMatrixView window(int r0, int c0, int rows, int cols) const {
    NAVCPP_CHECK(r0 >= 0 && c0 >= 0 && r0 + rows <= rows_ &&
                     c0 + cols <= cols_,
                 "view window out of bounds");
    return ConstMatrixView(
        data_ + static_cast<std::size_t>(r0) * stride_ + c0, rows, cols,
        stride_);
  }

 private:
  const double* data_;
  int rows_, cols_, stride_;
};

class MatrixView {
 public:
  MatrixView(double* data, int rows, int cols, int stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    NAVCPP_CHECK(rows >= 0 && cols >= 0 && stride >= cols,
                 "invalid matrix view shape");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int stride() const { return stride_; }
  double* data() const { return data_; }

  double& operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * stride_ + c];
  }

  MatrixView window(int r0, int c0, int rows, int cols) const {
    NAVCPP_CHECK(r0 >= 0 && c0 >= 0 && r0 + rows <= rows_ &&
                     c0 + cols <= cols_,
                 "view window out of bounds");
    return MatrixView(data_ + static_cast<std::size_t>(r0) * stride_ + c0,
                      rows, cols, stride_);
  }

  operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
    return ConstMatrixView(data_, rows_, cols_, stride_);
  }

 private:
  double* data_;
  int rows_, cols_, stride_;
};

/// Owning dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {
    NAVCPP_CHECK(rows >= 0 && cols >= 0, "negative matrix dimensions");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Bounds-checked access (tests, examples).
  double& at(int r, int c) {
    NAVCPP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                 "matrix index out of bounds");
    return (*this)(r, c);
  }
  double at(int r, int c) const {
    NAVCPP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                 "matrix index out of bounds");
    return (*this)(r, c);
  }

  MatrixView view() { return MatrixView(data_.data(), rows_, cols_, cols_); }
  ConstMatrixView view() const {
    return ConstMatrixView(data_.data(), rows_, cols_, cols_);
  }
  MatrixView window(int r0, int c0, int rows, int cols) {
    return view().window(r0, c0, rows, cols);
  }
  ConstMatrixView window(int r0, int c0, int rows, int cols) const {
    return view().window(r0, c0, rows, cols);
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat() { return data_; }

  void fill(double v) { data_.assign(data_.size(), v); }

  friend bool operator==(const Matrix&, const Matrix&) = default;

  // --- factories ---------------------------------------------------------
  static Matrix zeros(int n) { return Matrix(n, n); }
  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }
  /// Uniform entries in [-1, 1), deterministic in `seed`.
  static Matrix random(int rows, int cols, std::uint64_t seed) {
    Matrix m(rows, cols);
    support::Rng rng(seed);
    for (auto& x : m.data_) x = rng.uniform(-1.0, 1.0);
    return m;
  }
  /// m(i,j) = base + i*cols + j — handy for pinpointing layout bugs.
  static Matrix iota(int rows, int cols, double base = 0.0) {
    Matrix m(rows, cols);
    double v = base;
    for (auto& x : m.data_) x = v++;
    return m;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Largest absolute element-wise difference (for approximate comparisons).
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

}  // namespace navcpp::linalg
