// Calibrated performance model of the paper's testbed:
//
//   SUN Blade 100 workstations — 502 MHz UltraSPARC-IIe, 256 MB RAM,
//   1 GB virtual memory, 100 Mbps switched Ethernet, LAM/MPI 7.0.6,
//   MESSENGERS 1.2.05.
//
// Calibration sources (all from the paper's own tables):
//  * Effective blocked-GEMM rate: sequential times in Tables 1 and 3 give
//    2*N^3 / t ≈ 108–111 MFLOP/s across N = 1024..3072; we use 110 MFLOP/s.
//  * Cache profile: section 5 point 2 — NavP and sequential code keep one
//    operand block cache-resident, worth "as much as a 4% improvement"
//    over the MPI code whose A/B/C block triples are frequently fresh.
//  * Paging: Table 2 — sequential N = 9216 (working set ≈ 2 GB vs 256 MB
//    RAM) measured 36534 s vs 13922 s curve-fit, a 2.62x blowup; Table 1's
//    N = 4608 (working set 1.99x RAM) measured only a 1.11x blowup.  A
//    power law 1 + c*(ws/ram - 1)^p with c = 0.108, p = 1.4 reproduces the
//    anchor points (2.64x at 8.0x RAM, 1.11x at 2.0x RAM).
//  * Network: 100 Mbps => 12.5 MB/s; sub-millisecond switch+stack latency;
//    per-message CPU overheads of a few hundred microseconds (LAM over
//    TCP); MESSENGERS hops additionally carry ~256 bytes of thread state.
#pragma once

#include <cstddef>

#include "linalg/gemm.h"
#include "net/link_model.h"

namespace navcpp::perfmodel {

/// How well the operand blocks of a GEMM reuse the cache (section 5 #2).
enum class CacheProfile {
  /// One operand block stays cache-resident across the inner loop — the
  /// sequential code (C block) and the NavP code (carried A block).
  kResident,
  /// All three blocks are frequently fresh in cache — the block-oriented
  /// MPI code.
  kAllFresh,
};

struct Testbed {
  // --- compute -----------------------------------------------------------
  double flops_per_sec = 110.0e6;  ///< effective blocked-GEMM rate
  double cache_penalty = 0.04;     ///< kAllFresh throughput loss

  // --- memory ------------------------------------------------------------
  std::size_t ram_bytes = 256ull << 20;  ///< physical memory per PE
  double paging_c = 0.108;               ///< paging blowup coefficient
  double paging_p = 1.4;                 ///< paging blowup exponent

  // --- network -----------------------------------------------------------
  net::LinkParams lan{
      /*send_overhead=*/2.0e-4,
      /*recv_overhead=*/2.0e-4,
      /*latency=*/7.0e-4,
      /*bandwidth=*/12.5e6,
      /*local_delivery=*/2.0e-6,
  };
  /// Extra per-hop sender-side software cost of a MESSENGERS migration
  /// (thread state capture / dispatch) relative to a bare message.
  double hop_software_overhead = 3.0e-4;
  /// Bytes of thread state a hop carries besides the agent variables.
  std::size_t hop_state_bytes = 256;
  /// CPU cost each time the runtime daemon re-activates a suspended
  /// computation (dequeue + context switch on 502 MHz SunOS) — charged on
  /// hop arrivals, event wakes, and thread starts.
  double daemon_dispatch_overhead = 4.0e-4;

  /// Seconds for one C(m,n) += A(m,k)*B(k,n) block accumulation.
  double gemm_seconds(int m, int n, int k,
                      CacheProfile profile = CacheProfile::kResident) const {
    const double rate = profile == CacheProfile::kResident
                            ? flops_per_sec
                            : flops_per_sec * (1.0 - cache_penalty);
    return linalg::gemm_flops(m, n, k) / rate;
  }

  /// Multiplier on compute time when `working_set` bytes are touched with
  /// uniform locality on one PE (>= 1; 1 when the set fits in RAM).
  double paging_factor(std::size_t working_set) const;

  /// Working set of an in-core N x N multiply: three dense matrices.
  static std::size_t mm_working_set(int order) {
    return 3ull * static_cast<std::size_t>(order) *
           static_cast<std::size_t>(order) * sizeof(double);
  }

  /// Seconds for the whole sequential N x N multiply including paging —
  /// what a timed run on one workstation would measure.
  double sequential_mm_seconds(int order) const {
    const double core = gemm_seconds(order, order, order);
    return core * paging_factor(mm_working_set(order));
  }

  /// The paper's testbed, as calibrated above.
  static Testbed paper() { return Testbed{}; }
};

}  // namespace navcpp::perfmodel
