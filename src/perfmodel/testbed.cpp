#include "perfmodel/testbed.h"

#include <cmath>

namespace navcpp::perfmodel {

double Testbed::paging_factor(std::size_t working_set) const {
  if (working_set <= ram_bytes) return 1.0;
  const double excess =
      static_cast<double>(working_set) / static_cast<double>(ram_bytes) - 1.0;
  return 1.0 + paging_c * std::pow(excess, paging_p);
}

}  // namespace navcpp::perfmodel
