#include "perfmodel/curvefit.h"

#include <cmath>
#include <cstddef>

#include "support/error.h"

namespace navcpp::perfmodel {

std::vector<double> solve_linear(std::vector<double> a,
                                 std::vector<double> b) {
  const std::size_t n = b.size();
  NAVCPP_CHECK(a.size() == n * n, "solve_linear: matrix/vector size mismatch");
  auto at = [&](std::size_t r, std::size_t c) -> double& {
    return a[r * n + c];
  };

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    NAVCPP_CHECK(std::abs(at(pivot, col)) > 1e-12,
                 "solve_linear: singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(at(col, c), at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = at(r, col) / at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) at(r, c) -= f * at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double sum = b[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= at(r, c) * x[c];
    x[r] = sum / at(r, r);
  }
  return x;
}

std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, int degree) {
  NAVCPP_CHECK(degree >= 0, "polyfit: negative degree");
  NAVCPP_CHECK(xs.size() == ys.size(), "polyfit: xs/ys length mismatch");
  const std::size_t terms = static_cast<std::size_t>(degree) + 1;
  NAVCPP_CHECK(xs.size() >= terms,
               "polyfit: need at least degree+1 sample points");

  // Normal equations: (V^T V) c = V^T y with V[i][j] = xs[i]^j.
  // Scale x by its max magnitude first: powers of matrix orders (~1e4)
  // otherwise push the Gram matrix's condition number past double range.
  double xscale = 0.0;
  for (double x : xs) xscale = std::max(xscale, std::abs(x));
  if (xscale == 0.0) xscale = 1.0;

  std::vector<double> gram(terms * terms, 0.0);
  std::vector<double> rhs(terms, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i] / xscale;
    double pj = 1.0;
    std::vector<double> powers(terms);
    for (std::size_t j = 0; j < terms; ++j) {
      powers[j] = pj;
      pj *= x;
    }
    for (std::size_t r = 0; r < terms; ++r) {
      rhs[r] += powers[r] * ys[i];
      for (std::size_t c = 0; c < terms; ++c) {
        gram[r * terms + c] += powers[r] * powers[c];
      }
    }
  }
  std::vector<double> scaled = solve_linear(std::move(gram), std::move(rhs));
  // Undo the x scaling: coefficient of x^j picks up xscale^-j.
  double s = 1.0;
  for (std::size_t j = 0; j < terms; ++j) {
    scaled[j] /= s;
    s *= xscale;
  }
  return scaled;
}

double polyval(std::span<const double> coeffs, double x) {
  double result = 0.0;
  for (std::size_t j = coeffs.size(); j-- > 0;) {
    result = result * x + coeffs[j];
  }
  return result;
}

}  // namespace navcpp::perfmodel
