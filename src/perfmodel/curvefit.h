// Least-squares polynomial fitting — the paper's own methodology for
// estimating sequential baselines too large to run in core:
//
//   "we calculate sequential timing for large problems using least squared
//    curve fitting with a polynomial of order 3 using performance numbers
//    collected with small problems."
//
// polyfit solves the normal equations (Vandermonde^T Vandermonde) with
// Gaussian elimination and partial pivoting; fine for the tiny systems
// (degree <= 5) this is used for.
#pragma once

#include <span>
#include <vector>

namespace navcpp::perfmodel {

/// Fit ys ~ sum_i coeffs[i] * xs^i by least squares.  Returns degree+1
/// coefficients, constant term first.  Requires xs.size() == ys.size() and
/// at least degree+1 distinct sample points.
std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, int degree);

/// Evaluate a polynomial (constant term first) at x.
double polyval(std::span<const double> coeffs, double x);

/// Solve the dense linear system a * x = b in place (partial pivoting).
/// `a` is row-major n x n.  Throws on singular systems.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

}  // namespace navcpp::perfmodel
