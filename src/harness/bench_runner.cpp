#include "harness/bench_runner.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "harness/profile.h"
#include "harness/workloads.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "machine/proc_machine.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "support/json.h"
#include "support/stopwatch.h"

namespace navcpp::harness {

namespace {

constexpr const char* kSchemaTag = "navcpp.bench/v1";

// Same mission as bench_runtime_micro's hopper: visit every PE in order,
// `laps` times, carrying 64 payload bytes per hop.
navp::Mission hopper(navp::Ctx ctx, int laps) {
  for (int i = 0; i < laps; ++i) {
    for (int pe = 0; pe < ctx.pe_count(); ++pe) {
      co_await ctx.hop(pe, 64);
    }
  }
}

/// Hops per wall second on a fresh engine per repetition (machine
/// construction and thread spawn included, exactly like the google-benchmark
/// loop); best-of-reps to shed scheduler noise.
template <class MakeEngine>
double measure_hops_per_sec(MakeEngine make_engine, int laps, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto engine = make_engine();
    support::Stopwatch timer;
    navp::Runtime rt(*engine);
    rt.inject(0, "hopper", hopper, laps);
    rt.run();
    const double secs = timer.seconds();
    const double hops = static_cast<double>(rt.hop_count());
    if (secs > 0.0) best = std::max(best, hops / secs);
  }
  return best;
}

double measure_gemm_gflops(int order, int reps) {
  const auto a = linalg::Matrix::random(order, order, 11);
  const auto b = linalg::Matrix::random(order, order, 12);
  linalg::Matrix c(order, order);
  const double flops = linalg::gemm_flops(order, order, order);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    support::Stopwatch timer;
    linalg::gemm_acc(c.view(), a.view(), b.view());
    const double secs = timer.seconds();
    if (secs > 0.0) best = std::max(best, flops / secs / 1e9);
  }
  return best;
}

/// Wall milliseconds for the proc supervisor to bring a SIGKILLed worker
/// back: death detection, backoff, re-fork, re-handshake, checkpoint
/// re-push, and retained-frame replay, measured by the supervisor itself
/// (ProcMachine::last_recovery_seconds).  The hopper keeps cross-PE
/// traffic flowing so the kill lands mid-run and the resumed run still
/// has work to finish; best (lowest) of reps.  A rep whose kill misses
/// the run window contributes nothing.
double measure_proc_recovery_ms(int reps) {
  constexpr int kLaps = 60;         // 2 PEs -> 120 cross-PE transmits
  constexpr std::uint64_t kKillAt = 40;  // mid-run, well before quiesce
  double best = 0.0;
  bool first = true;
  for (int r = 0; r < reps; ++r) {
    machine::ProcMachine::Options opt;
    opt.recovery.enabled = true;
    opt.recovery.max_respawns = 4;
    auto engine = std::make_unique<machine::ProcMachine>(2, opt);
    engine->schedule_kill_after_transmits(1, kKillAt);
    navp::Runtime rt(*engine);
    rt.inject(0, "hopper", hopper, kLaps);
    rt.run();
    if (engine->total_respawns() == 0) continue;
    const double ms = engine->last_recovery_seconds() * 1e3;
    if (first || ms < best) best = ms;
    first = false;
  }
  return best;
}

/// Wall seconds to run one catalog workload start-to-finish on the sim
/// backend (runtime overhead + simulation machinery, not virtual time).
double measure_workload_wall_seconds(const std::string& name, int reps) {
  double best = 0.0;
  bool first = true;
  for (int r = 0; r < reps; ++r) {
    machine::SimMachine sim(workload_pe_count(name), workload_link(name));
    support::Stopwatch timer;
    (void)run_workload(name, sim);
    const double secs = timer.seconds();
    if (first || secs < best) best = secs;
    first = false;
  }
  return best;
}

}  // namespace

BenchReport run_bench_suite(const BenchOptions& options) {
  BenchReport report;
  report.revision = options.revision;
  report.quick = options.quick;
  report.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  const int laps = options.quick ? 200 : 1000;
  const int reps = options.quick ? 2 : 5;

  report.metrics["runtime.threaded.hops_per_sec"] = BenchMetric{
      measure_hops_per_sec(
          [] { return std::make_unique<machine::ThreadedMachine>(2); }, laps,
          reps),
      "hops/s", true};
  report.metrics["runtime.threaded.hops_per_sec_4pe"] = BenchMetric{
      measure_hops_per_sec(
          [] { return std::make_unique<machine::ThreadedMachine>(4); }, laps,
          reps),
      "hops/s", true};
  report.metrics["runtime.sim.hops_per_sec"] = BenchMetric{
      measure_hops_per_sec(
          [] { return std::make_unique<machine::SimMachine>(4); }, laps,
          reps),
      "hops/s", true};
  // Process-per-PE backend: every hop crosses an address-space boundary
  // through the wire protocol (worker fork + socket round trips included
  // in the measured wall time, like thread spawn is for threaded).  Rides
  // the default mesh data plane: payloads travel direct worker<->worker
  // channels, only grants pass through the parent.
  report.metrics["runtime.proc.hops_per_sec"] = BenchMetric{
      measure_hops_per_sec(
          [] { return std::make_unique<machine::ProcMachine>(2); }, laps,
          reps),
      "hops/s", true};
  // A/B pair for the data plane: the same hopper on the mesh (explicit,
  // even though it is the default above) and on the star relay, so the
  // mesh's advantage is itself a committed, gated number.
  report.metrics["runtime.proc.mesh_hops_per_sec"] = BenchMetric{
      measure_hops_per_sec(
          [] {
            machine::ProcMachine::Options opt;
            opt.mesh = true;
            return std::make_unique<machine::ProcMachine>(2, opt);
          },
          laps, reps),
      "hops/s", true};
  report.metrics["runtime.proc.star_hops_per_sec"] = BenchMetric{
      measure_hops_per_sec(
          [] {
            machine::ProcMachine::Options opt;
            opt.mesh = false;
            return std::make_unique<machine::ProcMachine>(2, opt);
          },
          laps, reps),
      "hops/s", true};
  // Same hopper with distributed tracing on (trace ids stamped on every
  // frame, workers recording + shipping spans, flight recorder active).
  // Committed next to the untraced number so the observability overhead is
  // itself a gated metric: bench_compare flags the A/B ratio drifting.
  report.metrics["runtime.proc.traced_hops_per_sec"] = BenchMetric{
      measure_hops_per_sec(
          [] {
            machine::ProcMachine::Options opt;
            opt.trace = true;
            return std::make_unique<machine::ProcMachine>(2, opt);
          },
          laps, reps),
      "hops/s", true};
  // Crash recovery on the same backend: SIGKILL a worker mid-hopper-run
  // and report how long the supervisor took to detect, respawn, and
  // replay (lower is better; bench_compare gates regressions).
  report.metrics["runtime.proc.recovery_ms"] =
      BenchMetric{measure_proc_recovery_ms(reps), "ms", false};

  report.metrics["kernels.gemm_gflops"] = BenchMetric{
      measure_gemm_gflops(options.quick ? 128 : 256, reps), "GFLOP/s", true};

  report.metrics["sweep.jacobi_wall_seconds"] = BenchMetric{
      measure_workload_wall_seconds("jacobi/dataflow", options.quick ? 1 : 2),
      "s", false};
  report.metrics["sweep.lu_wall_seconds"] = BenchMetric{
      measure_workload_wall_seconds("lu/pipeline", options.quick ? 1 : 2),
      "s", false};

  // Deterministic anchor: mean per-PE utilization of the phase-shifted MM
  // on the calibrated sim, from the obs registry / trace pipeline.  This
  // one is bit-identical across hosts, so a diff here is always real.
  const ProfileResult profile = profile_workload("mm/phase1d");
  report.metrics["obs.mean_pe_utilization"] =
      BenchMetric{profile.mean_utilization, "ratio", true};

  return report;
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"";
  out += kSchemaTag;
  out += "\",\n";
  out += "  \"revision\": \"" + support::json_escape(revision) + "\",\n";
  out += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  out += "  \"host\": {\"hardware_threads\": " +
         std::to_string(hardware_threads) + "},\n";
  out += "  \"metrics\": {\n";
  bool first = true;
  for (const auto& [name, metric] : metrics) {
    if (!first) out += ",\n";
    first = false;
    out += "    \"" + support::json_escape(name) + "\": {\"value\": " +
           support::json_number(metric.value) + ", \"unit\": \"" +
           support::json_escape(metric.unit) + "\", \"higher_is_better\": " +
           (metric.higher_is_better ? "true" : "false") + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool validate_bench_json(const std::string& json, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  support::JsonValue doc;
  std::string parse_error;
  if (!support::json_parse(json, &doc, &parse_error)) {
    return fail("not valid JSON: " + parse_error);
  }
  if (!doc.is_object()) return fail("top level is not an object");
  const auto* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchemaTag) {
    return fail(std::string("missing or wrong schema tag (want \"") +
                kSchemaTag + "\")");
  }
  const auto* revision = doc.find("revision");
  if (revision == nullptr || !revision->is_string() ||
      revision->as_string().empty()) {
    return fail("revision must be a non-empty string");
  }
  const auto* quick = doc.find("quick");
  if (quick == nullptr || !quick->is_bool()) {
    return fail("quick must be a boolean");
  }
  const auto* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object() ||
      metrics->as_object().empty()) {
    return fail("metrics must be a non-empty object");
  }
  for (const auto& [name, metric] : metrics->as_object()) {
    if (!metric.is_object()) {
      return fail("metric '" + name + "' is not an object");
    }
    const auto* value = metric.find("value");
    if (value == nullptr || !value->is_number() ||
        !std::isfinite(value->as_number()) || value->as_number() < 0.0) {
      return fail("metric '" + name +
                  "' needs a finite non-negative numeric value");
    }
    const auto* unit = metric.find("unit");
    if (unit == nullptr || !unit->is_string()) {
      return fail("metric '" + name + "' needs a string unit");
    }
    const auto* dir = metric.find("higher_is_better");
    if (dir == nullptr || !dir->is_bool()) {
      return fail("metric '" + name + "' needs a boolean higher_is_better");
    }
  }
  return true;
}

}  // namespace navcpp::harness
