// The shared workload catalog: the 16 distributed programs (six NavP MM
// variants, the SPMD comparators, Jacobi, LU) that the chaos suite, the
// fault suite, and the profiler all run.  Each workload fixes its inputs
// deterministically (seeded random matrices, the heated plate), so any two
// runs of the same name see identical data and differ only in the engine
// they execute on — which is exactly what the suites need to compare
// perturbed runs against references.
//
// Three verification styles hang off the same catalog:
//   * workload_reference(name): a fault-free SimMachine run, cached for the
//     whole process — the fault suite compares bit-identically against it;
//   * check_workload(name, got): the analytic / sequential reference with
//     per-family tolerances — the chaos suite's notion of "still correct";
//   * harness/profile.h runs a workload under trace + metrics scopes.
#pragma once

#include <string>
#include <vector>

#include "machine/engine.h"
#include "net/link_model.h"

namespace navcpp::harness {

/// Names of all 16 program workloads ("mm/phase1d", "jacobi/dataflow", ...).
/// Does NOT include "recovery/ring" — that scenario needs a FaultMachine
/// and lives in fault_suite.cpp.
std::vector<std::string> workload_names();

/// PEs the named workload wants.  Unknown names throw ConfigError.
int workload_pe_count(const std::string& name);

/// Link parameters the named workload models (its config's LAN testbed).
net::LinkParams workload_link(const std::string& name);

/// Run the named workload on `eng` (which must have workload_pe_count(name)
/// PEs) and return its numeric result flattened to a vector: the C matrix
/// for MM, the grid for Jacobi, L then U for LU.  Inputs are regenerated
/// deterministically on every call.
std::vector<double> run_workload(const std::string& name,
                                 machine::Engine& eng);

/// Fault-free reference result on a plain SimMachine, computed once per
/// name (the inputs are fixed, so it is seed-independent) and cached for
/// the lifetime of the process.
const std::vector<double>& workload_reference(const std::string& name);

/// Outcome of checking a workload result against its analytic reference.
struct WorkloadCheck {
  bool ok = false;
  double error = 0.0;      ///< the residual that was compared
  double tolerance = 0.0;  ///< the per-family bound it had to beat
  std::string detail;      ///< human-readable residual summary
};

/// Verify `got` (a run_workload result) against the sequential reference:
/// MM against linalg::multiply (1e-9), Jacobi against jacobi_sequential
/// (1e-12), LU by reconstruction error |A - LU| (1e-9).
WorkloadCheck check_workload(const std::string& name,
                             const std::vector<double>& got);

}  // namespace navcpp::harness
