#include "harness/chaos_suite.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "apps/jacobi.h"
#include "apps/lu.h"
#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "mm/doall_mm.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/summa_mm.h"
#include "mm/summa_mm_1d.h"
#include "support/error.h"

namespace navcpp::harness {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::RealStorage;

// Sizes are the smallest that still exercise every itinerary: the 1-D
// variants need nb divisible by the PE count with >= 2 blocks per PE, the
// 2-D variants need a 2x2 grid, Jacobi needs its interior rows to split
// evenly over the PEs.
constexpr int k1dPes = 3, k1dOrder = 24, k1dBlock = 4;   // nb=6, width=2
constexpr int k2dGrid = 2, k2dOrder = 16, k2dBlock = 4;  // nb=4, 4 PEs
constexpr int kLuPes = 3, kLuOrder = 24, kLuBlock = 4;
constexpr int kJacobiPes = 4, kJacobiRows = 34, kJacobiCols = 16;
constexpr int kJacobiSweeps = 4;

ChaosCaseResult mm_case(const std::string& name,
                        const machine::ChaosConfig& cfg) {
  const bool is_1d = name == "mm/dsc1d" || name == "mm/pipe1d" ||
                     name == "mm/phase1d" || name == "mm/summa1d";
  mm::MmConfig mcfg;
  mcfg.order = is_1d ? k1dOrder : k2dOrder;
  mcfg.block_order = is_1d ? k1dBlock : k2dBlock;
  const int pes = is_1d ? k1dPes : k2dGrid * k2dGrid;

  const Matrix a = Matrix::random(mcfg.order, mcfg.order, 1);
  const Matrix b = Matrix::random(mcfg.order, mcfg.order, 2);
  auto ga = linalg::to_blocks(a, mcfg.block_order);
  auto gb = linalg::to_blocks(b, mcfg.block_order);
  BlockGrid<RealStorage> gc(mcfg.order, mcfg.block_order);

  machine::SimMachine sim(pes, mcfg.testbed.lan);
  machine::ChaosMachine chaos(sim, cfg);

  using mm::Navp1dVariant;
  using mm::Navp2dVariant;
  using mm::StaggerMode;
  if (name == "mm/dsc1d") {
    navp_mm_1d(chaos, mcfg, Navp1dVariant::kDsc, ga, gb, gc);
  } else if (name == "mm/pipe1d") {
    navp_mm_1d(chaos, mcfg, Navp1dVariant::kPipelined, ga, gb, gc);
  } else if (name == "mm/phase1d") {
    navp_mm_1d(chaos, mcfg, Navp1dVariant::kPhaseShifted, ga, gb, gc);
  } else if (name == "mm/summa1d") {
    summa_mm_1d(chaos, mcfg, ga, gb, gc);
  } else if (name == "mm/dsc2d") {
    navp_mm_2d(chaos, mcfg, Navp2dVariant::kDsc, ga, gb, gc);
  } else if (name == "mm/pipe2d") {
    navp_mm_2d(chaos, mcfg, Navp2dVariant::kPipelined, ga, gb, gc);
  } else if (name == "mm/phase2d") {
    navp_mm_2d(chaos, mcfg, Navp2dVariant::kPhaseShifted, ga, gb, gc);
  } else if (name == "mm/gentleman") {
    gentleman_mm(chaos, mcfg, StaggerMode::kDirect, ga, gb, gc);
  } else if (name == "mm/cannon") {
    gentleman_mm(chaos, mcfg, StaggerMode::kStepwise, ga, gb, gc);
  } else if (name == "mm/summa") {
    summa_mm(chaos, mcfg, ga, gb, gc);
  } else if (name == "mm/doall") {
    doall_mm(chaos, mcfg, ga, gb, gc);
  } else {
    throw support::ConfigError("unknown chaos case " + name);
  }

  const double err = linalg::max_abs_diff(linalg::from_blocks(gc),
                                          linalg::multiply(a, b));
  ChaosCaseResult r{name, cfg.seed, err < 1e-9,
                    "max|err| = " + std::to_string(err)};
  return r;
}

ChaosCaseResult jacobi_case(const std::string& name,
                            const machine::ChaosConfig& cfg) {
  apps::JacobiConfig jcfg;
  jcfg.rows = kJacobiRows;
  jcfg.cols = kJacobiCols;
  jcfg.sweeps = kJacobiSweeps;
  const auto variant = name == "jacobi/dsc" ? apps::JacobiVariant::kDsc
                       : name == "jacobi/pipeline"
                           ? apps::JacobiVariant::kPipelined
                           : apps::JacobiVariant::kDataflow;
  const auto initial = apps::JacobiGrid::heated_plate(jcfg.rows, jcfg.cols);

  machine::SimMachine sim(kJacobiPes, jcfg.testbed.lan);
  machine::ChaosMachine chaos(sim, cfg);
  const auto got = apps::jacobi_navp(chaos, jcfg, variant, initial);
  const auto want = apps::jacobi_sequential(initial, jcfg.sweeps);

  double err = 0.0;
  for (std::size_t i = 0; i < want.u.size(); ++i) {
    err = std::max(err, std::abs(got.u[i] - want.u[i]));
  }
  return ChaosCaseResult{name, cfg.seed, err < 1e-12,
                         "max|err| = " + std::to_string(err)};
}

ChaosCaseResult lu_case(const std::string& name,
                        const machine::ChaosConfig& cfg) {
  apps::LuConfig lcfg;
  lcfg.order = kLuOrder;
  lcfg.block_order = kLuBlock;
  const auto variant = name == "lu/dsc" ? apps::LuVariant::kDsc
                                        : apps::LuVariant::kPipelined;
  const Matrix a = apps::diagonally_dominant(lcfg.order, 17);

  machine::SimMachine sim(kLuPes, lcfg.testbed.lan);
  machine::ChaosMachine chaos(sim, cfg);
  const auto [l, u] = apps::lu_navp(chaos, lcfg, variant, a);
  const double err = apps::lu_reconstruction_error(a, l, u);
  return ChaosCaseResult{name, cfg.seed, err < 1e-9,
                         "max|A-LU| = " + std::to_string(err)};
}

}  // namespace

std::vector<std::string> chaos_case_names() {
  return {"mm/dsc1d",  "mm/pipe1d",    "mm/phase1d", "mm/summa1d",
          "mm/dsc2d",  "mm/pipe2d",    "mm/phase2d", "mm/gentleman",
          "mm/cannon", "mm/summa",     "mm/doall",   "jacobi/dsc",
          "jacobi/pipeline", "jacobi/dataflow", "lu/dsc", "lu/pipeline"};
}

ChaosCaseResult run_chaos_case(const std::string& name,
                               const machine::ChaosConfig& cfg) {
  try {
    if (name.rfind("mm/", 0) == 0) return mm_case(name, cfg);
    if (name.rfind("jacobi/", 0) == 0) return jacobi_case(name, cfg);
    if (name.rfind("lu/", 0) == 0) return lu_case(name, cfg);
    throw support::ConfigError("unknown chaos case " + name);
  } catch (const support::ConfigError&) {
    throw;  // bad case name / config: caller error, not a chaos finding
  } catch (const std::exception& e) {
    return ChaosCaseResult{name, cfg.seed, false, e.what()};
  }
}

ChaosSweepReport chaos_sweep(std::uint64_t first_seed, int num_seeds,
                             machine::ChaosConfig base, bool verbose,
                             const std::string& case_filter) {
  std::vector<std::string> cases;
  for (const auto& name : chaos_case_names()) {
    if (case_filter.empty() || name.find(case_filter) != std::string::npos) {
      cases.push_back(name);
    }
  }
  NAVCPP_CHECK(!cases.empty(),
               "no chaos case matches filter '" + case_filter + "'");

  ChaosSweepReport report;
  for (int i = 0; i < num_seeds; ++i) {
    base.seed = first_seed + static_cast<std::uint64_t>(i);
    for (const auto& name : cases) {
      const ChaosCaseResult r = run_chaos_case(name, base);
      ++report.cases_run;
      if (!r.ok) {
        report.failed = true;
        report.first_failure = r;
        report.seeds_run = i + 1;
        return report;
      }
    }
    if (verbose) {
      std::printf("seed %llu: %zu case(s) ok\n",
                  static_cast<unsigned long long>(base.seed), cases.size());
    }
  }
  report.seeds_run = num_seeds;
  return report;
}

}  // namespace navcpp::harness
