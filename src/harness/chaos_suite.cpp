#include "harness/chaos_suite.h"

#include <cstdio>
#include <utility>

#include "harness/workloads.h"
#include "machine/sim_machine.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace navcpp::harness {
namespace {

ChaosCaseResult chaos_case(const std::string& name,
                           const machine::ChaosConfig& cfg) {
  machine::SimMachine sim(workload_pe_count(name), workload_link(name));
  machine::ChaosMachine chaos(sim, cfg);
  // Ambient registry: the Runtime the program constructs internally picks
  // it up and instruments the whole stack (runtime, chaos layer, sim), so
  // a failing (case, seed) pair can be dumped with its full run profile.
  obs::Registry registry;
  obs::MetricsScope metrics_scope(&registry);
  std::vector<double> got;
  try {
    got = run_workload(name, chaos);
  } catch (const support::ConfigError&) {
    throw;  // unknown workload: caller error, not a chaos finding
  } catch (const std::exception& e) {
    // Keep the partial run profile: counters up to the throw are exactly
    // what a deadlock/failure report needs.
    ChaosCaseResult r{name, cfg.seed, false, e.what()};
    r.metrics = registry.snapshot().to_string();
    return r;
  }
  const WorkloadCheck check = check_workload(name, got);
  ChaosCaseResult r{name, cfg.seed, check.ok, check.detail};
  r.metrics = registry.snapshot().to_string();
  return r;
}

}  // namespace

std::vector<std::string> chaos_case_names() { return workload_names(); }

ChaosCaseResult run_chaos_case(const std::string& name,
                               const machine::ChaosConfig& cfg) {
  try {
    return chaos_case(name, cfg);
  } catch (const support::ConfigError&) {
    throw;  // bad case name / config: caller error, not a chaos finding
  } catch (const std::exception& e) {
    return ChaosCaseResult{name, cfg.seed, false, e.what()};
  }
}

ChaosSweepReport chaos_sweep(std::uint64_t first_seed, int num_seeds,
                             machine::ChaosConfig base, bool verbose,
                             const std::string& case_filter) {
  std::vector<std::string> cases;
  for (const auto& name : chaos_case_names()) {
    if (case_filter.empty() || name.find(case_filter) != std::string::npos) {
      cases.push_back(name);
    }
  }
  NAVCPP_CHECK(!cases.empty(),
               "no chaos case matches filter '" + case_filter + "'");

  ChaosSweepReport report;
  for (int i = 0; i < num_seeds; ++i) {
    base.seed = first_seed + static_cast<std::uint64_t>(i);
    for (const auto& name : cases) {
      const ChaosCaseResult r = run_chaos_case(name, base);
      ++report.cases_run;
      if (!r.ok) {
        report.failed = true;
        report.first_failure = r;
        report.seeds_run = i + 1;
        return report;
      }
    }
    if (verbose) {
      std::printf("seed %llu: %zu case(s) ok\n",
                  static_cast<unsigned long long>(base.seed), cases.size());
    }
  }
  report.seeds_run = num_seeds;
  return report;
}

}  // namespace navcpp::harness
