// The chaos workload suite: every distributed program in the repo (the six
// NavP MM variants, the SPMD comparators, Jacobi, LU) run at a small size
// with real data on a ChaosMachine-wrapped SimMachine and verified against
// a sequential reference.
//
// Because the perturbations are schedule-legal and the sim backend is
// deterministic, a failing (case, seed) pair is a real ordering bug and is
// reproducible from the seed alone:
//
//   navcpp_cli chaos --seed <s>            # replay one seed, all cases
//   navcpp_cli chaos --seed <s> --case mm/phase2d
//
// Used by tools/chaos_sweep.cpp, the `navcpp_cli chaos` subcommand, and the
// chaos tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/chaos_machine.h"

namespace navcpp::harness {

/// Names of all chaos workloads ("mm/phase1d", "jacobi/dataflow", ...).
std::vector<std::string> chaos_case_names();

struct ChaosCaseResult {
  std::string name;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string detail;  ///< verification residual, or the failure text
  /// Full metrics snapshot of the run (obs::Snapshot::to_string format),
  /// so a failing case can be dumped with its profile, not just the seed.
  /// Empty when the case threw before the run started.
  std::string metrics;
};

/// Run one workload under chaos config `cfg` (seeded by `cfg.seed`) and
/// verify its result.  Unknown names throw ConfigError.
ChaosCaseResult run_chaos_case(const std::string& name,
                               const machine::ChaosConfig& cfg);

struct ChaosSweepReport {
  int seeds_run = 0;
  int cases_run = 0;
  bool failed = false;
  ChaosCaseResult first_failure;  ///< valid when failed
};

/// Run every case whose name contains `case_filter` (empty = all) across
/// `num_seeds` consecutive seeds starting at `first_seed`.  Stops at the
/// first failure so its seed can be replayed.  `verbose` prints per-seed
/// progress lines to stdout.
ChaosSweepReport chaos_sweep(std::uint64_t first_seed, int num_seeds,
                             machine::ChaosConfig base, bool verbose,
                             const std::string& case_filter = "");

}  // namespace navcpp::harness
