// Run-wide profiling of one workload on the deterministic sim backend:
// trace + metrics scopes wrap a run_workload() call, and the result bundles
// a Chrome trace-event JSON (chrome://tracing / Perfetto), a per-PE
// compute / comm / wait / idle table in the style of the paper's Tables
// 3-4, and the full metrics snapshot.  Everything is derived from virtual
// time on a SimMachine, so two same-configuration runs produce
// byte-identical JSON and tables.
//
// Used by `navcpp_cli profile` and the obs tests.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace navcpp::harness {

struct ProfileResult {
  std::string program;
  int pe_count = 0;
  double finish_time = 0.0;  ///< virtual seconds at drain
  bool ok = false;           ///< result verified against the reference
  std::string detail;        ///< verification residual summary

  std::string trace_json;  ///< Chrome trace-event JSON of the run
  std::string table;       ///< per-PE compute/comm/wait/idle breakdown
  obs::Snapshot snapshot;  ///< full metrics snapshot of the run

  /// Mean per-PE compute utilization (the "all" row of `table` as a
  /// number); deterministic on the sim backend, so the bench trajectory
  /// uses it as a cross-host anchor metric.
  double mean_utilization = 0.0;

  // NetworkModel admission counts, for cross-checking the exported
  // metrics: bytes_match certifies snapshot["net.bytes"] == network_bytes.
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  bool bytes_match = false;
};

/// Profile the named workload (see harness/workloads.h) on a fresh
/// SimMachine.  Unknown names throw ConfigError.
ProfileResult profile_workload(const std::string& name);

}  // namespace navcpp::harness
