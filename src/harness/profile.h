// Run-wide profiling of one workload: trace + metrics scopes wrap a
// run_workload() call, and the result bundles a Chrome trace-event JSON
// (chrome://tracing / Perfetto), a per-PE compute / comm / wait / idle
// table in the style of the paper's Tables 3-4, and the full metrics
// snapshot.
//
// Two backends:
//   * profile_workload() — the deterministic sim backend.  Everything is
//     derived from virtual time on a SimMachine, so two
//     same-configuration runs produce byte-identical JSON and tables.
//   * profile_workload_proc() — the process-per-PE backend.  The trace is
//     the merged cross-process view (obs/proc_trace.h: one lane per worker
//     process, hop flow arrows, clock-corrected timestamps) and the table
//     columns come from worker-side wall-clock measurements shipped over
//     the wire, so numbers vary run to run.
//
// Used by `navcpp_cli profile` / `navcpp_cli run --trace` and the obs
// tests.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace navcpp::harness {

struct ProfileResult {
  std::string program;
  std::string backend = "sim";  ///< "sim" or "proc"
  int pe_count = 0;
  double finish_time = 0.0;  ///< virtual (sim) / wall (proc) seconds
  bool ok = false;           ///< result verified against the reference
  std::string detail;        ///< verification residual summary

  std::string trace_json;  ///< Chrome trace-event JSON of the run
  std::string table;       ///< per-PE compute/comm/wait/idle breakdown
  obs::Snapshot snapshot;  ///< full metrics snapshot of the run

  /// Mean per-PE busy-time utilization: busy_time(pe) / finish_time
  /// averaged over PEs (the "util" column of `table`).  Busy time is all
  /// engine-charged work — traced compute plus protocol work — so the
  /// number reflects how loaded the PEs actually were; deterministic on
  /// the sim backend, so the bench trajectory uses it as a cross-host
  /// anchor metric (obs.mean_pe_utilization).
  double mean_utilization = 0.0;

  // NetworkModel admission counts, for cross-checking the exported
  // metrics: bytes_match certifies snapshot["net.bytes"] == network_bytes.
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  bool bytes_match = false;
};

/// Profile the named workload (see harness/workloads.h) on a fresh
/// SimMachine.  Unknown names throw ConfigError.
ProfileResult profile_workload(const std::string& name);

/// Profile the named workload on a fresh ProcMachine with tracing and
/// periodic stats deltas enabled.  compute(s) is parent-side closure time
/// per PE; comm(s)/wait(s)/util come from the workers' own measurements
/// (serialize+verify, poll-block, busy fraction).  Unknown names throw
/// ConfigError; worker spawn/transport failures surface as ProcError.
ProfileResult profile_workload_proc(const std::string& name);

}  // namespace navcpp::harness
