#include "harness/profile.h"

#include <algorithm>

#include "harness/text_table.h"
#include "harness/workloads.h"
#include "machine/proc_machine.h"
#include "machine/sim_machine.h"
#include "navp/trace.h"
#include "obs/chrome_trace.h"
#include "obs/proc_trace.h"

namespace navcpp::harness {

ProfileResult profile_workload(const std::string& name) {
  ProfileResult out;
  out.program = name;
  out.pe_count = workload_pe_count(name);

  machine::SimMachine sim(out.pe_count, workload_link(name));
  navp::TraceRecorder trace;
  obs::Registry registry;
  // Ambient scopes: the Runtime each program constructs internally picks
  // both up in its constructor (trace.h / metrics.h), so no runner
  // signature needs a recorder or registry parameter.
  navp::TraceScope trace_scope(&trace);
  obs::MetricsScope metrics_scope(&registry);

  const std::vector<double> got = run_workload(name, sim);
  const WorkloadCheck check = check_workload(name, got);
  out.ok = check.ok;
  out.detail = check.detail;

  out.finish_time = sim.finish_time();
  out.network_messages = sim.network().message_count();
  out.network_bytes = sim.network().byte_count();
  out.snapshot = registry.snapshot();
  out.bytes_match = out.snapshot.counter_or("net.bytes") == out.network_bytes;

  const navp::TraceSnapshot snap = trace.snapshot();
  obs::ChromeTraceOptions opts;
  opts.process_name = "navcpp " + name;
  opts.pe_count = out.pe_count;
  out.trace_json =
      obs::chrome_trace_json(snap.spans, snap.hops, &out.snapshot, opts);

  // Per-PE breakdown in the style of the paper's Tables 3-4.  Compute and
  // wait come from the trace spans; "comm" is the busy time the engine
  // charged to the PE beyond traced compute (message packing/unpacking,
  // protocol work); idle is whatever remains until the run drained.
  const navp::TraceStats stats = navp::summarize(snap, out.pe_count);
  TextTable table(
      {"PE", "compute(s)", "comm(s)", "wait(s)", "idle(s)", "util"});
  double total_compute = 0.0, total_comm = 0.0, total_wait = 0.0;
  double total_idle = 0.0, util_sum = 0.0;
  for (int pe = 0; pe < out.pe_count; ++pe) {
    const double compute = stats.compute_by_pe[static_cast<std::size_t>(pe)];
    const double wait = stats.wait_by_pe[static_cast<std::size_t>(pe)];
    const double busy = sim.busy_time(pe);
    const double comm = std::max(0.0, busy - compute);
    const double idle = std::max(0.0, out.finish_time - busy - wait);
    // Utilization is the PE's busy fraction of the run, not just its
    // traced-compute fraction: protocol work (packing, checksums,
    // scheduling) keeps a PE occupied exactly like compute does, and the
    // fine-grained programs here spend most of their busy time there —
    // the compute-only ratio reads as idle-machine noise (~0.005) on a
    // run whose PEs are in fact loaded.
    const double util = out.finish_time > 0.0 ? busy / out.finish_time : 0.0;
    total_compute += compute;
    total_comm += comm;
    total_wait += wait;
    total_idle += idle;
    util_sum += util;
    table.add_row({std::to_string(pe), TextTable::num(compute, 6),
                   TextTable::num(comm, 6), TextTable::num(wait, 6),
                   TextTable::num(idle, 6), TextTable::num(util, 3)});
  }
  out.mean_utilization =
      out.pe_count > 0 ? util_sum / out.pe_count : 0.0;
  table.add_row({"all", TextTable::num(total_compute, 6),
                 TextTable::num(total_comm, 6), TextTable::num(total_wait, 6),
                 TextTable::num(total_idle, 6),
                 TextTable::num(out.mean_utilization, 3)});
  out.table = table.str();
  return out;
}

ProfileResult profile_workload_proc(const std::string& name) {
  ProfileResult out;
  out.program = name;
  out.backend = "proc";
  out.pe_count = workload_pe_count(name);

  machine::ProcMachine::Options mopts;
  mopts.trace = true;
  machine::ProcMachine machine(out.pe_count, mopts);
  navp::TraceRecorder trace;
  obs::Registry registry;
  navp::TraceScope trace_scope(&trace);
  obs::MetricsScope metrics_scope(&registry);
  machine.set_metrics(&registry);

  const std::vector<double> got = run_workload(name, machine);
  const WorkloadCheck check = check_workload(name, got);
  out.ok = check.ok;
  out.detail = check.detail;

  out.finish_time = machine.finish_time();
  out.network_messages = machine.transmitted_messages();
  out.network_bytes = machine.transmitted_bytes();
  out.snapshot = registry.snapshot();
  out.bytes_match = out.snapshot.counter_or("net.bytes") == out.network_bytes;

  const navp::TraceSnapshot snap = trace.snapshot();
  obs::ProcTraceOptions topts;
  topts.process_name = "navcpp " + name;
  topts.pe_count = out.pe_count;
  topts.parent_epoch_ns = machine.run_epoch_ns();
  out.trace_json = obs::proc_trace_json(
      snap.spans, snap.hops, machine.worker_lanes(),
      machine.recovery_timelines(), &out.snapshot, topts);

  // Per-PE breakdown from worker-side wall-clock measurements (shipped in
  // the quiesce ack): compute is the parent's closure time for the PE
  // (the parent executes actions — coroutine frames cannot cross the
  // process boundary), comm is the worker's serialize + verify time, wait
  // its poll-block time, util its busy fraction of the wall run.
  TextTable table(
      {"PE", "compute(s)", "comm(s)", "wait(s)", "idle(s)", "util"});
  double total_compute = 0.0, total_comm = 0.0, total_wait = 0.0;
  double total_idle = 0.0, util_sum = 0.0;
  for (int pe = 0; pe < out.pe_count; ++pe) {
    const net::WireWorkerStats& ws = machine.worker_stats(pe);
    const double compute = machine.action_seconds(pe);
    const double comm =
        static_cast<double>(ws.serialize_ns + ws.verify_ns) / 1e9;
    const double wait = static_cast<double>(ws.idle_ns) / 1e9;
    const double busy = static_cast<double>(ws.busy_ns) / 1e9;
    const double idle = std::max(0.0, out.finish_time - busy - wait);
    const double util = out.finish_time > 0.0 ? busy / out.finish_time : 0.0;
    total_compute += compute;
    total_comm += comm;
    total_wait += wait;
    total_idle += idle;
    util_sum += util;
    table.add_row({std::to_string(pe), TextTable::num(compute, 6),
                   TextTable::num(comm, 6), TextTable::num(wait, 6),
                   TextTable::num(idle, 6), TextTable::num(util, 3)});
  }
  out.mean_utilization = out.pe_count > 0 ? util_sum / out.pe_count : 0.0;
  table.add_row({"all", TextTable::num(total_compute, 6),
                 TextTable::num(total_comm, 6), TextTable::num(total_wait, 6),
                 TextTable::num(total_idle, 6),
                 TextTable::num(out.mean_utilization, 3)});
  out.table = table.str();
  return out;
}

}  // namespace navcpp::harness
