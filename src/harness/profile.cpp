#include "harness/profile.h"

#include <algorithm>

#include "harness/text_table.h"
#include "harness/workloads.h"
#include "machine/sim_machine.h"
#include "navp/trace.h"
#include "obs/chrome_trace.h"

namespace navcpp::harness {

ProfileResult profile_workload(const std::string& name) {
  ProfileResult out;
  out.program = name;
  out.pe_count = workload_pe_count(name);

  machine::SimMachine sim(out.pe_count, workload_link(name));
  navp::TraceRecorder trace;
  obs::Registry registry;
  // Ambient scopes: the Runtime each program constructs internally picks
  // both up in its constructor (trace.h / metrics.h), so no runner
  // signature needs a recorder or registry parameter.
  navp::TraceScope trace_scope(&trace);
  obs::MetricsScope metrics_scope(&registry);

  const std::vector<double> got = run_workload(name, sim);
  const WorkloadCheck check = check_workload(name, got);
  out.ok = check.ok;
  out.detail = check.detail;

  out.finish_time = sim.finish_time();
  out.network_messages = sim.network().message_count();
  out.network_bytes = sim.network().byte_count();
  out.snapshot = registry.snapshot();
  out.bytes_match = out.snapshot.counter_or("net.bytes") == out.network_bytes;

  const navp::TraceSnapshot snap = trace.snapshot();
  obs::ChromeTraceOptions opts;
  opts.process_name = "navcpp " + name;
  opts.pe_count = out.pe_count;
  out.trace_json =
      obs::chrome_trace_json(snap.spans, snap.hops, &out.snapshot, opts);

  // Per-PE breakdown in the style of the paper's Tables 3-4.  Compute and
  // wait come from the trace spans; "comm" is the busy time the engine
  // charged to the PE beyond traced compute (message packing/unpacking,
  // protocol work); idle is whatever remains until the run drained.
  const navp::TraceStats stats = navp::summarize(snap, out.pe_count);
  TextTable table(
      {"PE", "compute(s)", "comm(s)", "wait(s)", "idle(s)", "util"});
  double total_compute = 0.0, total_comm = 0.0, total_wait = 0.0;
  double total_idle = 0.0;
  for (int pe = 0; pe < out.pe_count; ++pe) {
    const double compute = stats.compute_by_pe[static_cast<std::size_t>(pe)];
    const double wait = stats.wait_by_pe[static_cast<std::size_t>(pe)];
    const double busy = sim.busy_time(pe);
    const double comm = std::max(0.0, busy - compute);
    const double idle = std::max(0.0, out.finish_time - busy - wait);
    const double util =
        out.finish_time > 0.0 ? compute / out.finish_time : 0.0;
    total_compute += compute;
    total_comm += comm;
    total_wait += wait;
    total_idle += idle;
    table.add_row({std::to_string(pe), TextTable::num(compute, 6),
                   TextTable::num(comm, 6), TextTable::num(wait, 6),
                   TextTable::num(idle, 6), TextTable::num(util, 3)});
  }
  out.mean_utilization = navp::mean_utilization(stats);
  table.add_row({"all", TextTable::num(total_compute, 6),
                 TextTable::num(total_comm, 6), TextTable::num(total_wait, 6),
                 TextTable::num(total_idle, 6),
                 TextTable::num(out.mean_utilization, 3)});
  out.table = table.str();
  return out;
}

}  // namespace navcpp::harness
