#include "harness/fault_suite.h"

#include <stdlib.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <utility>

#include "harness/workloads.h"
#include "machine/proc_machine.h"
#include "machine/sim_machine.h"
#include "navp/checkpoint.h"
#include "navp/runtime.h"
#include "obs/metrics.h"
#include "support/bytebuffer.h"
#include "support/error.h"

namespace navcpp::harness {
namespace {

/// Vary the protocol's jitter stream with the fault seed so a sweep
/// explores different retransmit timings, not just different fault draws.
net::ReliableConfig reliable_for_seed(std::uint64_t seed) {
  net::ReliableConfig rel;
  rel.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  return rel;
}

FaultCaseResult program_case(const std::string& name,
                             const machine::FaultPlan& plan,
                             FaultBackend backend) {
  // Message faults only: the programs hold no recoverable agents, so a
  // planned crash would (correctly) fail the run rather than test anything.
  machine::FaultPlan p = plan;
  p.crashes.clear();

  const std::vector<double>& want = workload_reference(name);

  // The fault layer sits on top of either backend unchanged: on proc, every
  // frame the injector perturbs has genuinely crossed a socket.
  std::unique_ptr<machine::Engine> base;
  if (backend == FaultBackend::kProc) {
    base = std::make_unique<machine::ProcMachine>(workload_pe_count(name));
  } else {
    base = std::make_unique<machine::SimMachine>(workload_pe_count(name),
                                                 workload_link(name));
  }
  machine::FaultMachine fault(*base, p, reliable_for_seed(p.seed));
  // Ambient registry: the Runtime the program constructs internally picks
  // it up and instruments the whole stack (runtime, fault layer, reliable
  // channel, sim), so a failure can be dumped with its full run profile.
  obs::Registry registry;
  obs::MetricsScope metrics_scope(&registry);
  FaultCaseResult r{name, plan.seed, false, ""};
  std::vector<double> got;
  try {
    got = run_workload(name, fault);
  } catch (const std::exception& e) {
    // A thrown run (DeliveryError, deadlock, ...) still carries its partial
    // run profile: the counters up to the throw are exactly what a failure
    // report needs.
    r.detail = e.what();
    r.metrics = registry.snapshot().to_string();
    r.frames_dropped = fault.frames_dropped();
    r.frames_duplicated = fault.frames_duplicated();
    r.frames_corrupted = fault.frames_corrupted();
    return r;
  }
  r.metrics = registry.snapshot().to_string();
  r.frames_dropped = fault.frames_dropped();
  r.frames_duplicated = fault.frames_duplicated();
  r.frames_corrupted = fault.frames_corrupted();

  // Bit-identical or bust: the reliability layer must mask faults
  // completely, so even the last ulp has to match the fault-free run.
  std::size_t mismatches = 0;
  std::size_t first_bad = 0;
  if (got.size() != want.size()) {
    r.detail = "result size " + std::to_string(got.size()) + " != " +
               std::to_string(want.size());
    return r;
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i] != want[i]) {
      if (mismatches == 0) first_bad = i;
      ++mismatches;
    }
  }
  r.ok = mismatches == 0;
  r.detail = r.ok ? "bit-identical to fault-free run"
                  : std::to_string(mismatches) + " element(s) differ, first at [" +
                        std::to_string(first_bad) + "]";
  r.detail += " (dropped=" + std::to_string(r.frames_dropped) +
              " duplicated=" + std::to_string(r.frames_duplicated) +
              " corrupted=" + std::to_string(r.frames_corrupted) + ")";
  return r;
}

// ---------------------------------------------------------------------------
// recovery/ring: crash + checkpoint-restart.
//
// A recoverable "collector" agent makes kRingRounds laps over kRingPes PEs,
// adding each PE's fixed RingNode::contribution to an accumulator it
// carries.  A stationary recoverable "clerk" on every PE acknowledges each
// visit.  Mid-run, one PE fail-stops (killing its resident agents and
// volatile state) and later restarts from its last checkpoint.
//
// The exactly-once discipline under test (see navp/checkpoint.h):
//   * the collector commits its state and checkpoints the PE at every
//     hop-arrival boundary, BEFORE the visit's side effects — recovery
//     replays the visit from the top;
//   * per-visit work is idempotent under that replay (the accumulator is
//     recomputed from the committed pre-visit value);
//   * shutdown is a durable node flag set before the checkpoint, re-checked
//     by clerks on both sides of their event wait, so a clerk re-created
//     after the signal vanished still terminates.
//
// The final sum must equal kRingRounds * sum(contributions) EXACTLY.

constexpr int kRingPes = 4;
constexpr int kRingRounds = 32;
constexpr std::size_t kRingHopBytes = 64;
constexpr double kRingVisitCost = 2.5e-4;  // stretches the run past the crash

const navp::EventKey kArrived{1, 0, 0};
const navp::EventKey kResume{2, 0, 0};

struct RingNode {
  double contribution = 0.0;
  std::int64_t served = 0;
  bool shutting_down = false;
  double result = 0.0;
};

void commit_collector(navp::Ctx& ctx, int step, double acc) {
  support::ByteBuffer st;
  st.put<std::int32_t>(step);
  st.put<double>(acc);
  ctx.commit(st);
}

/// Steps 0 .. rounds*n-1 are sum visits (step % n is the PE); steps
/// rounds*n .. rounds*n+n-1 are the shutdown lap; the last step deposits the
/// result on PE 0.  Starting `step`/`acc` come from the committed state, so
/// the same function body serves first launch and every recovery.
navp::Mission collector_mission(navp::Ctx ctx, navp::Checkpointer* cp,
                                int rounds, int step, double acc) {
  const int n = ctx.pe_count();
  const int total = rounds * n;
  while (step < total) {
    const int target = step % n;
    if (ctx.here() != target) co_await ctx.hop(target, kRingHopBytes);
    // Arrival boundary: make this visit the recovery point, then do the
    // (replay-idempotent) visit work.
    commit_collector(ctx, step, acc);
    cp->take(ctx.here());
    ctx.compute(kRingVisitCost, "ring-visit");
    acc += ctx.node<RingNode>().contribution;
    ctx.signal_event(kArrived);
    co_await ctx.wait_event(kResume);
    ++step;
  }
  while (step < total + n) {
    const int target = step - total;
    if (ctx.here() != target) co_await ctx.hop(target, kRingHopBytes);
    commit_collector(ctx, step, acc);
    // Durable flag BEFORE the checkpoint: a clerk re-created after this
    // point must see shutdown without needing the (volatile) signal.
    ctx.node<RingNode>().shutting_down = true;
    cp->take(ctx.here());
    ctx.signal_event(kArrived);
    ++step;
  }
  if (ctx.here() != 0) co_await ctx.hop(0, kRingHopBytes);
  commit_collector(ctx, step, acc);
  ctx.node<RingNode>().result = acc;
  cp->take(0);
}

navp::Mission clerk_mission(navp::Ctx ctx) {
  // Check the durable flag on BOTH sides of the wait: a clerk restored
  // from a post-shutdown checkpoint must exit without a signal, and a
  // clerk woken by the shutdown lap must not wait for another visit.
  while (!ctx.node<RingNode>().shutting_down) {
    co_await ctx.wait_event(kArrived);
    if (ctx.node<RingNode>().shutting_down) break;
    ctx.node<RingNode>().served += 1;
    ctx.signal_event(kResume);
  }
}

/// Scratch directory for the proc backend's per-PE checkpoint spill files;
/// removed (with its contents) when the case finishes.
struct ScopedCheckpointDir {
  std::string path;
  ScopedCheckpointDir() {
    char tmpl[] = "/tmp/navcpp-ring-ckpt-XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~ScopedCheckpointDir() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

FaultCaseResult recovery_ring_case(const machine::FaultPlan& base,
                                   FaultBackend backend) {
  machine::FaultPlan plan = base;
  if (plan.crashes.empty()) {
    if (backend == FaultBackend::kProc) {
      // Real-time backend: anchor the crashes to the machine's cumulative
      // transmit count — a deterministic mid-run position no matter how
      // fast the host is — and take TWO of them, so the run survives more
      // than one real SIGKILL.  Restarts are short wall-clock timers.
      machine::CrashSpec first;
      first.pe = 2;
      first.trigger = machine::CrashSpec::Trigger::kHopCount;
      first.after_hops = 40 + (plan.seed % 7) * 10;
      first.restart_after = 0.05;
      plan.crashes.push_back(first);
      machine::CrashSpec second;
      second.pe = 1;
      second.trigger = machine::CrashSpec::Trigger::kHopCount;
      second.after_hops = 150 + (plan.seed % 5) * 20;
      second.restart_after = 0.05;
      plan.crashes.push_back(second);
    } else {
      // Seed-derived schedule: crash PE 2 somewhere in the first half of
      // the run, restart it 4ms (virtual) later.
      machine::CrashSpec spec;
      spec.pe = 2;
      spec.at = 4e-3 + static_cast<double>(plan.seed % 5) * 2e-3;
      spec.restart_after = 4e-3;
      plan.crashes.push_back(spec);
    }
  }

  ScopedCheckpointDir ckpt_dir;
  std::unique_ptr<machine::SimMachine> sim;
  std::unique_ptr<machine::ProcMachine> proc;
  machine::Engine* base_engine = nullptr;
  if (backend == FaultBackend::kProc) {
    machine::ProcMachine::Options opts;
    opts.recovery.enabled = true;
    opts.recovery.max_respawns = 8;
    opts.checkpoint_dir = ckpt_dir.path;
    proc = std::make_unique<machine::ProcMachine>(kRingPes, opts);
    base_engine = proc.get();
  } else {
    sim = std::make_unique<machine::SimMachine>(kRingPes);
    base_engine = sim.get();
  }
  machine::FaultMachine fault(*base_engine, plan,
                              reliable_for_seed(plan.seed));
  obs::Registry registry;
  obs::MetricsScope metrics_scope(&registry);
  navp::Runtime rt(fault);
  navp::Checkpointer cp(rt);
  std::unique_ptr<navp::ProcCheckpointStore> store;
  if (proc != nullptr) {
    // Snapshots round-trip through bytes over the wire: take() ships them
    // to the worker (and its spill file), restore() fetches them back.
    store = std::make_unique<navp::ProcCheckpointStore>(*proc);
    cp.set_store(store.get());
  }
  cp.set_node_state_hooks(
      [&rt](int pe, support::ByteBuffer& out) {
        const RingNode& node = rt.node_store(pe).get<RingNode>();
        out.put<double>(node.contribution);
        out.put<std::int64_t>(node.served);
        out.put<std::uint8_t>(node.shutting_down ? 1 : 0);
        out.put<double>(node.result);
      },
      [&rt](int pe, support::ByteBuffer& in) {
        RingNode& node = rt.node_store(pe).get<RingNode>();
        node.contribution = in.get<double>();
        node.served = in.get<std::int64_t>();
        node.shutting_down = in.get<std::uint8_t>() != 0;
        node.result = in.get<double>();
      });
  if (proc != nullptr) {
    machine::ProcMachine* pm = proc.get();
    fault.set_crash_handler([&rt, pm](int pe) {
      rt.crash_pe(pe);
      // Make the fail-stop REAL: SIGKILL the PE's worker process.  The
      // machine's supervisor respawns it transparently; the modeled
      // restart timer below then restores the application state.
      pm->kill_worker(pe);
    });
  } else {
    fault.set_crash_handler([&rt](int pe) { rt.crash_pe(pe); });
  }
  fault.set_restart_handler([&cp](int pe) { cp.restore(pe); });

  double expected = 0.0;
  for (int p = 0; p < kRingPes; ++p) {
    // Halves are exact in binary, so the expected sum is too.
    rt.node_store(p).emplace<RingNode>().contribution = 0.5 + p;
    expected += 0.5 + p;
  }
  expected *= kRingRounds;

  rt.register_recovery_factory(
      "collector", [cp = &cp](navp::Ctx c, support::ByteBuffer st) {
        const int step = static_cast<int>(st.get<std::int32_t>());
        const double acc = st.get<double>();
        return collector_mission(c, cp, kRingRounds, step, acc);
      });
  rt.register_recovery_factory(
      "clerk",
      [](navp::Ctx c, support::ByteBuffer) { return clerk_mission(c); });

  support::ByteBuffer init;
  init.put<std::int32_t>(0);
  init.put<double>(0.0);
  rt.inject_recoverable(0, "collector", "collector", init);
  for (int p = 0; p < kRingPes; ++p) {
    rt.inject_recoverable(p, "clerk-" + std::to_string(p), "clerk",
                          support::ByteBuffer{});
  }
  // Pre-run checkpoints so a crash before the first visit can restore.
  for (int p = 0; p < kRingPes; ++p) cp.take(p);

  FaultCaseResult r{"recovery/ring", plan.seed, false, ""};
  try {
    rt.run();
  } catch (const std::exception& e) {
    r.detail = e.what();
    r.metrics = registry.snapshot().to_string();
    r.frames_dropped = fault.frames_dropped();
    r.frames_duplicated = fault.frames_duplicated();
    r.frames_corrupted = fault.frames_corrupted();
    r.crashes_fired = fault.crashes_fired();
    return r;
  }
  r.metrics = registry.snapshot().to_string();
  r.frames_dropped = fault.frames_dropped();
  r.frames_duplicated = fault.frames_duplicated();
  r.frames_corrupted = fault.frames_corrupted();
  r.crashes_fired = fault.crashes_fired();
  r.agents_recovered = rt.agents_recovered();

  const double got = rt.node_store(0).get<RingNode>().result;
  bool served_ok = true;
  for (int p = 0; p < kRingPes; ++p) {
    served_ok = served_ok && rt.node_store(p).get<RingNode>().served > 0;
  }
  bool crash_exercised =
      plan.crashes.empty() ||
      (r.crashes_fired >= plan.crashes.size() && r.agents_recovered >= 1);
  if (proc != nullptr && !plan.crashes.empty()) {
    // The crashes must have been REAL: worker processes died (SIGKILL) and
    // the supervisor respawned each of them.
    crash_exercised = crash_exercised &&
                      proc->worker_deaths() >= plan.crashes.size() &&
                      proc->total_respawns() >= plan.crashes.size();
  }
  r.ok = got == expected && served_ok && crash_exercised;
  r.detail = "sum=" + std::to_string(got) + " expected=" +
             std::to_string(expected) + " crashes=" +
             std::to_string(r.crashes_fired) + " recovered=" +
             std::to_string(r.agents_recovered) + " killed=" +
             std::to_string(rt.agents_killed());
  if (proc != nullptr) {
    r.detail += " worker_deaths=" + std::to_string(proc->worker_deaths()) +
                " respawns=" + std::to_string(proc->total_respawns());
  }
  return r;
}

}  // namespace

std::vector<std::string> fault_case_names() {
  std::vector<std::string> names = workload_names();
  names.push_back("recovery/ring");
  return names;
}

FaultCaseResult run_fault_case(const std::string& name,
                               const machine::FaultPlan& plan,
                               FaultBackend backend) {
  try {
    if (name == "recovery/ring") {
      return recovery_ring_case(plan, backend);
    }
    return program_case(name, plan, backend);
  } catch (const support::ConfigError&) {
    throw;  // bad case name / plan: caller error, not a fault finding
  } catch (const std::exception& e) {
    return FaultCaseResult{name, plan.seed, false, e.what()};
  }
}

FaultSweepReport fault_sweep(std::uint64_t first_seed, int num_seeds,
                             machine::FaultPlan base, bool verbose,
                             const std::string& case_filter,
                             FaultBackend backend) {
  std::vector<std::string> cases;
  for (const auto& name : fault_case_names()) {
    if (case_filter.empty() || name.find(case_filter) != std::string::npos) {
      cases.push_back(name);
    }
  }
  NAVCPP_CHECK(!cases.empty(),
               "no fault case matches filter '" + case_filter + "'");

  FaultSweepReport report;
  for (int i = 0; i < num_seeds; ++i) {
    base.seed = first_seed + static_cast<std::uint64_t>(i);
    for (const auto& name : cases) {
      const FaultCaseResult r = run_fault_case(name, base, backend);
      ++report.cases_run;
      if (!r.ok) {
        report.failed = true;
        report.first_failure = r;
        report.seeds_run = i + 1;
        return report;
      }
    }
    if (verbose) {
      std::printf("seed %llu: %zu case(s) ok\n",
                  static_cast<unsigned long long>(base.seed), cases.size());
    }
  }
  report.seeds_run = num_seeds;
  return report;
}

}  // namespace navcpp::harness
