// The fault workload suite: every distributed program in the repo run on a
// FaultMachine-wrapped SimMachine with message faults (drop / duplicate /
// corrupt) injected at frame granularity, and verified BIT-IDENTICAL to a
// fault-free run of the same program.  The reliability layer
// (net::ReliableChannel, auto-installed by navp::Runtime) must mask every
// injected fault completely — any residual difference is a protocol bug.
//
// On top of the 16 program cases, "recovery/ring" exercises the crash half
// of the fault model: a recoverable collector agent ring-sums node
// contributions across 4 PEs while one PE fail-stops mid-run and restarts
// from its last checkpoint (navp/checkpoint.h).  The scenario demonstrates
// the commit-at-arrival / idempotent-replay discipline and verifies the
// final sum exactly.
//
// Like the chaos suite, everything is deterministic in (case, FaultPlan
// seed), so a failure is replayable from the seed alone:
//
//   navcpp_cli fault --seed <s>              # replay one seed, all cases
//   navcpp_cli fault --seed <s> --case mm/phase2d
//
// Used by tools/fault_sweep.cpp, the `navcpp_cli fault` subcommand, and the
// fault tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/fault_machine.h"

namespace navcpp::harness {

/// Names of all fault workloads: the 16 program cases ("mm/phase1d",
/// "jacobi/dataflow", ...) plus "recovery/ring".
std::vector<std::string> fault_case_names();

struct FaultCaseResult {
  std::string name;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string detail;  ///< comparison summary, or the failure text
  // Injector statistics (what the run actually had to survive).
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t crashes_fired = 0;
  std::uint64_t agents_recovered = 0;
  /// Full metrics snapshot of the run (obs::Snapshot::to_string format),
  /// so a failing case can be dumped with its profile, not just the seed.
  /// Empty when the case threw before the run started.
  std::string metrics;
};

/// Which Engine the program cases run on.  kSim is the deterministic
/// default; kProc runs the same programs on the process-per-PE
/// machine::ProcMachine, pushing every injected fault through a real
/// socket transport.  On kProc, "recovery/ring" becomes the full-stack
/// crash drill: hop-count-triggered crashes SIGKILL real worker
/// processes mid-run, the recovery-enabled ProcMachine respawns them, and
/// restore fetches the serialized checkpoint back over the wire
/// (navp::ProcCheckpointStore) — the sum must still match exactly.
enum class FaultBackend { kSim, kProc };

/// Run one workload under `plan` (seeded by `plan.seed`) and verify it.
/// Program cases ignore plan.crashes (programs hold no recoverable agents;
/// crash recovery is "recovery/ring"'s job) and must match the fault-free
/// reference exactly.  "recovery/ring" uses plan.crashes as given, or a
/// seed-derived one-crash schedule when the plan has none.  Unknown names
/// throw ConfigError.
FaultCaseResult run_fault_case(const std::string& name,
                               const machine::FaultPlan& plan,
                               FaultBackend backend = FaultBackend::kSim);

struct FaultSweepReport {
  int seeds_run = 0;
  int cases_run = 0;
  bool failed = false;
  FaultCaseResult first_failure;  ///< valid when failed
};

/// Run every case whose name contains `case_filter` (empty = all) across
/// `num_seeds` consecutive seeds starting at `first_seed`.  Stops at the
/// first failure so its seed can be replayed.  `verbose` prints per-seed
/// progress lines to stdout.
FaultSweepReport fault_sweep(std::uint64_t first_seed, int num_seeds,
                             machine::FaultPlan base, bool verbose,
                             const std::string& case_filter = "",
                             FaultBackend backend = FaultBackend::kSim);

}  // namespace navcpp::harness
