#include "harness/workloads.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "apps/jacobi.h"
#include "apps/lu.h"
#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "mm/doall_mm.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/summa_mm.h"
#include "mm/summa_mm_1d.h"
#include "support/error.h"

namespace navcpp::harness {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::RealStorage;

// Sizes are the smallest that still exercise every itinerary: the 1-D
// variants need nb divisible by the PE count with >= 2 blocks per PE, the
// 2-D variants need a 2x2 grid, Jacobi needs its interior rows to split
// evenly over the PEs.
constexpr int k1dPes = 3, k1dOrder = 24, k1dBlock = 4;   // nb=6, width=2
constexpr int k2dGrid = 2, k2dOrder = 16, k2dBlock = 4;  // nb=4, 4 PEs
constexpr int kLuPes = 3, kLuOrder = 24, kLuBlock = 4;
constexpr int kJacobiPes = 4, kJacobiRows = 34, kJacobiCols = 16;
constexpr int kJacobiSweeps = 4;

bool is_mm_1d(const std::string& name) {
  return name == "mm/dsc1d" || name == "mm/pipe1d" || name == "mm/phase1d" ||
         name == "mm/summa1d";
}

mm::MmConfig mm_config(const std::string& name) {
  mm::MmConfig mcfg;
  mcfg.order = is_mm_1d(name) ? k1dOrder : k2dOrder;
  mcfg.block_order = is_mm_1d(name) ? k1dBlock : k2dBlock;
  return mcfg;
}

apps::JacobiConfig jacobi_config() {
  apps::JacobiConfig jcfg;
  jcfg.rows = kJacobiRows;
  jcfg.cols = kJacobiCols;
  jcfg.sweeps = kJacobiSweeps;
  return jcfg;
}

apps::LuConfig lu_config() {
  apps::LuConfig lcfg;
  lcfg.order = kLuOrder;
  lcfg.block_order = kLuBlock;
  return lcfg;
}

std::vector<double> mm_values(const std::string& name, machine::Engine& eng) {
  const mm::MmConfig mcfg = mm_config(name);

  const Matrix a = Matrix::random(mcfg.order, mcfg.order, 1);
  const Matrix b = Matrix::random(mcfg.order, mcfg.order, 2);
  auto ga = linalg::to_blocks(a, mcfg.block_order);
  auto gb = linalg::to_blocks(b, mcfg.block_order);
  BlockGrid<RealStorage> gc(mcfg.order, mcfg.block_order);

  using mm::Navp1dVariant;
  using mm::Navp2dVariant;
  using mm::StaggerMode;
  if (name == "mm/dsc1d") {
    navp_mm_1d(eng, mcfg, Navp1dVariant::kDsc, ga, gb, gc);
  } else if (name == "mm/pipe1d") {
    navp_mm_1d(eng, mcfg, Navp1dVariant::kPipelined, ga, gb, gc);
  } else if (name == "mm/phase1d") {
    navp_mm_1d(eng, mcfg, Navp1dVariant::kPhaseShifted, ga, gb, gc);
  } else if (name == "mm/summa1d") {
    summa_mm_1d(eng, mcfg, ga, gb, gc);
  } else if (name == "mm/dsc2d") {
    navp_mm_2d(eng, mcfg, Navp2dVariant::kDsc, ga, gb, gc);
  } else if (name == "mm/pipe2d") {
    navp_mm_2d(eng, mcfg, Navp2dVariant::kPipelined, ga, gb, gc);
  } else if (name == "mm/phase2d") {
    navp_mm_2d(eng, mcfg, Navp2dVariant::kPhaseShifted, ga, gb, gc);
  } else if (name == "mm/gentleman") {
    gentleman_mm(eng, mcfg, StaggerMode::kDirect, ga, gb, gc);
  } else if (name == "mm/cannon") {
    gentleman_mm(eng, mcfg, StaggerMode::kStepwise, ga, gb, gc);
  } else if (name == "mm/summa") {
    summa_mm(eng, mcfg, ga, gb, gc);
  } else if (name == "mm/doall") {
    doall_mm(eng, mcfg, ga, gb, gc);
  } else {
    throw support::ConfigError("unknown workload " + name);
  }

  const Matrix c = linalg::from_blocks(gc);
  return std::vector<double>(c.flat().begin(), c.flat().end());
}

std::vector<double> jacobi_values(const std::string& name,
                                  machine::Engine& eng) {
  const apps::JacobiConfig jcfg = jacobi_config();
  const auto variant = name == "jacobi/dsc" ? apps::JacobiVariant::kDsc
                       : name == "jacobi/pipeline"
                           ? apps::JacobiVariant::kPipelined
                           : apps::JacobiVariant::kDataflow;
  const auto initial = apps::JacobiGrid::heated_plate(jcfg.rows, jcfg.cols);
  const auto got = apps::jacobi_navp(eng, jcfg, variant, initial);
  return got.u;
}

std::vector<double> lu_values(const std::string& name, machine::Engine& eng) {
  const apps::LuConfig lcfg = lu_config();
  const auto variant = name == "lu/dsc" ? apps::LuVariant::kDsc
                                        : apps::LuVariant::kPipelined;
  const Matrix a = apps::diagonally_dominant(lcfg.order, 17);
  const auto [l, u] = apps::lu_navp(eng, lcfg, variant, a);
  std::vector<double> out(l.flat().begin(), l.flat().end());
  out.insert(out.end(), u.flat().begin(), u.flat().end());
  return out;
}

/// Checks shared by the three result families.  `got` layouts match
/// run_workload's: C.flat for MM, u for Jacobi, L.flat ++ U.flat for LU.

WorkloadCheck mm_check(const std::string& name,
                       const std::vector<double>& got) {
  const mm::MmConfig mcfg = mm_config(name);
  const Matrix a = Matrix::random(mcfg.order, mcfg.order, 1);
  const Matrix b = Matrix::random(mcfg.order, mcfg.order, 2);
  const Matrix want = linalg::multiply(a, b);
  WorkloadCheck r;
  r.tolerance = 1e-9;
  if (got.size() != want.flat().size()) {
    r.detail = "result size " + std::to_string(got.size()) + " != " +
               std::to_string(want.flat().size());
    return r;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    r.error = std::max(r.error, std::abs(got[i] - want.flat()[i]));
  }
  r.ok = r.error < r.tolerance;
  r.detail = "max|err| = " + std::to_string(r.error);
  return r;
}

WorkloadCheck jacobi_check(const std::vector<double>& got) {
  const apps::JacobiConfig jcfg = jacobi_config();
  const auto initial = apps::JacobiGrid::heated_plate(jcfg.rows, jcfg.cols);
  const auto want = apps::jacobi_sequential(initial, jcfg.sweeps);
  WorkloadCheck r;
  r.tolerance = 1e-12;
  if (got.size() != want.u.size()) {
    r.detail = "result size " + std::to_string(got.size()) + " != " +
               std::to_string(want.u.size());
    return r;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    r.error = std::max(r.error, std::abs(got[i] - want.u[i]));
  }
  r.ok = r.error < r.tolerance;
  r.detail = "max|err| = " + std::to_string(r.error);
  return r;
}

WorkloadCheck lu_check(const std::vector<double>& got) {
  const apps::LuConfig lcfg = lu_config();
  const Matrix a = apps::diagonally_dominant(lcfg.order, 17);
  const std::size_t half =
      static_cast<std::size_t>(lcfg.order) * static_cast<std::size_t>(lcfg.order);
  WorkloadCheck r;
  r.tolerance = 1e-9;
  if (got.size() != 2 * half) {
    r.detail = "result size " + std::to_string(got.size()) + " != " +
               std::to_string(2 * half);
    return r;
  }
  Matrix l(lcfg.order, lcfg.order);
  Matrix u(lcfg.order, lcfg.order);
  std::copy(got.begin(), got.begin() + static_cast<std::ptrdiff_t>(half),
            l.flat().begin());
  std::copy(got.begin() + static_cast<std::ptrdiff_t>(half), got.end(),
            u.flat().begin());
  r.error = apps::lu_reconstruction_error(a, l, u);
  r.ok = r.error < r.tolerance;
  r.detail = "max|A-LU| = " + std::to_string(r.error);
  return r;
}

}  // namespace

std::vector<std::string> workload_names() {
  return {"mm/dsc1d",  "mm/pipe1d",    "mm/phase1d", "mm/summa1d",
          "mm/dsc2d",  "mm/pipe2d",    "mm/phase2d", "mm/gentleman",
          "mm/cannon", "mm/summa",     "mm/doall",   "jacobi/dsc",
          "jacobi/pipeline", "jacobi/dataflow", "lu/dsc", "lu/pipeline"};
}

int workload_pe_count(const std::string& name) {
  if (name.rfind("mm/", 0) == 0) {
    return is_mm_1d(name) ? k1dPes : k2dGrid * k2dGrid;
  }
  if (name.rfind("jacobi/", 0) == 0) return kJacobiPes;
  if (name.rfind("lu/", 0) == 0) return kLuPes;
  throw support::ConfigError("unknown workload " + name);
}

net::LinkParams workload_link(const std::string& name) {
  if (name.rfind("mm/", 0) == 0) return mm::MmConfig{}.testbed.lan;
  if (name.rfind("jacobi/", 0) == 0) return apps::JacobiConfig{}.testbed.lan;
  if (name.rfind("lu/", 0) == 0) return apps::LuConfig{}.testbed.lan;
  throw support::ConfigError("unknown workload " + name);
}

std::vector<double> run_workload(const std::string& name,
                                 machine::Engine& eng) {
  if (name.rfind("mm/", 0) == 0) return mm_values(name, eng);
  if (name.rfind("jacobi/", 0) == 0) return jacobi_values(name, eng);
  if (name.rfind("lu/", 0) == 0) return lu_values(name, eng);
  throw support::ConfigError("unknown workload " + name);
}

const std::vector<double>& workload_reference(const std::string& name) {
  static std::mutex mutex;
  static std::map<std::string, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it == cache.end()) {
    machine::SimMachine sim(workload_pe_count(name), workload_link(name));
    it = cache.emplace(name, run_workload(name, sim)).first;
  }
  return it->second;
}

WorkloadCheck check_workload(const std::string& name,
                             const std::vector<double>& got) {
  if (name.rfind("mm/", 0) == 0) return mm_check(name, got);
  if (name.rfind("jacobi/", 0) == 0) return jacobi_check(got);
  if (name.rfind("lu/", 0) == 0) return lu_check(got);
  throw support::ConfigError("unknown workload " + name);
}

}  // namespace navcpp::harness
