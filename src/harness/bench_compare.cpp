#include "harness/bench_compare.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "harness/bench_runner.h"
#include "harness/text_table.h"
#include "support/json.h"

namespace navcpp::harness {

namespace {

struct ParsedMetric {
  double value = 0.0;
  bool higher_is_better = true;
  std::string unit;
};

bool parse_metrics(const std::string& json,
                   std::map<std::string, ParsedMetric>* out,
                   std::string* revision, std::string* error) {
  if (!validate_bench_json(json, error)) return false;
  support::JsonValue doc;
  (void)support::json_parse(json, &doc);  // validated above; cannot fail
  *revision = doc.find("revision")->as_string();
  for (const auto& [name, metric] : doc.find("metrics")->as_object()) {
    ParsedMetric m;
    m.value = metric.find("value")->as_number();
    m.higher_is_better = metric.find("higher_is_better")->as_bool();
    m.unit = metric.find("unit")->as_string();
    (*out)[name] = m;
  }
  return true;
}

std::string pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", ratio * 100.0);
  return buf;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

BenchComparison compare_bench_reports(const std::string& old_json,
                                      const std::string& new_json,
                                      double tolerance) {
  BenchComparison out;
  std::map<std::string, ParsedMetric> old_metrics, new_metrics;
  std::string old_rev, new_rev, error;
  if (!parse_metrics(old_json, &old_metrics, &old_rev, &error)) {
    out.parse_error = "old report: " + error;
    return out;
  }
  if (!parse_metrics(new_json, &new_metrics, &new_rev, &error)) {
    out.parse_error = "new report: " + error;
    return out;
  }
  out.parse_ok = true;

  TextTable table({"metric", old_rev, new_rev, "delta", "status"});
  for (const auto& [name, old_metric] : old_metrics) {
    auto it = new_metrics.find(name);
    if (it == new_metrics.end()) {
      table.add_row({name, num(old_metric.value), "-", "-", "dropped"});
      continue;
    }
    const ParsedMetric& new_metric = it->second;
    ++out.compared;
    const double old_v = old_metric.value;
    const double new_v = new_metric.value;
    // Relative move in the metric's "better" direction: positive = better.
    double move = 0.0;
    if (old_v != 0.0) {
      move = (new_v - old_v) / old_v;
      if (!old_metric.higher_is_better) move = -move;
    } else if (new_v != 0.0) {
      move = new_metric.higher_is_better == (new_v > 0.0) ? 1.0 : -1.0;
    }
    std::string status = "ok";
    if (move < -tolerance) {
      status = "REGRESSION";
      ++out.regressions;
    } else if (move > tolerance) {
      status = "improved";
      ++out.improvements;
    }
    const double raw = old_v != 0.0 ? (new_v - old_v) / old_v : 0.0;
    table.add_row({name, num(old_v), num(new_v), pct(raw), status});
  }
  for (const auto& [name, new_metric] : new_metrics) {
    if (old_metrics.find(name) == old_metrics.end()) {
      table.add_row({name, "-", num(new_metric.value), "-", "new"});
    }
  }
  out.report = table.str();
  return out;
}

}  // namespace navcpp::harness
