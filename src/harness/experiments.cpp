#include "harness/experiments.h"

#include <vector>

#include "machine/sim_machine.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"
#include "mm/summa_mm.h"
#include "mm/summa_mm_1d.h"
#include "perfmodel/curvefit.h"

namespace navcpp::harness {

using linalg::BlockGrid;
using linalg::PhantomStorage;

namespace {

mm::MmConfig configure(const mm::MmConfig& base, int order, int block) {
  mm::MmConfig cfg = base;
  cfg.order = order;
  cfg.block_order = block;
  return cfg;
}

}  // namespace

Measured1D measure_1d_row(int order, int block, int pes,
                          const mm::MmConfig& base) {
  const mm::MmConfig cfg = configure(base, order, block);
  BlockGrid<PhantomStorage> a(order, block), b(order, block);

  Measured1D row;
  row.order = order;
  row.block = block;
  row.seq_in_core = mm::sequential_mm_seconds_in_core(cfg);
  row.seq_actual = mm::sequential_mm_seconds(cfg);

  auto run1d = [&](mm::Navp1dVariant v) {
    machine::SimMachine m(pes, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(order, block);
    return mm::navp_mm_1d(m, cfg, v, a, b, c).seconds;
  };
  row.dsc = run1d(mm::Navp1dVariant::kDsc);
  row.pipe = run1d(mm::Navp1dVariant::kPipelined);
  row.phase = run1d(mm::Navp1dVariant::kPhaseShifted);
  {
    machine::SimMachine m(pes, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(order, block);
    row.summa = mm::summa_mm_1d(m, cfg, a, b, c).seconds;
  }
  return row;
}

Measured2D measure_2d_row(int order, int block, int grid,
                          const mm::MmConfig& base) {
  const mm::MmConfig cfg = configure(base, order, block);
  BlockGrid<PhantomStorage> a(order, block), b(order, block);

  Measured2D row;
  row.order = order;
  row.block = block;
  row.seq_in_core = mm::sequential_mm_seconds_in_core(cfg);
  row.seq_actual = mm::sequential_mm_seconds(cfg);

  auto run2d = [&](mm::Navp2dVariant v) {
    machine::SimMachine m(grid * grid, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(order, block);
    return mm::navp_mm_2d(m, cfg, v, a, b, c).seconds;
  };
  row.dsc = run2d(mm::Navp2dVariant::kDsc);
  row.pipe = run2d(mm::Navp2dVariant::kPipelined);
  row.phase = run2d(mm::Navp2dVariant::kPhaseShifted);
  {
    machine::SimMachine m(grid * grid, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(order, block);
    row.mpi = mm::gentleman_mm(m, cfg, mm::StaggerMode::kDirect, a, b, c)
                  .seconds;
  }
  {
    machine::SimMachine m(grid * grid, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(order, block);
    row.summa = mm::summa_mm(m, cfg, a, b, c).seconds;
  }
  return row;
}

double curve_fit_sequential(const mm::MmConfig& base,
                            const std::vector<int>& sample_orders,
                            int target_order) {
  std::vector<double> xs, ys;
  xs.reserve(sample_orders.size());
  ys.reserve(sample_orders.size());
  for (int n : sample_orders) {
    mm::MmConfig cfg = base;
    cfg.order = n;
    xs.push_back(static_cast<double>(n));
    // Small problems fit in core: the modeled "run" has no paging, exactly
    // like the paper's small-problem calibration runs.
    ys.push_back(mm::sequential_mm_seconds(cfg));
  }
  const auto fit = perfmodel::polyfit(xs, ys, 3);
  return perfmodel::polyval(fit, static_cast<double>(target_order));
}

}  // namespace navcpp::harness
