// The performance-trajectory runner: a curated subset of bench/ distilled
// into one callable suite whose output is a schema-validated BENCH_<rev>.json
// committed to the repository.  The trajectory makes the repo's perf claims
// falsifiable: every hot-path change lands next to a before/after pair, and
// `bench_compare` turns a silent regression into a nonzero exit.
//
// Headline metrics (same workloads as the bench/ binaries they mirror):
//   * runtime.threaded.hops_per_sec     — BM_ThreadedHops (2 PEs, wall time)
//   * runtime.threaded.hops_per_sec_4pe — same hopper on 4 PEs
//   * runtime.sim.hops_per_sec          — BM_SimHops (4 PEs)
//   * runtime.proc.hops_per_sec         — hopper on the process backend
//                                          (heartbeats on, per defaults)
//   * runtime.proc.traced_hops_per_sec  — same hopper with distributed
//                                          tracing on (span recording,
//                                          kSpans shipping, flight
//                                          recorder); the A/B pair vs the
//                                          untraced metric is the measured
//                                          observability overhead
//   * runtime.proc.recovery_ms          — SIGKILL-to-recovered latency of
//                                          the proc supervisor (detect +
//                                          respawn + replay; lower better)
//   * kernels.gemm_gflops               — gemm_acc, as in bench_kernels
//   * sweep.jacobi_wall_seconds         — jacobi/dataflow wall time (sim)
//   * sweep.lu_wall_seconds             — lu/pipeline wall time (sim)
//   * obs.mean_pe_utilization           — profile of mm/phase1d (sim;
//                                          deterministic across hosts).
//                                          Busy-based: mean over PEs of
//                                          busy_time(pe) / finish_time,
//                                          not the compute-only ratio
//                                          (which reads ~0.005 on loaded
//                                          fine-grained runs)
//
// Wall-clock metrics are best-of-N to shed scheduler noise; the sim-derived
// utilization metric is bit-deterministic and anchors cross-host diffs.
#pragma once

#include <map>
#include <string>

namespace navcpp::harness {

struct BenchOptions {
  /// Quick profile: smaller sizes and fewer repetitions (CI smoke); the
  /// full profile is what committed BENCH_<rev>.json files are made from.
  bool quick = false;
  /// Revision label embedded in the report ("7fca760", "dev", ...).  The
  /// library takes it as a string: the caller decides whether to consult
  /// git.
  std::string revision = "dev";
};

struct BenchMetric {
  double value = 0.0;
  std::string unit;
  /// Direction a *better* run moves this metric; bench_compare uses it to
  /// decide what counts as a regression.
  bool higher_is_better = true;
};

struct BenchReport {
  std::string revision;
  bool quick = false;
  int hardware_threads = 0;
  std::map<std::string, BenchMetric> metrics;  // sorted, deterministic

  /// Render as the navcpp.bench/v1 JSON document (always passes
  /// validate_bench_json by construction).
  std::string to_json() const;
};

/// Run the curated suite.  Wall-time metrics depend on the host; the
/// sim-backend metrics are deterministic.
BenchReport run_bench_suite(const BenchOptions& options);

/// Structural validation of a navcpp.bench/v1 document: parses as JSON,
/// schema tag matches, revision is a non-empty string, metrics is a
/// non-empty object and every entry has a finite non-negative numeric
/// `value`, a string `unit`, and a boolean `higher_is_better`.  On failure
/// returns false and (if `error` is non-null) a human-readable reason.
bool validate_bench_json(const std::string& json, std::string* error);

}  // namespace navcpp::harness
