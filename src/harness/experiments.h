// Experiment drivers shared by the table-reproduction benchmarks and tests:
// each runs one row of a paper table on the simulated testbed (phantom
// storage at paper scale) and returns the measured virtual times.
#pragma once

#include "mm/common.h"

namespace navcpp::harness {

/// One measured row of a 1-D experiment (Table 1 / Table 2 layout).
struct Measured1D {
  int order = 0;
  int block = 0;
  double seq_in_core = 0.0;  ///< modeled in-core sequential seconds
  double seq_actual = 0.0;   ///< modeled sequential incl. paging (a "run")
  double dsc = 0.0;
  double pipe = 0.0;
  double phase = 0.0;
  double summa = 0.0;  ///< ScaLAPACK stand-in (column SUMMA)
};

/// One measured row of a 2-D experiment (Table 3 / Table 4 layout).
struct Measured2D {
  int order = 0;
  int block = 0;
  double seq_in_core = 0.0;
  double seq_actual = 0.0;
  double mpi = 0.0;  ///< Gentleman's algorithm
  double dsc = 0.0;
  double pipe = 0.0;
  double phase = 0.0;
  double summa = 0.0;  ///< ScaLAPACK stand-in (SUMMA)
};

/// Run all 1-D variants (+ the ScaLAPACK stand-in) for one (order, block)
/// on a simulated `pes`-workstation cluster.
Measured1D measure_1d_row(int order, int block, int pes,
                          const mm::MmConfig& base);

/// Run all 2-D variants for one (order, block) on a simulated grid x grid
/// cluster.
Measured2D measure_2d_row(int order, int block, int grid,
                          const mm::MmConfig& base);

/// The paper's curve-fit methodology: fit a cubic to modeled sequential
/// times at `sample_orders` and evaluate it at `target_order`.
double curve_fit_sequential(const mm::MmConfig& base,
                            const std::vector<int>& sample_orders,
                            int target_order);

}  // namespace navcpp::harness
