// Column-aligned plain-text table rendering for the benchmark harness.
#pragma once

#include <string>
#include <vector>

namespace navcpp::harness {

class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.  Numeric
  /// cells are right-aligned, text cells left-aligned.
  std::string str() const;

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string eng(double v);  ///< 1234567 -> "1.23e6" style

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace navcpp::harness
