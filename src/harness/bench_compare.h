// Diff two navcpp.bench/v1 reports and flag regressions.
//
// A metric regresses when it moves against its declared direction by more
// than `tolerance` (relative): a higher-is-better metric that drops below
// old * (1 - tolerance), or a lower-is-better metric that rises above
// old * (1 + tolerance).  Metrics present in only one report are listed but
// never counted as regressions (the trajectory is allowed to grow).
//
// Used by tools/bench_compare (CI gate) and the bench_runner tests.
#pragma once

#include <string>

namespace navcpp::harness {

struct BenchComparison {
  bool parse_ok = false;     ///< both inputs validated as navcpp.bench/v1
  std::string parse_error;   ///< set when !parse_ok
  int compared = 0;          ///< metrics present in both reports
  int regressions = 0;       ///< metrics beyond tolerance, against direction
  int improvements = 0;      ///< metrics beyond tolerance, with direction
  std::string report;        ///< human-readable per-metric table
};

/// Compare `new_json` against `old_json` with the given relative tolerance
/// (0.10 = 10%).
BenchComparison compare_bench_reports(const std::string& old_json,
                                      const std::string& new_json,
                                      double tolerance);

}  // namespace navcpp::harness
