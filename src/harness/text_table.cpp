#include "harness/text_table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/error.h"

namespace navcpp::harness {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'x' && c != '*' &&
        c != '%') {
      return false;
    }
  }
  return true;
}
}  // namespace

void TextTable::add_row(std::vector<std::string> cells) {
  NAVCPP_CHECK(cells.size() == headers_.size(),
               "TextTable row has wrong cell count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c],
                                                       row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells, bool numeric_align) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      const bool right = numeric_align && looks_numeric(cells[c]);
      if (c != 0) os << "  ";
      if (right) os << std::string(pad, ' ') << cells[c];
      else os << cells[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c != 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::eng(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace navcpp::harness
