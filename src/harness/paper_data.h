// The paper's published measurements (Tables 1-4), used by the benchmark
// harness to print paper-vs-reproduced comparisons.
//
// All times are seconds; speedups are the paper's own (relative to the
// sequential column, curve-fitted where marked in the paper).
// A NaN-like sentinel (negative value) marks cells the paper doesn't have.
#pragma once

#include <vector>

namespace navcpp::harness {

inline constexpr double kNoData = -1.0;

struct PaperRow1D {
  int order;
  int block;
  double seq_s;        ///< sequential time (curve-fitted value if starred)
  bool seq_fitted;     ///< the paper starred this cell (curve fit)
  double dsc_s, dsc_su;
  double pipe_s, pipe_su;
  double phase_s, phase_su;
  double scalapack_s, scalapack_su;
};

/// Table 1: performance on 3 PEs (1-D network).
inline const std::vector<PaperRow1D>& paper_table1() {
  static const std::vector<PaperRow1D> rows = {
      {1536, 128, 65.44, false, 67.22, 0.97, 27.72, 2.36, 24.55, 2.67, 26.80,
       2.44},
      {2304, 128, 219.71, false, 229.45, 0.96, 91.03, 2.41, 81.23, 2.70,
       82.83, 2.65},
      {3072, 128, 520.30, false, 543.91, 0.96, 205.87, 2.53, 189.50, 2.75,
       211.45, 2.46},
      {4608, 128, 1745.94, true, 1809.73, 0.96, 688.18, 2.54, 653.64, 2.67,
       767.91, 2.27},
      {5376, 128, 2735.69, true, 2926.24, 0.93, 1151.07, 2.38, 990.05, 2.76,
       1173.46, 2.33},
      {6144, 256, 4268.16, true, 4697.32, 0.91, 1811.77, 2.36, 1554.99, 2.74,
       1984.18, 2.15},
  };
  return rows;
}

struct PaperRow2 {
  int order;
  int block;
  double seq_measured_s;  ///< actual thrashing run (36534.49)
  double seq_fitted_s;    ///< curve-fitted in-core estimate (13921.50)
  double dsc_s, dsc_su;
};

/// Table 2: performance on 8 PEs (out-of-core sequential vs 1D DSC).
inline const PaperRow2& paper_table2() {
  static const PaperRow2 row = {9216, 128, 36534.49, 13921.50, 14959.42,
                                0.93};
  return row;
}

struct PaperRow2D {
  int order;
  int block;
  double seq_s;
  bool seq_fitted;
  double mpi_s, mpi_su;
  double dsc_s, dsc_su;
  double pipe_s, pipe_su;
  double phase_s, phase_su;
  double scalapack_s, scalapack_su;
};

/// Table 3: performance on 2x2 PEs.
inline const std::vector<PaperRow2D>& paper_table3() {
  static const std::vector<PaperRow2D> rows = {
      {1024, 128, 19.49, false, 6.02, 3.24, 7.63, 2.55, 5.88, 3.31, 5.54,
       3.52, 5.23, 3.73},
      {2048, 128, 158.51, false, 50.99, 3.11, 50.59, 3.13, 42.61, 3.72, 41.54,
       3.82, 45.53, 3.48},
      {3072, 128, 520.30, false, 157.53, 3.30, 158.06, 3.29, 144.09, 3.61,
       137.39, 3.79, 156.27, 3.33},
      {4096, 128, 1238.21, true, 367.04, 3.37, 362.73, 3.41, 328.98, 3.76,
       321.70, 3.85, 417.83, 2.96},
      {5120, 128, 2373.32, true, 733.91, 3.23, 792.23, 3.00, 757.67, 3.13,
       624.87, 3.80, 907.16, 2.62},
  };
  return rows;
}

/// Table 4: performance on 3x3 PEs.
inline const std::vector<PaperRow2D>& paper_table4() {
  static const std::vector<PaperRow2D> rows = {
      {1536, 128, 65.44, false, 10.97, 5.97, 13.66, 4.79, 9.18, 7.13, 8.21,
       7.97, 8.08, 8.10},
      {2304, 128, 219.71, false, 29.95, 7.34, 39.53, 5.56, 29.93, 7.34, 26.74,
       8.22, 29.39, 7.48},
      {3072, 128, 520.30, false, 82.25, 6.33, 86.52, 6.01, 66.94, 7.77, 62.36,
       8.34, 70.92, 7.34},
      {4608, 128, 1745.94, true, 241.92, 7.22, 268.41, 6.50, 220.28, 7.93,
       205.68, 8.49, 255.87, 6.82},
      {5376, 128, 2735.69, true, 437.27, 6.26, 421.78, 6.49, 360.77, 7.58,
       323.67, 8.45, 398.50, 6.86},
      {6144, 256, 4268.16, true, 637.79, 6.69, 745.18, 5.73, 584.85, 7.30,
       510.29, 8.36, 635.36, 6.72},
  };
  return rows;
}

}  // namespace navcpp::harness
