// Cargo adapters for block-structured agent variables.
//
// The mm carriers keep algorithmic blocks (RealBlock / PhantomBlock) in
// their coroutine frames — the paper's mA / mB agent variables.  These
// adapters register them with a navp::Cargo so that
//
//   * hop_cargo() charges exactly block_wire_bytes() per block, the same
//     number the hand-written ctx.hop(dest, plan->row_bytes) calls used
//     (phantom blocks charge what their real counterparts would), and
//   * strict-migration runs serialize and rebuild every carried block
//     around each hop, proving the carried state is address-space-clean —
//     no pointer into another PE's node variables survives the round trip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/block.h"
#include "navp/cargo.h"
#include "support/bytebuffer.h"

namespace navcpp::mm {

namespace detail_cargo {

template <class Block>
void put_block(support::ByteBuffer& buf, const Block& blk) {
  buf.put(blk.rows);
  buf.put(blk.cols);
  if constexpr (requires { blk.data; }) buf.put_vector(blk.data);
}

template <class Block>
void get_block(support::ByteBuffer& buf, Block& blk) {
  blk.rows = buf.get<int>();
  blk.cols = buf.get<int>();
  if constexpr (requires { blk.data; }) blk.data = buf.get_vector<double>();
}

}  // namespace detail_cargo

/// Register one carried block.  Wire cost is block_wire_bytes (rows x cols
/// doubles for both storages); the block must outlive the Cargo (it is an
/// agent variable in the same coroutine frame).
template <class Block>
void attach_block(navp::Cargo& cargo, Block* blk) {
  cargo.attach_custom(
      [blk] { return linalg::block_wire_bytes(*blk); },
      [blk](support::ByteBuffer& buf) { detail_cargo::put_block(buf, *blk); },
      [blk](support::ByteBuffer& buf) { detail_cargo::get_block(buf, *blk); });
}

/// Register a carried vector of blocks (a block-row of A, a block-column
/// of B).  Wire cost is the sum of the blocks' wire bytes right now: zero
/// while the vector is empty, one row_bytes' worth once a row is loaded —
/// matching the `ma.empty() ? 0 : plan->row_bytes` accounting the carriers
/// used before they declared their cargo.
template <class Block>
void attach_blocks(navp::Cargo& cargo, std::vector<Block>* blocks) {
  cargo.attach_custom(
      [blocks] {
        std::size_t total = 0;
        for (const auto& blk : *blocks) {
          total += linalg::block_wire_bytes(blk);
        }
        return total;
      },
      [blocks](support::ByteBuffer& buf) {
        buf.put<std::uint64_t>(blocks->size());
        for (const auto& blk : *blocks) detail_cargo::put_block(buf, blk);
      },
      [blocks](support::ByteBuffer& buf) {
        blocks->resize(static_cast<std::size_t>(buf.get<std::uint64_t>()));
        for (auto& blk : *blocks) detail_cargo::get_block(buf, blk);
      });
}

}  // namespace navcpp::mm
