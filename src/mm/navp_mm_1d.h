// The three 1-D NavP matrix multiplications of section 3:
//
//   * kDsc          — Figure 5: one RowCarrier chases the distributed
//                     columns of B and C, carrying one block-row of A at a
//                     time (distributed *sequential* computing).
//   * kPipelined    — Figure 7: one RowCarrier per block-row of A, injected
//                     in order at node(0); the carriers follow each other
//                     through the PE pipeline.
//   * kPhaseShifted — Figure 9: carriers start phase-shifted from different
//                     PEs ((N-1-mi+mj) mod N itinerary), achieving full
//                     distributed parallel computing.
//
// Matrix A is carried in the agent variable mA (a vector of blocks living
// in the coroutine frame); matrices B and C live in column-distributed node
// variables.  Indices are algorithmic-block indices (see mm/common.h).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "mm/cargo_blocks.h"
#include "mm/common.h"
#include "navp/cargo.h"
#include "navp/runtime.h"

namespace navcpp::mm {

enum class Navp1dVariant { kDsc, kPipelined, kPhaseShifted };

inline const char* to_string(Navp1dVariant v) {
  switch (v) {
    case Navp1dVariant::kDsc:
      return "NavP 1D DSC";
    case Navp1dVariant::kPipelined:
      return "NavP 1D pipeline";
    case Navp1dVariant::kPhaseShifted:
      return "NavP 1D phase";
  }
  return "?";
}

namespace detail1d {

template <class Storage>
struct Nodes1D {
  using Block = typename Storage::Block;
  BlockMap<Block> b;  ///< B(bk, bj) for owned block-columns bj
  BlockMap<Block> c;  ///< C(bi, bj) for owned block-columns bj
  /// Staged block-rows of A, keyed by row index mi (on node(0) for DSC and
  /// pipelining; on node(mi)'s owner for phase shifting).
  std::unordered_map<int, std::vector<Block>> a_rows;
};

template <class Storage>
struct Plan1D {
  MmConfig cfg;
  Dist1D dist;
  std::size_t row_bytes = 0;  ///< wire size of one carried block-row of A

  Plan1D(const MmConfig& c, int pes)
      : cfg(c),
        dist(c.nb(), pes, c.layout),
        row_bytes(static_cast<std::size_t>(c.order) *
                  static_cast<std::size_t>(c.block_order) * sizeof(double)) {}
};

/// C(mi, col) += mA . B(*, col) — one block-row x block-column accumulation
/// charged as a single (b x order) x (order x b) GEMM.
template <class Storage>
void compute_c_block(navp::Ctx& ctx, const Plan1D<Storage>& plan, int mi,
                     int col, const std::vector<typename Storage::Block>& ma) {
  auto& nodes = ctx.node<Nodes1D<Storage>>();
  auto& cblk = nodes.c.at(block_key(mi, col));
  const int b = plan.cfg.block_order;
  ctx.work("C-block",
           plan.cfg.testbed.gemm_seconds(b, b, plan.cfg.order,
                                         perfmodel::CacheProfile::kResident),
           [&] {
             for (int bk = 0; bk < plan.cfg.nb(); ++bk) {
               Storage::gemm_acc(cblk, ma[static_cast<std::size_t>(bk)],
                                 nodes.b.at(block_key(bk, col)));
             }
           });
}

/// Figure 5: the single DSC carrier.
template <class Storage>
navp::Mission row_carrier_dsc(navp::Ctx ctx, const Plan1D<Storage>* plan) {
  std::vector<typename Storage::Block> ma;  // agent variable mA
  navp::Cargo cargo;
  attach_blocks(cargo, &ma);  // 0 bytes while empty, row_bytes once loaded
  const int nb = plan->cfg.nb();
  for (int mi = 0; mi < nb; ++mi) {
    for (int mj = 0; mj < nb; ++mj) {
      co_await navp::hop_cargo(ctx, plan->dist.owner(mj), cargo);
      if (mj == 0) {
        // Back at node(0): pick up the next block-row of A.
        auto& rows = ctx.node<Nodes1D<Storage>>().a_rows;
        auto it = rows.find(mi);
        NAVCPP_CHECK(it != rows.end(), "A row not staged at node(0)");
        ma = std::move(it->second);
        rows.erase(it);
      }
      compute_c_block(ctx, *plan, mi, mj, ma);
    }
  }
}

/// Canonical-layout scatter for phase shifting: carry block-row `mi` of A
/// from node(0) to the carrier's start PE, then announce it (ES_A(mi)).
template <class Storage>
navp::Mission scatter_row(navp::Ctx ctx, const Plan1D<Storage>* plan,
                          int mi) {
  auto& rows = ctx.node<Nodes1D<Storage>>().a_rows;
  auto it = rows.find(mi);
  NAVCPP_CHECK(it != rows.end(), "A row not found at node(0) for scatter");
  std::vector<typename Storage::Block> ma = std::move(it->second);
  rows.erase(it);
  navp::Cargo cargo;
  attach_blocks(cargo, &ma);
  co_await navp::hop_cargo(ctx, plan->dist.owner(mi), cargo);
  ctx.node<Nodes1D<Storage>>().a_rows.emplace(mi, std::move(ma));
  ctx.signal_event(es_a(mi));
}

/// Figure 7 / Figure 9: one carrier per block-row.  `phase_shifted` selects
/// the (N-1-mi+mj) mod N itinerary of Figure 9 (and waits for the scatter
/// of its row from the canonical layout).
template <class Storage>
navp::Mission row_carrier(navp::Ctx ctx, const Plan1D<Storage>* plan, int mi,
                          bool phase_shifted) {
  if (phase_shifted) co_await ctx.wait_event(es_a(mi));
  auto& rows = ctx.node<Nodes1D<Storage>>().a_rows;
  auto it = rows.find(mi);
  NAVCPP_CHECK(it != rows.end(), "A row not staged at the carrier's origin");
  std::vector<typename Storage::Block> ma = std::move(it->second);
  rows.erase(it);
  navp::Cargo cargo;
  attach_blocks(cargo, &ma);

  const int nb = plan->cfg.nb();
  for (int mj = 0; mj < nb; ++mj) {
    const int col = phase_shifted ? (nb - 1 - mi + mj) % nb : mj;
    co_await navp::hop_cargo(ctx, plan->dist.owner(col), cargo);
    compute_c_block(ctx, *plan, mi, col, ma);
  }
}

}  // namespace detail1d

/// Run one 1-D NavP variant on `pes` PEs of `engine`.  Seeds the initial
/// distribution the paper specifies for that variant, executes the program,
/// and (for real storage) gathers the distributed C back into `c_out`.
template <class Storage>
MmStats navp_mm_1d(machine::Engine& engine, const MmConfig& cfg,
                   Navp1dVariant variant,
                   const linalg::BlockGrid<Storage>& a,
                   const linalg::BlockGrid<Storage>& b,
                   linalg::BlockGrid<Storage>& c_out) {
  using Nodes = detail1d::Nodes1D<Storage>;
  const auto plan =
      std::make_unique<detail1d::Plan1D<Storage>>(cfg, engine.pe_count());
  const int nb = cfg.nb();
  const auto& dist = plan->dist;

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_hop_state_bytes(cfg.testbed.hop_state_bytes);
  rt.set_hop_cpu_overhead(cfg.testbed.hop_software_overhead);
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);

  // Initial distribution: B and C columns on their owners; A block-rows on
  // node(0) (DSC, pipelining) or on node(mi)'s owner (phase shifting).
  for (int pe = 0; pe < engine.pe_count(); ++pe) {
    rt.node_store(pe).template emplace<Nodes>();
  }
  for (int bj = 0; bj < nb; ++bj) {
    auto& nodes = rt.node_store(dist.owner(bj)).template get<Nodes>();
    for (int bi = 0; bi < nb; ++bi) {
      nodes.b[block_key(bi, bj)] = b.at(bi, bj);
      nodes.c[block_key(bi, bj)] =
          Storage::make(cfg.block_order, cfg.block_order);
    }
  }
  // Canonical layout: all of A on node(0), for every variant.
  for (int mi = 0; mi < nb; ++mi) {
    auto& nodes = rt.node_store(dist.owner(0)).template get<Nodes>();
    std::vector<typename Storage::Block> row;
    row.reserve(static_cast<std::size_t>(nb));
    for (int bk = 0; bk < nb; ++bk) row.push_back(a.at(mi, bk));
    nodes.a_rows.emplace(mi, std::move(row));
  }

  // Injection (the paper's "hop(node(..)); inject(...)" command-line step).
  switch (variant) {
    case Navp1dVariant::kDsc:
      rt.inject(dist.owner(0), "RowCarrier", detail1d::row_carrier_dsc<Storage>,
                plan.get());
      break;
    case Navp1dVariant::kPipelined:
      for (int mi = 0; mi < nb; ++mi) {
        rt.inject(dist.owner(0), "RowCarrier(" + std::to_string(mi) + ")",
                  detail1d::row_carrier<Storage>, plan.get(), mi, false);
      }
      break;
    case Navp1dVariant::kPhaseShifted:
      for (int mi = 0; mi < nb; ++mi) {
        rt.inject(dist.owner(0), "Scatter(" + std::to_string(mi) + ")",
                  detail1d::scatter_row<Storage>, plan.get(), mi);
        rt.inject(dist.owner(mi), "RowCarrier(" + std::to_string(mi) + ")",
                  detail1d::row_carrier<Storage>, plan.get(), mi, true);
      }
      break;
  }

  rt.run();

  // Gather C for verification.
  for (int bj = 0; bj < nb; ++bj) {
    auto& nodes = rt.node_store(dist.owner(bj)).template get<Nodes>();
    for (int bi = 0; bi < nb; ++bi) {
      c_out.at(bi, bj) = std::move(nodes.c.at(block_key(bi, bj)));
    }
  }

  MmStats stats;
  stats.seconds = engine.finish_time();
  stats.hops = rt.hop_count();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
