// The three 2-D NavP matrix multiplications of sections 3.4–3.6, obtained
// by applying the DSC / Pipelining / Phase-shifting transformations again
// in the second dimension:
//
//   * kDsc          — Figure 11: RowCarriers carry whole block-rows of A
//                     east along their PE row; ColCarriers carry whole
//                     block-columns of B south along their PE column,
//                     depositing the column and signalling EP at each node.
//   * kPipelined    — Figure 13: the rows and columns are decomposed into
//                     individual algorithmic blocks; spawners on the
//                     anti-diagonal inject one ACarrier / BCarrier per
//                     block, synchronized by the EP/EC event ping-pong.
//   * kPhaseShifted — Figure 15: A, B, C all start block-aligned on
//                     node(i,j); carriers enter the pipelines phase-shifted
//                     ((N-1-mi-mk+mj) mod N itineraries), achieving full
//                     parallelism.  The carriers' first hops perform the
//                     "reverse staggering" of section 5, point 3.
//
// All indices are algorithmic-block indices; node(i,j) = Dist2D::owner.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "mm/cargo_blocks.h"
#include "mm/common.h"
#include "navp/cargo.h"
#include "navp/runtime.h"

namespace navcpp::mm {

enum class Navp2dVariant { kDsc, kPipelined, kPhaseShifted };

inline const char* to_string(Navp2dVariant v) {
  switch (v) {
    case Navp2dVariant::kDsc:
      return "NavP 2D DSC";
    case Navp2dVariant::kPipelined:
      return "NavP 2D pipeline";
    case Navp2dVariant::kPhaseShifted:
      return "NavP 2D phase";
  }
  return "?";
}

namespace detail2d {

template <class Storage>
struct Nodes2D {
  using Block = typename Storage::Block;
  BlockMap<Block> a;  ///< resident A blocks (phase shifting pickup)
  BlockMap<Block> b;  ///< resident B blocks (phase shifting pickup)
  BlockMap<Block> c;  ///< owned C blocks (all variants)
  /// Staged whole block-rows of A / block-columns of B at the anti-diagonal
  /// (DSC and pipelining pickup), keyed by row / column index.
  std::unordered_map<int, std::vector<Block>> a_rows;
  std::unordered_map<int, std::vector<Block>> b_cols;
  /// 2D DSC: block-columns of B deposited at node (bi,bj) by ColCarriers.
  std::unordered_map<std::uint64_t, std::vector<Block>> bcol_deposit;
  /// Pipelining / phase shifting: the per-node single-B slot of the paper
  /// ("B = mB"), cycled through by the EP/EC ping-pong.
  BlockMap<Block> b_slot;
};

template <class Storage>
struct Plan2D {
  MmConfig cfg;
  Dist2D dist;
  std::size_t row_bytes = 0;    ///< one block-row / block-column of A or B
  std::size_t block_bytes = 0;  ///< one algorithmic block

  Plan2D(const MmConfig& c, int grid)
      : cfg(c),
        dist(c.nb(), grid, c.layout),
        row_bytes(static_cast<std::size_t>(c.order) *
                  static_cast<std::size_t>(c.block_order) * sizeof(double)),
        block_bytes(static_cast<std::size_t>(c.block_order) *
                    static_cast<std::size_t>(c.block_order) *
                    sizeof(double)) {}
};

// --- canonical-layout staging (see mm/common.h) -----------------------------

/// Carry A(mi, bk) from node(mi, bk) to the anti-diagonal staging node of
/// row mi, slot it into the staged row, and announce it (ES_A(mi)).
template <class Storage>
navp::Mission stage_a_block(navp::Ctx ctx, const Plan2D<Storage>* plan,
                            int mi, int bk) {
  auto& resident = ctx.node<Nodes2D<Storage>>().a;
  auto it = resident.find(block_key(mi, bk));
  NAVCPP_CHECK(it != resident.end(), "A block missing for staging");
  typename Storage::Block blk = std::move(it->second);
  resident.erase(it);
  navp::Cargo cargo;
  attach_block(cargo, &blk);
  const int nb = plan->cfg.nb();
  co_await navp::hop_cargo(
      ctx, plan->dist.owner(mi, (nb - 1 - mi + nb) % nb), cargo);
  ctx.node<Nodes2D<Storage>>().a_rows.at(mi)[static_cast<std::size_t>(bk)] =
      std::move(blk);
  ctx.signal_event(es_a(mi, bk));
}

/// Carry B(bk, ml) to the anti-diagonal staging node of column ml.
template <class Storage>
navp::Mission stage_b_block(navp::Ctx ctx, const Plan2D<Storage>* plan,
                            int bk, int ml) {
  auto& resident = ctx.node<Nodes2D<Storage>>().b;
  auto it = resident.find(block_key(bk, ml));
  NAVCPP_CHECK(it != resident.end(), "B block missing for staging");
  typename Storage::Block blk = std::move(it->second);
  resident.erase(it);
  navp::Cargo cargo;
  attach_block(cargo, &blk);
  const int nb = plan->cfg.nb();
  co_await navp::hop_cargo(
      ctx, plan->dist.owner((nb - 1 - ml + nb) % nb, ml), cargo);
  ctx.node<Nodes2D<Storage>>().b_cols.at(ml)[static_cast<std::size_t>(bk)] =
      std::move(blk);
  ctx.signal_event(es_b(ml, bk));
}

// --- Figure 11: DSC in the second dimension -------------------------------

template <class Storage>
navp::Mission row_carrier_2d_dsc(navp::Ctx ctx, const Plan2D<Storage>* plan,
                                 int mi) {
  // Wait for all nb blocks of the row to be staged here (the first block
  // product already needs the whole carried row).
  for (int k = 0; k < plan->cfg.nb(); ++k) {
    co_await ctx.wait_event(es_a(mi, k));
  }
  auto& staged = ctx.node<Nodes2D<Storage>>().a_rows;
  auto it = staged.find(mi);
  NAVCPP_CHECK(it != staged.end(), "A row not staged for 2D DSC carrier");
  std::vector<typename Storage::Block> ma = std::move(it->second);
  staged.erase(it);
  navp::Cargo cargo;
  attach_blocks(cargo, &ma);

  const int nb = plan->cfg.nb();
  const int b = plan->cfg.block_order;
  for (int mj = 0; mj < nb; ++mj) {
    const int col = (nb - 1 - mi + mj) % nb;
    co_await navp::hop_cargo(ctx, plan->dist.owner(mi, col), cargo);
    co_await ctx.wait_event(ep(mi, col));
    auto& nodes = ctx.node<Nodes2D<Storage>>();
    auto& cblk = nodes.c.at(block_key(mi, col));
    const auto& bcol = nodes.bcol_deposit.at(block_key(mi, col));
    ctx.work("C-block",
             plan->cfg.testbed.gemm_seconds(
                 b, b, plan->cfg.order, perfmodel::CacheProfile::kResident),
             [&] {
               for (int bk = 0; bk < nb; ++bk) {
                 Storage::gemm_acc(cblk, ma[static_cast<std::size_t>(bk)],
                                   bcol[static_cast<std::size_t>(bk)]);
               }
             });
  }
}

template <class Storage>
navp::Mission col_carrier_2d_dsc(navp::Ctx ctx, const Plan2D<Storage>* plan,
                                 int mj) {
  for (int k = 0; k < plan->cfg.nb(); ++k) {
    co_await ctx.wait_event(es_b(mj, k));
  }
  auto& staged = ctx.node<Nodes2D<Storage>>().b_cols;
  auto it = staged.find(mj);
  NAVCPP_CHECK(it != staged.end(), "B column not staged for 2D DSC carrier");
  std::vector<typename Storage::Block> mb = std::move(it->second);
  staged.erase(it);
  navp::Cargo cargo;
  attach_blocks(cargo, &mb);

  const int nb = plan->cfg.nb();
  for (int step = 0; step < nb; ++step) {
    const int row = (nb - 1 - mj + step) % nb;
    co_await navp::hop_cargo(ctx, plan->dist.owner(row, mj), cargo);
    // "B(*) = mB(*)": place the column at this node for the consumer.
    ctx.node<Nodes2D<Storage>>().bcol_deposit[block_key(row, mj)] = mb;
    ctx.signal_event(ep(row, mj));
  }
}

// --- Figures 13 & 15: block carriers ---------------------------------------
//
// Event keying.  Figure 13 (pipelining) uses plain EP(i,j)/EC(i,j): all
// carriers of a row enter the pipeline at the same node in mk order and
// every link preserves FIFO order, so the k-th EP at a node always pairs
// the k-th A block with the k-th deposited B block.  Figure 15 (phase
// shifting) breaks that argument: carriers enter each pipeline from
// *different* origin nodes (their first hops are the reverse staggering),
// and on an asynchronous machine a late first hop can be overtaken.  We
// therefore key the phase-shifted events by the inner block index k as
// well — EP(i,j,k) = "B(k, j) is in place at node (i,j)", EC(i,j,k) =
// "B(k, j) at node (i,j) has been consumed" — a mechanical strengthening
// of the paper's scheme that makes the pairing timing-independent.

inline navp::EventKey ep_k(int node_linear, int k) {
  return navp::EventKey{kEventProduced, node_linear, k};
}
inline navp::EventKey ec_k(int node_linear, int k) {
  return navp::EventKey{kEventConsumed, node_linear, k};
}

/// ACarrier(mi, mk) — `phase_shifted` selects the Figure 15 itinerary.
template <class Storage>
navp::Mission a_carrier(navp::Ctx ctx, const Plan2D<Storage>* plan, int mi,
                        int mk, bool phase_shifted,
                        typename Storage::Block ma) {
  navp::Cargo cargo;
  attach_block(cargo, &ma);
  const int nb = plan->cfg.nb();
  const int b = plan->cfg.block_order;
  for (int mj = 0; mj < nb; ++mj) {
    const int col = phase_shifted ? (2 * nb - 1 - mi - mk + mj) % nb
                                  : (nb - 1 - mi + mj) % nb;
    co_await navp::hop_cargo(ctx, plan->dist.owner(mi, col), cargo);
    if (phase_shifted) {
      co_await ctx.wait_event(ep_k(mi * nb + col, mk));
    } else {
      co_await ctx.wait_event(ep(mi, col));
    }
    auto& nodes = ctx.node<Nodes2D<Storage>>();
    ctx.work("C+=A*B",
             plan->cfg.testbed.gemm_seconds(
                 b, b, b, perfmodel::CacheProfile::kResident),
             [&] {
               Storage::gemm_acc(nodes.c.at(block_key(mi, col)), ma,
                                 nodes.b_slot.at(block_key(mi, col)));
             });
    if (phase_shifted) {
      ctx.signal_event(ec_k(mi * nb + col, mk));
    } else {
      ctx.signal_event(ec(mi, col));
    }
  }
}

/// BCarrier(mk, mj) — `phase_shifted` selects the Figure 15 itinerary.
template <class Storage>
navp::Mission b_carrier(navp::Ctx ctx, const Plan2D<Storage>* plan, int mk,
                        int mj, bool phase_shifted,
                        typename Storage::Block mb) {
  navp::Cargo cargo;
  attach_block(cargo, &mb);
  const int nb = plan->cfg.nb();
  for (int step = 0; step < nb; ++step) {
    const int row = phase_shifted ? (2 * nb - 1 - mj - mk + step) % nb
                                  : (nb - 1 - mj + step) % nb;
    co_await navp::hop_cargo(ctx, plan->dist.owner(row, mj), cargo);
    if (phase_shifted) {
      // Wait until the previous round's B at this node was consumed.
      co_await ctx.wait_event(ec_k(row * nb + mj, (mk + nb - 1) % nb));
    } else {
      co_await ctx.wait_event(ec(row, mj));
    }
    ctx.node<Nodes2D<Storage>>().b_slot[block_key(row, mj)] = mb;
    if (phase_shifted) {
      ctx.signal_event(ep_k(row * nb + mj, mk));
    } else {
      ctx.signal_event(ep(row, mj));
    }
  }
}

/// Figure 13's spawner(ml): injects the carriers of anti-diagonal node
/// (N-1-ml, ml), in mk order (the order the pipelines rely on).
template <class Storage>
navp::Mission spawner_pipeline(navp::Ctx ctx, const Plan2D<Storage>* plan,
                               int ml) {
  const int nb = plan->cfg.nb();
  const int mi = nb - 1 - ml;
  // Inject each carrier pair as soon as its staged blocks arrive, in mk
  // order (the order the downstream pipelines rely on).
  for (int mk = 0; mk < nb; ++mk) {
    co_await ctx.wait_event(es_a(mi, mk));
    co_await ctx.wait_event(es_b(ml, mk));
    auto& nodes = ctx.node<Nodes2D<Storage>>();
    ctx.inject("ACarrier(" + std::to_string(mi) + "," + std::to_string(mk) +
                   ")",
               a_carrier<Storage>, plan, mi, mk, false,
               std::move(nodes.a_rows.at(mi)[static_cast<std::size_t>(mk)]));
    ctx.inject("BCarrier(" + std::to_string(mk) + "," + std::to_string(ml) +
                   ")",
               b_carrier<Storage>, plan, mk, ml, false,
               std::move(nodes.b_cols.at(ml)[static_cast<std::size_t>(mk)]));
  }
  {
    auto& nodes = ctx.node<Nodes2D<Storage>>();
    nodes.a_rows.erase(mi);
    nodes.b_cols.erase(ml);
  }
  co_return;
}

/// Figure 15's spawner(mj): walks down column mj, signals the initial
/// EC (the "slot at node (mi,mj) is free for round 0" condition: the round
/// preceding k0 = (N-1-mi-mj) mod N counts as already consumed), and
/// injects the resident blocks' carriers at each node.
template <class Storage>
navp::Mission spawner_phase(navp::Ctx ctx, const Plan2D<Storage>* plan,
                            int mj) {
  const int nb = plan->cfg.nb();
  for (int mi = 0; mi < nb; ++mi) {
    co_await ctx.hop(plan->dist.owner(mi, mj), 0);
    const int k0 = ((nb - 1 - mi - mj) % nb + nb) % nb;
    ctx.signal_event(ec_k(mi * nb + mj, (k0 + nb - 1) % nb));
    auto& nodes = ctx.node<Nodes2D<Storage>>();
    auto a_it = nodes.a.find(block_key(mi, mj));
    auto b_it = nodes.b.find(block_key(mi, mj));
    NAVCPP_CHECK(a_it != nodes.a.end() && b_it != nodes.b.end(),
                 "A/B blocks not resident for phase-shifted spawner");
    // ACarrier(mi, mj): carries A(mi, mj); BCarrier(mi, mj): carries
    // B(mi, mj) (the paper's mk is the block's own index).
    ctx.inject("ACarrier(" + std::to_string(mi) + "," + std::to_string(mj) +
                   ")",
               a_carrier<Storage>, plan, mi, mj, true,
               std::move(a_it->second));
    ctx.inject("BCarrier(" + std::to_string(mi) + "," + std::to_string(mj) +
                   ")",
               b_carrier<Storage>, plan, mi, mj, true,
               std::move(b_it->second));
    nodes.a.erase(a_it);
    nodes.b.erase(b_it);
  }
}

}  // namespace detail2d

/// Run one 2-D NavP variant on the square PE grid of `engine` (pe_count
/// must be a perfect square).  Seeds the paper's initial distribution for
/// the variant, runs, gathers C into `c_out` (real storage).
template <class Storage>
MmStats navp_mm_2d(machine::Engine& engine, const MmConfig& cfg,
                   Navp2dVariant variant,
                   const linalg::BlockGrid<Storage>& a,
                   const linalg::BlockGrid<Storage>& b,
                   linalg::BlockGrid<Storage>& c_out) {
  using Nodes = detail2d::Nodes2D<Storage>;
  int grid = 1;
  while ((grid + 1) * (grid + 1) <= engine.pe_count()) ++grid;
  NAVCPP_CHECK(grid * grid == engine.pe_count(),
               "navp_mm_2d needs a square PE count");

  const auto plan = std::make_unique<detail2d::Plan2D<Storage>>(cfg, grid);
  const int nb = cfg.nb();
  const auto& dist = plan->dist;

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_hop_state_bytes(cfg.testbed.hop_state_bytes);
  rt.set_hop_cpu_overhead(cfg.testbed.hop_software_overhead);
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);

  for (int pe = 0; pe < engine.pe_count(); ++pe) {
    rt.node_store(pe).template emplace<Nodes>();
  }
  // C(i,j), initialized to 0, on node(i,j) — all variants.
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      rt.node_store(dist.owner(bi, bj))
          .template get<Nodes>()
          .c.emplace(block_key(bi, bj),
                     Storage::make(cfg.block_order, cfg.block_order));
    }
  }

  // Canonical layout for every variant: A(i,j) and B(i,j) on node(i,j).
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      auto& nodes = rt.node_store(dist.owner(bi, bj)).template get<Nodes>();
      nodes.a.emplace(block_key(bi, bj), a.at(bi, bj));
      nodes.b.emplace(block_key(bi, bj), b.at(bi, bj));
    }
  }

  if (variant == Navp2dVariant::kPhaseShifted) {
    for (int mj = 0; mj < nb; ++mj) {
      rt.inject(dist.owner(0, mj), "spawner(" + std::to_string(mj) + ")",
                detail2d::spawner_phase<Storage>, plan.get(), mj);
    }
  } else {
    // Figures 10 and 12 require A(N-1-l, *) and B(*, l) on node(N-1-l, l):
    // staging agents move them there inside the timed run, announced by
    // ES_A / ES_B events; empty slots are pre-sized at the staging nodes.
    for (int ml = 0; ml < nb; ++ml) {
      const int mi = nb - 1 - ml;
      auto& nodes = rt.node_store(dist.owner(mi, ml)).template get<Nodes>();
      nodes.a_rows.emplace(
          mi, std::vector<typename Storage::Block>(
                  static_cast<std::size_t>(nb)));
      nodes.b_cols.emplace(
          ml, std::vector<typename Storage::Block>(
                  static_cast<std::size_t>(nb)));
    }
    for (int mi = 0; mi < nb; ++mi) {
      for (int bk = 0; bk < nb; ++bk) {
        rt.inject(dist.owner(mi, bk),
                  "StageA(" + std::to_string(mi) + "," + std::to_string(bk) +
                      ")",
                  detail2d::stage_a_block<Storage>, plan.get(), mi, bk);
        rt.inject(dist.owner(bk, mi),
                  "StageB(" + std::to_string(bk) + "," + std::to_string(mi) +
                      ")",
                  detail2d::stage_b_block<Storage>, plan.get(), bk, mi);
      }
    }
    if (variant == Navp2dVariant::kDsc) {
      for (int ml = 0; ml < nb; ++ml) {
        const int mi = nb - 1 - ml;
        rt.inject(dist.owner(mi, ml), "RowCarrier(" + std::to_string(mi) + ")",
                  detail2d::row_carrier_2d_dsc<Storage>, plan.get(), mi);
        rt.inject(dist.owner(mi, ml), "ColCarrier(" + std::to_string(ml) + ")",
                  detail2d::col_carrier_2d_dsc<Storage>, plan.get(), ml);
      }
    } else {
      // Pipelining: EC(i,j) signaled initially on every node.
      for (int bi = 0; bi < nb; ++bi) {
        for (int bj = 0; bj < nb; ++bj) {
          rt.pre_signal(dist.owner(bi, bj), ec(bi, bj));
        }
      }
      for (int ml = 0; ml < nb; ++ml) {
        rt.inject(dist.owner(nb - 1 - ml, ml),
                  "spawner(" + std::to_string(ml) + ")",
                  detail2d::spawner_pipeline<Storage>, plan.get(), ml);
      }
    }
  }

  rt.run();

  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      auto& nodes = rt.node_store(dist.owner(bi, bj)).template get<Nodes>();
      c_out.at(bi, bj) = std::move(nodes.c.at(block_key(bi, bj)));
    }
  }

  MmStats stats;
  stats.seconds = engine.finish_time();
  stats.hops = rt.hop_count();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
