// The "zero-inventory" doall strawman of section 3 (Figure 3).
//
// The paper's point: parallelizing the two outer loops with doall either
// makes every PE request the same A/B entries concurrently (contention at
// the owners), or caches copies of everything everywhere (non-scalable
// replication).  This module implements the replication flavour over
// mini-MPI so the contention is measurable:
//
//   * every rank pushes each of its A blocks to all ranks in its PE row and
//     each of its B blocks to all ranks in its PE column (the "cache
//     multiple copies" solution), then
//   * computes its C tile from the replicated panels, waiting in-line for
//     whatever has not arrived yet.
//
// All replication traffic leaves at t=0 — the burst that serializes at the
// owners' NICs and stops this approach from scaling (bench_doall_contention
// sweeps the compute/communication ratio to show where it falls over).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "minimpi/world.h"
#include "mm/common.h"
#include "mm/gentleman_mm.h"
#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::mm {

namespace detailmpi {

inline constexpr minimpi::Tag kTagARepl = 7 << 20;
inline constexpr minimpi::Tag kTagBRepl = 8 << 20;

template <class Storage>
navp::Mission doall_rank(minimpi::Comm comm, const MpiPlan<Storage>* plan,
                         MpiIo<Storage>* io) {
  const MmConfig& cfg = plan->cfg;
  const int nb = cfg.nb();
  const int w = plan->dist.width();
  const auto& topo = plan->dist.topology();
  const int rank = comm.rank();
  const int pi = topo.row_of(rank);
  const int pj = topo.col_of(rank);
  const int bi0 = pi * w;
  const int bj0 = pj * w;

  using Block = typename Storage::Block;

  // Replication burst: push local A blocks across the PE row and local B
  // blocks down the PE column.  Tags carry the global block coordinate.
  for (int r = 0; r < w; ++r) {
    for (int c = 0; c < w; ++c) {
      const int bi = bi0 + r;
      const int bj = bj0 + c;
      for (int peer_col = 0; peer_col < topo.cols(); ++peer_col) {
        if (peer_col == pj) continue;
        send_block<Storage>(comm, topo.node(pi, peer_col),
                            kTagARepl + bi * nb + bj, io->a->at(bi, bj),
                            plan->block_bytes);
      }
      for (int peer_row = 0; peer_row < topo.rows(); ++peer_row) {
        if (peer_row == pi) continue;
        send_block<Storage>(comm, topo.node(peer_row, pj),
                            kTagBRepl + bi * nb + bj, io->b->at(bi, bj),
                            plan->block_bytes);
      }
    }
  }

  // Assemble the full A block-rows and B block-columns this rank's C tile
  // needs, awaiting remote blocks in-line.
  // a_rows[r][bk] = A(bi0+r, bk); b_cols[c][bk] = B(bk, bj0+c).
  std::vector<std::vector<Block>> a_rows(
      static_cast<std::size_t>(w));
  std::vector<std::vector<Block>> b_cols(
      static_cast<std::size_t>(w));
  for (int r = 0; r < w; ++r) {
    auto& row = a_rows[static_cast<std::size_t>(r)];
    row.reserve(static_cast<std::size_t>(nb));
    const int bi = bi0 + r;
    for (int bk = 0; bk < nb; ++bk) {
      const int owner = plan->dist.owner(bi, bk);
      if (owner == rank) {
        row.push_back(io->a->at(bi, bk));
      } else {
        auto msg = co_await comm.recv(owner, kTagARepl + bi * nb + bk);
        row.push_back(block_from_message<Storage>(cfg, std::move(msg)));
      }
    }
  }
  for (int c = 0; c < w; ++c) {
    auto& col = b_cols[static_cast<std::size_t>(c)];
    col.reserve(static_cast<std::size_t>(nb));
    const int bj = bj0 + c;
    for (int bk = 0; bk < nb; ++bk) {
      const int owner = plan->dist.owner(bk, bj);
      if (owner == rank) {
        col.push_back(io->b->at(bk, bj));
      } else {
        auto msg = co_await comm.recv(owner, kTagBRepl + bk * nb + bj);
        col.push_back(block_from_message<Storage>(cfg, std::move(msg)));
      }
    }
  }

  // doall body: every owned C block, fixed order.
  for (int r = 0; r < w; ++r) {
    for (int c = 0; c < w; ++c) {
      Block cblk = Storage::make(cfg.block_order, cfg.block_order);
      comm.work("C=A.B",
                cfg.testbed.gemm_seconds(cfg.block_order, cfg.block_order,
                                         cfg.order,
                                         perfmodel::CacheProfile::kAllFresh),
                [&] {
                  for (int bk = 0; bk < nb; ++bk) {
                    Storage::gemm_acc(
                        cblk,
                        a_rows[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(bk)],
                        b_cols[static_cast<std::size_t>(c)]
                              [static_cast<std::size_t>(bk)]);
                  }
                });
      io->c->at(bi0 + r, bj0 + c) = std::move(cblk);
    }
  }
  co_return;
}

}  // namespace detailmpi

/// Run the replication doall strawman on the square PE grid of `engine`.
template <class Storage>
MmStats doall_mm(machine::Engine& engine, const MmConfig& cfg,
                 const linalg::BlockGrid<Storage>& a,
                 const linalg::BlockGrid<Storage>& b,
                 linalg::BlockGrid<Storage>& c_out) {
  NAVCPP_CHECK(cfg.layout == Layout::kSlab,
               "doall_mm assumes the slab layout");
  int grid = 1;
  while ((grid + 1) * (grid + 1) <= engine.pe_count()) ++grid;
  NAVCPP_CHECK(grid * grid == engine.pe_count(),
               "doall_mm needs a square PE count");
  const auto plan = std::make_unique<detailmpi::MpiPlan<Storage>>(
      cfg, grid, StaggerMode::kDirect);
  detailmpi::MpiIo<Storage> io{&a, &b, &c_out};

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);
  minimpi::World world(rt);
  world.launch(detailmpi::doall_rank<Storage>, plan.get(), &io);
  rt.run();

  MmStats stats;
  stats.seconds = engine.finish_time();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
