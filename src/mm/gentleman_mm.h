// Gentleman's Algorithm (the paper's Figure 16) over mini-MPI, at
// algorithmic-block granularity, plus Cannon's variant.
//
// Each rank of an R x R grid owns a w x w tile of algorithmic blocks
// (w = nb / R) of A, B and C.  After the initial staggering (skew: A block
// (bi,bk) moves to block-column (bk-bi) mod nb; B block (bk,bj) to
// block-row (bk-bj) mod nb), the ranks run nb-1 iterations of "shift A one
// block-column west, shift B one block-row north, C += A*B".  Blocks that
// shift within a rank are pointer-swapped (std::move of the vector slot);
// only the tile boundary crosses the network, exactly as the paper's MPI
// implementation describes.
//
// Two staggering modes reproduce the paper's comparison:
//  * kDirect   — the paper's implementation: "matrix staggering is
//    accomplished in a single step", each block shipped straight to its
//    skewed position (Gentleman).
//  * kStepwise — the textbook Cannon/Figure-16 lines (1)-(10): nb-1 rounds
//    of conditional neighbor shifts.
//
// Faithfulness notes (section 5, point 1): the per-iteration loop over the
// local blocks runs in a fixed row-major order with the boundary receives
// awaited in-line — the "artificial sequential order" the paper charges
// against straightforward MPI code.  GEMMs use CacheProfile::kAllFresh
// (section 5, point 2: A/B/C block triples are frequently fresh in cache).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "minimpi/world.h"
#include "mm/common.h"
#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::mm {

enum class StaggerMode { kDirect, kStepwise };

namespace detailmpi {

inline constexpr minimpi::Tag kTagAStag = 1 << 20;
inline constexpr minimpi::Tag kTagBStag = 2 << 20;
inline constexpr minimpi::Tag kTagAShift = 3 << 20;
inline constexpr minimpi::Tag kTagBShift = 4 << 20;

template <class Storage>
struct MpiPlan {
  MmConfig cfg;
  Dist2D dist;
  StaggerMode stagger = StaggerMode::kDirect;
  std::size_t block_bytes = 0;

  MpiPlan(const MmConfig& c, int grid, StaggerMode mode)
      : cfg(c),
        dist(c.nb(), grid),  // the SPMD tile algorithms are slab-only
        stagger(mode),
        block_bytes(static_cast<std::size_t>(c.block_order) *
                    static_cast<std::size_t>(c.block_order) *
                    sizeof(double)) {}
};

/// Shared input/output grids the ranks seed from and gather into.  Each
/// rank touches only its own blocks, so no synchronization is needed.
template <class Storage>
struct MpiIo {
  const linalg::BlockGrid<Storage>* a = nullptr;
  const linalg::BlockGrid<Storage>* b = nullptr;
  linalg::BlockGrid<Storage>* c = nullptr;
};

/// A rank's w x w tile of blocks with local row-major indexing.
template <class Storage>
class Tile {
 public:
  using Block = typename Storage::Block;

  Tile() = default;
  explicit Tile(int w) : w_(w), blocks_(static_cast<std::size_t>(w) * w) {}

  Block& at(int r, int c) {
    return blocks_[static_cast<std::size_t>(r) * w_ + c];
  }
  int width() const { return w_; }

  /// Rotate row `r` one slot left, installing `incoming` at the right edge.
  void shift_row_west(int r, Block incoming) {
    for (int c = 0; c + 1 < w_; ++c) at(r, c) = std::move(at(r, c + 1));
    at(r, w_ - 1) = std::move(incoming);
  }
  /// Rotate column `c` one slot up, installing `incoming` at the bottom.
  void shift_col_north(int c, Block incoming) {
    for (int r = 0; r + 1 < w_; ++r) at(r, c) = std::move(at(r + 1, c));
    at(w_ - 1, c) = std::move(incoming);
  }

 private:
  int w_ = 0;
  std::vector<Block> blocks_;
};

/// Ship `blk` to `dst` (or return it for local placement when dst==rank).
template <class Storage>
void send_block(minimpi::Comm& comm, int dst, minimpi::Tag tag,
                const typename Storage::Block& blk, std::size_t wire_bytes) {
  if constexpr (Storage::kReal) {
    comm.send(dst, tag, blk.data, wire_bytes);
  } else {
    comm.send(dst, tag, {}, wire_bytes);
  }
}

template <class Storage>
typename Storage::Block block_from_message(const MmConfig& cfg,
                                           minimpi::Message msg) {
  auto blk = Storage::make(cfg.block_order, cfg.block_order);
  if constexpr (Storage::kReal) {
    NAVCPP_CHECK(msg.data.size() == blk.data.size(),
                 "received block has wrong element count");
    blk.data = std::move(msg.data);
  }
  return blk;
}

/// The SPMD rank program for Gentleman's algorithm (and Cannon's, via
/// plan->stagger).
template <class Storage>
navp::Mission gentleman_rank(minimpi::Comm comm,
                             const MpiPlan<Storage>* plan,
                             MpiIo<Storage>* io) {
  const MmConfig& cfg = plan->cfg;
  const int nb = cfg.nb();
  const int grid = plan->dist.grid();
  const int w = plan->dist.width();
  const auto& topo = plan->dist.topology();
  const int rank = comm.rank();
  const int pi = topo.row_of(rank);
  const int pj = topo.col_of(rank);
  const int bi0 = pi * w;  // first owned global block row
  const int bj0 = pj * w;  // first owned global block column

  // Seed the local tiles from the global grids.
  Tile<Storage> la(w), lb(w), lc(w);
  for (int r = 0; r < w; ++r) {
    for (int c = 0; c < w; ++c) {
      la.at(r, c) = io->a->at(bi0 + r, bj0 + c);
      lb.at(r, c) = io->b->at(bi0 + r, bj0 + c);
      lc.at(r, c) = Storage::make(cfg.block_order, cfg.block_order);
    }
  }

  // ---- initial staggering ------------------------------------------------
  if (plan->stagger == StaggerMode::kDirect) {
    // Single-step skew: ship every block straight to its target position.
    Tile<Storage> na(w), nw_b(w);
    // Outgoing.
    for (int r = 0; r < w; ++r) {
      for (int c = 0; c < w; ++c) {
        const int bi = bi0 + r;
        const int bj = bj0 + c;
        const int a_tcol = ((bj - bi) % nb + nb) % nb;
        const int a_dst = topo.node(pi, a_tcol / w);
        if (a_dst == rank) {
          na.at(r, a_tcol - bj0) = std::move(la.at(r, c));
        } else {
          send_block<Storage>(comm, a_dst, kTagAStag + bi * nb + a_tcol,
                              la.at(r, c), plan->block_bytes);
        }
        const int b_trow = ((bi - bj) % nb + nb) % nb;
        const int b_dst = topo.node(b_trow / w, pj);
        if (b_dst == rank) {
          nw_b.at(b_trow - bi0, c) = std::move(lb.at(r, c));
        } else {
          send_block<Storage>(comm, b_dst, kTagBStag + b_trow * nb + bj,
                              lb.at(r, c), plan->block_bytes);
        }
      }
    }
    // Incoming: position (bi, bj) receives A(bi, (bi+bj) mod nb) and
    // B((bi+bj) mod nb, bj).
    for (int r = 0; r < w; ++r) {
      for (int c = 0; c < w; ++c) {
        const int bi = bi0 + r;
        const int bj = bj0 + c;
        const int a_src_bk = (bi + bj) % nb;
        const int a_src = topo.node(pi, a_src_bk / w);
        if (a_src != rank) {
          auto msg = co_await comm.recv(a_src, kTagAStag + bi * nb + bj);
          na.at(r, c) = block_from_message<Storage>(cfg, std::move(msg));
        }
        const int b_src_bk = (bi + bj) % nb;
        const int b_src = topo.node(b_src_bk / w, pj);
        if (b_src != rank) {
          auto msg = co_await comm.recv(b_src, kTagBStag + bi * nb + bj);
          nw_b.at(r, c) = block_from_message<Storage>(cfg, std::move(msg));
        }
      }
    }
    la = std::move(na);
    lb = std::move(nw_b);
  } else {
    // Figure 16 lines (1)-(10): nb-1 rounds of conditional neighbor shifts.
    for (int k = 0; k + 1 < nb; ++k) {
      // A: rows with global bi > k shift one block-column west.
      std::vector<minimpi::Request> reqa(static_cast<std::size_t>(w));
      std::vector<bool> row_moves(static_cast<std::size_t>(w), false);
      for (int r = 0; r < w; ++r) {
        if (bi0 + r > k) {
          row_moves[static_cast<std::size_t>(r)] = true;
          if (grid > 1) {
            // Staggering rounds use the *Stag tag family so they can never
            // match the compute loop's shift messages.
            reqa[static_cast<std::size_t>(r)] =
                comm.irecv(topo.east(rank), kTagAStag + k * 1024 + r);
            send_block<Storage>(comm, topo.west(rank),
                                kTagAStag + k * 1024 + r, la.at(r, 0),
                                plan->block_bytes);
          }
        }
      }
      // B: columns with global bj > k shift one block-row north.
      std::vector<minimpi::Request> reqb(static_cast<std::size_t>(w));
      std::vector<bool> col_moves(static_cast<std::size_t>(w), false);
      for (int c = 0; c < w; ++c) {
        if (bj0 + c > k) {
          col_moves[static_cast<std::size_t>(c)] = true;
          if (grid > 1) {
            reqb[static_cast<std::size_t>(c)] =
                comm.irecv(topo.south(rank), kTagBStag + k * 1024 + c);
            send_block<Storage>(comm, topo.north(rank),
                                kTagBStag + k * 1024 + c, lb.at(0, c),
                                plan->block_bytes);
          }
        }
      }
      for (int r = 0; r < w; ++r) {
        if (!row_moves[static_cast<std::size_t>(r)]) continue;
        typename Storage::Block incoming;
        if (grid > 1) {
          auto msg = co_await comm.wait(reqa[static_cast<std::size_t>(r)]);
          incoming = block_from_message<Storage>(cfg, std::move(msg));
        } else {
          incoming = std::move(la.at(r, 0));
        }
        la.shift_row_west(r, std::move(incoming));
      }
      for (int c = 0; c < w; ++c) {
        if (!col_moves[static_cast<std::size_t>(c)]) continue;
        typename Storage::Block incoming;
        if (grid > 1) {
          auto msg = co_await comm.wait(reqb[static_cast<std::size_t>(c)]);
          incoming = block_from_message<Storage>(cfg, std::move(msg));
        } else {
          incoming = std::move(lb.at(0, c));
        }
        lb.shift_col_north(c, std::move(incoming));
      }
    }
  }

  // ---- multiply, then nb-1 rounds of shift + multiply ---------------------
  auto multiply_all = [&]() {
    for (int r = 0; r < w; ++r) {
      for (int c = 0; c < w; ++c) {
        comm.work("C+=A*B",
                  cfg.testbed.gemm_seconds(cfg.block_order, cfg.block_order,
                                           cfg.block_order,
                                           perfmodel::CacheProfile::kAllFresh),
                  [&] { Storage::gemm_acc(lc.at(r, c), la.at(r, c),
                                          lb.at(r, c)); });
      }
    }
  };
  multiply_all();

  for (int k = 1; k < nb; ++k) {
    std::vector<minimpi::Request> reqa(static_cast<std::size_t>(w));
    std::vector<minimpi::Request> reqb(static_cast<std::size_t>(w));
    if (grid > 1) {
      for (int r = 0; r < w; ++r) {
        reqa[static_cast<std::size_t>(r)] =
            comm.irecv(topo.east(rank), kTagAShift + k * 1024 + r);
      }
      for (int c = 0; c < w; ++c) {
        reqb[static_cast<std::size_t>(c)] =
            comm.irecv(topo.south(rank), kTagBShift + k * 1024 + c);
      }
      for (int r = 0; r < w; ++r) {
        send_block<Storage>(comm, topo.west(rank), kTagAShift + k * 1024 + r,
                            la.at(r, 0), plan->block_bytes);
      }
      for (int c = 0; c < w; ++c) {
        send_block<Storage>(comm, topo.north(rank), kTagBShift + k * 1024 + c,
                            lb.at(0, c), plan->block_bytes);
      }
    }
    // The straightforward fixed-order block loop (the paper's "artificial
    // sequential order"): boundary receives are awaited in-line.
    for (int r = 0; r < w; ++r) {
      typename Storage::Block incoming_a;
      if (grid > 1) {
        auto msg = co_await comm.wait(reqa[static_cast<std::size_t>(r)]);
        incoming_a = block_from_message<Storage>(cfg, std::move(msg));
      } else {
        incoming_a = std::move(la.at(r, 0));
      }
      la.shift_row_west(r, std::move(incoming_a));
    }
    for (int c = 0; c < w; ++c) {
      typename Storage::Block incoming_b;
      if (grid > 1) {
        auto msg = co_await comm.wait(reqb[static_cast<std::size_t>(c)]);
        incoming_b = block_from_message<Storage>(cfg, std::move(msg));
      } else {
        incoming_b = std::move(lb.at(0, c));
      }
      lb.shift_col_north(c, std::move(incoming_b));
    }
    multiply_all();
  }

  // Gather C into the shared output grid (disjoint slices per rank).
  for (int r = 0; r < w; ++r) {
    for (int c = 0; c < w; ++c) {
      io->c->at(bi0 + r, bj0 + c) = std::move(lc.at(r, c));
    }
  }
}

}  // namespace detailmpi

/// Run Gentleman's algorithm (StaggerMode::kDirect, the paper's MPI
/// comparator) or Cannon's stepwise variant on the square PE grid of
/// `engine`.
template <class Storage>
MmStats gentleman_mm(machine::Engine& engine, const MmConfig& cfg,
                     StaggerMode stagger,
                     const linalg::BlockGrid<Storage>& a,
                     const linalg::BlockGrid<Storage>& b,
                     linalg::BlockGrid<Storage>& c_out) {
  NAVCPP_CHECK(cfg.layout == Layout::kSlab,
               "gentleman_mm tiles assume the slab layout");
  int grid = 1;
  while ((grid + 1) * (grid + 1) <= engine.pe_count()) ++grid;
  NAVCPP_CHECK(grid * grid == engine.pe_count(),
               "gentleman_mm needs a square PE count");
  const auto plan =
      std::make_unique<detailmpi::MpiPlan<Storage>>(cfg, grid, stagger);
  detailmpi::MpiIo<Storage> io{&a, &b, &c_out};

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);
  minimpi::World world(rt);
  world.launch(detailmpi::gentleman_rank<Storage>, plan.get(), &io);
  rt.run();
  NAVCPP_CHECK(!world.has_leftover_messages(),
               "gentleman_mm left undelivered messages");

  MmStats stats;
  stats.seconds = engine.finish_time();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
