// The sequential baseline (the paper's Figure 2), at algorithmic-block
// granularity, plus its analytic time on the calibrated testbed (including
// the virtual-memory thrashing that forced the paper to curve-fit large-N
// sequential baselines).
#pragma once

#include "linalg/block.h"
#include "mm/common.h"

namespace navcpp::mm {

/// C += A * B over block grids, i-j-k block order (Figure 2 lifted to
/// blocks).  Pure computation — no engine, no distribution.
template <class Storage>
void sequential_mm(const linalg::BlockGrid<Storage>& a,
                   const linalg::BlockGrid<Storage>& b,
                   linalg::BlockGrid<Storage>& c) {
  NAVCPP_CHECK(a.order() == b.order() && a.order() == c.order() &&
                   a.block_order() == b.block_order() &&
                   a.block_order() == c.block_order(),
               "sequential_mm: grid shape mismatch");
  const int nb = a.nb();
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      for (int bk = 0; bk < nb; ++bk) {
        Storage::gemm_acc(c.at(bi, bj), a.at(bi, bk), b.at(bk, bj));
      }
    }
  }
}

/// Modeled wall time of the sequential run on one testbed workstation,
/// including the paging blowup once 3*N^2 doubles exceed physical memory.
inline double sequential_mm_seconds(const MmConfig& cfg) {
  return cfg.testbed.sequential_mm_seconds(cfg.order);
}

/// Modeled time had memory been unlimited (the quantity the paper estimates
/// by cubic curve fitting; see bench_table2 for the fitted version).
inline double sequential_mm_seconds_in_core(const MmConfig& cfg) {
  return cfg.testbed.gemm_seconds(cfg.order, cfg.order, cfg.order);
}

}  // namespace navcpp::mm
