// Shared vocabulary of the matrix-multiplication implementations.
//
// All algorithms operate at *algorithmic block* granularity, exactly as the
// paper prescribes for extending its fine-grained pseudocode:
//
//   "To extend our solution to a coarser level, we simply need to take each
//    and every element (e.g., C01 or A21) as a sub-matrix block."
//
// So every index (mi, mj, mk) below ranges over the nb x nb grid of
// algorithmic blocks (nb = order / block_order), and node(i, j) maps a block
// coordinate to the PE hosting the distribution block that contains it.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "linalg/block.h"
#include "navp/runtime.h"
#include "net/topology.h"
#include "perfmodel/testbed.h"
#include "support/error.h"

namespace navcpp::mm {

/// How algorithmic blocks map onto PEs.
///
///  * kSlab   — contiguous runs of nb/P blocks per PE: the paper's
///    "distribution blocks" (a distribution block = one slab).
///  * kCyclic — block b on PE b mod P (ScaLAPACK-style block-cyclic).
///    Under cyclic mapping a carrier marching over consecutive block
///    indices visits a different PE every step: more network traffic, but
///    the carriers of one row spread across the PE row instead of
///    clustering (see bench_layout_ablation).
enum class Layout { kSlab, kCyclic };

inline const char* to_string(Layout layout) {
  return layout == Layout::kSlab ? "slab" : "cyclic";
}

/// Problem description shared by every algorithm.
struct MmConfig {
  int order = 256;        ///< matrix order N
  int block_order = 64;   ///< algorithmic block order
  Layout layout = Layout::kSlab;  ///< block-to-PE mapping (NavP programs)
  perfmodel::Testbed testbed{};

  /// Number of algorithmic blocks per dimension.
  int nb() const {
    NAVCPP_CHECK(order >= 1 && block_order >= 1, "invalid MmConfig");
    NAVCPP_CHECK(order % block_order == 0,
                 "order must be a multiple of block_order for the "
                 "distributed algorithms");
    return order / block_order;
  }
};

/// 1-D block-column / block-row ownership: nb blocks over P PEs in
/// contiguous slabs (the paper's "columns of B and C are distributed").
class Dist1D {
 public:
  Dist1D(int nb, int pes, Layout layout = Layout::kSlab)
      : nb_(nb), pes_(pes), layout_(layout) {
    NAVCPP_CHECK(pes >= 1, "need at least one PE");
    NAVCPP_CHECK(nb % pes == 0,
                 "block count must divide evenly over the PEs");
    width_ = nb / pes;
  }

  int nb() const { return nb_; }
  int pes() const { return pes_; }
  Layout layout() const { return layout_; }
  /// Blocks per PE.
  int width() const { return width_; }

  /// PE hosting block index `b`.
  int owner(int b) const {
    NAVCPP_CHECK(b >= 0 && b < nb_, "block index out of range");
    return layout_ == Layout::kSlab ? b / width_ : b % pes_;
  }

 private:
  int nb_;
  int pes_;
  Layout layout_;
  int width_;
};

/// 2-D block ownership over an R x R grid: block (bi, bj) lives on the PE
/// at grid position (bi / w, bj / w).
class Dist2D {
 public:
  Dist2D(int nb, int grid, Layout layout = Layout::kSlab)
      : nb_(nb), topo_(grid, grid), layout_(layout) {
    NAVCPP_CHECK(grid >= 1, "need at least a 1x1 grid");
    NAVCPP_CHECK(nb % grid == 0,
                 "block count must divide evenly over the grid");
    width_ = nb / grid;
  }

  int nb() const { return nb_; }
  int grid() const { return topo_.rows(); }
  Layout layout() const { return layout_; }
  int width() const { return width_; }
  int pe_count() const { return topo_.pe_count(); }
  const net::Topology2D& topology() const { return topo_; }

  /// PE hosting block coordinate (bi, bj).
  int owner(int bi, int bj) const {
    check(bi);
    check(bj);
    return layout_ == Layout::kSlab
               ? topo_.node(bi / width_, bj / width_)
               : topo_.node(bi % topo_.rows(), bj % topo_.cols());
  }

 private:
  void check(int b) const {
    NAVCPP_CHECK(b >= 0 && b < nb_, "block index out of range");
  }

  int nb_;
  net::Topology2D topo_;
  Layout layout_;
  int width_;
};

/// Key for block-coordinate-indexed node-variable maps.
inline std::uint64_t block_key(int bi, int bj) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(bi)) << 32) |
         static_cast<std::uint32_t>(bj);
}

template <class Block>
using BlockMap = std::unordered_map<std::uint64_t, Block>;

/// Event families used by the NavP programs (paper's EP / EC), plus the
/// staged-data events of the canonical-layout redistribution (see below).
inline constexpr std::int32_t kEventProduced = 1;  // EP(i,j)
inline constexpr std::int32_t kEventConsumed = 2;  // EC(i,j)
inline constexpr std::int32_t kEventStagedA = 3;   // ES_A(i)
inline constexpr std::int32_t kEventStagedB = 4;   // ES_B(j)

inline navp::EventKey ep(int bi, int bj) {
  return navp::EventKey{kEventProduced, bi, bj};
}
inline navp::EventKey ec(int bi, int bj) {
  return navp::EventKey{kEventConsumed, bi, bj};
}
/// ES_A(i, k): block k of A's row i has been staged here (k = -1 is used by
/// the 1-D scatter, which moves whole rows).
inline navp::EventKey es_a(int bi, int bk = -1) {
  return navp::EventKey{kEventStagedA, bi, bk};
}
/// ES_B(j, k): block k of B's column j has been staged here.
inline navp::EventKey es_b(int bj, int bk = -1) {
  return navp::EventKey{kEventStagedB, bj, bk};
}

// Canonical-layout timing policy.
//
// The paper states a different initial distribution for every program
// (A on node(0) for 1D DSC/pipelining; A rows scattered for 1D phase
// shifting; A rows / B columns staged on the anti-diagonal for 2D DSC and
// pipelining; everything block-aligned on node(i,j) for 2D phase shifting
// and for the SPMD comparators before their skew).  To compare the
// variants fairly — and to reproduce the paper's measured orderings, where
// each transformation improves on its predecessor — every timed run here
// starts from the same *canonical* layout and performs whatever
// redistribution its variant requires inside the run, carried by staging
// agents and synchronized with ES_A/ES_B events:
//
//   1D canonical: B and C block-columns on their owners, all of A on
//      node(0).  (The 1-D story starts from a sequential program whose
//      data lives on one workstation.)  Phase shifting therefore pays the
//      scatter of A's block-rows; DSC and pipelining start for free.
//   2D canonical: A(i,j), B(i,j), C(i,j) on node(i,j).  2D DSC and
//      pipelining pay the gather of A rows / B columns onto the
//      anti-diagonal; phase shifting pays its reverse staggering through
//      its carriers' first hops; Gentleman/Cannon pay their forward skew.

/// One C += A*B block accumulation: runs the real kernel (if Storage is
/// real) and charges the calibrated cost either way.
template <class Storage>
void charged_gemm(navp::Ctx& ctx, const perfmodel::Testbed& tb,
                  perfmodel::CacheProfile profile,
                  typename Storage::Block& c,
                  const typename Storage::Block& a,
                  const typename Storage::Block& b) {
  ctx.work("gemm", tb.gemm_seconds(a.rows, b.cols, a.cols, profile),
           [&] { Storage::gemm_acc(c, a, b); });
}

/// Scoped trace attachment for the mm runners (which construct their own
/// Runtime internally): while a scope is alive, every runner invoked on
/// this thread records its execution into the given recorder.  Now an
/// alias of the runtime-wide ambient scope (navp/trace.h) — Runtime picks
/// the recorder up automatically in its constructor, so the explicit
/// `rt.set_trace(MmTraceScope::current())` in the runners is redundant
/// but harmless.  Used by the Figure-1 space-time benchmark, the trace
/// examples, and the profiler (harness/profile.h).
using MmTraceScope = navp::TraceScope;

/// Execution statistics of one distributed run.
struct MmStats {
  double seconds = 0.0;          ///< finish time (virtual or wall)
  std::uint64_t hops = 0;        ///< NavP migrations (0 for SPMD programs)
  std::uint64_t messages = 0;    ///< network messages (sim backend only)
  std::uint64_t bytes = 0;       ///< network payload bytes (sim backend only)
};

}  // namespace navcpp::mm
