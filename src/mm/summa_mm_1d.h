// Column SUMMA on a 1-D PE array — the ScaLAPACK stand-in for Table 1
// (the paper runs ScaLAPACK on the same 3-workstation "1-D network" the
// NavP 1-D programs use; a 1 x P process grid).
//
// Layout: A, B, C distributed by block-columns (the canonical 1-D layout).
// For every block step k the owner of block-column k of A sends that
// column panel to every other rank; each rank then accumulates
// C(:, own) += A(:, k) * B(k, own) from its resident B blocks.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "minimpi/world.h"
#include "mm/common.h"
#include "mm/gentleman_mm.h"
#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::mm {

namespace detailmpi {

inline constexpr minimpi::Tag kTagACol = 9 << 20;

template <class Storage>
struct Summa1dPlan {
  MmConfig cfg;
  Dist1D dist;
  std::size_t block_bytes = 0;

  Summa1dPlan(const MmConfig& c, int pes)
      : cfg(c),
        dist(c.nb(), pes),
        block_bytes(static_cast<std::size_t>(c.block_order) *
                    static_cast<std::size_t>(c.block_order) *
                    sizeof(double)) {}
};

template <class Storage>
navp::Mission summa_1d_rank(minimpi::Comm comm,
                            const Summa1dPlan<Storage>* plan,
                            MpiIo<Storage>* io) {
  const MmConfig& cfg = plan->cfg;
  const int nb = cfg.nb();
  const int w = plan->dist.width();
  const int rank = comm.rank();
  const int bj0 = rank * w;
  using Block = typename Storage::Block;

  // Local C columns (zero-initialized).
  std::vector<Block> lc;
  lc.reserve(static_cast<std::size_t>(nb) * w);
  for (int c = 0; c < w; ++c) {
    for (int bi = 0; bi < nb; ++bi) {
      lc.push_back(Storage::make(cfg.block_order, cfg.block_order));
    }
  }
  auto lc_at = [&](int c, int bi) -> Block& {
    return lc[static_cast<std::size_t>(c) * nb + bi];
  };

  for (int k = 0; k < nb; ++k) {
    const int owner = plan->dist.owner(k);
    std::vector<Block> a_panel;  // A(bi, k), bi = 0..nb-1
    a_panel.reserve(static_cast<std::size_t>(nb));
    if (owner == rank) {
      for (int peer = 0; peer < comm.size(); ++peer) {
        if (peer == rank) continue;
        for (int bi = 0; bi < nb; ++bi) {
          send_block<Storage>(comm, peer, kTagACol + k * 1024 + bi,
                              io->a->at(bi, k), plan->block_bytes);
        }
      }
      for (int bi = 0; bi < nb; ++bi) a_panel.push_back(io->a->at(bi, k));
    } else {
      for (int bi = 0; bi < nb; ++bi) {
        auto msg = co_await comm.recv(owner, kTagACol + k * 1024 + bi);
        a_panel.push_back(block_from_message<Storage>(cfg, std::move(msg)));
      }
    }
    for (int c = 0; c < w; ++c) {
      const Block& bkj = io->b->at(k, bj0 + c);
      for (int bi = 0; bi < nb; ++bi) {
        comm.work("C+=A*B",
                  cfg.testbed.gemm_seconds(
                      cfg.block_order, cfg.block_order, cfg.block_order,
                      perfmodel::CacheProfile::kResident),
                  [&] { Storage::gemm_acc(lc_at(c, bi), a_panel
                                          [static_cast<std::size_t>(bi)],
                                          bkj); });
      }
    }
  }

  for (int c = 0; c < w; ++c) {
    for (int bi = 0; bi < nb; ++bi) {
      io->c->at(bi, bj0 + c) = std::move(lc_at(c, bi));
    }
  }
  co_return;
}

}  // namespace detailmpi

/// Run the 1-D column SUMMA / ScaLAPACK stand-in on all PEs of `engine`.
template <class Storage>
MmStats summa_mm_1d(machine::Engine& engine, const MmConfig& cfg,
                    const linalg::BlockGrid<Storage>& a,
                    const linalg::BlockGrid<Storage>& b,
                    linalg::BlockGrid<Storage>& c_out) {
  NAVCPP_CHECK(cfg.layout == Layout::kSlab,
               "summa_mm_1d assumes the slab layout");
  const auto plan = std::make_unique<detailmpi::Summa1dPlan<Storage>>(
      cfg, engine.pe_count());
  detailmpi::MpiIo<Storage> io{&a, &b, &c_out};

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);
  minimpi::World world(rt);
  world.launch(detailmpi::summa_1d_rank<Storage>, plan.get(), &io);
  rt.run();
  NAVCPP_CHECK(!world.has_leftover_messages(),
               "summa_mm_1d left undelivered messages");

  MmStats stats;
  stats.seconds = engine.finish_time();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
