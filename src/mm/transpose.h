// Distributed block-matrix transpose — a communication pattern that is
// *all* exchanges: block (i,j) swaps with block (j,i), an involution, so
// by the section 5.3 analysis it needs at most two half-duplex
// communication phases no matter the grid size.  Implemented both ways:
//
//   * navp_transpose — one SwapCarrier per off-diagonal block: it picks up
//     its block, hops to the transposed owner, deposits it into a landing
//     slot and signals; the resident block's own carrier does the same in
//     the opposite direction.  The two directions of each pair are
//     completely independent (no rendezvous needed: the landing slot is
//     separate from the source slot).
//   * mpi_transpose — every rank sends its off-diagonal blocks to the
//     transposed owners and receives the replacements (pairwise exchange
//     over mini-MPI; within a rank, local pairs are pointer-swapped).
//
// Both run on either backend and either layout; results are verified
// block-for-block against the dense transpose.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "minimpi/world.h"
#include "mm/cargo_blocks.h"
#include "mm/common.h"
#include "mm/gentleman_mm.h"
#include "navp/cargo.h"
#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::mm {

namespace detail_tr {

inline constexpr minimpi::Tag kTagSwap = 15 << 20;

template <class Storage>
struct TrNodes {
  using Block = typename Storage::Block;
  BlockMap<Block> blocks;   ///< resident blocks, keyed by (bi, bj)
  BlockMap<Block> landing;  ///< incoming transposed blocks
};

template <class Storage>
struct TrPlan {
  MmConfig cfg;
  Dist2D dist;
  std::size_t block_bytes;
  TrPlan(const MmConfig& c, int grid)
      : cfg(c),
        dist(c.nb(), grid, c.layout),
        block_bytes(static_cast<std::size_t>(c.block_order) *
                    static_cast<std::size_t>(c.block_order) *
                    sizeof(double)) {}
};

template <class Storage>
navp::Mission swap_carrier(navp::Ctx ctx, const TrPlan<Storage>* plan,
                           int bi, int bj) {
  auto& nodes = ctx.node<TrNodes<Storage>>();
  auto it = nodes.blocks.find(block_key(bi, bj));
  NAVCPP_CHECK(it != nodes.blocks.end(), "block missing for transpose");
  typename Storage::Block mine = std::move(it->second);
  nodes.blocks.erase(it);
  Storage::transpose(mine);  // the block's own contents transpose too
  navp::Cargo cargo;
  attach_block(cargo, &mine);
  // The landing map is disjoint from the source map, so the two directions
  // of each pair need no rendezvous: deposit and finish.
  co_await navp::hop_cargo(ctx, plan->dist.owner(bj, bi), cargo);
  ctx.node<TrNodes<Storage>>().landing.emplace(block_key(bj, bi),
                                               std::move(mine));
}

}  // namespace detail_tr

/// NavP transpose: returns stats; `grid_io` is transposed in place.
template <class Storage>
MmStats navp_transpose(machine::Engine& engine, const MmConfig& cfg,
                       linalg::BlockGrid<Storage>& grid_io) {
  using Nodes = detail_tr::TrNodes<Storage>;
  int grid = 1;
  while ((grid + 1) * (grid + 1) <= engine.pe_count()) ++grid;
  NAVCPP_CHECK(grid * grid == engine.pe_count(),
               "navp_transpose needs a square PE count");
  const auto plan = std::make_unique<detail_tr::TrPlan<Storage>>(cfg, grid);
  const int nb = cfg.nb();

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_hop_state_bytes(cfg.testbed.hop_state_bytes);
  rt.set_hop_cpu_overhead(cfg.testbed.hop_software_overhead);
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);

  for (int pe = 0; pe < engine.pe_count(); ++pe) {
    rt.node_store(pe).template emplace<Nodes>();
  }
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      rt.node_store(plan->dist.owner(bi, bj))
          .template get<Nodes>()
          .blocks.emplace(block_key(bi, bj), grid_io.at(bi, bj));
    }
  }
  // One carrier per off-diagonal block.
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      if (bi == bj) continue;
      rt.inject(plan->dist.owner(bi, bj),
                "Swap(" + std::to_string(bi) + "," + std::to_string(bj) +
                    ")",
                detail_tr::swap_carrier<Storage>, plan.get(), bi, bj);
    }
  }
  rt.run();

  // Gather: landed blocks plus untouched diagonal ones.
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      auto& nodes =
          rt.node_store(plan->dist.owner(bi, bj)).template get<Nodes>();
      auto land = nodes.landing.find(block_key(bi, bj));
      if (land != nodes.landing.end()) {
        grid_io.at(bi, bj) = std::move(land->second);
      } else {
        auto res = nodes.blocks.find(block_key(bi, bj));
        NAVCPP_CHECK(res != nodes.blocks.end() && bi == bj,
                     "transpose lost a block");
        // Diagonal blocks stay put but transpose within.
        Storage::transpose(res->second);
        grid_io.at(bi, bj) = std::move(res->second);
      }
    }
  }

  MmStats stats;
  stats.seconds = engine.finish_time();
  stats.hops = rt.hop_count();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

namespace detail_tr {

template <class Storage>
navp::Mission transpose_rank(minimpi::Comm comm, const TrPlan<Storage>* plan,
                             detailmpi::MpiIo<Storage>* io) {
  const int nb = plan->cfg.nb();
  const int rank = comm.rank();
  // Send my off-diagonal blocks whose transposed home is remote.
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      if (plan->dist.owner(bi, bj) != rank || bi == bj) continue;
      const int dst = plan->dist.owner(bj, bi);
      if (dst == rank) continue;  // local pair: swapped below
      detailmpi::send_block<Storage>(comm, dst, kTagSwap + bi * nb + bj,
                                     io->a->at(bi, bj), plan->block_bytes);
    }
  }
  // Local pairs (both blocks on this rank): plain swap into the output.
  // Remote: receive the partner block.
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      if (plan->dist.owner(bi, bj) != rank) continue;
      typename Storage::Block blk;
      if (bi == bj) {
        blk = io->a->at(bi, bj);
      } else {
        const int src = plan->dist.owner(bj, bi);
        if (src == rank) {
          blk = io->a->at(bj, bi);
        } else {
          auto msg = co_await comm.recv(src, kTagSwap + bj * nb + bi);
          blk = detailmpi::block_from_message<Storage>(plan->cfg,
                                                       std::move(msg));
        }
      }
      Storage::transpose(blk);
      io->c->at(bi, bj) = std::move(blk);
    }
  }
}

}  // namespace detail_tr

/// mini-MPI transpose: reads `a`, writes the transposed blocks into `c`.
template <class Storage>
MmStats mpi_transpose(machine::Engine& engine, const MmConfig& cfg,
                      const linalg::BlockGrid<Storage>& a,
                      linalg::BlockGrid<Storage>& c_out) {
  int grid = 1;
  while ((grid + 1) * (grid + 1) <= engine.pe_count()) ++grid;
  NAVCPP_CHECK(grid * grid == engine.pe_count(),
               "mpi_transpose needs a square PE count");
  const auto plan = std::make_unique<detail_tr::TrPlan<Storage>>(cfg, grid);
  detailmpi::MpiIo<Storage> io{&a, nullptr, &c_out};

  navp::Runtime rt(engine);
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);
  minimpi::World world(rt);
  world.launch(detail_tr::transpose_rank<Storage>, plan.get(), &io);
  rt.run();
  NAVCPP_CHECK(!world.has_leftover_messages(),
               "mpi_transpose left undelivered messages");

  MmStats stats;
  stats.seconds = engine.finish_time();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
