// SUMMA-style block outer-product multiply — our stand-in for ScaLAPACK's
// PDGEMM (see DESIGN.md, substitutions).
//
// The paper uses ScaLAPACK 1.7 as an opaque, highly tuned comparator whose
// "logical LCM hybrid algorithmic blocking" is not user-controllable.  We
// substitute the SUMMA algorithm (the one PDGEMM is built on): for every
// block step k, the owners of block-column k of A broadcast their blocks
// along their PE row, the owners of block-row k of B broadcast along their
// PE column, and every rank accumulates C_local += A_panel * B_panel.
//
// Broadcasts are implemented as direct sends to each row/column peer
// (collision-free switch; R is 2 or 3 in the paper's grids, so trees win
// nothing).  Panel transfers overlap the previous step's compute because
// sends are eager and receives are awaited only when the panel is needed —
// this gives the stand-in the strong small-N efficiency ScaLAPACK shows in
// Tables 3 and 4.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "machine/engine.h"
#include "machine/sim_machine.h"
#include "minimpi/world.h"
#include "mm/common.h"
#include "mm/gentleman_mm.h"
#include "navp/runtime.h"
#include "navp/task.h"

namespace navcpp::mm {

namespace detailmpi {

inline constexpr minimpi::Tag kTagAPanel = 5 << 20;
inline constexpr minimpi::Tag kTagBPanel = 6 << 20;

template <class Storage>
navp::Mission summa_rank(minimpi::Comm comm, const MpiPlan<Storage>* plan,
                         MpiIo<Storage>* io) {
  const MmConfig& cfg = plan->cfg;
  const int nb = cfg.nb();
  const int w = plan->dist.width();
  const auto& topo = plan->dist.topology();
  const int rank = comm.rank();
  const int pi = topo.row_of(rank);
  const int pj = topo.col_of(rank);
  const int bi0 = pi * w;
  const int bj0 = pj * w;

  Tile<Storage> la(w), lb(w), lc(w);
  for (int r = 0; r < w; ++r) {
    for (int c = 0; c < w; ++c) {
      la.at(r, c) = io->a->at(bi0 + r, bj0 + c);
      lb.at(r, c) = io->b->at(bi0 + r, bj0 + c);
      lc.at(r, c) = Storage::make(cfg.block_order, cfg.block_order);
    }
  }

  using Block = typename Storage::Block;
  for (int k = 0; k < nb; ++k) {
    const int a_owner_col = k / w;  // grid column owning A(*, k)
    const int b_owner_row = k / w;  // grid row owning B(k, *)

    // Broadcast my share of the k panels to the peers that need them.
    if (a_owner_col == pj) {
      for (int peer_col = 0; peer_col < topo.cols(); ++peer_col) {
        if (peer_col == pj) continue;
        for (int r = 0; r < w; ++r) {
          send_block<Storage>(comm, topo.node(pi, peer_col),
                              kTagAPanel + k * 1024 + r, la.at(r, k - bj0),
                              plan->block_bytes);
        }
      }
    }
    if (b_owner_row == pi) {
      for (int peer_row = 0; peer_row < topo.rows(); ++peer_row) {
        if (peer_row == pi) continue;
        for (int c = 0; c < w; ++c) {
          send_block<Storage>(comm, topo.node(peer_row, pj),
                              kTagBPanel + k * 1024 + c, lb.at(k - bi0, c),
                              plan->block_bytes);
        }
      }
    }

    // Obtain the panels (local copies or awaited receives).
    std::vector<Block> a_panel;  // A(bi0+r, k) for r = 0..w-1
    a_panel.reserve(static_cast<std::size_t>(w));
    if (a_owner_col == pj) {
      for (int r = 0; r < w; ++r) a_panel.push_back(la.at(r, k - bj0));
    } else {
      const int src = topo.node(pi, a_owner_col);
      for (int r = 0; r < w; ++r) {
        auto msg = co_await comm.recv(src, kTagAPanel + k * 1024 + r);
        a_panel.push_back(block_from_message<Storage>(cfg, std::move(msg)));
      }
    }
    std::vector<Block> b_panel;  // B(k, bj0+c) for c = 0..w-1
    b_panel.reserve(static_cast<std::size_t>(w));
    if (b_owner_row == pi) {
      for (int c = 0; c < w; ++c) b_panel.push_back(lb.at(k - bi0, c));
    } else {
      const int src = topo.node(b_owner_row, pj);
      for (int c = 0; c < w; ++c) {
        auto msg = co_await comm.recv(src, kTagBPanel + k * 1024 + c);
        b_panel.push_back(block_from_message<Storage>(cfg, std::move(msg)));
      }
    }

    // Rank-k block update.  PDGEMM's panel copies keep operands streaming
    // through cache: the A panel block stays resident per row like the
    // sequential code.
    for (int r = 0; r < w; ++r) {
      for (int c = 0; c < w; ++c) {
        comm.work(
            "C+=A*B",
            cfg.testbed.gemm_seconds(cfg.block_order, cfg.block_order,
                                     cfg.block_order,
                                     perfmodel::CacheProfile::kResident),
            [&] {
              Storage::gemm_acc(lc.at(r, c),
                                a_panel[static_cast<std::size_t>(r)],
                                b_panel[static_cast<std::size_t>(c)]);
            });
      }
    }
  }

  for (int r = 0; r < w; ++r) {
    for (int c = 0; c < w; ++c) {
      io->c->at(bi0 + r, bj0 + c) = std::move(lc.at(r, c));
    }
  }
  co_return;
}

}  // namespace detailmpi

/// Run the SUMMA / ScaLAPACK stand-in on the square PE grid of `engine`.
template <class Storage>
MmStats summa_mm(machine::Engine& engine, const MmConfig& cfg,
                 const linalg::BlockGrid<Storage>& a,
                 const linalg::BlockGrid<Storage>& b,
                 linalg::BlockGrid<Storage>& c_out) {
  NAVCPP_CHECK(cfg.layout == Layout::kSlab,
               "summa_mm assumes the slab layout");
  int grid = 1;
  while ((grid + 1) * (grid + 1) <= engine.pe_count()) ++grid;
  NAVCPP_CHECK(grid * grid == engine.pe_count(),
               "summa_mm needs a square PE count");
  const auto plan = std::make_unique<detailmpi::MpiPlan<Storage>>(
      cfg, grid, StaggerMode::kDirect);
  detailmpi::MpiIo<Storage> io{&a, &b, &c_out};

  navp::Runtime rt(engine);
  rt.set_trace(MmTraceScope::current());
  rt.set_activation_overhead(cfg.testbed.daemon_dispatch_overhead);
  minimpi::World world(rt);
  world.launch(detailmpi::summa_rank<Storage>, plan.get(), &io);
  rt.run();
  NAVCPP_CHECK(!world.has_leftover_messages(),
               "summa_mm left undelivered messages");

  MmStats stats;
  stats.seconds = engine.finish_time();
  if (auto* sim = dynamic_cast<machine::SimMachine*>(&engine)) {
    stats.messages = sim->network().message_count();
    stats.bytes = sim->network().byte_count();
  }
  return stats;
}

}  // namespace navcpp::mm
