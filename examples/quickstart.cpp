// Quickstart: the NavP programming model in one file.
//
// A self-migrating computation (a "Messenger") is a C++20 coroutine that
// hops between PEs, carrying its locals (agent variables), reading and
// writing PE-resident node variables, and synchronizing through node-local
// events.  This example computes a distributed dot product two ways:
//
//  1. DSC — one agent visits every PE and accumulates the partial sums in
//     an agent variable (distributed *sequential* computing);
//  2. parallel — one agent per PE computes its partial locally, hops to
//     PE 0, adds its contribution, and signals; a collector waits for all
//     of them (the NavP analogue of a reduction).
//
// Run it; it narrates what happens on which PE.
#include <cstdio>
#include <numeric>
#include <vector>

#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "support/rng.h"

using navcpp::navp::Ctx;
using navcpp::navp::EventKey;
using navcpp::navp::Mission;
using navcpp::navp::Runtime;

namespace {

constexpr int kPes = 4;
constexpr EventKey kPartialDone{1, 0, 0};

/// Node variables: each PE holds a chunk of each input vector, plus the
/// result slot on PE 0.
struct Chunk {
  std::vector<double> x;
  std::vector<double> y;
  double result = 0.0;  // used on PE 0 only
};

/// Way 1: a single agent chases the data across the PEs (DSC).
Mission dsc_dot(Ctx ctx, double* out) {
  double acc = 0.0;  // agent variable: travels with the computation
  for (int pe = 0; pe < ctx.pe_count(); ++pe) {
    co_await ctx.hop(pe, sizeof(acc));
    const Chunk& chunk = ctx.node<Chunk>();
    for (std::size_t i = 0; i < chunk.x.size(); ++i) {
      acc += chunk.x[i] * chunk.y[i];
    }
    std::printf("[dsc] visited PE %d, running sum = %.3f\n", ctx.here(), acc);
  }
  *out = acc;
}

/// Way 2: one worker per PE; partials converge on PE 0.
Mission partial_worker(Ctx ctx) {
  const Chunk& chunk = ctx.node<Chunk>();
  double partial = 0.0;
  for (std::size_t i = 0; i < chunk.x.size(); ++i) {
    partial += chunk.x[i] * chunk.y[i];
  }
  const int home = ctx.here();
  co_await ctx.hop(0, sizeof(partial));  // carry the partial to PE 0
  ctx.node<Chunk>().result += partial;
  std::printf("[par] PE %d's partial %.3f delivered to PE 0\n", home,
              partial);
  ctx.signal_event(kPartialDone);
}

Mission collector(Ctx ctx, double* out) {
  for (int i = 0; i < ctx.pe_count(); ++i) {
    co_await ctx.wait_event(kPartialDone);
  }
  *out = ctx.node<Chunk>().result;
}

}  // namespace

int main() {
  navcpp::machine::ThreadedMachine machine(kPes);
  Runtime rt(machine);

  // Install node variables: a deterministic random chunk per PE.
  navcpp::support::Rng rng(2005);
  double expected = 0.0;
  for (int pe = 0; pe < kPes; ++pe) {
    auto& chunk = rt.node_store(pe).emplace<Chunk>();
    for (int i = 0; i < 1000; ++i) {
      chunk.x.push_back(rng.uniform(-1.0, 1.0));
      chunk.y.push_back(rng.uniform(-1.0, 1.0));
    }
    expected += std::inner_product(chunk.x.begin(), chunk.x.end(),
                                   chunk.y.begin(), 0.0);
  }

  double dsc_result = 0.0;
  double par_result = 0.0;
  rt.inject(0, "dsc-dot", dsc_dot, &dsc_result);
  rt.inject(0, "collector", collector, &par_result);
  for (int pe = 0; pe < kPes; ++pe) {
    rt.inject(pe, "worker" + std::to_string(pe), partial_worker);
  }
  rt.run();

  std::printf("\nexpected  %.6f\ndsc       %.6f\nparallel  %.6f\n", expected,
              dsc_result, par_result);
  std::printf("agents: %llu injected, %llu completed, %llu hops\n",
              static_cast<unsigned long long>(rt.agents_injected()),
              static_cast<unsigned long long>(rt.agents_completed()),
              static_cast<unsigned long long>(rt.hop_count()));
  const bool ok = std::abs(dsc_result - expected) < 1e-9 &&
                  std::abs(par_result - expected) < 1e-9;
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
