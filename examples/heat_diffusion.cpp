// A physical application on the NavP runtime: heat diffusion on a plate
// (Jacobi iteration), distributed over 4 PEs three ways — the traveling
// DSC agent, the sweep pipeline, and stationary dataflow agents — with the
// final temperature field printed as ASCII art and all three variants
// checked against the sequential solver.
#include <cmath>
#include <cstdio>

#include "apps/jacobi.h"
#include "machine/threaded_machine.h"

using navcpp::apps::JacobiConfig;
using navcpp::apps::JacobiGrid;
using navcpp::apps::JacobiVariant;

namespace {

void print_field(const JacobiGrid& g) {
  // Downsample to a terminal-sized heat map.
  const char* shades = " .:-=+*#%@";
  const int out_rows = 16, out_cols = 48;
  for (int r = 0; r < out_rows; ++r) {
    std::printf("    ");
    for (int c = 0; c < out_cols; ++c) {
      const int gr = r * (g.rows - 1) / (out_rows - 1);
      const int gc = c * (g.cols - 1) / (out_cols - 1);
      const double v = g.at(gr, gc);
      const int shade = std::min(9, static_cast<int>(v * 10.0));
      std::printf("%c", shades[shade]);
    }
    std::printf("\n");
  }
}

double max_diff(const JacobiGrid& a, const JacobiGrid& b) {
  double worst = 0.0;
  for (int r = 0; r < a.rows; ++r) {
    for (int c = 0; c < a.cols; ++c) {
      worst = std::max(worst, std::abs(a.at(r, c) - b.at(r, c)));
    }
  }
  return worst;
}

}  // namespace

int main() {
  JacobiConfig cfg;
  cfg.rows = 66;  // 64 interior rows over 4 PEs
  cfg.cols = 64;
  cfg.sweeps = 600;

  std::printf("heat diffusion on a %dx%d plate, %d sweeps, hot top edge\n\n",
              cfg.rows, cfg.cols, cfg.sweeps);
  const JacobiGrid initial = JacobiGrid::heated_plate(cfg.rows, cfg.cols);
  const JacobiGrid reference =
      navcpp::apps::jacobi_sequential(initial, cfg.sweeps);

  bool all_ok = true;
  for (auto v : {JacobiVariant::kDsc, JacobiVariant::kPipelined,
                 JacobiVariant::kDataflow}) {
    navcpp::machine::ThreadedMachine machine(4);
    navcpp::apps::JacobiStats stats;
    const JacobiGrid got =
        navcpp::apps::jacobi_navp(machine, cfg, v, initial, &stats);
    const double err = max_diff(got, reference);
    std::printf("%-22s hops=%-6llu max|err| vs sequential = %.2e  %s\n",
                navcpp::apps::to_string(v),
                static_cast<unsigned long long>(stats.hops), err,
                err == 0.0 ? "ok" : "WRONG");
    all_ok &= (err == 0.0);
  }

  std::printf("\nfinal temperature field:\n\n");
  print_field(reference);
  std::printf("\n%s\n", all_ok ? "all three distributions agree with the "
                                 "sequential solver."
                               : "MISMATCH!");
  return all_ok ? 0 : 1;
}
