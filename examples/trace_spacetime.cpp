// Visualize the space-time behaviour of your own NavP program — the tool
// behind the Figure 1 reproduction, shown here on a small pipeline the
// reader can modify: `stages` worker agents stream through the PEs,
// synchronized by events, and the recorder renders who computed where,
// when, and who was parked waiting.
#include <cstdio>

#include "machine/sim_machine.h"
#include "navp/runtime.h"
#include "navp/trace.h"

using navcpp::navp::Ctx;
using navcpp::navp::EventKey;
using navcpp::navp::Mission;
using navcpp::navp::Runtime;

namespace {

// Each worker hops PE to PE; on PE p it must wait until its predecessor
// has left (an event per (worker, pe) rendezvous), then "computes".
Mission pipeline_worker(Ctx ctx, int id, double work_per_pe) {
  for (int pe = 0; pe < ctx.pe_count(); ++pe) {
    co_await ctx.hop(pe, 1024);
    if (id > 0) {
      // Wait for worker id-1 to have finished its slice on this PE.
      co_await ctx.wait_event(EventKey{1, id - 1, pe});
    }
    ctx.compute(work_per_pe, "stage");
    ctx.signal_event(EventKey{1, id, pe});
  }
}

}  // namespace

int main() {
  constexpr int kPes = 4;
  constexpr int kWorkers = 6;
  navcpp::machine::SimMachine machine(kPes);
  Runtime rt(machine);
  navcpp::navp::TraceRecorder trace;
  rt.set_trace(&trace);

  for (int id = 0; id < kWorkers; ++id) {
    rt.inject(0, "worker" + std::to_string(id), pipeline_worker, id, 0.25);
  }
  rt.run();

  std::printf("a %d-worker pipeline over %d PEs "
              "(finished at %.2f virtual s):\n\n",
              kWorkers, kPes, machine.finish_time());
  std::printf("%s\n", trace.render_spacetime(kPes, 32).c_str());
  std::printf("legend: columns are PEs, rows are time; digits identify the\n"
              "agent computing, '|' an agent parked on an event, '.' idle.\n"
              "Compare with the staggered parallelograms of the paper's\n"
              "Figure 1(c).\n");
  return 0;
}
