// The Table 2 scenario as an application: you have one workstation with
// 256 MB of memory and a matrix problem that needs ~2 GB.  Run it
// sequentially and the virtual-memory system thrashes; distribute the data
// over a few networked workstations and let a *single* self-migrating
// computation chase it (DSC), and you compute at nearly in-core speed with
// almost no parallel-programming effort — the paper's motivation for
// distributed sequential computing [13].
//
// The example sweeps the number of workstations and reports when the
// per-PE working set first fits in memory.
#include <cstdio>

#include "harness/experiments.h"
#include "linalg/block.h"
#include "machine/sim_machine.h"
#include "mm/navp_mm_1d.h"
#include "mm/sequential_mm.h"

using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

int main() {
  navcpp::mm::MmConfig cfg;
  cfg.order = 9216;  // 3 matrices x 9216^2 doubles ~ 2 GB
  cfg.block_order = 128;

  const double ws_gb =
      static_cast<double>(
          navcpp::perfmodel::Testbed::mm_working_set(cfg.order)) /
      (1024.0 * 1024.0 * 1024.0);
  std::printf("problem: C = A x B at N=%d  (working set %.2f GB; each "
              "workstation has %zu MB)\n\n",
              cfg.order, ws_gb, cfg.testbed.ram_bytes >> 20);

  const double seq_actual = navcpp::mm::sequential_mm_seconds(cfg);
  const double seq_fit =
      navcpp::harness::curve_fit_sequential(cfg, {512, 1024, 1536, 2048,
                                                  2560, 3072},
                                            cfg.order);
  std::printf("sequential on one workstation: %.0f s (thrashing; the "
              "in-core estimate is %.0f s)\n\n", seq_actual, seq_fit);

  std::printf("%-6s %-14s %-12s %-16s\n", "PEs", "per-PE data", "fits?",
              "1D DSC time (s)");
  for (int pes : {2, 4, 8}) {
    if ((cfg.order / cfg.block_order) % pes != 0) continue;
    // B and C are distributed; A is carried one block-row at a time.
    const std::size_t per_pe =
        2ull * static_cast<std::size_t>(cfg.order) * cfg.order *
            sizeof(double) / pes +
        static_cast<std::size_t>(cfg.order) * cfg.block_order *
            sizeof(double);
    navcpp::machine::SimMachine m(pes, cfg.testbed.lan);
    BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
    BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    const auto stats = navcpp::mm::navp_mm_1d(
        m, cfg, navcpp::mm::Navp1dVariant::kDsc, a, b, c);
    // If the per-PE slice still exceeds physical memory, the DSC run pages
    // too (less severely): apply the same working-set model.
    const bool fits = per_pe <= cfg.testbed.ram_bytes;
    const double seconds =
        stats.seconds * cfg.testbed.paging_factor(per_pe);
    std::printf("%-6d %8.0f MB   %-12s %10.0f   (%.2fx the thrashing run)\n",
                pes, per_pe / (1024.0 * 1024.0),
                fits ? "yes" : "no (pages)", seconds,
                seq_actual / seconds);
  }

  std::printf("\none computation thread, a few hop() statements, and the "
              "paging problem is gone:\ndistributed sequential computing "
              "trades paging for a modest amount of network traffic.\n");
  return 0;
}
