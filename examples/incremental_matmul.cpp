// The paper's whole case study in one runnable walk-through: starting from
// sequential blocked matrix multiplication, apply the three NavP
// transformations — DSC, Pipelining, Phase shifting — first in one
// dimension, then in the second, verifying after every step that the
// program still computes the same product (the methodology's "every
// intermediate program is a functioning improvement" property), and
// reporting each step's simulated time on the paper's testbed.
#include <cstdio>
#include <string>

#include "linalg/block.h"
#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"

using navcpp::linalg::BlockGrid;
using navcpp::linalg::Matrix;
using navcpp::linalg::RealStorage;

namespace {

constexpr int kOrder = 96;
constexpr int kBlock = 8;

bool check(const char* step, const BlockGrid<RealStorage>& got,
           const Matrix& want, double seconds) {
  const double err = max_abs_diff(navcpp::linalg::from_blocks(got), want);
  const bool ok = err < 1e-9;
  std::printf("  %-22s %10.4f sim-s   max|err| = %.2e  %s\n", step, seconds,
              err, ok ? "ok" : "WRONG");
  return ok;
}

}  // namespace

int main() {
  std::printf("Incremental parallelization of C = A x B "
              "(N=%d, block %d)\n\n", kOrder, kBlock);
  const Matrix a = Matrix::random(kOrder, kOrder, 11);
  const Matrix b = Matrix::random(kOrder, kOrder, 22);
  const Matrix want = navcpp::linalg::multiply(a, b);
  const auto ga = navcpp::linalg::to_blocks(a, kBlock);
  const auto gb = navcpp::linalg::to_blocks(b, kBlock);

  navcpp::mm::MmConfig cfg;
  cfg.order = kOrder;
  cfg.block_order = kBlock;
  bool all_ok = true;

  std::printf("step 0: sequential (Figure 2)\n");
  {
    BlockGrid<RealStorage> gc(kOrder, kBlock);
    navcpp::mm::sequential_mm(ga, gb, gc);
    all_ok &= check("sequential", gc, want,
                    navcpp::mm::sequential_mm_seconds_in_core(cfg));
  }

  std::printf("steps 1-3: the transformations in 1-D (3 PEs)\n");
  for (auto [v, name] :
       {std::pair{navcpp::mm::Navp1dVariant::kDsc, "1D DSC (Fig 5)"},
        std::pair{navcpp::mm::Navp1dVariant::kPipelined,
                  "1D pipelining (Fig 7)"},
        std::pair{navcpp::mm::Navp1dVariant::kPhaseShifted,
                  "1D phase shift (Fig 9)"}}) {
    navcpp::machine::SimMachine m(3, cfg.testbed.lan);
    BlockGrid<RealStorage> gc(kOrder, kBlock);
    const auto stats = navcpp::mm::navp_mm_1d(m, cfg, v, ga, gb, gc);
    all_ok &= check(name, gc, want, stats.seconds);
  }

  std::printf("steps 4-6: the transformations again, in 2-D (3x3 PEs)\n");
  for (auto [v, name] :
       {std::pair{navcpp::mm::Navp2dVariant::kDsc, "2D DSC (Fig 11)"},
        std::pair{navcpp::mm::Navp2dVariant::kPipelined,
                  "2D pipelining (Fig 13)"},
        std::pair{navcpp::mm::Navp2dVariant::kPhaseShifted,
                  "2D phase shift (Fig 15)"}}) {
    navcpp::machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<RealStorage> gc(kOrder, kBlock);
    const auto stats = navcpp::mm::navp_mm_2d(m, cfg, v, ga, gb, gc);
    all_ok &= check(name, gc, want, stats.seconds);
  }

  std::printf("reference point: the classical SPMD solution\n");
  {
    navcpp::machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<RealStorage> gc(kOrder, kBlock);
    const auto stats = navcpp::mm::gentleman_mm(
        m, cfg, navcpp::mm::StaggerMode::kDirect, ga, gb, gc);
    all_ok &= check("Gentleman (Fig 16)", gc, want, stats.seconds);
  }

  std::printf("\n%s\n", all_ok
                            ? "every step is a functioning program computing "
                              "the same product — the incremental property."
                            : "MISMATCH — a step broke the product!");
  std::printf("(at this toy size the simulated times are dominated by "
              "per-message overheads;\n run bench_table1/3/4 for the "
              "paper-scale timings where each step improves.)\n");
  return all_ok ? 0 : 1;
}
