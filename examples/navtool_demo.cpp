// The paper's future work, demonstrated: navtool mechanically derives the
// NavP transformations from a loop nest's dependence facts, prints its
// reasoning, and the derived plans are directly runnable.
//
// Three nests are planned:
//   1. matmul-like  (independent, rotatable rows)  -> phase shifting
//   2. sweep-like   (cross-thread chain, Jacobi)   -> pipelining + events
//   3. no facts established                        -> DSC only
// and the matmul-like plans are executed at all three levels on the
// simulated testbed to show the derived programs inherit the incremental
// speedups.
#include <cstdio>

#include "machine/sim_machine.h"
#include "navtool/planner.h"

using navcpp::navtool::NestSpec;
using navcpp::navtool::Plan;
using navcpp::navtool::Transformation;

int main() {
  const int nb = 12, pes = 3;
  const navcpp::mm::Dist1D dist(nb, pes);

  NestSpec matmul;
  matmul.threads = nb;
  matmul.steps = nb;
  matmul.rows_independent = true;
  matmul.start_rotatable = true;
  matmul.payload_bytes = 12 * 128 * 128 * 8;  // a carried block-row
  matmul.step_cost_seconds = 0.457;           // gemm(128,128,1536)

  NestSpec sweep;
  sweep.threads = 8;
  sweep.steps = nb;
  sweep.needs_previous_thread_same_step = true;

  NestSpec unknown;
  unknown.threads = 8;
  unknown.steps = nb;

  std::printf("=== navtool: mechanical application of the NavP "
              "transformations ===\n\n");
  for (auto [name, spec] :
       {std::pair{"matmul-like nest", &matmul},
        std::pair{"sweep-chain nest", &sweep},
        std::pair{"nest with no dependence facts", &unknown}}) {
    const Plan plan = navcpp::navtool::plan_nest(*spec, dist);
    std::printf("--- %s -> %s ---\n%s\n", name,
                navcpp::navtool::to_string(plan.transformation),
                plan.rationale.c_str());
  }

  std::printf("executing the derived matmul-like plans "
              "(12x12 blocks, 3 PEs, simulated testbed):\n\n");
  const navcpp::navtool::StatementBody body =
      [&](navcpp::navp::Ctx& ctx, int, int) {
        ctx.compute(matmul.step_cost_seconds, "S(t,s)");
      };
  NestSpec as_pipe = matmul;
  as_pipe.start_rotatable = false;
  NestSpec as_dsc = matmul;
  as_dsc.rows_independent = false;
  as_dsc.start_rotatable = false;

  for (auto [label, spec] : {std::pair{"DSC          ", &as_dsc},
                             std::pair{"pipelined    ", &as_pipe},
                             std::pair{"phase-shifted", &matmul}}) {
    const Plan plan = navcpp::navtool::plan_nest(*spec, dist);
    navcpp::machine::SimMachine machine(pes);
    const auto stats =
        navcpp::navtool::execute_plan(machine, plan, *spec, body);
    std::printf("  %s  %8.2f sim-s   (%llu agents, %llu hops)\n", label,
                stats.seconds,
                static_cast<unsigned long long>(stats.agents),
                static_cast<unsigned long long>(stats.hops));
  }
  std::printf("\nthe derived programs show the paper's incremental "
              "improvements without\nany hand-written navigation code.\n");
  return 0;
}
