// CI regression gate over the committed perf trajectory: diff two
// navcpp.bench/v1 reports and exit nonzero when any metric moved against
// its declared direction by more than the tolerance.
//
//   bench_compare OLD.json NEW.json [--tolerance 0.10]
//
// Exit codes: 0 = no regression, 1 = at least one regression, 2 = usage or
// parse/validation failure.  Metrics present in only one report are listed
// but never counted as regressions (the trajectory is allowed to grow).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_compare.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare OLD.json NEW.json [--tolerance 0.10]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
      if (tolerance <= 0.0) {
        std::fprintf(stderr, "bench_compare: --tolerance must be > 0\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);
    } else {
      return usage();
    }
  }
  if (paths.size() != 2) return usage();

  std::string old_json, new_json;
  if (!read_file(paths[0], &old_json)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", paths[0].c_str());
    return 2;
  }
  if (!read_file(paths[1], &new_json)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", paths[1].c_str());
    return 2;
  }

  const auto cmp =
      navcpp::harness::compare_bench_reports(old_json, new_json, tolerance);
  if (!cmp.parse_ok) {
    std::fprintf(stderr, "bench_compare: %s\n", cmp.parse_error.c_str());
    return 2;
  }
  std::printf("%s", cmp.report.c_str());
  std::printf(
      "%d metric(s) compared, %d regression(s), %d improvement(s) at "
      "tolerance %.0f%%\n",
      cmp.compared, cmp.regressions, cmp.improvements, tolerance * 100.0);
  return cmp.regressions > 0 ? 1 : 0;
}
