// navcpp_cli — command-line driver for the simulated-testbed experiments.
//
//   navcpp_cli mm      --order 3072 --block 128 --pes 9 --algo phase2d
//                      [--layout slab|cyclic] [--verify]
//   navcpp_cli jacobi  --rows 1538 --cols 1536 --sweeps 48 --pes 8
//                      --variant dsc|pipeline|dataflow
//   navcpp_cli lu      --order 1536 --block 128 --pes 4
//                      --variant dsc|pipeline
//   navcpp_cli table   --id 1|2|3|4
//   navcpp_cli stagger --pes 9
//   navcpp_cli plan    --threads 12 --steps 12 --pes 3
//                      [--independent] [--rotatable] [--chain]
//   navcpp_cli chaos   [--seeds N] [--seed S] [--case SUBSTR] [--shuffle]
//                      [--verbose]
//   navcpp_cli fault   [--seeds N] [--seed S] [--case SUBSTR] [--drop P]
//                      [--dup P] [--corrupt P] [--backend sim|proc]
//                      [--verbose]
//   navcpp_cli run     --program NAME [--backend sim|threaded|proc]
//                      [--strict] [--metrics] [--recover] [--star]
//                      [--kill PE@N[,PE@N...]] [--trace FILE.json]
//   navcpp_cli profile --program NAME [--backend sim|proc]
//                      [--out FILE.json] [--check] [--metrics]
//   navcpp_cli top     PROGRAM [--backend proc] [--interval S]
//   navcpp_cli bench   [--quick] [--rev LABEL] [--out FILE.json]
//
// Every run happens on the calibrated simulation of the paper's testbed
// unless a --backend selects the threaded (wall-clock) or proc
// (process-per-PE) machine; `--verify` (mm) additionally executes with real
// data and checks the product against a dense reference.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/jacobi.h"
#include "apps/lu.h"
#include "harness/bench_runner.h"
#include "harness/chaos_suite.h"
#include "harness/experiments.h"
#include "harness/fault_suite.h"
#include "harness/profile.h"
#include "harness/workloads.h"
#include "harness/paper_data.h"
#include "harness/text_table.h"
#include "linalg/gemm.h"
#include "linalg/stagger.h"
#include "machine/proc_machine.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "mm/doall_mm.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"
#include "mm/summa_mm.h"
#include "mm/summa_mm_1d.h"
#include "navp/runtime.h"
#include "navp/trace.h"
#include "navtool/planner.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/proc_trace.h"

namespace {

using navcpp::harness::TextTable;

struct Args {
  std::string command;
  std::vector<std::string> positionals;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  int get_int(const std::string& key, int fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atoi(it->second.c_str());
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      args.positionals.push_back(key);
      continue;
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.flags[key] = true;
    }
  }
  return args;
}

int usage() {
  std::printf(
      "usage: navcpp_cli <command> [options]\n"
      "  mm      --order N --block B --pes P --algo "
      "seq|dsc1d|pipe1d|phase1d|dsc2d|pipe2d|phase2d|gentleman|cannon|"
      "summa|summa1d|doall [--layout slab|cyclic] [--verify]\n"
      "  jacobi  --rows R --cols C --sweeps T --pes P --variant "
      "dsc|pipeline|dataflow\n"
      "  lu      --order N --block B --pes P --variant dsc|pipeline\n"
      "  table   --id 1|2|3|4\n"
      "  stagger --pes P\n"
      "  plan    --threads T --steps S --pes P [--independent] "
      "[--rotatable] [--chain]\n"
      "  chaos   [--seeds N] [--seed S] [--case SUBSTR] [--shuffle] "
      "[--verbose]\n"
      "  fault   [--seeds N] [--seed S] [--case SUBSTR] [--drop P] "
      "[--dup P] [--corrupt P] [--backend sim|proc] [--verbose]\n"
      "  run     --program NAME [--backend sim|threaded|proc] [--strict] "
      "[--metrics] [--recover] [--star] [--kill PE@N[,PE@N...]] "
      "[--trace FILE.json]\n"
      "  profile --program NAME [--backend sim|proc] [--out FILE.json] "
      "[--check] [--metrics]\n"
      "  top     PROGRAM [--backend proc] [--interval S]\n"
      "  bench   [--quick] [--rev LABEL] [--out FILE.json]\n");
  return 2;
}

// Schedule-fuzz the distributed programs.  `--seeds N` sweeps N consecutive
// seeds (stress mode); `--seed S` replays exactly one seed verbosely, which
// is how a failure found by chaos_sweep or CI is reproduced.
int run_chaos(const Args& args) {
  navcpp::machine::ChaosConfig cfg;
  cfg.shuffle_same_pe = args.has("shuffle");
  const std::string filter = args.get("case", "");

  if (args.has("seed") || args.has("seeds") || args.has("case")) {
    // A value-less `--seed` would silently fall through to sweep mode —
    // the opposite of the replay the user asked for.
    std::fprintf(stderr, "chaos: missing value after --seed/--seeds/--case\n");
    return usage();
  }
  if (args.options.count("seed") > 0) {
    const auto seed =
        std::strtoull(args.get("seed", "1").c_str(), nullptr, 10);
    const auto report =
        navcpp::harness::chaos_sweep(seed, 1, cfg, /*verbose=*/true, filter);
    if (report.failed) {
      const auto& f = report.first_failure;
      std::printf("FAIL: case %s, seed %llu: %s\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.seed), f.detail.c_str());
      if (!f.metrics.empty()) {
        std::printf("metrics snapshot of the failing run:\n%s",
                    f.metrics.c_str());
      }
      return 1;
    }
    std::printf("seed %llu: all %d case-run(s) ok\n",
                static_cast<unsigned long long>(seed), report.cases_run);
    return 0;
  }

  const int seeds = args.get_int("seeds", 16);
  if (seeds < 1) {
    std::fprintf(stderr, "chaos: --seeds must be >= 1 (got %d)\n", seeds);
    return 2;
  }
  const auto report = navcpp::harness::chaos_sweep(
      1, seeds, cfg, args.has("verbose"), filter);
  if (report.failed) {
    const auto& f = report.first_failure;
    std::printf("FAIL: case %s, seed %llu: %s\n", f.name.c_str(),
                static_cast<unsigned long long>(f.seed), f.detail.c_str());
    std::printf("replay: navcpp_cli chaos --seed %llu --case %s%s\n",
                static_cast<unsigned long long>(f.seed), f.name.c_str(),
                cfg.shuffle_same_pe ? " --shuffle" : "");
    if (!f.metrics.empty()) {
      std::printf("metrics snapshot of the failing run:\n%s",
                  f.metrics.c_str());
    }
    return 1;
  }
  std::printf("chaos sweep ok: %d seed(s), %d case-run(s), no failures\n",
              report.seeds_run, report.cases_run);
  return 0;
}

// Fault-inject the distributed programs (drop/dup/corrupt frames, masked by
// the reliability layer) plus the crash-recovery ring.  `--seeds N` sweeps N
// consecutive seeds; `--seed S` replays exactly one seed verbosely, which is
// how a failure found by fault_sweep or CI is reproduced.
int run_fault(const Args& args) {
  navcpp::machine::FaultPlan plan;
  plan.drop_prob = std::atof(args.get("drop", "0.05").c_str());
  plan.duplicate_prob = std::atof(args.get("dup", "0.02").c_str());
  plan.corrupt_prob = std::atof(args.get("corrupt", "0.01").c_str());
  const std::string filter = args.get("case", "");
  const std::string backend_name = args.get("backend", "sim");

  if (args.has("seed") || args.has("seeds") || args.has("case") ||
      args.has("drop") || args.has("dup") || args.has("corrupt") ||
      args.has("backend")) {
    // A value-less option would silently fall back to its default — the
    // opposite of the run the user asked for.
    std::fprintf(stderr,
                 "fault: missing value after "
                 "--seed/--seeds/--case/--drop/--dup/--corrupt/--backend\n");
    return usage();
  }
  if (backend_name != "sim" && backend_name != "proc") {
    std::fprintf(stderr, "fault: unknown --backend %s (sim|proc)\n",
                 backend_name.c_str());
    return 2;
  }
  const auto backend = backend_name == "proc"
                           ? navcpp::harness::FaultBackend::kProc
                           : navcpp::harness::FaultBackend::kSim;
  if (args.options.count("seed") > 0) {
    const auto seed =
        std::strtoull(args.get("seed", "1").c_str(), nullptr, 10);
    plan.seed = seed;
    const auto report = navcpp::harness::fault_sweep(
        seed, 1, plan, /*verbose=*/true, filter, backend);
    if (report.failed) {
      const auto& f = report.first_failure;
      std::printf("FAIL: case %s, seed %llu: %s\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.seed), f.detail.c_str());
      if (!f.metrics.empty()) {
        std::printf("metrics snapshot of the failing run:\n%s",
                    f.metrics.c_str());
      }
      return 1;
    }
    std::printf("seed %llu: all %d case-run(s) ok\n",
                static_cast<unsigned long long>(seed), report.cases_run);
    return 0;
  }

  const int seeds = args.get_int("seeds", 16);
  if (seeds < 1) {
    std::fprintf(stderr, "fault: --seeds must be >= 1 (got %d)\n", seeds);
    return 2;
  }
  const auto report = navcpp::harness::fault_sweep(
      1, seeds, plan, args.has("verbose"), filter, backend);
  if (report.failed) {
    const auto& f = report.first_failure;
    std::printf("FAIL: case %s, seed %llu: %s\n", f.name.c_str(),
                static_cast<unsigned long long>(f.seed), f.detail.c_str());
    std::printf(
        "replay: navcpp_cli fault --seed %llu --case %s --drop %g --dup %g "
        "--corrupt %g\n",
        static_cast<unsigned long long>(f.seed), f.name.c_str(),
        plan.drop_prob, plan.duplicate_prob, plan.corrupt_prob);
    if (!f.metrics.empty()) {
      std::printf("metrics snapshot of the failing run:\n%s",
                  f.metrics.c_str());
    }
    return 1;
  }
  std::printf("fault sweep ok: %d seed(s), %d case-run(s), no failures\n",
              report.seeds_run, report.cases_run);
  return 0;
}

// Profile one workload: per-PE compute/comm/wait table on stdout, Chrome
// trace-event JSON to --out, full metrics snapshot with --metrics.
// --backend sim (default) derives everything from virtual time and is
// byte-identical run to run; --backend proc runs on the process-per-PE
// machine and fills the table from worker-side wall-clock measurements
// (the trace is the merged cross-process view).  --check validates the
// JSON structurally and cross-checks the exported "net.bytes" counter
// against the network layer byte-for-byte, exiting nonzero on any
// mismatch (the profile smoke tests use this).
int run_profile(const Args& args) {
  const std::string program = args.get("program", "");
  if (program.empty()) {
    std::fprintf(stderr, "profile: --program NAME is required; names:\n");
    for (const auto& name : navcpp::harness::workload_names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 2;
  }
  const std::string backend = args.get("backend", "sim");
  if (backend != "sim" && backend != "proc") {
    std::fprintf(stderr, "profile: unknown --backend %s (sim|proc)\n",
                 backend.c_str());
    return 2;
  }
  const auto result = backend == "proc"
                          ? navcpp::harness::profile_workload_proc(program)
                          : navcpp::harness::profile_workload(program);
  std::printf("%s  backend=%s  PEs=%d  %s %.6f s  verify: %s (%s)\n",
              result.program.c_str(), result.backend.c_str(),
              result.pe_count, backend == "proc" ? "wall" : "simulated",
              result.finish_time, result.ok ? "OK" : "FAILED",
              result.detail.c_str());
  std::printf("%s", result.table.c_str());
  std::printf("network: %llu message(s), %llu byte(s); exported net.bytes %s\n",
              static_cast<unsigned long long>(result.network_messages),
              static_cast<unsigned long long>(result.network_bytes),
              result.bytes_match ? "matches" : "MISMATCH");
  if (args.has("metrics")) {
    std::printf("metrics snapshot:\n%s", result.snapshot.to_string().c_str());
  }

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "profile: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << result.trace_json;
    std::printf("trace written to %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                out_path.c_str());
  }

  if (args.has("check")) {
    std::string error;
    if (!navcpp::obs::validate_chrome_trace(result.trace_json, &error)) {
      std::fprintf(stderr, "profile: trace JSON invalid: %s\n",
                   error.c_str());
      return 1;
    }
    if (!result.bytes_match) {
      std::fprintf(stderr,
                   "profile: exported net.bytes does not match the "
                   "NetworkModel\n");
      return 1;
    }
    if (!result.ok) {
      std::fprintf(stderr, "profile: result verification failed: %s\n",
                   result.detail.c_str());
      return 1;
    }
    std::printf("check: trace JSON valid, byte counts consistent\n");
  }
  return 0;
}

// Run the curated perf suite (harness/bench_runner.h) and emit a
// navcpp.bench/v1 JSON report.  `--quick` is the CI smoke profile; the full
// profile is what committed BENCH_<rev>.json files are made from.  The
// emitted document is validated before it is written, so a bug in the
// emitter fails loudly here rather than in a later bench_compare.
int run_bench(const Args& args) {
  navcpp::harness::BenchOptions options;
  options.quick = args.has("quick");
  options.revision = args.get("rev", "dev");
  if (options.revision.empty()) {
    std::fprintf(stderr, "bench: --rev needs a non-empty label\n");
    return 2;
  }

  std::printf("running %s bench suite (rev %s)...\n",
              options.quick ? "quick" : "full", options.revision.c_str());
  const auto report = navcpp::harness::run_bench_suite(options);

  TextTable table({"metric", "value", "unit", "direction"});
  for (const auto& [name, metric] : report.metrics) {
    table.add_row({name, TextTable::num(metric.value, 4), metric.unit,
                   metric.higher_is_better ? "higher" : "lower"});
  }
  std::printf("%s", table.str().c_str());

  const std::string json = report.to_json();
  std::string error;
  if (!navcpp::harness::validate_bench_json(json, &error)) {
    std::fprintf(stderr, "bench: emitted report failed validation: %s\n",
                 error.c_str());
    return 1;
  }

  const std::string out_path =
      args.get("out", "BENCH_" + options.revision + ".json");
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s (schema navcpp.bench/v1)\n",
              out_path.c_str());
  return 0;
}

int run_mm(const Args& args) {
  navcpp::mm::MmConfig cfg;
  cfg.order = args.get_int("order", 1536);
  cfg.block_order = args.get_int("block", 128);
  cfg.layout = args.get("layout", "slab") == "cyclic"
                   ? navcpp::mm::Layout::kCyclic
                   : navcpp::mm::Layout::kSlab;
  const int pes = args.get_int("pes", 3);
  const std::string algo = args.get("algo", "phase1d");

  using navcpp::linalg::BlockGrid;
  using navcpp::linalg::PhantomStorage;
  using navcpp::linalg::RealStorage;

  auto dispatch = [&](const navcpp::mm::MmConfig& cfg, auto& machine,
                      const auto& a, const auto& b,
                      auto& c) -> navcpp::mm::MmStats {
    using navcpp::mm::Navp1dVariant;
    using navcpp::mm::Navp2dVariant;
    using navcpp::mm::StaggerMode;
    if (algo == "dsc1d") {
      return navp_mm_1d(machine, cfg, Navp1dVariant::kDsc, a, b, c);
    }
    if (algo == "pipe1d") {
      return navp_mm_1d(machine, cfg, Navp1dVariant::kPipelined, a, b, c);
    }
    if (algo == "phase1d") {
      return navp_mm_1d(machine, cfg, Navp1dVariant::kPhaseShifted, a, b, c);
    }
    if (algo == "dsc2d") {
      return navp_mm_2d(machine, cfg, Navp2dVariant::kDsc, a, b, c);
    }
    if (algo == "pipe2d") {
      return navp_mm_2d(machine, cfg, Navp2dVariant::kPipelined, a, b, c);
    }
    if (algo == "phase2d") {
      return navp_mm_2d(machine, cfg, Navp2dVariant::kPhaseShifted, a, b, c);
    }
    if (algo == "gentleman") {
      return gentleman_mm(machine, cfg, StaggerMode::kDirect, a, b, c);
    }
    if (algo == "cannon") {
      return gentleman_mm(machine, cfg, StaggerMode::kStepwise, a, b, c);
    }
    if (algo == "summa") return summa_mm(machine, cfg, a, b, c);
    if (algo == "summa1d") return summa_mm_1d(machine, cfg, a, b, c);
    if (algo == "doall") return doall_mm(machine, cfg, a, b, c);
    throw navcpp::support::ConfigError("unknown --algo " + algo);
  };

  const double seq = navcpp::mm::sequential_mm_seconds_in_core(cfg);
  if (algo == "seq") {
    std::printf("sequential (in-core model): %.2f s; with paging: %.2f s\n",
                seq, navcpp::mm::sequential_mm_seconds(cfg));
    return 0;
  }

  navcpp::machine::SimMachine machine(pes, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
  const auto stats = dispatch(cfg, machine, a, b, c);
  std::printf("%s  N=%d blk=%d PEs=%d layout=%s\n", algo.c_str(), cfg.order,
              cfg.block_order, pes, navcpp::mm::to_string(cfg.layout));
  std::printf("  simulated time   %.2f s\n", stats.seconds);
  std::printf("  speedup vs seq   %.2f\n", seq / stats.seconds);
  std::printf("  hops=%llu messages=%llu bytes=%.1f MB\n",
              static_cast<unsigned long long>(stats.hops),
              static_cast<unsigned long long>(stats.messages),
              static_cast<double>(stats.bytes) / 1e6);

  if (args.has("verify")) {
    // Re-run at a small size compatible with the PE count, with real data.
    navcpp::mm::MmConfig vcfg = cfg;
    vcfg.block_order = 4;
    int grid = 1;
    while ((grid + 1) * (grid + 1) <= pes) ++grid;
    const bool is_2d = algo == "dsc2d" || algo == "pipe2d" ||
                       algo == "phase2d" || algo == "gentleman" ||
                       algo == "cannon" || algo == "summa" ||
                       algo == "doall";
    const int nb = is_2d ? 4 * grid : 2 * pes;
    vcfg.order = nb * vcfg.block_order;
    const auto ma = navcpp::linalg::Matrix::random(vcfg.order, vcfg.order, 1);
    const auto mb = navcpp::linalg::Matrix::random(vcfg.order, vcfg.order, 2);
    auto ga = navcpp::linalg::to_blocks(ma, vcfg.block_order);
    auto gb = navcpp::linalg::to_blocks(mb, vcfg.block_order);
    BlockGrid<RealStorage> gc(vcfg.order, vcfg.block_order);
    navcpp::machine::SimMachine m2(pes, vcfg.testbed.lan);
    dispatch(vcfg, m2, ga, gb, gc);
    const double err = navcpp::linalg::max_abs_diff(
        navcpp::linalg::from_blocks(gc), navcpp::linalg::multiply(ma, mb));
    std::printf("  verify (N=%d real data): max|err| = %.2e %s\n",
                vcfg.order, err, err < 1e-9 ? "OK" : "FAILED");
    if (err >= 1e-9) return 1;
  }
  return 0;
}

int run_jacobi(const Args& args) {
  navcpp::apps::JacobiConfig cfg;
  cfg.rows = args.get_int("rows", 770);
  cfg.cols = args.get_int("cols", 768);
  cfg.sweeps = args.get_int("sweeps", 24);
  const int pes = args.get_int("pes", 4);
  const std::string v = args.get("variant", "dataflow");
  const auto variant = v == "dsc"        ? navcpp::apps::JacobiVariant::kDsc
                       : v == "pipeline" ? navcpp::apps::JacobiVariant::kPipelined
                                         : navcpp::apps::JacobiVariant::kDataflow;
  const double seq = navcpp::apps::jacobi_sequential_seconds(
      cfg.testbed, cfg.rows, cfg.cols, cfg.sweeps);
  navcpp::machine::SimMachine m(pes, cfg.testbed.lan);
  navcpp::apps::JacobiStats stats;
  navcpp::apps::jacobi_navp(
      m, cfg, variant,
      navcpp::apps::JacobiGrid::heated_plate(cfg.rows, cfg.cols), &stats);
  std::printf("%s  %dx%d, %d sweeps, %d PEs\n",
              navcpp::apps::to_string(variant), cfg.rows, cfg.cols,
              cfg.sweeps, pes);
  std::printf("  simulated %.2f s (sequential %.2f s, speedup %.2f)\n",
              stats.seconds, seq, seq / stats.seconds);
  return 0;
}

int run_lu(const Args& args) {
  navcpp::apps::LuConfig cfg;
  cfg.order = args.get_int("order", 1536);
  cfg.block_order = args.get_int("block", 128);
  const int pes = args.get_int("pes", 4);
  const auto variant = args.get("variant", "pipeline") == "dsc"
                           ? navcpp::apps::LuVariant::kDsc
                           : navcpp::apps::LuVariant::kPipelined;
  const auto a = navcpp::apps::diagonally_dominant(cfg.order, 17);
  navcpp::machine::SimMachine m(pes, cfg.testbed.lan);
  navcpp::apps::LuStats stats;
  const auto [l, u] = navcpp::apps::lu_navp(m, cfg, variant, a, &stats);
  const double seq = navcpp::apps::lu_sequential_seconds(cfg);
  std::printf("%s  N=%d blk=%d PEs=%d\n", navcpp::apps::to_string(variant),
              cfg.order, cfg.block_order, pes);
  std::printf("  simulated %.2f s (sequential %.2f s, speedup %.2f)\n",
              stats.seconds, seq, seq / stats.seconds);
  std::printf("  reconstruction max|A - LU| = %.2e\n",
              navcpp::apps::lu_reconstruction_error(a, l, u));
  return 0;
}

int run_table(const Args& args) {
  const int id = args.get_int("id", 1);
  const navcpp::mm::MmConfig base;
  TextTable table({"N", "blk", "variant", "sim(s)", "speedup"});
  auto add1d = [&](const navcpp::harness::Measured1D& m) {
    const double seq = m.seq_in_core;
    table.add_row({std::to_string(m.order), std::to_string(m.block), "dsc1d",
                   TextTable::num(m.dsc), TextTable::num(seq / m.dsc)});
    table.add_row({std::to_string(m.order), std::to_string(m.block),
                   "pipe1d", TextTable::num(m.pipe),
                   TextTable::num(seq / m.pipe)});
    table.add_row({std::to_string(m.order), std::to_string(m.block),
                   "phase1d", TextTable::num(m.phase),
                   TextTable::num(seq / m.phase)});
  };
  auto add2d = [&](const navcpp::harness::Measured2D& m) {
    const double seq = m.seq_in_core;
    for (auto [name, t] :
         {std::pair{"gentleman", m.mpi}, {"dsc2d", m.dsc}, {"pipe2d", m.pipe},
          {"phase2d", m.phase}, {"summa", m.summa}}) {
      table.add_row({std::to_string(m.order), std::to_string(m.block), name,
                     TextTable::num(t), TextTable::num(seq / t)});
    }
  };
  switch (id) {
    case 1:
      for (const auto& p : navcpp::harness::paper_table1()) {
        add1d(navcpp::harness::measure_1d_row(p.order, p.block, 3, base));
      }
      break;
    case 2: {
      const auto& p = navcpp::harness::paper_table2();
      add1d(navcpp::harness::measure_1d_row(p.order, p.block, 8, base));
      break;
    }
    case 3:
      for (const auto& p : navcpp::harness::paper_table3()) {
        add2d(navcpp::harness::measure_2d_row(p.order, p.block, 2, base));
      }
      break;
    case 4:
      for (const auto& p : navcpp::harness::paper_table4()) {
        add2d(navcpp::harness::measure_2d_row(p.order, p.block, 3, base));
      }
      break;
    default:
      return usage();
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int run_stagger(const Args& args) {
  const int pes = args.get_int("pes", 9);
  std::printf("forward staggering: %d phase(s); reverse staggering: %d "
              "phase(s)\n",
              navcpp::linalg::forward_stagger_phases(pes),
              navcpp::linalg::reverse_stagger_phases(pes));
  return 0;
}

// Run one catalog workload end to end on a chosen backend and verify it.
// --backend proc executes it on the process-per-PE machine — one worker
// process per PE, every hop crossing a real address-space boundary — and
// prints the per-PE worker counters the parent collected at quiesce.
// --strict additionally serializes/restores all declared agent cargo
// around every hop (navp::StrictMigrationScope).
//
// Crash drill (proc only): --recover enables the supervisor's respawn
// policy and --kill PE@N[,PE@N...] SIGKILLs each listed worker after its
// Nth cross-PE transmit.  Coroutine frames live in the parent, so a
// respawned worker plus retained-frame replay must reproduce the exact
// fault-free result — the verify line still demands bit-identical.
int run_run(const Args& args) {
  const std::string program = args.get("program", "");
  if (program.empty()) {
    std::fprintf(stderr, "run: --program NAME is required; names:\n");
    for (const auto& name : navcpp::harness::workload_names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 2;
  }
  const std::string backend = args.get("backend", "sim");
  const int pes = navcpp::harness::workload_pe_count(program);

  // --kill PE@N[,PE@N...]: SIGKILL PE's worker after its Nth transmit.
  struct KillAt {
    int pe;
    std::uint64_t transmits;
  };
  std::vector<KillAt> kills;
  const std::string kill_spec = args.get("kill", "");
  if (!kill_spec.empty()) {
    const std::string& spec = kill_spec;
    for (std::size_t pos = 0; pos < spec.size();) {
      const std::size_t comma = spec.find(',', pos);
      const std::string item =
          spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const std::size_t at = item.find('@');
      if (at == std::string::npos) {
        std::fprintf(stderr, "run: --kill wants PE@TRANSMITS, got '%s'\n",
                     item.c_str());
        return 2;
      }
      KillAt k;
      k.pe = std::atoi(item.substr(0, at).c_str());
      k.transmits = std::strtoull(item.substr(at + 1).c_str(), nullptr, 10);
      if (k.pe < 0 || k.pe >= pes || k.transmits < 1) {
        std::fprintf(stderr, "run: bad --kill entry '%s' (PE in [0,%d), "
                     "TRANSMITS >= 1)\n", item.c_str(), pes);
        return 2;
      }
      kills.push_back(k);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if ((!kills.empty() || args.has("recover")) && backend != "proc") {
    std::fprintf(stderr, "run: --kill/--recover require --backend proc\n");
    return 2;
  }
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty() && backend == "threaded") {
    std::fprintf(stderr, "run: --trace supports --backend sim|proc\n");
    return 2;
  }

  navcpp::obs::Registry registry;
  std::unique_ptr<navcpp::machine::Engine> engine;
  navcpp::machine::ProcMachine* proc = nullptr;
  if (backend == "sim") {
    engine = std::make_unique<navcpp::machine::SimMachine>(
        pes, navcpp::harness::workload_link(program));
  } else if (backend == "threaded") {
    auto m = std::make_unique<navcpp::machine::ThreadedMachine>(pes);
    m->set_stall_timeout(60.0);
    engine = std::move(m);
  } else if (backend == "proc") {
    navcpp::machine::ProcMachine::Options opt;
    opt.trace = !trace_path.empty();
    // Hops ride the direct worker<->worker mesh by default; --star pins
    // the parent-relay data plane (A/B runs, and an escape hatch should a
    // platform misbehave on the mesh).  --mesh is accepted for symmetry.
    if (args.has("star")) opt.mesh = false;
    if (args.has("mesh")) opt.mesh = true;
    if (args.has("recover")) {
      opt.recovery.enabled = true;
      opt.recovery.max_respawns = 8;
    }
    auto m = std::make_unique<navcpp::machine::ProcMachine>(pes, opt);
    m->set_stall_timeout(60.0);
    for (const KillAt& k : kills) {
      m->schedule_kill_after_transmits(k.pe, k.transmits);
    }
    proc = m.get();
    engine = std::move(m);
  } else {
    std::fprintf(stderr, "run: unknown --backend %s (sim|threaded|proc)\n",
                 backend.c_str());
    return 2;
  }
  engine->set_metrics(&registry);

  navcpp::navp::TraceRecorder trace;
  std::vector<double> got;
  {
    navcpp::obs::MetricsScope metrics(&registry);
    std::optional<navcpp::navp::TraceScope> tracing;
    if (!trace_path.empty()) tracing.emplace(&trace);
    std::optional<navcpp::navp::StrictMigrationScope> strict;
    if (args.has("strict")) strict.emplace();
    got = navcpp::harness::run_workload(program, *engine);
  }

  const auto check = navcpp::harness::check_workload(program, got);
  const bool identical =
      got == navcpp::harness::workload_reference(program);
  std::printf("%s  backend=%s  PEs=%d%s\n", program.c_str(), backend.c_str(),
              pes, args.has("strict") ? "  strict-migration" : "");
  std::printf("  verify: %s (%s); vs sim reference: %s\n",
              check.ok ? "OK" : "FAILED", check.detail.c_str(),
              identical ? "bit-identical" : "DIVERGED");

  if (proc != nullptr && (proc->worker_deaths() > 0 || args.has("recover"))) {
    std::printf("  crash drill: %llu worker death(s), %llu respawn(s), "
                "last recovery %.1f ms\n",
                static_cast<unsigned long long>(proc->worker_deaths()),
                static_cast<unsigned long long>(proc->total_respawns()),
                proc->last_recovery_seconds() * 1e3);
    for (const auto& tl : proc->recovery_timelines()) {
      std::printf("  recovery timeline (pe %d, incarnation %d):\n", tl.pe,
                  tl.incarnation);
      for (const auto& [t, text] : tl.milestones) {
        std::printf("    %8.3f s  %s\n", t, text.c_str());
      }
      if (!tl.flight.events.empty()) {
        // The flight recorder's last few events: what the worker was doing
        // when it died, in its own clock (offsets from its first event).
        const std::int64_t t0 = tl.flight.events.front().t_ns;
        const std::size_t show = std::min<std::size_t>(8,
                                                       tl.flight.events.size());
        std::printf("    flight recorder: %zu of %llu event(s), last %zu:\n",
                    tl.flight.events.size(),
                    static_cast<unsigned long long>(tl.flight.total), show);
        for (std::size_t i = tl.flight.events.size() - show;
             i < tl.flight.events.size(); ++i) {
          std::printf("      %s\n",
                      navcpp::obs::flight_describe(tl.flight.events[i], t0)
                          .c_str());
        }
      }
    }
  }

  const auto snap = registry.snapshot();
  if (backend == "proc") {
    TextTable table({"pe", "actions", "posts", "timers", "hops_in",
                     "bytes_in", "hops_out", "bytes_out"});
    for (int pe = 0; pe < pes; ++pe) {
      const std::string label = "{" + navcpp::obs::pe_label(pe) + "}";
      auto counter = [&](const std::string& name) {
        return std::to_string(snap.counter_or(name + label, 0));
      };
      table.add_row(
          {std::to_string(pe), counter("proc.actions"),
           counter("proc.worker.posts"), counter("proc.worker.timers_fired"),
           counter("proc.worker.hops_in"), counter("proc.worker.hop_bytes_in"),
           counter("proc.worker.hops_out"),
           counter("proc.worker.hop_bytes_out")});
    }
    std::printf("per-PE worker counters (shipped back at quiesce):\n%s",
                table.str().c_str());
  }
  if (args.has("metrics")) {
    std::printf("metrics snapshot:\n%s", snap.to_string().c_str());
  }

  if (!trace_path.empty()) {
    const navcpp::navp::TraceSnapshot tsnap = trace.snapshot();
    std::string json;
    if (proc != nullptr) {
      navcpp::obs::ProcTraceOptions topts;
      topts.process_name = "navcpp " + program;
      topts.pe_count = pes;
      topts.parent_epoch_ns = proc->run_epoch_ns();
      json = navcpp::obs::proc_trace_json(
          tsnap.spans, tsnap.hops, proc->worker_lanes(),
          proc->recovery_timelines(), &snap, topts);
    } else {
      navcpp::obs::ChromeTraceOptions copts;
      copts.process_name = "navcpp " + program;
      copts.pe_count = pes;
      json = navcpp::obs::chrome_trace_json(tsnap.spans, tsnap.hops, &snap,
                                            copts);
    }
    std::string error;
    if (!navcpp::obs::validate_chrome_trace(json, &error)) {
      std::fprintf(stderr, "run: merged trace failed validation: %s\n",
                   error.c_str());
      return 1;
    }
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "run: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << json;
    std::printf("trace: validated, written to %s (load in chrome://tracing "
                "or ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return check.ok && identical ? 0 : 1;
}

// Live per-PE telemetry of one workload on the proc backend: while the
// program runs, the parent prints a refreshing table fed by the periodic
// kStatsDelta frames each worker ships mid-run (compute is the parent's
// closure time; busy/comm/wait and queue depth are the worker's own
// measurements).  On a tty the table repaints in place; otherwise each
// refresh appends, so the output stays greppable in pipelines and CI.
int run_top(const Args& args) {
  std::string program = args.get("program", "");
  if (program.empty() && !args.positionals.empty()) {
    program = args.positionals.front();
  }
  if (program.empty()) {
    std::fprintf(stderr, "top: usage: navcpp_cli top PROGRAM "
                 "[--backend proc] [--interval S]; names:\n");
    for (const auto& name : navcpp::harness::workload_names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 2;
  }
  const std::string backend = args.get("backend", "proc");
  if (backend != "proc") {
    std::fprintf(stderr,
                 "top: only --backend proc has live telemetry (the sim "
                 "backend finishes in virtual time; profile it instead)\n");
    return 2;
  }
  double interval = std::atof(args.get("interval", "0.5").c_str());
  if (interval <= 0.0) interval = 0.5;

  const int pes = navcpp::harness::workload_pe_count(program);
  navcpp::machine::ProcMachine::Options opt;
  // Ship stats at least twice per refresh so a tick never shows a stale
  // worker row.
  opt.stats_interval_s = std::min(0.25, interval / 2.0);
  navcpp::machine::ProcMachine machine(pes, opt);
  machine.set_stall_timeout(60.0);

  const bool tty = ::isatty(1) != 0;
  int ticks = 0;
  auto print_rows =
      [&](double t,
          const std::vector<navcpp::machine::ProcMachine::LiveTelemetry>&
              rows) {
        if (tty) std::printf("\x1b[H\x1b[2J");
        std::printf("navcpp top — %s  backend=proc  t=%.1f s  (tick %d)\n",
                    program.c_str(), t, ++ticks);
        TextTable table({"pe", "state", "compute(s)", "busy(s)", "comm(s)",
                         "wait(s)", "queue", "hops_in", "hops_out",
                         "respawns"});
        for (const auto& row : rows) {
          const auto& ws = row.stats;
          table.add_row(
              {std::to_string(row.pe),
               row.degraded ? "DEGRADED" : (row.alive ? "alive" : "DEAD"),
               TextTable::num(row.compute_s, 3),
               TextTable::num(static_cast<double>(ws.busy_ns) / 1e9, 3),
               TextTable::num(
                   static_cast<double>(ws.serialize_ns + ws.verify_ns) / 1e9,
                   3),
               TextTable::num(static_cast<double>(ws.idle_ns) / 1e9, 3),
               std::to_string(row.queue_depth), std::to_string(ws.hops_in),
               std::to_string(ws.hops_out), std::to_string(row.respawns)});
        }
        std::printf("%s", table.str().c_str());
        std::fflush(stdout);
      };
  machine.set_telemetry(print_rows, interval);

  navcpp::obs::Registry registry;
  machine.set_metrics(&registry);
  std::vector<double> got;
  {
    navcpp::obs::MetricsScope metrics(&registry);
    got = navcpp::harness::run_workload(program, machine);
  }

  const auto check = navcpp::harness::check_workload(program, got);
  std::printf("%s finished in %.3f s  verify: %s (%s)  telemetry ticks: %d\n",
              program.c_str(), machine.finish_time(),
              check.ok ? "OK" : "FAILED", check.detail.c_str(), ticks);
  return check.ok ? 0 : 1;
}

int run_plan(const Args& args) {
  navcpp::navtool::NestSpec spec;
  spec.threads = args.get_int("threads", 12);
  spec.steps = args.get_int("steps", 12);
  spec.rows_independent = args.has("independent");
  spec.start_rotatable = args.has("rotatable");
  spec.needs_previous_thread_same_step = args.has("chain");
  const navcpp::mm::Dist1D dist(spec.steps, args.get_int("pes", 3));
  const auto plan = navcpp::navtool::plan_nest(spec, dist);
  std::printf("chosen transformation: %s\n\n%s",
              navcpp::navtool::to_string(plan.transformation),
              plan.rationale.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "mm") return run_mm(args);
    if (args.command == "jacobi") return run_jacobi(args);
    if (args.command == "lu") return run_lu(args);
    if (args.command == "table") return run_table(args);
    if (args.command == "stagger") return run_stagger(args);
    if (args.command == "plan") return run_plan(args);
    if (args.command == "chaos") return run_chaos(args);
    if (args.command == "fault") return run_fault(args);
    if (args.command == "run") return run_run(args);
    if (args.command == "profile") return run_profile(args);
    if (args.command == "top") return run_top(args);
    if (args.command == "bench") return run_bench(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
