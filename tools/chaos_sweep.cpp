// chaos_sweep — seed-sweep stress runner over the chaos workload suite.
//
//   chaos_sweep [--seeds N] [--first-seed S] [--case SUBSTR]
//               [--shuffle] [--verbose]
//
// Runs every MM variant, Jacobi, and LU under schedule fuzzing
// (machine::ChaosMachine over the deterministic SimMachine) for N
// consecutive seeds and verifies each result against a sequential
// reference.  On the first failure it prints the failing (case, seed) pair
// and the one-command replay line, and exits 1.  --shuffle additionally
// enables same-PE ready-action shuffling (legal but aggressive; see
// machine/chaos_machine.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/chaos_suite.h"

int main(int argc, char** argv) {
  int seeds = 32;
  unsigned long long first_seed = 1;
  std::string case_filter;
  bool verbose = false;
  navcpp::machine::ChaosConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::atoi(value());
    } else if (arg == "--first-seed") {
      first_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--case") {
      case_filter = value();
    } else if (arg == "--shuffle") {
      cfg.shuffle_same_pe = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_sweep [--seeds N] [--first-seed S] "
                   "[--case SUBSTR] [--shuffle] [--verbose]\n");
      return 2;
    }
  }

  if (seeds < 1) {
    // A sweep that runs nothing must not report success — a typo'd seed
    // count in CI would otherwise pass with zero coverage.
    std::fprintf(stderr, "--seeds must be >= 1 (got %d)\n", seeds);
    return 2;
  }

  try {
    const auto report = navcpp::harness::chaos_sweep(
        first_seed, seeds, cfg, verbose, case_filter);
    if (report.failed) {
      const auto& f = report.first_failure;
      std::printf("FAIL: case %s, seed %llu: %s\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.seed), f.detail.c_str());
      std::printf("replay: navcpp_cli chaos --seed %llu --case %s%s\n",
                  static_cast<unsigned long long>(f.seed), f.name.c_str(),
                  cfg.shuffle_same_pe ? " --shuffle" : "");
      if (!f.metrics.empty()) {
        std::printf("metrics snapshot of the failing run:\n%s",
                    f.metrics.c_str());
      }
      return 1;
    }
    std::printf("chaos sweep ok: %d seed(s) x %d case-run(s) total, "
                "no failures\n",
                report.seeds_run, report.cases_run);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
