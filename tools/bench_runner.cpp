// Standalone perf-trajectory runner: run the curated suite from
// harness/bench_runner.h and write a navcpp.bench/v1 JSON report.  Thin
// wrapper over the same library code as `navcpp_cli bench`, for CI jobs and
// scripts that don't want the full CLI.
//
//   bench_runner [--quick] [--rev LABEL] [--out FILE.json]
//
// Default output path is BENCH_<rev>.json in the current directory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/bench_runner.h"

int main(int argc, char** argv) {
  navcpp::harness::BenchOptions options;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--rev" && i + 1 < argc) {
      options.revision = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_runner [--quick] [--rev LABEL] "
                   "[--out FILE.json]\n");
      return 2;
    }
  }
  if (options.revision.empty()) {
    std::fprintf(stderr, "bench_runner: --rev needs a non-empty label\n");
    return 2;
  }
  if (out_path.empty()) out_path = "BENCH_" + options.revision + ".json";

  std::fprintf(stderr, "running %s bench suite (rev %s)...\n",
               options.quick ? "quick" : "full", options.revision.c_str());
  const auto report = navcpp::harness::run_bench_suite(options);
  const std::string json = report.to_json();

  std::string error;
  if (!navcpp::harness::validate_bench_json(json, &error)) {
    std::fprintf(stderr, "bench_runner: emitted report invalid: %s\n",
                 error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  return 0;
}
