// navcpp_worker: the per-PE worker process of machine::ProcMachine.
//
// Not a user-facing tool.  ProcMachine fork/execs one of these per PE and
// speaks net/wire.h frames to it over the inherited socket fd (or a
// loopback TCP connection in --port mode).  The program is a thin argv
// shim around machine::proc_worker_main().
//
//   navcpp_worker --pe N --fd FD     # socketpair transport (fd inherited)
//   navcpp_worker --pe N --port P    # connect to 127.0.0.1:P instead
//   ... [--ckpt FILE]                # per-PE checkpoint spill file: a
//                                    # respawned worker re-reads it, which
//                                    # is how a checkpoint survives SIGKILL
//   ... [--flight FILE]              # mmap'd flight-recorder ring; recent
//                                    # scheduler events survive SIGKILL and
//                                    # feed the parent's recovery timeline

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "machine/proc_worker.h"
#include "net/wire.h"

int main(int argc, char** argv) {
  int pe = -1;
  int fd = -1;
  long port = -1;
  std::string ckpt;
  std::string flight;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--pe") == 0) {
      pe = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--fd") == 0) {
      fd = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atol(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--ckpt") == 0) {
      ckpt = argv[i + 1];
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight = argv[i + 1];
    } else {
      std::fprintf(stderr, "navcpp_worker: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (pe < 0 || (fd < 0 && port < 0)) {
    std::fprintf(stderr,
                 "usage: navcpp_worker --pe N (--fd FD | --port P) "
                 "[--ckpt FILE] [--flight FILE]\n"
                 "(internal helper of the navcpp process-per-PE backend; "
                 "not meant to be run by hand)\n");
    return 2;
  }
  try {
    if (fd < 0) {
      fd = navcpp::net::wire_connect_loopback(
          static_cast<std::uint16_t>(port));
    }
    return navcpp::machine::proc_worker_main(fd, pe, ckpt, flight);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "navcpp_worker (pe %d): %s\n", pe, e.what());
    return 1;
  }
}
