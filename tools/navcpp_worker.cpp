// navcpp_worker: the per-PE worker process of machine::ProcMachine.
//
// Not a user-facing tool.  ProcMachine fork/execs one of these per PE and
// speaks net/wire.h frames to it over the inherited socket fd (or a
// loopback TCP connection in --port mode).  The program is a thin argv
// shim around machine::proc_worker_main().
//
//   navcpp_worker --pe N --fd FD     # socketpair transport (fd inherited)
//   navcpp_worker --pe N --port P    # connect to 127.0.0.1:P instead
//   ... [--npes N] [--mesh]          # mesh data plane: direct worker<->
//                                    # worker hop channels; --peer Q:FD
//                                    # names an inherited edge socketpair
//   ... [--peer Q:FD]...             # (repeatable, one per pre-built edge)
//   ... [--ckpt FILE]                # per-PE checkpoint spill file: a
//                                    # respawned worker re-reads it, which
//                                    # is how a checkpoint survives SIGKILL
//   ... [--flight FILE]              # mmap'd flight-recorder ring; recent
//                                    # scheduler events survive SIGKILL and
//                                    # feed the parent's recovery timeline

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "machine/proc_worker.h"
#include "net/wire.h"

int main(int argc, char** argv) {
  navcpp::machine::ProcWorkerConfig config;
  config.pe = -1;
  long port = -1;
  bool bad = false;
  for (int i = 1; i < argc && !bad;) {
    const char* opt = argv[i];
    if (std::strcmp(opt, "--mesh") == 0) {
      config.mesh = true;
      i += 1;
      continue;
    }
    if (i + 1 >= argc) {
      bad = true;
      break;
    }
    const char* val = argv[i + 1];
    if (std::strcmp(opt, "--pe") == 0) {
      config.pe = std::atoi(val);
    } else if (std::strcmp(opt, "--fd") == 0) {
      config.fd = std::atoi(val);
    } else if (std::strcmp(opt, "--port") == 0) {
      port = std::atol(val);
    } else if (std::strcmp(opt, "--npes") == 0) {
      config.pe_count = std::atoi(val);
    } else if (std::strcmp(opt, "--peer") == 0) {
      const char* colon = std::strchr(val, ':');
      if (colon == nullptr) {
        bad = true;
        break;
      }
      config.peer_fds.emplace_back(std::atoi(val), std::atoi(colon + 1));
    } else if (std::strcmp(opt, "--ckpt") == 0) {
      config.ckpt_path = val;
    } else if (std::strcmp(opt, "--flight") == 0) {
      config.flight_path = val;
    } else {
      std::fprintf(stderr, "navcpp_worker: unknown option %s\n", opt);
      return 2;
    }
    i += 2;
  }
  if (bad || config.pe < 0 || (config.fd < 0 && port < 0) ||
      config.pe_count < 1) {
    std::fprintf(stderr,
                 "usage: navcpp_worker --pe N (--fd FD | --port P) "
                 "[--npes N] [--mesh] [--peer Q:FD]... "
                 "[--ckpt FILE] [--flight FILE]\n"
                 "(internal helper of the navcpp process-per-PE backend; "
                 "not meant to be run by hand)\n");
    return 2;
  }
  try {
    if (config.fd < 0) {
      config.fd = navcpp::net::wire_connect_loopback(
          static_cast<std::uint16_t>(port));
    }
    return navcpp::machine::proc_worker_main(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "navcpp_worker (pe %d): %s\n", config.pe, e.what());
    return 1;
  }
}
