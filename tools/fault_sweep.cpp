// fault_sweep — seed-sweep stress runner over the fault workload suite.
//
//   fault_sweep [--seeds N] [--first-seed S] [--case SUBSTR]
//               [--drop P] [--dup P] [--corrupt P] [--backend sim|proc]
//               [--verbose]
//
// Runs every MM variant, Jacobi, LU, and the crash-recovery ring under
// message-fault injection (machine::FaultMachine over the deterministic
// SimMachine, masked by net::ReliableChannel) for N consecutive seeds.
// `--backend proc` pushes the same faulted frames through the
// process-per-PE machine's real socket transport instead, and turns the
// recovery ring into the full-stack crash drill: hop-count-triggered
// crashes SIGKILL real worker processes, the recovery-enabled supervisor
// respawns them, and restore fetches checkpoints back over the wire.
// Program results must be BIT-IDENTICAL to a fault-free run; the recovery
// ring must survive its mid-run PE crashes + checkpoint restarts with an
// exact final sum.  On the first failure it prints the failing
// (case, seed) pair and the one-command replay line, and exits 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/fault_suite.h"

int main(int argc, char** argv) {
  int seeds = 32;
  unsigned long long first_seed = 1;
  std::string case_filter;
  std::string backend_name = "sim";
  bool verbose = false;
  navcpp::machine::FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.duplicate_prob = 0.02;
  plan.corrupt_prob = 0.01;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::atoi(value());
    } else if (arg == "--first-seed") {
      first_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--case") {
      case_filter = value();
    } else if (arg == "--drop") {
      plan.drop_prob = std::atof(value());
    } else if (arg == "--dup") {
      plan.duplicate_prob = std::atof(value());
    } else if (arg == "--corrupt") {
      plan.corrupt_prob = std::atof(value());
    } else if (arg == "--backend") {
      backend_name = value();
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: fault_sweep [--seeds N] [--first-seed S] "
                   "[--case SUBSTR] [--drop P] [--dup P] [--corrupt P] "
                   "[--backend sim|proc] [--verbose]\n");
      return 2;
    }
  }
  if (backend_name != "sim" && backend_name != "proc") {
    std::fprintf(stderr, "unknown --backend %s (sim|proc)\n",
                 backend_name.c_str());
    return 2;
  }
  const auto backend = backend_name == "proc"
                           ? navcpp::harness::FaultBackend::kProc
                           : navcpp::harness::FaultBackend::kSim;

  if (seeds < 1) {
    // A sweep that runs nothing must not report success — a typo'd seed
    // count in CI would otherwise pass with zero coverage.
    std::fprintf(stderr, "--seeds must be >= 1 (got %d)\n", seeds);
    return 2;
  }

  try {
    const auto report = navcpp::harness::fault_sweep(
        first_seed, seeds, plan, verbose, case_filter, backend);
    if (report.failed) {
      const auto& f = report.first_failure;
      std::printf("FAIL: case %s, seed %llu: %s\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.seed), f.detail.c_str());
      std::printf(
          "replay: navcpp_cli fault --seed %llu --case %s --drop %g "
          "--dup %g --corrupt %g --backend %s\n",
          static_cast<unsigned long long>(f.seed), f.name.c_str(),
          plan.drop_prob, plan.duplicate_prob, plan.corrupt_prob,
          backend_name.c_str());
      if (!f.metrics.empty()) {
        std::printf("metrics snapshot of the failing run:\n%s",
                    f.metrics.c_str());
      }
      return 1;
    }
    std::printf("fault sweep ok: %d seed(s) x %d case-run(s) total, "
                "no failures\n",
                report.seeds_run, report.cases_run);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
