// Tests for curve fitting and the calibrated testbed model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "perfmodel/curvefit.h"
#include "perfmodel/testbed.h"
#include "support/error.h"
#include "support/rng.h"

namespace navcpp::perfmodel {
namespace {

TEST(SolveLinear, SolvesSmallSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  const auto x = solve_linear({2, 1, 1, -1}, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, PivotsWhenDiagonalIsZero) {
  // 0x + y = 3; 2x + 0y = 4  ->  x = 2, y = 3.
  const auto x = solve_linear({0, 1, 2, 0}, {3, 4});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularSystemThrows) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 2}), support::LogicError);
}

TEST(Polyfit, ExactOnCleanCubic) {
  // y = 2 - x + 0.5 x^2 + 0.25 x^3 sampled at distinct points.
  const std::vector<double> truth{2.0, -1.0, 0.5, 0.25};
  std::vector<double> xs, ys;
  for (double x = -3.0; x <= 3.0; x += 0.5) {
    xs.push_back(x);
    ys.push_back(polyval(truth, x));
  }
  const auto fit = polyfit(xs, ys, 3);
  ASSERT_EQ(fit.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(fit[static_cast<size_t>(i)], truth[static_cast<size_t>(i)],
                1e-9);
  }
}

TEST(Polyfit, PaperScaleMatrixOrdersAreWellConditioned) {
  // The paper fits cubic times over matrix orders up to ~9216.  Verify the
  // x-scaling keeps the normal equations solvable at that range.
  const std::vector<double> truth{0.0, 1e-5, 0.0, 2.0 / 110e6};
  std::vector<double> xs, ys;
  for (double n : {512.0, 1024.0, 1536.0, 2048.0, 2560.0, 3072.0}) {
    xs.push_back(n);
    ys.push_back(polyval(truth, n));
  }
  const auto fit = polyfit(xs, ys, 3);
  // Extrapolate to 9216 like the paper does.
  EXPECT_NEAR(polyval(fit, 9216.0), polyval(truth, 9216.0),
              1e-6 * polyval(truth, 9216.0));
}

TEST(Polyfit, LeastSquaresAveragesNoise) {
  support::Rng rng(17);
  const std::vector<double> truth{1.0, 3.0};
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(polyval(truth, x) + rng.uniform(-0.1, 0.1));
  }
  const auto fit = polyfit(xs, ys, 1);
  EXPECT_NEAR(fit[0], 1.0, 0.02);
  EXPECT_NEAR(fit[1], 3.0, 0.005);
}

TEST(Polyfit, RequiresEnoughPoints) {
  const std::vector<double> xs{1.0, 2.0}, ys{1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 3), support::LogicError);
}

TEST(Polyval, HornerAgreesWithDirect) {
  const std::vector<double> c{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 1.0 + 2.0 * 2.0 + 3.0 * 4.0);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
}

// --- testbed -------------------------------------------------------------

TEST(Testbed, GemmRateMatchesPaperSequentialTimes) {
  const Testbed tb = Testbed::paper();
  // Table 1: N=1536 took 65.44 s; Table 3: N=1024 took 19.49 s.
  EXPECT_NEAR(tb.gemm_seconds(1536, 1536, 1536), 65.44, 65.44 * 0.05);
  EXPECT_NEAR(tb.gemm_seconds(1024, 1024, 1024), 19.49, 19.49 * 0.05);
  EXPECT_NEAR(tb.gemm_seconds(3072, 3072, 3072), 520.30, 520.30 * 0.05);
}

TEST(Testbed, CachePenaltyAppliesToAllFreshProfile) {
  const Testbed tb = Testbed::paper();
  const double resident = tb.gemm_seconds(128, 128, 128);
  const double fresh =
      tb.gemm_seconds(128, 128, 128, CacheProfile::kAllFresh);
  EXPECT_GT(fresh, resident);
  EXPECT_NEAR(fresh / resident, 1.0 / 0.96, 1e-9);
}

TEST(Testbed, PagingFactorIsOneInCore) {
  const Testbed tb = Testbed::paper();
  EXPECT_DOUBLE_EQ(tb.paging_factor(tb.ram_bytes / 2), 1.0);
  EXPECT_DOUBLE_EQ(tb.paging_factor(tb.ram_bytes), 1.0);
}

TEST(Testbed, PagingFactorIsMonotoneBeyondRam) {
  const Testbed tb = Testbed::paper();
  double prev = 1.0;
  for (std::size_t ws = tb.ram_bytes; ws <= 16 * tb.ram_bytes;
       ws += tb.ram_bytes) {
    const double f = tb.paging_factor(ws);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Testbed, PagingCalibrationMatchesTable2Anchor) {
  // Table 2: N=9216 measured 36534 s vs 13922 s curve-fit => 2.62x.
  const Testbed tb = Testbed::paper();
  const double factor = tb.paging_factor(Testbed::mm_working_set(9216));
  EXPECT_NEAR(factor, 2.62, 0.15);
}

TEST(Testbed, PagingCalibrationMatchesTable1Anchor) {
  // Table 1: N=4608 measured 1934.73 s vs 1745.94 s fit => 1.11x.
  const Testbed tb = Testbed::paper();
  const double factor = tb.paging_factor(Testbed::mm_working_set(4608));
  EXPECT_NEAR(factor, 1.11, 0.08);
}

TEST(Testbed, SequentialSecondsIncludePaging) {
  const Testbed tb = Testbed::paper();
  // In-core: equals raw gemm time.
  EXPECT_DOUBLE_EQ(tb.sequential_mm_seconds(1024),
                   tb.gemm_seconds(1024, 1024, 1024));
  // Out-of-core N=9216 blows up like the paper's 36534 s measurement.
  EXPECT_NEAR(tb.sequential_mm_seconds(9216), 36534.0, 36534.0 * 0.12);
}

TEST(Testbed, NetworkMatchesEthernet) {
  const Testbed tb = Testbed::paper();
  EXPECT_DOUBLE_EQ(tb.lan.bandwidth, 12.5e6);  // 100 Mbps
  // A 128x128 block of doubles (131072 B) needs ~10.5 ms on the wire.
  const double wire = 131072.0 / tb.lan.bandwidth;
  EXPECT_NEAR(wire, 0.0105, 0.0005);
}

}  // namespace
}  // namespace navcpp::perfmodel
