// Tests for the trace recorder and the space-time renderer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "navp/trace.h"

namespace navcpp::navp {
namespace {

TEST(TraceRecorder, EmptyTraceRenders) {
  TraceRecorder trace;
  EXPECT_EQ(trace.render_spacetime(3), "(empty trace)\n");
}

TEST(TraceRecorder, RecordsSpansAndHops) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "gemm"});
  trace.record_hop({1, 0, 1, 1.0, 1.5, 4096});
  EXPECT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.hops().size(), 1u);
  EXPECT_EQ(trace.hops()[0].bytes, 4096u);
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_TRUE(trace.hops().empty());
}

TEST(TraceRenderer, ComputeCellsShowAgentGlyph) {
  TraceRecorder trace;
  // Agent 1 computes on PE 0 for the first half, agent 2 on PE 2 for the
  // second half.
  trace.record_span({1, 0, 0.0, 0.5, TraceSpan::Kind::kCompute, "a"});
  trace.record_span({2, 2, 0.5, 1.0, TraceSpan::Kind::kCompute, "b"});
  const std::string grid = trace.render_spacetime(3, 10);
  // Row 0 starts with agent 1 on PE 0; bottom rows show agent 2 on PE 2.
  EXPECT_NE(grid.find("1.."), std::string::npos);
  EXPECT_NE(grid.find("..2"), std::string::npos);
}

TEST(TraceRenderer, WaitCellsShowBars) {
  TraceRecorder trace;
  trace.record_span({1, 1, 0.0, 1.0, TraceSpan::Kind::kWait, "EP"});
  const std::string grid = trace.render_spacetime(2, 4);
  EXPECT_NE(grid.find(".|"), std::string::npos);
}

TEST(TraceRenderer, ComputeWinsOverWaitInSharedCells) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kWait, "EP"});
  trace.record_span({2, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "gemm"});
  const std::string grid = trace.render_spacetime(1, 4);
  EXPECT_EQ(grid.find("|"), std::string::npos);
  EXPECT_NE(grid.find("2"), std::string::npos);
}

TEST(TraceRenderer, AgentGlyphsWrapBase36) {
  TraceRecorder trace;
  trace.record_span({10, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "x"});
  const std::string grid10 = trace.render_spacetime(1, 2);
  EXPECT_NE(grid10.find("a"), std::string::npos);  // 10 -> 'a'
  trace.clear();
  trace.record_span({36, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "x"});
  const std::string grid36 = trace.render_spacetime(1, 2);
  EXPECT_NE(grid36.find("0"), std::string::npos);  // 36 wraps to '0'
}

TEST(TraceRenderer, OutOfRangePeIsIgnored) {
  TraceRecorder trace;
  trace.record_span({1, 7, 0.0, 1.0, TraceSpan::Kind::kCompute, "x"});
  trace.record_span({2, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "x"});
  const std::string grid = trace.render_spacetime(2, 4);
  EXPECT_NE(grid.find("2."), std::string::npos);
}

TEST(TraceRenderer, HopsExtendTheTimeAxis) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 0.1, TraceSpan::Kind::kCompute, "x"});
  trace.record_hop({1, 0, 1, 0.1, 10.0, 64});
  const std::string grid = trace.render_spacetime(2, 10);
  // With t_end = 10, the compute span occupies only the first row.
  const auto first_newline = grid.find('\n');
  const auto second_line = grid.find('\n', first_newline + 1);
  EXPECT_NE(grid.substr(0, second_line).find("PE"), std::string::npos);
}

}  // namespace
}  // namespace navcpp::navp

namespace navcpp::navp {
namespace {

TEST(TraceStats, SummarizesComputeWaitAndHops) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "a"});
  trace.record_span({2, 1, 0.5, 2.0, TraceSpan::Kind::kCompute, "b"});
  trace.record_span({1, 0, 1.0, 1.5, TraceSpan::Kind::kWait, "E"});
  trace.record_hop({1, 0, 1, 1.5, 2.5, 100});
  const TraceStats stats = summarize(trace, 2);
  EXPECT_DOUBLE_EQ(stats.total_compute, 2.5);
  EXPECT_DOUBLE_EQ(stats.total_wait, 0.5);
  EXPECT_DOUBLE_EQ(stats.end_time, 2.5);
  EXPECT_EQ(stats.hop_count, 1u);
  EXPECT_EQ(stats.hop_bytes, 100u);
  ASSERT_EQ(stats.compute_by_pe.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.compute_by_pe[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.compute_by_pe[1], 1.5);
  // utilization: PE0 1.0/2.5, PE1 1.5/2.5; mean = 0.5.
  EXPECT_DOUBLE_EQ(mean_utilization(stats), 0.5);
}

TEST(TraceStats, EmptyTraceHasZeroUtilization) {
  TraceRecorder trace;
  const TraceStats stats = summarize(trace, 3);
  EXPECT_DOUBLE_EQ(stats.total_compute, 0.0);
  EXPECT_DOUBLE_EQ(mean_utilization(stats), 0.0);
  ASSERT_EQ(stats.compute_by_pe.size(), 3u) << "vectors sized even when empty";
  ASSERT_EQ(stats.wait_by_pe.size(), 3u);
}

TEST(TraceStats, NegativePeCountYieldsEmptyVectors) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "a"});
  const TraceStats stats = summarize(trace, -2);
  EXPECT_TRUE(stats.compute_by_pe.empty());
  EXPECT_TRUE(stats.wait_by_pe.empty());
  EXPECT_DOUBLE_EQ(stats.total_compute, 1.0) << "totals still accumulate";
}

TEST(TraceStats, OutOfRangePeCountsTowardTotalsOnly) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "a"});
  trace.record_span({2, 9, 0.0, 2.0, TraceSpan::Kind::kCompute, "b"});
  const TraceStats stats = summarize(trace, 2);
  EXPECT_DOUBLE_EQ(stats.total_compute, 3.0);
  ASSERT_EQ(stats.compute_by_pe.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.compute_by_pe[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.compute_by_pe[1], 0.0)
      << "a span on an out-of-range PE must not land in any bucket";
}

TEST(TraceStats, InstantaneousSpansContributeNothing) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.5, 0.5, TraceSpan::Kind::kCompute, "zero"});
  const TraceStats stats = summarize(trace, 1);
  EXPECT_DOUBLE_EQ(stats.total_compute, 0.0);
  EXPECT_DOUBLE_EQ(stats.end_time, 0.5) << "end_time still advances";
}

TEST(TraceStats, HopsExtendEndTimeBeyondSpans) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "a"});
  trace.record_hop({1, 0, 1, 1.0, 7.5, 64});
  const TraceStats stats = summarize(trace, 2);
  EXPECT_DOUBLE_EQ(stats.end_time, 7.5);
  // Utilization is measured against the hop-extended end time.
  EXPECT_DOUBLE_EQ(mean_utilization(stats), (1.0 / 7.5) / 2.0);
}

TEST(TraceStats, SummarizeFromSnapshotMatchesRecorder) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "a"});
  trace.record_hop({1, 0, 1, 1.0, 2.0, 64});
  const TraceSnapshot snap = trace.snapshot();
  const TraceStats from_recorder = summarize(trace, 2);
  const TraceStats from_snapshot = summarize(snap, 2);
  EXPECT_EQ(from_recorder.total_compute, from_snapshot.total_compute);
  EXPECT_EQ(from_recorder.end_time, from_snapshot.end_time);
  EXPECT_EQ(from_recorder.hop_bytes, from_snapshot.hop_bytes);
}

TEST(TraceRenderer, NonPositivePeCountOrRowsRendersEmpty) {
  TraceRecorder trace;
  trace.record_span({1, 0, 0.0, 1.0, TraceSpan::Kind::kCompute, "a"});
  EXPECT_EQ(trace.render_spacetime(0), "(empty trace)\n");
  EXPECT_EQ(trace.render_spacetime(-1), "(empty trace)\n");
  EXPECT_EQ(trace.render_spacetime(2, 0), "(empty trace)\n");
  EXPECT_EQ(trace.render_spacetime(2, -5), "(empty trace)\n");
}

TEST(TraceRenderer, NonPositiveEndTimeStillRenders) {
  TraceRecorder trace;
  // Every event sits at t = 0, so the raw time axis would be zero-length;
  // the renderer coerces it to a sane span instead of dividing by zero.
  trace.record_span({1, 0, 0.0, 0.0, TraceSpan::Kind::kCompute, "a"});
  const std::string grid = trace.render_spacetime(1, 4);
  EXPECT_NE(grid.find("PE"), std::string::npos);
}

// Regression: spans()/hops() used to return references to the live vectors,
// so a renderer or stats pass racing a recording Runtime read freely while
// the writer appended.  They now copy under the recorder's lock (and
// snapshot() takes both in one critical section); this test is the TSan
// witness — run it under -DNAVCPP_SANITIZE=thread and it must stay silent.
TEST(TraceRecorder, ConcurrentRecordAndReadIsSafe) {
  TraceRecorder trace;
  std::atomic<bool> stop{false};
  const int kWriters = 2;
  const int kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&trace, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const double t = static_cast<double>(i);
        const AgentId agent = static_cast<AgentId>(w);
        trace.record_span(
            {agent, w, t, t + 0.5, TraceSpan::Kind::kCompute, "work"});
        trace.record_hop({agent, w, (w + 1) % kWriters, t, t + 0.25, 8});
      }
    });
  }
  std::thread reader([&trace, &stop] {
    while (!stop.load()) {
      (void)trace.spans().size();
      (void)trace.hops().size();
      const TraceSnapshot snap = trace.snapshot();
      (void)summarize(snap, kWriters);
      (void)trace.render_spacetime(kWriters, 4);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<std::size_t>(kWriters * kPerWriter));
  EXPECT_EQ(trace.hops().size(),
            static_cast<std::size_t>(kWriters * kPerWriter));
  const TraceSnapshot snap = trace.snapshot();
  EXPECT_EQ(snap.spans.size(), snap.hops.size());
}

TEST(TraceScope, NestsAndRestores) {
  EXPECT_EQ(TraceScope::current(), nullptr);
  TraceRecorder outer, inner;
  {
    TraceScope a(&outer);
    EXPECT_EQ(TraceScope::current(), &outer);
    {
      TraceScope b(&inner);
      EXPECT_EQ(TraceScope::current(), &inner);
    }
    EXPECT_EQ(TraceScope::current(), &outer);
  }
  EXPECT_EQ(TraceScope::current(), nullptr);
}

}  // namespace
}  // namespace navcpp::navp
