// Tests for the distributed transpose (NavP swap carriers vs mini-MPI
// pairwise exchange).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "mm/transpose.h"

namespace navcpp::mm {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::PhantomStorage;
using linalg::RealStorage;

Matrix dense_transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) t(c, r) = m(r, c);
  }
  return t;
}

class TransposeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, int, int, int, Layout>> {};

TEST_P(TransposeSweep, NavpMatchesDenseTranspose) {
  const auto [backend, order, block, grid, layout] = GetParam();
  MmConfig cfg;
  cfg.order = order;
  cfg.block_order = block;
  cfg.layout = layout;
  const Matrix m = Matrix::iota(order, order);  // asymmetric on purpose
  auto g = linalg::to_blocks(m, block);

  std::unique_ptr<machine::Engine> engine;
  if (backend == "sim") {
    engine = std::make_unique<machine::SimMachine>(grid * grid,
                                                   cfg.testbed.lan);
  } else {
    auto tm = std::make_unique<machine::ThreadedMachine>(grid * grid);
    tm->set_stall_timeout(10.0);
    engine = std::move(tm);
  }
  const MmStats stats = navp_transpose(*engine, cfg, g);
  EXPECT_EQ(linalg::from_blocks(g), dense_transpose(m));
  if (backend == "sim" && grid > 1) {
    EXPECT_GT(stats.hops, 0u);
  }
}

TEST_P(TransposeSweep, MpiMatchesDenseTranspose) {
  const auto [backend, order, block, grid, layout] = GetParam();
  if (layout == Layout::kCyclic) GTEST_SKIP() << "MPI path is slab-only";
  MmConfig cfg;
  cfg.order = order;
  cfg.block_order = block;
  const Matrix m = Matrix::iota(order, order);
  auto ga = linalg::to_blocks(m, block);
  BlockGrid<RealStorage> gc(order, block);

  std::unique_ptr<machine::Engine> engine;
  if (backend == "sim") {
    engine = std::make_unique<machine::SimMachine>(grid * grid,
                                                   cfg.testbed.lan);
  } else {
    auto tm = std::make_unique<machine::ThreadedMachine>(grid * grid);
    tm->set_stall_timeout(10.0);
    engine = std::move(tm);
  }
  mpi_transpose(*engine, cfg, ga, gc);
  EXPECT_EQ(linalg::from_blocks(gc), dense_transpose(m));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeSweep,
    ::testing::Values(
        std::tuple{std::string("sim"), 24, 4, 3, Layout::kSlab},
        std::tuple{std::string("sim"), 16, 4, 2, Layout::kSlab},
        std::tuple{std::string("sim"), 36, 6, 3, Layout::kSlab},
        std::tuple{std::string("sim"), 24, 4, 3, Layout::kCyclic},
        std::tuple{std::string("sim"), 12, 4, 1, Layout::kSlab},
        std::tuple{std::string("threaded"), 24, 4, 3, Layout::kSlab},
        std::tuple{std::string("threaded"), 16, 4, 2, Layout::kSlab}));

TEST(Transpose, InvolutionTwiceIsIdentity) {
  MmConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;
  const Matrix m = Matrix::random(24, 24, 3);
  auto g = linalg::to_blocks(m, 4);
  machine::SimMachine m1(9, cfg.testbed.lan), m2(9, cfg.testbed.lan);
  navp_transpose(m1, cfg, g);
  navp_transpose(m2, cfg, g);
  EXPECT_EQ(linalg::from_blocks(g), m);
}

TEST(Transpose, TransposeOfProductIsReversedProductOfTransposes) {
  // (AB)^T == B^T A^T — distributed transpose composed with the verified
  // sequential product.
  const Matrix a = Matrix::random(16, 16, 5);
  const Matrix b = Matrix::random(16, 16, 6);
  MmConfig cfg;
  cfg.order = 16;
  cfg.block_order = 4;
  auto gab = linalg::to_blocks(linalg::multiply(a, b), 4);
  machine::SimMachine m1(4, cfg.testbed.lan);
  navp_transpose(m1, cfg, gab);
  const Matrix lhs = linalg::from_blocks(gab);
  const Matrix rhs =
      linalg::multiply(dense_transpose(b), dense_transpose(a));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-10);
}

TEST(Transpose, MessageCountIsOnePerRemoteOffDiagonalBlock) {
  MmConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;  // nb=6 on 3x3: w=2
  machine::SimMachine m(9, cfg.testbed.lan);
  BlockGrid<PhantomStorage> g(24, 4);
  const MmStats stats = navp_transpose(m, cfg, g);
  // Remote off-diagonal blocks: all (bi,bj) whose owner differs from the
  // transposed owner.  With slab w=2 on 3x3: blocks within a diagonal
  // rank tile swap locally (free).
  int remote = 0;
  const Dist2D dist(6, 3);
  for (int bi = 0; bi < 6; ++bi) {
    for (int bj = 0; bj < 6; ++bj) {
      if (bi != bj && dist.owner(bi, bj) != dist.owner(bj, bi)) ++remote;
    }
  }
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(remote));
}

TEST(Transpose, PhantomAndRealTimesAgree) {
  MmConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;
  machine::SimMachine mr(9, cfg.testbed.lan), mp(9, cfg.testbed.lan);
  auto gr = linalg::to_blocks(Matrix::random(24, 24, 8), 4);
  BlockGrid<PhantomStorage> gp(24, 4);
  const double tr = navp_transpose(mr, cfg, gr).seconds;
  const double tp = navp_transpose(mp, cfg, gp).seconds;
  EXPECT_DOUBLE_EQ(tr, tp);
}

}  // namespace
}  // namespace navcpp::mm
