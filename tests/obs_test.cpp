// Tests for the observability layer: metrics registry (counters, gauges,
// histograms, snapshot/delta), the Chrome trace-event exporter and its
// validator, and the workload profiler that ties them together.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "harness/profile.h"
#include "harness/workloads.h"
#include "machine/sim_machine.h"
#include "navp/trace.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace navcpp {
namespace {

TEST(Registry, CounterFindOrCreateIsStable) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("navp.hops");
  obs::Counter& b = reg.counter("navp.hops");
  EXPECT_EQ(&a, &b) << "same key must resolve to the same counter";
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), 4u);
}

TEST(Registry, LabelsDistinguishCounters) {
  obs::Registry reg;
  reg.counter("sim.actions", obs::pe_label(0)).add(5);
  reg.counter("sim.actions", obs::pe_label(1)).add(7);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("sim.actions{pe=0}"), 5u);
  EXPECT_EQ(snap.counter_or("sim.actions{pe=1}"), 7u);
  EXPECT_EQ(snap.counter_or("sim.actions"), 0u);
}

TEST(Registry, GaugeKeepsLatestValue) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("sim.virtual_time");
  g.set(1.5);
  g.set(0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("sim.virtual_time"), 0.75);
}

TEST(Histogram, BucketsByInclusiveUpperBound) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("depth", "", {1.0, 4.0, 16.0});
  for (double v : {0.0, 1.0, 2.0, 4.0, 5.0, 100.0}) h.record(v);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("depth/le_1"), 2u);   // 0, 1
  EXPECT_EQ(snap.counter_or("depth/le_4"), 2u);   // 2, 4
  EXPECT_EQ(snap.counter_or("depth/le_16"), 1u);  // 5
  EXPECT_EQ(snap.counter_or("depth/overflow"), 1u);  // 100
  EXPECT_EQ(snap.counter_or("depth/count"), 6u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth/sum"), 112.0);
}

TEST(Snapshot, DeltaSubtractsCountersAndClampsAtZero) {
  obs::Snapshot earlier;
  earlier.counters["a"] = 10;
  earlier.counters["rewound"] = 100;
  obs::Snapshot later;
  later.counters["a"] = 25;
  later.counters["rewound"] = 5;  // counter was reset between snapshots
  later.counters["fresh"] = 3;
  later.gauges["g"] = 2.5;
  const obs::Snapshot d = later.delta(earlier);
  EXPECT_EQ(d.counter_or("a"), 15u);
  EXPECT_EQ(d.counter_or("rewound"), 0u) << "negative deltas clamp to zero";
  EXPECT_EQ(d.counter_or("fresh"), 3u);
  EXPECT_DOUBLE_EQ(d.gauges.at("g"), 2.5) << "gauges keep the latest value";
}

TEST(Snapshot, DeltaIsolatesRepeatedRunsInOneRegistry) {
  // Two identical deterministic runs against ONE registry: the second
  // run's delta must equal the first run's absolute numbers, which is how
  // a sweep gets per-run metrics without a registry per run.
  obs::Registry reg;
  obs::MetricsScope scope(&reg);
  auto run_once = [] {
    machine::SimMachine sim(harness::workload_pe_count("mm/dsc1d"),
                            harness::workload_link("mm/dsc1d"));
    harness::run_workload("mm/dsc1d", sim);
  };
  run_once();
  const obs::Snapshot first = reg.snapshot();
  run_once();
  const obs::Snapshot second = reg.snapshot();
  const obs::Snapshot per_run = second.delta(first);
  ASSERT_FALSE(first.counters.empty());
  for (const auto& [key, value] : first.counters) {
    EXPECT_EQ(per_run.counter_or(key), value) << key;
  }
  EXPECT_GT(first.counter_or("navp.hops"), 0u);
  EXPECT_EQ(first.counter_or("net.bytes"), per_run.counter_or("net.bytes"));
}

TEST(Snapshot, ToStringIsSortedAndKeepsZeros) {
  obs::Registry reg;
  reg.counter("b.zero");
  reg.counter("a.some").add(2);
  const std::string text = reg.snapshot().to_string();
  EXPECT_NE(text.find("a.some = 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("b.zero = 0\n"), std::string::npos) << text;
  EXPECT_LT(text.find("a.some"), text.find("b.zero"));
}

TEST(MetricsScope, NestsAndRestores) {
  EXPECT_EQ(obs::MetricsScope::current(), nullptr);
  obs::Registry outer, inner;
  {
    obs::MetricsScope a(&outer);
    EXPECT_EQ(obs::MetricsScope::current(), &outer);
    {
      obs::MetricsScope b(&inner);
      EXPECT_EQ(obs::MetricsScope::current(), &inner);
    }
    EXPECT_EQ(obs::MetricsScope::current(), &outer);
  }
  EXPECT_EQ(obs::MetricsScope::current(), nullptr);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

// --- Chrome trace exporter -------------------------------------------------

std::vector<navp::TraceSpan> sample_spans() {
  return {{1, 0, 0.0, 1e-3, navp::TraceSpan::Kind::kCompute, "gemm"},
          {2, 1, 5e-4, 2e-3, navp::TraceSpan::Kind::kWait, "EP"}};
}

std::vector<navp::TraceHop> sample_hops() {
  return {{1, 0, 1, 1e-3, 1.5e-3, 4096}};
}

TEST(ChromeTrace, ExportsValidJson) {
  const std::string json = obs::chrome_trace_json(sample_spans(),
                                                  sample_hops());
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("gemm"), std::string::npos);
}

TEST(ChromeTrace, EmbedsMetricsAsCountersAndOtherData) {
  obs::Registry reg;
  reg.counter("navp.hops").add(7);
  reg.gauge("sim.virtual_time").set(0.5);
  const obs::Snapshot snap = reg.snapshot();
  const std::string json =
      obs::chrome_trace_json(sample_spans(), sample_hops(), &snap);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"navp.hops\""), std::string::npos);
  EXPECT_NE(json.find("sim.virtual_time"), std::string::npos);
}

TEST(ChromeTrace, DeterministicForIdenticalInput) {
  obs::Registry reg;
  reg.counter("navp.hops").add(3);
  const obs::Snapshot snap = reg.snapshot();
  const std::string a =
      obs::chrome_trace_json(sample_spans(), sample_hops(), &snap);
  const std::string b =
      obs::chrome_trace_json(sample_spans(), sample_hops(), &snap);
  EXPECT_EQ(a, b);
}

TEST(ChromeTrace, EmptyTraceStillValidates) {
  const std::string json = obs::chrome_trace_json({}, {});
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
}

TEST(ChromeTraceValidator, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("not json at all", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &error))
      << "missing traceEvents must fail";
  EXPECT_FALSE(obs::validate_chrome_trace("{\"traceEvents\":[]}", &error))
      << "empty traceEvents must fail";
}

TEST(ChromeTraceValidator, RejectsNonMonotonicTimestamps) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"ts\":5.0,\"dur\":1.0,\"pid\":0,\"tid\":0},"
      "{\"ph\":\"X\",\"ts\":2.0,\"dur\":1.0,\"pid\":0,\"tid\":0}]}";
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace(json, &error));
  EXPECT_NE(error.find("monotonic"), std::string::npos) << error;
}

// --- Profiler --------------------------------------------------------------

TEST(Profile, PhaseShifted1dIsReproducibleBitForBit) {
  const harness::ProfileResult a = harness::profile_workload("mm/phase1d");
  const harness::ProfileResult b = harness::profile_workload("mm/phase1d");
  EXPECT_TRUE(a.ok) << a.detail;
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.snapshot.counters, b.snapshot.counters);
}

TEST(Profile, ExportedBytesMatchNetworkModelExactly) {
  for (const std::string name :
       {"mm/phase1d", "jacobi/dataflow", "lu/pipeline"}) {
    const harness::ProfileResult r = harness::profile_workload(name);
    EXPECT_TRUE(r.ok) << name << ": " << r.detail;
    EXPECT_TRUE(r.bytes_match) << name;
    EXPECT_EQ(r.snapshot.counter_or("net.bytes"), r.network_bytes) << name;
    EXPECT_EQ(r.snapshot.counter_or("net.messages"), r.network_messages)
        << name;
    std::string error;
    EXPECT_TRUE(obs::validate_chrome_trace(r.trace_json, &error))
        << name << ": " << error;
  }
}

TEST(Profile, TableHasOneRowPerPePlusTotal) {
  const harness::ProfileResult r = harness::profile_workload("jacobi/dsc");
  int newlines = 0;
  for (char ch : r.table) newlines += ch == '\n' ? 1 : 0;
  // Header + underline + one row per PE + the "all" row.
  EXPECT_EQ(newlines, 2 + r.pe_count + 1) << r.table;
  EXPECT_NE(r.table.find("compute(s)"), std::string::npos);
  EXPECT_NE(r.table.find("all"), std::string::npos);
}

TEST(Profile, UnknownWorkloadThrows) {
  EXPECT_THROW(harness::profile_workload("mm/banana"), support::ConfigError);
}

}  // namespace
}  // namespace navcpp
