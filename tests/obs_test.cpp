// Tests for the observability layer: metrics registry (counters, gauges,
// histograms, snapshot/delta), the Chrome trace-event exporter and its
// validator, the cross-process trace machinery (span packing, clock-offset
// estimation, flow merging, flight recorder), and the workload profiler
// that ties them together.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness/profile.h"
#include "harness/workloads.h"
#include "machine/sim_machine.h"
#include "navp/trace.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/proc_trace.h"
#include "support/error.h"

namespace navcpp {
namespace {

TEST(Registry, CounterFindOrCreateIsStable) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("navp.hops");
  obs::Counter& b = reg.counter("navp.hops");
  EXPECT_EQ(&a, &b) << "same key must resolve to the same counter";
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), 4u);
}

TEST(Registry, LabelsDistinguishCounters) {
  obs::Registry reg;
  reg.counter("sim.actions", obs::pe_label(0)).add(5);
  reg.counter("sim.actions", obs::pe_label(1)).add(7);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("sim.actions{pe=0}"), 5u);
  EXPECT_EQ(snap.counter_or("sim.actions{pe=1}"), 7u);
  EXPECT_EQ(snap.counter_or("sim.actions"), 0u);
}

TEST(Registry, GaugeKeepsLatestValue) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("sim.virtual_time");
  g.set(1.5);
  g.set(0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("sim.virtual_time"), 0.75);
}

TEST(Histogram, BucketsByInclusiveUpperBound) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("depth", "", {1.0, 4.0, 16.0});
  for (double v : {0.0, 1.0, 2.0, 4.0, 5.0, 100.0}) h.record(v);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("depth/le_1"), 2u);   // 0, 1
  EXPECT_EQ(snap.counter_or("depth/le_4"), 2u);   // 2, 4
  EXPECT_EQ(snap.counter_or("depth/le_16"), 1u);  // 5
  EXPECT_EQ(snap.counter_or("depth/overflow"), 1u);  // 100
  EXPECT_EQ(snap.counter_or("depth/count"), 6u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth/sum"), 112.0);
}

TEST(Snapshot, DeltaSubtractsCountersAndClampsAtZero) {
  obs::Snapshot earlier;
  earlier.counters["a"] = 10;
  earlier.counters["rewound"] = 100;
  obs::Snapshot later;
  later.counters["a"] = 25;
  later.counters["rewound"] = 5;  // counter was reset between snapshots
  later.counters["fresh"] = 3;
  later.gauges["g"] = 2.5;
  const obs::Snapshot d = later.delta(earlier);
  EXPECT_EQ(d.counter_or("a"), 15u);
  EXPECT_EQ(d.counter_or("rewound"), 0u) << "negative deltas clamp to zero";
  EXPECT_EQ(d.counter_or("fresh"), 3u);
  EXPECT_DOUBLE_EQ(d.gauges.at("g"), 2.5) << "gauges keep the latest value";
}

TEST(Snapshot, DeltaIsolatesRepeatedRunsInOneRegistry) {
  // Two identical deterministic runs against ONE registry: the second
  // run's delta must equal the first run's absolute numbers, which is how
  // a sweep gets per-run metrics without a registry per run.
  obs::Registry reg;
  obs::MetricsScope scope(&reg);
  auto run_once = [] {
    machine::SimMachine sim(harness::workload_pe_count("mm/dsc1d"),
                            harness::workload_link("mm/dsc1d"));
    harness::run_workload("mm/dsc1d", sim);
  };
  run_once();
  const obs::Snapshot first = reg.snapshot();
  run_once();
  const obs::Snapshot second = reg.snapshot();
  const obs::Snapshot per_run = second.delta(first);
  ASSERT_FALSE(first.counters.empty());
  for (const auto& [key, value] : first.counters) {
    EXPECT_EQ(per_run.counter_or(key), value) << key;
  }
  EXPECT_GT(first.counter_or("navp.hops"), 0u);
  EXPECT_EQ(first.counter_or("net.bytes"), per_run.counter_or("net.bytes"));
}

TEST(Snapshot, ToStringIsSortedAndKeepsZeros) {
  obs::Registry reg;
  reg.counter("b.zero");
  reg.counter("a.some").add(2);
  const std::string text = reg.snapshot().to_string();
  EXPECT_NE(text.find("a.some = 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("b.zero = 0\n"), std::string::npos) << text;
  EXPECT_LT(text.find("a.some"), text.find("b.zero"));
}

TEST(MetricsScope, NestsAndRestores) {
  EXPECT_EQ(obs::MetricsScope::current(), nullptr);
  obs::Registry outer, inner;
  {
    obs::MetricsScope a(&outer);
    EXPECT_EQ(obs::MetricsScope::current(), &outer);
    {
      obs::MetricsScope b(&inner);
      EXPECT_EQ(obs::MetricsScope::current(), &inner);
    }
    EXPECT_EQ(obs::MetricsScope::current(), &outer);
  }
  EXPECT_EQ(obs::MetricsScope::current(), nullptr);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

// --- Chrome trace exporter -------------------------------------------------

std::vector<navp::TraceSpan> sample_spans() {
  return {{1, 0, 0.0, 1e-3, navp::TraceSpan::Kind::kCompute, "gemm"},
          {2, 1, 5e-4, 2e-3, navp::TraceSpan::Kind::kWait, "EP"}};
}

std::vector<navp::TraceHop> sample_hops() {
  return {{1, 0, 1, 1e-3, 1.5e-3, 4096}};
}

TEST(ChromeTrace, ExportsValidJson) {
  const std::string json = obs::chrome_trace_json(sample_spans(),
                                                  sample_hops());
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("gemm"), std::string::npos);
}

TEST(ChromeTrace, EmbedsMetricsAsCountersAndOtherData) {
  obs::Registry reg;
  reg.counter("navp.hops").add(7);
  reg.gauge("sim.virtual_time").set(0.5);
  const obs::Snapshot snap = reg.snapshot();
  const std::string json =
      obs::chrome_trace_json(sample_spans(), sample_hops(), &snap);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"navp.hops\""), std::string::npos);
  EXPECT_NE(json.find("sim.virtual_time"), std::string::npos);
}

TEST(ChromeTrace, DeterministicForIdenticalInput) {
  obs::Registry reg;
  reg.counter("navp.hops").add(3);
  const obs::Snapshot snap = reg.snapshot();
  const std::string a =
      obs::chrome_trace_json(sample_spans(), sample_hops(), &snap);
  const std::string b =
      obs::chrome_trace_json(sample_spans(), sample_hops(), &snap);
  EXPECT_EQ(a, b);
}

TEST(ChromeTrace, EmptyTraceStillValidates) {
  const std::string json = obs::chrome_trace_json({}, {});
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
}

TEST(ChromeTraceValidator, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("not json at all", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &error))
      << "missing traceEvents must fail";
  EXPECT_FALSE(obs::validate_chrome_trace("{\"traceEvents\":[]}", &error))
      << "empty traceEvents must fail";
}

TEST(ChromeTraceValidator, RejectsNonMonotonicTimestamps) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"ts\":5.0,\"dur\":1.0,\"pid\":0,\"tid\":0},"
      "{\"ph\":\"X\",\"ts\":2.0,\"dur\":1.0,\"pid\":0,\"tid\":0}]}";
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace(json, &error));
  EXPECT_NE(error.find("monotonic"), std::string::npos) << error;
}

TEST(ChromeTrace, EscapePinsQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::trace_json_escape("plain"), "plain");
  EXPECT_EQ(obs::trace_json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::trace_json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::trace_json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::trace_json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(ChromeTrace, HostileLabelsSurviveTheValidator) {
  // Regression: a span label carrying every character class the escaper
  // must handle flows through the exporter and still parses.  Before the
  // escaping fix a label like `step "fwd"` produced unparseable JSON.
  std::vector<navp::TraceSpan> spans = {
      {1, 0, 0.0, 1e-3, navp::TraceSpan::Kind::kCompute,
       "step \"fwd\" c:\\tmp\nline2\x01"}};
  obs::Registry reg;
  reg.counter("evil{label=\"quoted\"}").add(1);
  const obs::Snapshot snap = reg.snapshot();
  const std::string json = obs::chrome_trace_json(spans, {}, &snap);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_EQ(json.find('\x01'), std::string::npos)
      << "raw control bytes must never reach the output";
  // The merged proc exporter shares the same escaper; pin that too.
  obs::WorkerLane lane;
  lane.pe = 0;
  lane.label = "worker \"pe 0\"\n(pid 1)";
  const std::string merged =
      obs::proc_trace_json(spans, {}, {lane}, {}, &snap);
  EXPECT_TRUE(obs::validate_chrome_trace(merged, &error)) << error;
}

// --- cross-process spans: packing and the bounded buffer --------------------

TEST(ProcTrace, PackUnpackRoundTripsAndDropsTornTail) {
  std::vector<obs::ProcSpan> in;
  for (int i = 0; i < 5; ++i) {
    obs::ProcSpan s;
    s.trace_id = 1000u + static_cast<std::uint64_t>(i);
    s.t0_ns = -50 + i * 1000;  // negative survives (int64 on the wire)
    s.t1_ns = i * 1000 + 500;
    s.token = 7u * static_cast<std::uint64_t>(i);
    s.pe = static_cast<std::uint32_t>(i % 3);
    s.kind = static_cast<std::uint8_t>(obs::ProcSpanKind::kSerialize);
    in.push_back(s);
  }
  std::vector<std::byte> wire;
  obs::pack_spans(in, wire);
  ASSERT_EQ(wire.size(), in.size() * obs::kProcSpanWireBytes);
  const std::vector<obs::ProcSpan> out =
      obs::unpack_spans(wire.data(), wire.size());
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].trace_id, in[i].trace_id) << i;
    EXPECT_EQ(out[i].t0_ns, in[i].t0_ns) << i;
    EXPECT_EQ(out[i].t1_ns, in[i].t1_ns) << i;
    EXPECT_EQ(out[i].token, in[i].token) << i;
    EXPECT_EQ(out[i].pe, in[i].pe) << i;
    EXPECT_EQ(out[i].kind, in[i].kind) << i;
  }
  // A torn flush (worker died mid-write) leaves a partial trailing record:
  // it is dropped, the complete prefix decodes.
  const std::vector<obs::ProcSpan> torn =
      obs::unpack_spans(wire.data(), wire.size() - 3);
  EXPECT_EQ(torn.size(), in.size() - 1);
}

TEST(ProcTrace, SpanBufferRefusesAndCountsWhenFull) {
  obs::SpanBuffer buf(3);
  obs::ProcSpan s;
  EXPECT_TRUE(buf.push(s));
  EXPECT_TRUE(buf.push(s));
  EXPECT_TRUE(buf.push(s));
  EXPECT_FALSE(buf.push(s)) << "capacity 3 must refuse the 4th span";
  EXPECT_FALSE(buf.push(s));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 2u);
  const std::vector<obs::ProcSpan> drained = buf.drain();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.dropped(), 2u) << "drain ships spans, not the drop count";
  buf.clear();
  EXPECT_EQ(buf.dropped(), 0u);
}

// --- clock-offset estimation (skewed worker clocks) -------------------------

TEST(ProcTrace, ClockKeepsMinimumRttSampleAndRoundTripsSkew) {
  // Worker steady clock runs 5 ms AHEAD of the parent's.
  constexpr std::int64_t kSkew = 5'000'000;
  obs::WorkerClock clock;
  // Wide round trip first: offset lands, but loosely bounded.
  obs::clock_update(&clock,
                    {1'000'000, 1'400'000, 1'200'000 + kSkew + 90'000});
  EXPECT_EQ(clock.samples, 1);
  EXPECT_EQ(clock.rtt_ns, 400'000);
  // Tight round trip: wins, and with a symmetric path the midpoint
  // estimate recovers the skew exactly.
  obs::clock_update(&clock, {2'000'000, 2'020'000, 2'010'000 + kSkew});
  EXPECT_EQ(clock.samples, 2);
  EXPECT_EQ(clock.rtt_ns, 20'000);
  EXPECT_EQ(clock.offset_ns, kSkew);
  // A later, wider sample must not displace the tight one.
  obs::clock_update(&clock,
                    {3'000'000, 3'900'000, 3'450'000 + kSkew + 123'456});
  EXPECT_EQ(clock.offset_ns, kSkew);
  EXPECT_EQ(clock.rtt_ns, 20'000);
  EXPECT_EQ(clock.samples, 3);
  // Round trip: a worker timestamp taken 0.25 s into the run maps back
  // onto the parent timeline despite the skew.
  const std::int64_t epoch = 10'000'000;
  const std::int64_t worker_ts = epoch + 250'000'000 + kSkew;
  EXPECT_NEAR(obs::corrected_seconds(clock, worker_ts, epoch), 0.25, 1e-12);
}

TEST(ProcTrace, ClockWithZeroSamplesIsIdentity) {
  // Single-host default: every process shares the steady clock, so with no
  // heartbeat samples yet the correction must be a pure epoch shift.
  obs::WorkerClock clock;
  EXPECT_NEAR(obs::corrected_seconds(clock, 2'000'000'000, 1'000'000'000),
              1.0, 1e-12);
  // A nonsense sample (parent recv before send) is ignored outright.
  obs::clock_update(&clock, {5'000, 4'000, 99'999});
  EXPECT_EQ(clock.samples, 0);
  EXPECT_EQ(clock.offset_ns, 0);
}

TEST(ProcTrace, FlowsPairByTraceIdAndStayCausalUnderSkew) {
  constexpr std::int64_t kEpoch = 1'000'000;
  // Source worker: parent-aligned clock (offset 0).  Serialize spans for
  // two hops end at 2 ms and 4 ms run-relative.
  obs::WorkerLane src;
  src.pe = 0;
  src.spans.push_back({42, kEpoch + 1'000'000, kEpoch + 2'000'000, 7, 0,
                       static_cast<std::uint8_t>(obs::ProcSpanKind::kSerialize)});
  src.spans.push_back({43, kEpoch + 3'000'000, kEpoch + 4'000'000, 8, 0,
                       static_cast<std::uint8_t>(obs::ProcSpanKind::kSerialize)});
  // Wait spans carry trace id 0 and must never produce arrows.
  src.spans.push_back({0, kEpoch, kEpoch + 500'000, 0, 0,
                       static_cast<std::uint8_t>(obs::ProcSpanKind::kWait)});
  // Destination worker: clock 10 ms ahead of the parent, and the offset
  // estimate deliberately overshoots by 2 ms — enough that hop 42's
  // corrected arrival would precede its departure without the clamp.
  constexpr std::int64_t kTrueSkew = 10'000'000;
  obs::WorkerLane dst;
  dst.pe = 1;
  dst.clock.offset_ns = kTrueSkew + 2'000'000;
  dst.clock.samples = 1;
  dst.spans.push_back({42, kEpoch + kTrueSkew + 3'000'000,
                       kEpoch + kTrueSkew + 3'200'000, 7, 1,
                       static_cast<std::uint8_t>(obs::ProcSpanKind::kVerify)});
  dst.spans.push_back({43, kEpoch + kTrueSkew + 9'000'000,
                       kEpoch + kTrueSkew + 9'200'000, 8, 1,
                       static_cast<std::uint8_t>(obs::ProcSpanKind::kVerify)});
  // An unmatched serialize (its verify died with a worker) yields no arrow.
  src.spans.push_back({99, kEpoch + 5'000'000, kEpoch + 5'100'000, 9, 0,
                       static_cast<std::uint8_t>(obs::ProcSpanKind::kSerialize)});

  const std::vector<obs::HopFlow> flows =
      obs::proc_trace_flows({src, dst}, kEpoch);
  ASSERT_EQ(flows.size(), 2u);
  // Sorted by send time: hop 42 (2 ms) before hop 43 (4 ms).
  EXPECT_EQ(flows[0].trace_id, 42u);
  EXPECT_EQ(flows[1].trace_id, 43u);
  for (const obs::HopFlow& f : flows) {
    EXPECT_EQ(f.src_pe, 0);
    EXPECT_EQ(f.dst_pe, 1);
    EXPECT_GE(f.send_s, 0.0);
    EXPECT_GE(f.recv_s, f.send_s)
        << "trace " << f.trace_id
        << ": a payload is never received before it was sent";
  }
  // Hop 42: overshot correction put the arrival at 1 ms < the 2 ms send;
  // the causal clamp pins it to the send instant.
  EXPECT_NEAR(flows[0].send_s, 2e-3, 1e-12);
  EXPECT_NEAR(flows[0].recv_s, flows[0].send_s, 1e-12);
  // Hop 43 has slack: 9 ms raw − 2 ms overshoot = 7 ms > 4 ms, kept as-is.
  EXPECT_NEAR(flows[1].send_s, 4e-3, 1e-12);
  EXPECT_NEAR(flows[1].recv_s, 7e-3, 1e-12);
}

TEST(ProcTrace, MergedExportValidatesWithLanesFlowsAndRecovery) {
  obs::WorkerLane lane0;
  lane0.pe = 0;
  lane0.label = "worker pe 0 (pid 101)";
  lane0.spans.push_back({5, 1'000'000, 2'000'000, 3, 0,
                         static_cast<std::uint8_t>(obs::ProcSpanKind::kSerialize)});
  obs::WorkerLane lane1;
  lane1.pe = 1;
  lane1.label = "worker pe 1 (pid 102)";
  lane1.clock.offset_ns = -4'000'000;  // worker clock BEHIND the parent
  lane1.clock.samples = 2;
  lane1.spans.push_back({5, -1'500'000, -1'200'000, 3, 1,
                         static_cast<std::uint8_t>(obs::ProcSpanKind::kVerify)});
  obs::RecoveryTimeline recovery;
  recovery.pe = 1;
  recovery.incarnation = 1;
  recovery.milestones = {{2.5e-3, "death detected (socket EOF)"},
                         {2.6e-3, "respawned (pid 4711)"}};
  obs::FlightEvent ev;
  ev.t_ns = -1'400'000;  // worker clock; corrected via lane 1's model
  ev.kind = static_cast<std::uint8_t>(obs::FlightKind::kFrameIn);
  ev.frame_type = 6;  // kHop
  ev.a = 12;
  recovery.flight.pe = 1;
  recovery.flight.total = 1;
  recovery.flight.events.push_back(ev);

  const std::string json = obs::proc_trace_json(
      sample_spans(), sample_hops(), {lane0, lane1}, {recovery});
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  // One lane per worker process, flow arrows, clock metadata, recovery and
  // flight instants all present.
  EXPECT_NE(json.find("worker pe 0 (pid 101)"), std::string::npos);
  EXPECT_NE(json.find("worker pe 1 (pid 102)"), std::string::npos);
  EXPECT_NE(json.find("\"hopflow\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("clock_offset_ns{pe=1}"), std::string::npos);
  EXPECT_NE(json.find("death detected (socket EOF)"), std::string::npos);
  EXPECT_NE(json.find("frame-in kHop"), std::string::npos);
  // Deterministic for identical input, like the sim exporter.
  EXPECT_EQ(json, obs::proc_trace_json(sample_spans(), sample_hops(),
                                       {lane0, lane1}, {recovery}));
}

// --- crash flight recorder --------------------------------------------------

std::string flight_temp_path(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  path += std::string("/navcpp-obs-test-") + tag + "." +
          std::to_string(::getpid()) + ".flight";
  return path;
}

TEST(FlightRecorder, RoundTripsEventsThroughTheFile) {
  const std::string path = flight_temp_path("roundtrip");
  std::string error;
  auto rec = obs::FlightRecorder::open(path, /*pe=*/3, /*capacity=*/16, &error);
  ASSERT_NE(rec, nullptr) << error;
  rec->record(obs::FlightKind::kRunStart, 0, 0, 7, 41);
  rec->record(obs::FlightKind::kFrameIn, /*frame_type=*/6, /*token=*/99,
              /*a=*/12, /*b=*/2);
  EXPECT_EQ(rec->recorded(), 2u);
  rec.reset();  // worker gone; the MAP_SHARED pages are already on the file

  obs::FlightLog log;
  ASSERT_TRUE(obs::flight_read(path, &log, &error)) << error;
  EXPECT_EQ(log.pe, 3u);
  EXPECT_EQ(log.total, 2u);
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0].kind,
            static_cast<std::uint8_t>(obs::FlightKind::kRunStart));
  EXPECT_EQ(log.events[0].a, 7u);
  EXPECT_EQ(log.events[0].b, 41u);
  EXPECT_EQ(log.events[1].token, 99u);
  EXPECT_LE(log.events[0].t_ns, log.events[1].t_ns);
  const std::string line =
      obs::flight_describe(log.events[1], log.events[0].t_ns);
  EXPECT_NE(line.find("frame-in kHop"), std::string::npos) << line;
  EXPECT_NE(line.find("seq=12"), std::string::npos) << line;
  ::unlink(path.c_str());
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEvents) {
  const std::string path = flight_temp_path("wrap");
  std::string error;
  auto rec = obs::FlightRecorder::open(path, 0, /*capacity=*/8, &error);
  ASSERT_NE(rec, nullptr) << error;
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec->record(obs::FlightKind::kFrameIn, 6, 0, /*a=*/i, 0);
  }
  rec.reset();
  obs::FlightLog log;
  ASSERT_TRUE(obs::flight_read(path, &log, &error)) << error;
  EXPECT_EQ(log.total, 20u) << "total counts everything ever recorded";
  ASSERT_EQ(log.events.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(log.events[i].a, 12u + i) << "oldest-first, newest 8 kept";
  }
  ::unlink(path.c_str());
}

TEST(FlightRecorder, RespawnReopensAndContinuesTheRing) {
  const std::string path = flight_temp_path("respawn");
  std::string error;
  auto first = obs::FlightRecorder::open(path, 2, 16, &error);
  ASSERT_NE(first, nullptr) << error;
  first->record(obs::FlightKind::kRunStart, 0, 0, 1, 0);
  first->record(obs::FlightKind::kFrameIn, 6, 0, 1, 0);
  first.reset();  // incarnation 1 dies
  // The respawned incarnation reopens the same file and keeps appending:
  // the pre-death history stays readable in one continuous timeline.
  auto second = obs::FlightRecorder::open(path, 2, 16, &error);
  ASSERT_NE(second, nullptr) << error;
  EXPECT_EQ(second->recorded(), 2u);
  second->record(obs::FlightKind::kRunStart, 0, 0, 2, 1);
  second.reset();
  obs::FlightLog log;
  ASSERT_TRUE(obs::flight_read(path, &log, &error)) << error;
  EXPECT_EQ(log.total, 3u);
  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_EQ(log.events[0].a, 1u);
  EXPECT_EQ(log.events[2].a, 2u) << "second incarnation's run-start";
  ::unlink(path.c_str());
}

TEST(FlightRecorder, ReadRejectsForeignFiles) {
  const std::string path = flight_temp_path("foreign");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a flight ring", f);
    std::fclose(f);
  }
  obs::FlightLog log;
  std::string error;
  EXPECT_FALSE(obs::flight_read(path, &log, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::flight_read(path + ".missing", &log, &error));
  ::unlink(path.c_str());
}

// --- Profiler --------------------------------------------------------------

TEST(Profile, PhaseShifted1dIsReproducibleBitForBit) {
  const harness::ProfileResult a = harness::profile_workload("mm/phase1d");
  const harness::ProfileResult b = harness::profile_workload("mm/phase1d");
  EXPECT_TRUE(a.ok) << a.detail;
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.snapshot.counters, b.snapshot.counters);
}

TEST(Profile, ExportedBytesMatchNetworkModelExactly) {
  for (const std::string name :
       {"mm/phase1d", "jacobi/dataflow", "lu/pipeline"}) {
    const harness::ProfileResult r = harness::profile_workload(name);
    EXPECT_TRUE(r.ok) << name << ": " << r.detail;
    EXPECT_TRUE(r.bytes_match) << name;
    EXPECT_EQ(r.snapshot.counter_or("net.bytes"), r.network_bytes) << name;
    EXPECT_EQ(r.snapshot.counter_or("net.messages"), r.network_messages)
        << name;
    std::string error;
    EXPECT_TRUE(obs::validate_chrome_trace(r.trace_json, &error))
        << name << ": " << error;
  }
}

TEST(Profile, TableHasOneRowPerPePlusTotal) {
  const harness::ProfileResult r = harness::profile_workload("jacobi/dsc");
  int newlines = 0;
  for (char ch : r.table) newlines += ch == '\n' ? 1 : 0;
  // Header + underline + one row per PE + the "all" row.
  EXPECT_EQ(newlines, 2 + r.pe_count + 1) << r.table;
  EXPECT_NE(r.table.find("compute(s)"), std::string::npos);
  EXPECT_NE(r.table.find("all"), std::string::npos);
}

TEST(Profile, UnknownWorkloadThrows) {
  EXPECT_THROW(harness::profile_workload("mm/banana"), support::ConfigError);
}

}  // namespace
}  // namespace navcpp
