// Tests for the mini-MPI substrate (Comm/World over the NavP runtime).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "minimpi/world.h"
#include "navp/runtime.h"
#include "support/error.h"

namespace navcpp::minimpi {
namespace {

class MpiBothBackends : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<machine::Engine> make_machine(int pes) {
    if (GetParam() == "sim") {
      return std::make_unique<machine::SimMachine>(pes);
    }
    auto m = std::make_unique<machine::ThreadedMachine>(pes);
    m->set_stall_timeout(5.0);
    return m;
  }
};

// --- rank programs --------------------------------------------------------

navp::Mission ping_pong(Comm comm, std::vector<double>* out) {
  if (comm.rank() == 0) {
    comm.send(1, /*tag=*/7, {1.0, 2.0, 3.0});
    Message reply = co_await comm.recv(1, 8);
    *out = reply.data;
  } else if (comm.rank() == 1) {
    Message msg = co_await comm.recv(0, 7);
    for (auto& x : msg.data) x *= 10.0;
    comm.send(0, 8, std::move(msg.data));
  }
}

TEST_P(MpiBothBackends, PingPongRoundTrip) {
  auto m = make_machine(2);
  navp::Runtime rt(*m);
  World world(rt);
  std::vector<double> out;
  world.launch(ping_pong, &out);
  rt.run();
  EXPECT_EQ(out, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_FALSE(world.has_leftover_messages());
}

navp::Mission ring_pass(Comm comm, std::vector<int>* order) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  if (comm.rank() == 0) {
    comm.send(next, 1, {0.0});
    Message msg = co_await comm.recv(prev, 1);
    order->push_back(static_cast<int>(msg.data[0]));
  } else {
    Message msg = co_await comm.recv(prev, 1);
    comm.send(next, 1, {msg.data[0] + 1.0});
  }
}

TEST_P(MpiBothBackends, RingPassAccumulates) {
  auto m = make_machine(5);
  navp::Runtime rt(*m);
  World world(rt);
  std::vector<int> order;
  world.launch(ring_pass, &order);
  rt.run();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 4);  // incremented by ranks 1..4
}

navp::Mission tag_matcher(Comm comm, std::vector<double>* got) {
  if (comm.rank() == 0) {
    // Send tag 5 first, then tag 4; receiver asks for 4 first.
    comm.send(1, 5, {5.0});
    comm.send(1, 4, {4.0});
  } else {
    Message a = co_await comm.recv(0, 4);
    Message b = co_await comm.recv(0, 5);
    got->push_back(a.data[0]);
    got->push_back(b.data[0]);
  }
}

TEST_P(MpiBothBackends, OutOfOrderTagsMatchCorrectly) {
  auto m = make_machine(2);
  navp::Runtime rt(*m);
  World world(rt);
  std::vector<double> got;
  world.launch(tag_matcher, &got);
  rt.run();
  EXPECT_EQ(got, (std::vector<double>{4.0, 5.0}));
}

navp::Mission fifo_same_tag(Comm comm, std::vector<double>* got) {
  if (comm.rank() == 0) {
    for (int i = 0; i < 8; ++i) {
      comm.send(1, 2, {static_cast<double>(i)});
    }
  } else {
    for (int i = 0; i < 8; ++i) {
      Message msg = co_await comm.recv(0, 2);
      got->push_back(msg.data[0]);
    }
  }
}

TEST_P(MpiBothBackends, SameTagMessagesArriveFifo) {
  auto m = make_machine(2);
  navp::Runtime rt(*m);
  World world(rt);
  std::vector<double> got;
  world.launch(fifo_same_tag, &got);
  rt.run();
  std::vector<double> expect(8);
  std::iota(expect.begin(), expect.end(), 0.0);
  EXPECT_EQ(got, expect);
}

navp::Mission irecv_then_wait(Comm comm, double* got) {
  if (comm.rank() == 0) {
    Request req = comm.irecv(1, 3);  // post before the send happens
    comm.send(1, 9, {0.0});          // tell rank 1 to go
    Message msg = co_await comm.wait(req);
    *got = msg.data[0];
  } else {
    (void)co_await comm.recv(0, 9);
    comm.send(0, 3, {42.0});
  }
}

TEST_P(MpiBothBackends, IrecvWaitCompletesAfterSend) {
  auto m = make_machine(2);
  navp::Runtime rt(*m);
  World world(rt);
  double got = 0.0;
  world.launch(irecv_then_wait, &got);
  rt.run();
  EXPECT_EQ(got, 42.0);
}

navp::Mission barrier_program(Comm comm, std::vector<int>* after) {
  // Every rank charges a different amount of compute, then barriers.
  // Each rank writes only its own slot (no cross-thread races).
  comm.ctx().compute(0.1 * (comm.rank() + 1), "stagger");
  co_await comm.barrier();
  (*after)[static_cast<std::size_t>(comm.rank())] = 1;
}

TEST_P(MpiBothBackends, BarrierReleasesAllRanks) {
  auto m = make_machine(4);
  navp::Runtime rt(*m);
  World world(rt);
  std::vector<int> after(4, 0);
  world.launch(barrier_program, &after);
  rt.run();
  EXPECT_EQ(std::accumulate(after.begin(), after.end(), 0), 4);
  EXPECT_FALSE(world.has_leftover_messages());
}

TEST(MpiSim, BarrierWaitsForSlowestRank) {
  machine::SimMachine m(4);
  navp::Runtime rt(m);
  World world(rt);
  std::vector<int> after(4, 0);
  world.launch(barrier_program, &after);
  rt.run();
  // Rank 3 charges 0.4s; nobody may pass the barrier before that.
  EXPECT_GE(m.finish_time(), 0.4);
}

navp::Mission phantom_sender(Comm comm) {
  if (comm.rank() == 0) {
    comm.send(1, 1, {}, /*wire_bytes=*/1 << 20);
  } else {
    Message msg = co_await comm.recv(0, 1);
    NAVCPP_CHECK(msg.data.empty(), "phantom message should carry no data");
    NAVCPP_CHECK(msg.wire_bytes == (1u << 20), "wire bytes preserved");
  }
  co_return;
}

TEST(MpiSim, PhantomSendChargesWireBytes) {
  net::LinkParams p;
  p.send_overhead = 0.0;
  p.recv_overhead = 0.0;
  p.latency = 0.0;
  p.bandwidth = 1e6;  // 1 MB/s -> 1 MiB takes ~1.05s
  machine::SimMachine m(2, p);
  navp::Runtime rt(m);
  World world(rt);
  world.launch(phantom_sender);
  rt.run();
  EXPECT_NEAR(m.finish_time(), (1 << 20) / 1e6, 0.05);
}

TEST(MpiSim, SendToInvalidRankThrows) {
  machine::SimMachine m(2);
  navp::Runtime rt(m);
  World world(rt);
  world.launch([](Comm comm) -> navp::Mission {
    if (comm.rank() == 0) comm.send(5, 1, {1.0});
    co_return;
  });
  EXPECT_THROW(rt.run(), support::LogicError);
}

TEST(MpiSim, DeadlockedRecvIsReported) {
  machine::SimMachine m(2);
  navp::Runtime rt(m);
  World world(rt);
  world.launch([](Comm comm) -> navp::Mission {
    if (comm.rank() == 0) {
      (void)co_await comm.recv(1, 99);  // never sent
    }
    co_return;
  });
  EXPECT_THROW(rt.run(), support::DeadlockError);
}

INSTANTIATE_TEST_SUITE_P(Backends, MpiBothBackends,
                         ::testing::Values(std::string("sim"),
                                           std::string("threaded")),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace navcpp::minimpi
