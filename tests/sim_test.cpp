// Unit tests for the discrete-event queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace navcpp::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ActionsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  // A chain of events, each scheduling its successor one second later.
  struct Chain {
    EventQueue* q;
    std::vector<double>* times;
    void fire(double t, int remaining) const {
      times->push_back(t);
      if (remaining > 0) {
        const Chain self = *this;
        q->schedule(t + 1.0,
                    [self, t, remaining] { self.fire(t + 1.0, remaining - 1); });
      }
    }
  };
  Chain chain{&q, &times};
  q.schedule(0.0, [chain] { chain.fire(0.0, 4); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0}));
}

TEST(EventQueue, NextTimeAndPopTimeAgree) {
  EventQueue q;
  q.schedule(2.5, [] {});
  q.schedule(1.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.5);
  double when = -1.0;
  (void)q.pop(&when);
  EXPECT_DOUBLE_EQ(when, 1.5);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, SizeTracksScheduleAndPop) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace navcpp::sim
