// Coverage for the smaller public APIs not exercised elsewhere.
#include <gtest/gtest.h>

#include <coroutine>

#include "machine/sim_machine.h"
#include "minimpi/world.h"
#include "mm/common.h"
#include "navp/event.h"
#include "navp/runtime.h"
#include "perfmodel/testbed.h"

namespace navcpp {
namespace {

TEST(EventTable, PendingSignalsAndWaiterCounts) {
  navp::EventTable table;
  const navp::EventKey k{1, 2, 3};
  EXPECT_EQ(table.pending_signals(k), 0u);
  EXPECT_EQ(table.waiter_count(k), 0u);
  EXPECT_FALSE(table.has_waiters());

  // Banked signals accumulate when nobody waits.
  EXPECT_FALSE(table.signal(k).handle);
  EXPECT_FALSE(table.signal(k).handle);
  EXPECT_EQ(table.pending_signals(k), 2u);
  EXPECT_EQ(table.total_pending_signals(), 2u);
  EXPECT_TRUE(table.try_consume(k));
  EXPECT_TRUE(table.try_consume(k));
  EXPECT_FALSE(table.try_consume(k));
}

TEST(EventTable, SignalHandsToOldestWaiter) {
  navp::EventTable table;
  const navp::EventKey k{9, 0, 0};
  navp::AgentState a, b;
  a.id = 1;
  b.id = 2;
  table.add_waiter(k, navp::EventWaiter{std::noop_coroutine(), &a});
  table.add_waiter(k, navp::EventWaiter{std::noop_coroutine(), &b});
  EXPECT_EQ(table.waiter_count(k), 2u);
  EXPECT_TRUE(table.has_waiters());
  const auto first = table.signal(k);
  EXPECT_EQ(first.agent, &a);  // FIFO
  const auto second = table.signal(k);
  EXPECT_EQ(second.agent, &b);
  EXPECT_EQ(table.waiter_count(k), 0u);
  // Nothing banked: both signals were handed over.
  EXPECT_EQ(table.pending_signals(k), 0u);
}

TEST(EventKey, StringFormAndEquality) {
  const navp::EventKey a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.str(), "E1(2,3)");
  const navp::EventKeyHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // not guaranteed, but true for this hash
}

TEST(Testbed, WorkingSetFormula) {
  EXPECT_EQ(perfmodel::Testbed::mm_working_set(1024),
            3ull * 1024 * 1024 * sizeof(double));
}

TEST(Testbed, GemmSecondsScalesLinearlyInEachDimension) {
  const perfmodel::Testbed tb;
  const double base = tb.gemm_seconds(64, 64, 64);
  EXPECT_NEAR(tb.gemm_seconds(128, 64, 64), 2.0 * base, 1e-12);
  EXPECT_NEAR(tb.gemm_seconds(64, 128, 64), 2.0 * base, 1e-12);
  EXPECT_NEAR(tb.gemm_seconds(64, 64, 128), 2.0 * base, 1e-12);
}

TEST(MmConfig, NbValidation) {
  mm::MmConfig cfg;
  cfg.order = 256;
  cfg.block_order = 64;
  EXPECT_EQ(cfg.nb(), 4);
  cfg.block_order = 48;
  EXPECT_THROW(cfg.nb(), support::LogicError);
  cfg.order = 0;
  EXPECT_THROW(cfg.nb(), support::LogicError);
}

TEST(BlockKey, PacksCoordinatesInjectively) {
  EXPECT_NE(mm::block_key(1, 2), mm::block_key(2, 1));
  EXPECT_EQ(mm::block_key(7, 9), mm::block_key(7, 9));
  EXPECT_NE(mm::block_key(0, 1), mm::block_key(1, 0));
}

TEST(World, SizeMatchesMachineAndMailboxesInstalled) {
  machine::SimMachine m(4);
  navp::Runtime rt(m);
  minimpi::World world(rt);
  EXPECT_EQ(world.size(), 4);
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_TRUE(rt.node_store(pe).has<minimpi::Mailbox>());
  }
  EXPECT_FALSE(world.has_leftover_messages());
  // Constructing a second World on the same runtime is idempotent.
  minimpi::World again(rt);
  EXPECT_EQ(again.size(), 4);
}

TEST(CommWork, ChargesOntoTheRanksPe) {
  machine::SimMachine m(2);
  navp::Runtime rt(m);
  minimpi::World world(rt);
  world.launch([](minimpi::Comm comm) -> navp::Mission {
    comm.work("chunk", 0.25 * (comm.rank() + 1), [] {});
    co_return;
  });
  rt.run();
  EXPECT_DOUBLE_EQ(m.now(0), 0.25);
  EXPECT_DOUBLE_EQ(m.now(1), 0.5);
}

TEST(Mailbox, PendingAndPopSemantics) {
  minimpi::Mailbox box;
  EXPECT_TRUE(box.empty());
  box.deposit(minimpi::Message{0, 5, {1.0}, 8});
  box.deposit(minimpi::Message{0, 5, {2.0}, 8});
  box.deposit(minimpi::Message{1, 5, {3.0}, 8});
  EXPECT_EQ(box.pending(), 3u);
  EXPECT_FALSE(box.pop(2, 5).has_value());  // no such source
  auto first = box.pop(0, 5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->data[0], 1.0);  // FIFO within a match
  auto cross = box.pop(1, 5);
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(cross->data[0], 3.0);
  EXPECT_EQ(box.pending(), 1u);
}

}  // namespace
}  // namespace navcpp
