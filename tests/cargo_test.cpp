// Tests for Cargo: payload accounting and strict-migration round trips.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/workloads.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/cargo.h"
#include "navp/runtime.h"

namespace navcpp::navp {
namespace {

TEST(Cargo, WireBytesTrackRegisteredBuffers) {
  Cargo cargo;
  std::vector<double> a(10);
  int scalar = 0;
  cargo.attach(&a);
  cargo.attach_value(&scalar);
  EXPECT_EQ(cargo.wire_bytes(), 10 * sizeof(double) + sizeof(int));
  a.resize(25);  // live size, not registration-time size
  EXPECT_EQ(cargo.wire_bytes(), 25 * sizeof(double) + sizeof(int));
}

TEST(Cargo, SaveRestoreRoundTrips) {
  Cargo cargo;
  std::vector<double> v{1.0, 2.0, 3.0};
  std::vector<int> w{7, 8};
  double x = 3.25;
  cargo.attach(&v);
  cargo.attach(&w);
  cargo.attach_value(&x);
  auto buf = cargo.save();
  v.assign(3, 0.0);
  w.assign(2, 0);
  x = 0.0;
  cargo.restore(buf);
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(w, (std::vector<int>{7, 8}));
  EXPECT_DOUBLE_EQ(x, 3.25);
}

TEST(Cargo, RestoreRejectsTrailingBytesWithTypedError) {
  Cargo small;
  std::vector<int> w{1};
  small.attach(&w);
  Cargo big;
  std::vector<int> v{1, 2, 3};
  std::vector<int> u{4};
  big.attach(&v);
  big.attach(&u);
  auto buf = big.save();
  // Typed and catchable: a schema-skewed peer frame is an input error the
  // caller can handle, not a NAVCPP_CHECK abort of the whole process.
  try {
    small.restore(buf);
    FAIL() << "restore should have thrown CargoSchemaError";
  } catch (const support::CargoSchemaError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing byte"), std::string::npos)
        << e.what();
  }
}

TEST(Cargo, RestoreRejectsTruncationWithTypedError) {
  // The reverse skew: the restore-side cargo set wants MORE than the buffer
  // holds.  The mid-item underflow must also surface as CargoSchemaError.
  Cargo small;
  std::vector<int> w{1};
  small.attach(&w);
  auto buf = small.save();
  Cargo big;
  std::vector<int> v;
  std::vector<int> u;
  big.attach(&v);
  big.attach(&u);
  EXPECT_THROW(big.restore(buf), support::CargoSchemaError);
}

TEST(Cargo, SchemaErrorIsCatchableAsBaseError) {
  // CargoSchemaError derives from support::Error so generic failure paths
  // (run() rethrow, fault-suite case wrappers) classify it as a navcpp
  // failure rather than an unknown std::exception.
  Cargo small;
  std::vector<int> w{1};
  small.attach(&w);
  Cargo big;
  std::vector<int> v{1, 2};
  std::vector<int> u{3};
  big.attach(&v);
  big.attach(&u);
  auto buf = big.save();
  bool caught = false;
  try {
    small.restore(buf);
  } catch (const support::Error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

struct Sink {
  double total = 0.0;
};

Mission courier(Ctx ctx, int laps) {
  std::vector<double> values{1.0, 2.0, 3.0};  // agent variables
  double running = 0.0;
  Cargo cargo;
  cargo.attach(&values);
  cargo.attach_value(&running);
  for (int lap = 0; lap < laps; ++lap) {
    for (int pe = 0; pe < ctx.pe_count(); ++pe) {
      co_await hop_cargo(ctx, pe, cargo);
      for (double v : values) running += v;
      ctx.node<Sink>().total += running;
    }
  }
}

class CargoBothBackends : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<machine::Engine> make_machine(int pes) {
    if (GetParam() == "sim") {
      return std::make_unique<machine::SimMachine>(pes);
    }
    auto m = std::make_unique<machine::ThreadedMachine>(pes);
    m->set_stall_timeout(5.0);
    return m;
  }

  double run_courier(bool strict) {
    auto m = make_machine(3);
    Runtime rt(*m);
    rt.set_strict_migration(strict);
    for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<Sink>();
    rt.inject(0, "courier", courier, 2);
    rt.run();
    double total = 0.0;
    for (int pe = 0; pe < 3; ++pe) {
      total += rt.node_store(pe).get<Sink>().total;
    }
    return total;
  }
};

TEST_P(CargoBothBackends, StrictAndRelaxedMigrationAgree) {
  // running accumulates 6 per visit; node sums of running over 6 visits:
  // 6+12+18+24+30+36 = 126, identical in both modes.
  EXPECT_DOUBLE_EQ(run_courier(false), 126.0);
  EXPECT_DOUBLE_EQ(run_courier(true), 126.0);
}

TEST(CargoSim, HopCargoChargesTheCargoBytes) {
  net::LinkParams p;
  p.send_overhead = 0.0;
  p.recv_overhead = 0.0;
  p.latency = 0.0;
  p.bandwidth = 1e6;  // 1 MB/s: bytes dominate
  machine::SimMachine m(2, p);
  Runtime rt(m);
  rt.set_hop_state_bytes(0);
  rt.node_store(0).emplace<Sink>();
  rt.node_store(1).emplace<Sink>();
  rt.inject(0, "courier", courier, 1);
  rt.run();
  // One remote crossing (0->1) carrying 3 doubles + 1 double of cargo
  // (vector length prefixes are runtime bookkeeping, not wire payload).
  const double expected = (3 * 8 + 8) / 1e6;
  EXPECT_NEAR(m.finish_time(), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Backends, CargoBothBackends,
                         ::testing::Values(std::string("sim"),
                                           std::string("threaded")),
                         [](const auto& info) { return info.param; });

TEST(CargoStrict, AllWorkloadsBitIdenticalUnderStrictMigration) {
  // Every catalog program's carried agent variables are declared via Cargo,
  // so under the ambient strict scope every hop serializes them into a
  // ByteBuffer and rebuilds them on arrival — the way a real address-space
  // boundary would.  A program that carried a raw pointer into another
  // PE's node variables, or forgot to declare a carried buffer, would
  // diverge (or crash) here.  Results must match the relaxed-mode
  // reference bit for bit.
  for (const auto& name : harness::workload_names()) {
    const auto& reference = harness::workload_reference(name);
    machine::SimMachine sim(harness::workload_pe_count(name),
                            harness::workload_link(name));
    StrictMigrationScope strict;
    const auto got = harness::run_workload(name, sim);
    ASSERT_EQ(got, reference) << name;
  }
}

TEST(CargoStrict, ScopeIsThreadLocalAndRestored) {
  EXPECT_FALSE(StrictMigrationScope::active());
  {
    StrictMigrationScope outer;
    EXPECT_TRUE(StrictMigrationScope::active());
    machine::SimMachine m(1);
    Runtime rt(m);
    EXPECT_TRUE(rt.strict_migration());
  }
  EXPECT_FALSE(StrictMigrationScope::active());
  machine::SimMachine m(1);
  Runtime rt(m);
  EXPECT_FALSE(rt.strict_migration());
}

}  // namespace
}  // namespace navcpp::navp
