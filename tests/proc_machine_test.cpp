// Tests for the process-per-PE backend: ProcMachine + the wire protocol.
//
// Everything here runs real forked worker processes.  The default options
// exercise the fork/exec path (the navcpp_worker binary is discovered next
// to the test's build tree); fork_only() pins the no-exec fallback so the
// suite still passes when the binary is missing.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/fault_suite.h"
#include "harness/workloads.h"
#include "machine/fault_machine.h"
#include "machine/proc_machine.h"
#include "net/wire.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/proc_trace.h"
#include "support/error.h"

namespace navcpp::machine {
namespace {

ProcMachine::Options fork_only() {
  ProcMachine::Options o;
  o.force_fork_only = true;
  return o;
}

TEST(Wire, FrameRoundTripsThroughEncodeAndParse) {
  net::WireFrame in;
  in.type = net::WireType::kQuiesceAck;
  in.pe = 3;
  in.src = 1;
  in.token = 0xdeadbeefULL;
  in.arg = 42;
  in.tokens = {7, 8, 9};
  in.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  in.stats.posts_granted = 5;
  in.stats.hop_bytes_in = 4096;

  std::vector<std::byte> bytes;
  wire_encode(in, bytes);

  // Feed the encoding through a FrameConn's parser via a socketpair.
  int fds[2];
  net::wire_socketpair(fds);
  net::FrameConn a(fds[0]);
  net::FrameConn b(fds[1]);
  ASSERT_EQ(::write(fds[0], bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  ASSERT_TRUE(b.read_some());
  net::WireFrame out;
  ASSERT_TRUE(b.next_frame(&out));
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.pe, in.pe);
  EXPECT_EQ(out.src, in.src);
  EXPECT_EQ(out.token, in.token);
  EXPECT_EQ(out.arg, in.arg);
  EXPECT_EQ(out.tokens, in.tokens);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.stats.posts_granted, 5u);
  EXPECT_EQ(out.stats.hop_bytes_in, 4096u);
  EXPECT_FALSE(b.next_frame(&out));
  a.close();
  b.close();
}

TEST(Wire, ChecksumDetectsCorruption) {
  std::vector<std::byte> payload;
  net::wire_fill_pattern(payload, 1000, 123);
  const std::uint64_t good =
      net::wire_checksum(payload.data(), payload.size(), 123);
  payload[500] ^= std::byte{1};
  EXPECT_NE(net::wire_checksum(payload.data(), payload.size(), 123), good);
}

TEST(Wire, LittleEndianHelpersHaveFixedByteLayout) {
  // The wire layout is defined, not host-defined: 0x0123456789abcdef must
  // serialize least-significant byte first on every machine.
  std::vector<std::byte> out;
  net::wire_put_u8(out, 0xabu);
  net::wire_put_u16(out, 0x0123u);
  net::wire_put_u32(out, 0x01234567u);
  net::wire_put_u64(out, 0x0123456789abcdefULL);
  ASSERT_EQ(out.size(), 1u + 2u + 4u + 8u);
  const std::uint8_t want[] = {0xab, 0x23, 0x01, 0x67, 0x45, 0x23, 0x01,
                               0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23,
                               0x01};
  for (std::size_t i = 0; i < sizeof(want); ++i) {
    EXPECT_EQ(std::to_integer<std::uint8_t>(out[i]), want[i]) << "byte " << i;
  }
  EXPECT_EQ(net::wire_get_u8(out.data()), 0xabu);
  EXPECT_EQ(net::wire_get_u16(out.data() + 1), 0x0123u);
  EXPECT_EQ(net::wire_get_u32(out.data() + 3), 0x01234567u);
  EXPECT_EQ(net::wire_get_u64(out.data() + 7), 0x0123456789abcdefULL);
}

TEST(Wire, ListenerRebindsImmediatelyAfterClose) {
  // Regression: without SO_REUSEADDR a listener that just closed with an
  // accepted connection in TIME_WAIT cannot rebind its port, which made
  // back-to-back TCP-mode machines flaky.  Server-side close first puts
  // the accepted socket's 4-tuple into TIME_WAIT on the listener's port.
  std::uint16_t port = 0;
  {
    net::WireListener first;
    port = first.port();
    const int client = net::wire_connect_loopback(port);
    const int accepted = first.accept_one(5.0);
    ASSERT_GE(accepted, 0);
    ::close(accepted);
    ::close(client);
  }
  net::WireListener second(port);
  EXPECT_EQ(second.port(), port);
}

TEST(Wire, TcpFdsAreCloexecButMeshSocketpairsAreNot) {
  // Accepted/dialed TCP fds must not leak into exec'd worker children;
  // mesh edge socketpairs are the one deliberate exception — they exist
  // to be inherited across fork/exec.
  net::WireListener listener;
  const int client = net::wire_connect_loopback(listener.port());
  const int accepted = listener.accept_one(5.0);
  ASSERT_GE(accepted, 0);
  EXPECT_TRUE(::fcntl(client, F_GETFD) & FD_CLOEXEC);
  EXPECT_TRUE(::fcntl(accepted, F_GETFD) & FD_CLOEXEC);
  ::close(client);
  ::close(accepted);

  int pair[2];
  net::wire_peer_socketpair(pair);
  EXPECT_FALSE(::fcntl(pair[0], F_GETFD) & FD_CLOEXEC);
  EXPECT_FALSE(::fcntl(pair[1], F_GETFD) & FD_CLOEXEC);
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST(ProcMachine, RunsPostedActionsOnAllPes) {
  ProcMachine m(4);
  std::vector<int> ran(4, 0);
  for (int pe = 0; pe < 4; ++pe) {
    m.post(pe, [&ran, pe] { ran[static_cast<std::size_t>(pe)] += 1; });
  }
  m.run();
  for (int pe = 0; pe < 4; ++pe) EXPECT_EQ(ran[pe], 1) << "pe " << pe;
}

TEST(ProcMachine, PePreservesFifoOrder) {
  ProcMachine m(1, fork_only());
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    m.post(0, [&order, i] { order.push_back(i); });
  }
  m.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ProcMachine, TransmitDeliversInSendOrder) {
  ProcMachine m(2, fork_only());
  std::vector<int> got;
  m.post(0, [&] {
    for (int i = 0; i < 50; ++i) {
      m.transmit(0, 1, 128, [&got, i] { got.push_back(i); });
    }
  });
  m.run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(m.transmitted_messages(), 50u);
  EXPECT_EQ(m.transmitted_bytes(), 50u * 128u);
}

TEST(ProcMachine, HopPayloadCrossesBothWorkers) {
  ProcMachine m(2, fork_only());
  m.post(0, [&] { m.transmit(0, 1, 4096, [] {}); });
  m.run();
  // The source worker materialized the bytes; the destination worker
  // checksum-verified them after two address-space crossings.
  EXPECT_EQ(m.worker_stats(0).hops_out, 1u);
  EXPECT_EQ(m.worker_stats(0).hop_bytes_out, 4096u);
  EXPECT_EQ(m.worker_stats(1).hops_in, 1u);
  EXPECT_EQ(m.worker_stats(1).hop_bytes_in, 4096u);
}

TEST(ProcMachine, PostAfterFiresOnWorkerTimer) {
  ProcMachine m(2, fork_only());
  bool fired = false;
  m.post_after(1, 0.02, [&] { fired = true; });
  m.run();
  EXPECT_TRUE(fired);
  EXPECT_GE(m.worker_stats(1).timers_fired, 1u);
}

TEST(ProcMachine, ExceptionInActionPropagatesToRun) {
  ProcMachine m(2, fork_only());
  m.post(1, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(ProcMachine, RejectsBadPe) {
  ProcMachine m(2, fork_only());
  EXPECT_THROW(m.post(2, [] {}), support::Error);
  EXPECT_THROW(m.post(-1, [] {}), support::Error);
  EXPECT_THROW(m.transmit(0, 5, 1, [] {}), support::Error);
}

TEST(ProcMachine, ReusedMachineStaysFresh) {
  ProcMachine m(3, fork_only());
  for (int round = 0; round < 3; ++round) {
    int count = 0;
    for (int pe = 0; pe < 3; ++pe) {
      m.post(pe, [&, pe] { m.transmit(pe, (pe + 1) % 3, 64, [&] { ++count; }); });
    }
    m.run();
    EXPECT_EQ(count, 3) << "round " << round;
    // Stats are per-run, reset by run(): no leakage from earlier rounds.
    EXPECT_EQ(m.transmitted_messages(), 3u) << "round " << round;
    EXPECT_EQ(m.transmitted_bytes(), 3u * 64u) << "round " << round;
  }
}

TEST(ProcMachine, WorkerCrashSurfacesTypedErrorNotHang) {
  ProcMachine m(2);
  m.task_started();
  m.post(0, [&] {
    m.kill_worker(1);  // fail-stop: PE 1's process is gone mid-run
    m.post(1, [&] { m.task_finished(); });
  });
  try {
    m.run();
    FAIL() << "run() should have thrown ProcError";
  } catch (const support::ProcError& e) {
    EXPECT_NE(std::string(e.what()).find("PE 1"), std::string::npos)
        << e.what();
  }
  m.task_finished();  // rebalance the counter for teardown
  EXPECT_FALSE(m.worker_alive(1));
  EXPECT_TRUE(m.worker_alive(0));
}

TEST(ProcMachine, DeadlockDetectedWithBlockedReport) {
  ProcMachine m(2, fork_only());
  m.set_blocked_reporter([] { return std::string("agent 7 waits on event X"); });
  m.task_started();
  m.post(0, [] {});  // never calls task_finished
  try {
    m.run();
    FAIL() << "run() should have thrown DeadlockError";
  } catch (const support::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("agent 7 waits on event X"), std::string::npos);
    EXPECT_NE(what.find("per-worker status"), std::string::npos);
  }
  m.task_finished();
}

TEST(ProcMachine, QuiesceDrainsInFlightFramesOnError) {
  ProcMachine m(2, fork_only());
  int delivered = 0;
  m.post(0, [&] {
    // Leave a burst of hops in flight, then die: quiesce must destroy the
    // undelivered closures (not run them) and leave the machine reusable.
    for (int i = 0; i < 50; ++i) m.transmit(0, 1, 4096, [&] { ++delivered; });
    throw std::runtime_error("mid-burst failure");
  });
  EXPECT_THROW(m.run(), std::runtime_error);
  EXPECT_EQ(delivered, 0);

  bool ran = false;
  m.post(1, [&] { ran = true; });
  m.run();
  EXPECT_TRUE(ran);
}

TEST(ProcMachine, TcpTransportFallback) {
  ProcMachine::Options o;
  o.use_tcp = true;
  o.force_fork_only = true;
  ProcMachine m(2, o);
  int delivered = 0;
  m.post(0, [&] { m.transmit(0, 1, 256, [&] { ++delivered; }); });
  m.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(m.worker_stats(1).hops_in, 1u);
}

TEST(ProcMachine, MetricsRegistryGetsPerPeAndWorkerCounters) {
  ProcMachine m(2, fork_only());
  obs::Registry reg;
  m.set_metrics(&reg);
  m.post(0, [&] { m.transmit(0, 1, 512, [] {}); });
  m.run();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_GE(snap.counter_or("proc.actions{pe=0}"), 1u);
  EXPECT_GE(snap.counter_or("proc.actions{pe=1}"), 1u);
  EXPECT_EQ(snap.counter_or("net.messages"), 1u);
  EXPECT_EQ(snap.counter_or("net.bytes"), 512u);
  // Worker-side counters shipped back on quiesce.
  EXPECT_GE(snap.counter_or("proc.worker.posts{pe=0}"), 1u);
  EXPECT_EQ(snap.counter_or("proc.worker.hops_in{pe=1}"), 1u);
  EXPECT_EQ(snap.counter_or("proc.worker.hop_bytes_in{pe=1}"), 512u);
}

// --- crash tolerance: supervision, heartbeats, respawn, checkpoints --------

TEST(ProcMachine, KillWorkerIsIdempotent) {
  ProcMachine m(2);
  m.task_started();
  m.post(0, [&] {
    EXPECT_EQ(m.kill_worker(1), ProcMachine::KillResult::kSignaled);
    // Double-kill in the detection window: the incarnation is dying but not
    // yet reaped, so signaling it again is defined (and harmless).
    (void)m.kill_worker(1);
    m.post(1, [&] { m.task_finished(); });
  });
  EXPECT_THROW(m.run(), support::ProcError);
  m.task_finished();
  EXPECT_FALSE(m.worker_alive(1));
  // After death detection the pid may have been recycled by the OS: the
  // report must flip to kAlreadyDead and the dead pid must never be
  // signaled again, however many times callers ask.
  EXPECT_EQ(m.kill_worker(1), ProcMachine::KillResult::kAlreadyDead);
  EXPECT_EQ(m.kill_worker(1), ProcMachine::KillResult::kAlreadyDead);
  EXPECT_EQ(m.stop_worker(1), ProcMachine::KillResult::kAlreadyDead);
}

TEST(ProcMachine, RespawnRedeliversPendingWorkExactlyOnce) {
  ProcMachine::Options o;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  // SIGKILL PE 1's worker at the 10th cross-PE transmit: 30 more hops are
  // queued behind the crash, some already in the dead worker's socket.
  m.schedule_kill_after_transmits(1, 10);
  int delivered = 0;
  m.post(0, [&] {
    for (int i = 0; i < 40; ++i) m.transmit(0, 1, 256, [&] { ++delivered; });
  });
  m.run();
  // Exactly once: the respawned worker's seq dedup discards any frame the
  // dead incarnation already granted, and retained-frame replay supplies
  // the ones it lost.
  EXPECT_EQ(delivered, 40);
  EXPECT_GE(m.worker_deaths(), 1u);
  EXPECT_GE(m.respawns(1), 1);
  EXPECT_GE(m.total_respawns(), 1u);
  EXPECT_TRUE(m.worker_alive(1));
  EXPECT_GT(m.last_recovery_seconds(), 0.0);
}

TEST(ProcMachine, TornFrameSurfacesTypedErrorNotPartialFrameHang) {
  // An 8 MiB hop needs many write() chunks; the SIGKILL lands with the
  // frame part-written somewhere in the pipeline.  Without recovery the
  // contract is the pre-recovery one: a typed ProcError naming the PE,
  // never a hang on a half-frame and never a short delivery.
  ProcMachine m(2);
  m.task_started();
  int delivered = 0;
  m.post(0, [&] {
    m.transmit(0, 1, 8u << 20, [&] { ++delivered; });
    m.kill_worker(1);
    m.post(1, [&] { m.task_finished(); });
  });
  try {
    m.run();
    FAIL() << "run() should have thrown ProcError";
  } catch (const support::ProcError& e) {
    EXPECT_NE(std::string(e.what()).find("PE 1"), std::string::npos)
        << e.what();
  }
  m.task_finished();
  EXPECT_EQ(delivered, 0);
}

TEST(ProcMachine, TornFrameRedeliveredExactlyOnceWithRecovery) {
  ProcMachine::Options o;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  int delivered = 0;
  m.post(0, [&] {
    m.transmit(0, 1, 8u << 20, [&] { ++delivered; });
    m.kill_worker(1);
  });
  m.run();
  // The torn partial frame died with the old conn's buffers; the respawned
  // worker got a clean replay of the whole payload, exactly once.
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(m.worker_deaths(), 1u);
  EXPECT_GE(m.respawns(1), 1);
}

TEST(ProcMachine, HeartbeatToleratesLongParentAction) {
  // The PR 2 false-deadlock regression guard, crash-supervision edition: a
  // visit that outlives the pong deadline must NOT read as a dead worker.
  // While the parent executes an action it cannot drain pongs, so the
  // supervisor credits action time against every worker's deadline.
  ProcMachine::Options o;
  o.heartbeat_interval_s = 0.05;
  o.heartbeat_timeout_s = 0.15;
  ProcMachine m(2, o);
  m.post(0, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  });
  m.post(1, [] {});
  m.run();  // a false heartbeat kill would surface as ProcError here
  EXPECT_EQ(m.worker_deaths(), 0u);
  EXPECT_TRUE(m.worker_alive(0));
  EXPECT_TRUE(m.worker_alive(1));
}

TEST(ProcMachine, HeartbeatEscalatesWedgedWorkerToRespawn) {
  // SIGSTOP is the failure mode socket EOF cannot see: the process is
  // alive, fds open, but it will never answer.  Only the missing pong
  // betrays it; the supervisor escalates to SIGKILL and respawns.
  ProcMachine::Options o;
  o.heartbeat_interval_s = 0.05;
  o.heartbeat_timeout_s = 0.25;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  bool fired = false;
  m.post(0, [&] {
    EXPECT_EQ(m.stop_worker(1), ProcMachine::KillResult::kSignaled);
    // The timer frame lands in the wedged worker's socket buffer and dies
    // with it; the respawned incarnation must get it replayed.
    m.post_after(1, 0.01, [&] { fired = true; });
  });
  m.run();
  EXPECT_TRUE(fired);
  EXPECT_GE(m.worker_deaths(), 1u);
  EXPECT_GE(m.respawns(1), 1);
  EXPECT_TRUE(m.worker_alive(1));
}

TEST(ProcMachine, CheckpointRoundTripsThroughWorker) {
  ProcMachine m(2);
  std::vector<std::byte> data;
  for (int i = 0; i < 4096; ++i) {
    data.push_back(static_cast<std::byte>(i * 31 & 0xff));
  }
  std::optional<std::vector<std::byte>> got;
  std::optional<std::vector<std::byte>> none;
  m.post(0, [&] {
    m.save_checkpoint(1, data);
    got = m.load_checkpoint(1);   // real wire round-trip to PE 1's worker
    none = m.load_checkpoint(0);  // PE 0 never checkpointed
  });
  m.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
  EXPECT_FALSE(none.has_value());
}

TEST(ProcMachine, CheckpointSurvivesRespawnViaReseed) {
  ProcMachine::Options o;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  std::vector<std::byte> data(512, std::byte{0x5a});
  std::optional<std::vector<std::byte>> got;
  m.post(0, [&] {
    m.save_checkpoint(1, data);
    m.kill_worker(1);
    // The worker that held the checkpoint is gone; the supervisor re-pushes
    // the parent's retained copy during respawn, so the fetch must still be
    // answered over the wire by the new incarnation.
    m.post(1, [&] { got = m.load_checkpoint(1); });
  });
  m.run();
  EXPECT_GE(m.respawns(1), 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
}

TEST(ProcMachine, RecoveryBudgetExhaustionFailsWithTypedError) {
  ProcMachine::Options o;
  o.recovery.enabled = true;
  o.recovery.max_respawns = 1;
  o.recovery.backoff_s = 0.001;
  ProcMachine m(2, o);
  m.task_started();
  int kills = 0;
  std::function<void()> kill_again = [&] {
    ++kills;
    m.kill_worker(1);
    if (kills < 3) {
      // Each respawn is greeted with another SIGKILL until the budget runs
      // out; schedule from the parent so the victim needn't be schedulable.
      m.post_after(0, 0.05, [&] { kill_again(); });
    }
  };
  m.post(0, [&] { kill_again(); });
  try {
    m.run();
    FAIL() << "run() should have thrown ProcError";
  } catch (const support::ProcError& e) {
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos)
        << e.what();
  }
  m.task_finished();
}

TEST(ProcMachine, RecoveryBudgetExhaustionCanDegradeInstead) {
  ProcMachine::Options o;
  o.recovery.enabled = true;
  o.recovery.max_respawns = 0;
  o.recovery.on_exhausted = RecoveryPolicy::OnExhausted::kDegrade;
  ProcMachine m(2, o);
  bool survivor_ran = false;
  m.post(0, [&] {
    m.kill_worker(1);
    m.transmit(0, 1, 64, [] {});  // black-holed, must not wedge the run
    m.post(0, [&] { survivor_ran = true; });
  });
  m.run();  // completes: the degraded PE's work is dropped, not awaited
  EXPECT_TRUE(survivor_ran);
  EXPECT_TRUE(m.worker_degraded(1));
  EXPECT_FALSE(m.worker_alive(1));
  EXPECT_TRUE(m.worker_alive(0));
}

// --- cross-process observability: tracing, telemetry, flight recorder ------

int count_spans(const std::vector<obs::ProcSpan>& spans,
                obs::ProcSpanKind kind) {
  int n = 0;
  for (const obs::ProcSpan& s : spans) {
    if (s.kind == static_cast<std::uint8_t>(kind)) ++n;
  }
  return n;
}

/// Inbound-hop verify spans regardless of data plane: kVerify on the star,
/// kVerifyDirect on the mesh.
int count_verify_spans(const std::vector<obs::ProcSpan>& spans) {
  return count_spans(spans, obs::ProcSpanKind::kVerify) +
         count_spans(spans, obs::ProcSpanKind::kVerifyDirect);
}

TEST(ProcMachine, TracedRunRecordsWorkerSpansAndCausalFlows) {
  ProcMachine::Options o;
  o.trace = true;
  ProcMachine m(2, o);
  m.post(0, [&] {
    for (int i = 0; i < 8; ++i) m.transmit(0, 1, 256, [] {});
  });
  m.run();

  const std::vector<obs::WorkerLane> lanes = m.worker_lanes();
  ASSERT_EQ(lanes.size(), 2u);
  // Every hop leaves a serialize span on the source worker and a verify
  // span on the destination worker, tied together by the frame's trace id.
  EXPECT_GE(count_spans(lanes[0].spans, obs::ProcSpanKind::kSerialize), 8);
  EXPECT_GE(count_verify_spans(lanes[1].spans), 8);
  const std::vector<obs::HopFlow> flows =
      obs::proc_trace_flows(lanes, m.run_epoch_ns());
  EXPECT_GE(flows.size(), 8u);
  for (const obs::HopFlow& f : flows) {
    EXPECT_EQ(f.src_pe, 0);
    EXPECT_EQ(f.dst_pe, 1);
    EXPECT_GE(f.send_s, 0.0);
    EXPECT_GE(f.recv_s, f.send_s) << "trace " << f.trace_id;
  }
  // The merged export over real worker data is validator-clean.
  obs::ProcTraceOptions topts;
  topts.pe_count = 2;
  topts.parent_epoch_ns = m.run_epoch_ns();
  const std::string json = obs::proc_trace_json(
      {}, {}, lanes, m.recovery_timelines(), nullptr, topts);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"hopflow\""), std::string::npos);
}

TEST(ProcMachine, TracingOffShipsNoSpans) {
  ProcMachine m(2);  // default: trace off
  m.post(0, [&] { m.transmit(0, 1, 256, [] {}); });
  m.run();
  for (const obs::WorkerLane& lane : m.worker_lanes()) {
    EXPECT_TRUE(lane.spans.empty()) << "pe " << lane.pe;
  }
}

TEST(ProcMachine, ResetClearsSpansAndTimelinesBetweenRuns) {
  // A reused engine must not leak the previous run's observability state:
  // spans, recovery timelines, and per-PE action clocks all reset.
  ProcMachine::Options o;
  o.trace = true;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  bool after = false;
  m.post(0, [&] {
    m.transmit(0, 1, 64, [&] {
      m.kill_worker(1);
      m.post(1, [&] { after = true; });  // keeps the run alive to respawn
    });
  });
  m.run();
  EXPECT_TRUE(after);
  EXPECT_GE(m.recovery_timelines().size(), 1u);
  EXPECT_FALSE(m.worker_lanes()[0].spans.empty());

  // Second run: one hop, no deaths.  Exactly this run's spans remain.
  m.post(0, [&] { m.transmit(0, 1, 64, [] {}); });
  m.run();
  EXPECT_TRUE(m.recovery_timelines().empty())
      << "run 1's recovery timeline leaked into run 2";
  const std::vector<obs::WorkerLane> lanes = m.worker_lanes();
  EXPECT_EQ(count_spans(lanes[0].spans, obs::ProcSpanKind::kSerialize), 1);
  EXPECT_EQ(count_verify_spans(lanes[1].spans), 1);
}

TEST(ProcMachine, LiveTelemetryStreamsMidRun) {
  ProcMachine::Options o;
  o.stats_interval_s = 0.002;  // workers push kStatsDelta every 2 ms
  ProcMachine m(2, o);
  int ticks = 0;
  std::size_t rows = 0;
  std::uint64_t live_hops_in = 0;
  m.set_telemetry(
      [&](double /*t*/, const std::vector<ProcMachine::LiveTelemetry>& pes) {
        ++ticks;
        rows = pes.size();
        for (const auto& row : pes) {
          EXPECT_TRUE(row.alive) << "pe " << row.pe;
          live_hops_in = std::max(live_hops_in, row.stats.hops_in);
        }
      },
      /*interval_s=*/0.005);
  m.post(0, [&] {
    for (int i = 0; i < 4; ++i) m.transmit(0, 1, 128, [] {});
  });
  m.post_after(1, 0.08, [] {});  // holds the run open across several ticks
  m.run();
  EXPECT_GE(ticks, 2) << "telemetry must fire mid-run, not just at quiesce";
  EXPECT_EQ(rows, 2u);
  EXPECT_GE(live_hops_in, 1u)
      << "a mid-run kStatsDelta must carry real worker counters";
}

TEST(ProcMachine, RecoveryDrillYieldsTimelineAndFlightRing) {
  ProcMachine::Options o;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  int delivered = 0;
  m.post(0, [&] {
    m.transmit(0, 1, 128, [&] {
      // on_delivery runs after PE 1's worker granted the hop, so its
      // flight ring provably holds frames when the SIGKILL lands.
      ++delivered;
      m.kill_worker(1);
      for (int i = 0; i < 5; ++i) m.transmit(0, 1, 64, [&] { ++delivered; });
    });
  });
  m.run();
  EXPECT_EQ(delivered, 6);

  ASSERT_GE(m.recovery_timelines().size(), 1u);
  const obs::RecoveryTimeline& t = m.recovery_timelines().front();
  EXPECT_EQ(t.pe, 1);
  EXPECT_EQ(t.incarnation, 1);
  // The supervisor's milestones arrive in causal order with nondecreasing
  // run-relative timestamps: death detected -> backoff -> respawned -> ...
  ASSERT_GE(t.milestones.size(), 3u);
  bool death = false, respawned = false;
  double prev = 0.0;
  for (const auto& [when, what] : t.milestones) {
    EXPECT_GE(when, prev) << what;
    prev = when;
    death = death || what.find("death detected") != std::string::npos;
    respawned = respawned || what.find("respawned") != std::string::npos;
  }
  EXPECT_TRUE(death) << "first milestone names the detected death";
  EXPECT_TRUE(respawned);
  EXPECT_NE(t.milestones.front().second.find("death detected"),
            std::string::npos)
      << t.milestones.front().second;
  // The dead incarnation's ring was harvested BEFORE the respawn reopened
  // the file, so the pre-death history is intact.
  EXPECT_GT(t.flight.total, 0u);
  EXPECT_FALSE(t.flight.events.empty());
}

// --- the mesh data plane ----------------------------------------------------

TEST(ProcMachine, MeshCarriesHopsDirectlyBetweenWorkers) {
  // Default options: mesh on, socketpair edges passed at fork.  Payloads
  // must travel the direct worker<->worker channel, not the parent relay.
  ProcMachine m(3);
  int delivered = 0;
  m.post(0, [&] {
    for (int i = 0; i < 20; ++i) {
      m.transmit(0, 1, 512, [&] { ++delivered; });
      m.transmit(0, 2, 512, [&] { ++delivered; });
    }
  });
  m.run();
  EXPECT_EQ(delivered, 40);
  EXPECT_GE(m.worker_stats(0).direct_hops_out, 40u);
  EXPECT_GE(m.worker_stats(1).direct_hops_in, 20u);
  EXPECT_GE(m.worker_stats(2).direct_hops_in, 20u);
}

TEST(ProcMachine, MeshCarriesHopsDirectlyOverTcpDialBack) {
  // TCP transport: no fds to inherit, so every worker opens a loopback
  // listener and the supervisor brokers one dial per edge.  Same direct
  // counters must move.
  ProcMachine::Options o;
  o.use_tcp = true;
  ProcMachine m(2, o);
  int delivered = 0;
  m.post(0, [&] {
    for (int i = 0; i < 10; ++i) m.transmit(0, 1, 256, [&] { ++delivered; });
  });
  m.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_GE(m.worker_stats(0).direct_hops_out, 10u);
  EXPECT_GE(m.worker_stats(1).direct_hops_in, 10u);
}

TEST(ProcMachine, StarEscapeHatchCarriesNoDirectHops) {
  // Options::mesh=false pins the pre-mesh star relay: hops route through
  // the parent and the direct counters stay at zero.
  ProcMachine::Options o;
  o.mesh = false;
  ProcMachine m(2, o);
  int delivered = 0;
  m.post(0, [&] {
    for (int i = 0; i < 10; ++i) m.transmit(0, 1, 256, [&] { ++delivered; });
  });
  m.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(m.worker_stats(0).direct_hops_out, 0u);
  EXPECT_EQ(m.worker_stats(1).direct_hops_in, 0u);
  EXPECT_EQ(m.worker_stats(1).hops_in, 10u);
}

TEST(ProcMachine, MeshPreservesSendOrderOnDirectChannel) {
  // Non-overtaking holds on the direct edge: a single SOCK_STREAM channel
  // plus FIFO grant handling keeps delivery in send order.
  ProcMachine m(2);
  std::vector<int> got;
  m.post(0, [&] {
    for (int i = 0; i < 100; ++i) {
      m.transmit(0, 1, 64 + (i % 7) * 32, [&got, i] { got.push_back(i); });
    }
  });
  m.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(ProcMachine, MeshTornDirectFrameRedeliveredExactlyOnce) {
  // SIGKILL the destination mid-transfer of an 8 MiB direct hop: the torn
  // frame dies with the edge, the source's retained copy is replayed over
  // the re-brokered channel, and the grant fires exactly once.
  ProcMachine::Options o;
  o.recovery.enabled = true;
  ProcMachine m(2, o);
  int delivered = 0;
  m.post(0, [&] {
    m.transmit(0, 1, 8u << 20, [&] { ++delivered; });
    m.kill_worker(1);
  });
  m.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(m.respawns(1), 1);
  EXPECT_GE(m.worker_stats(0).hops_replayed, 1u);
}

TEST(ProcMachine, MeshRecoveryReplaysAfterBothEdgeEndpointsDie) {
  // The hardest re-broker case: both endpoints of a busy edge SIGKILLed at
  // different points in a 40-hop burst.  Source-side retention plus
  // receiver seq dedup plus the parent's token-map backstop must still
  // yield exactly-once delivery.
  ProcMachine::Options o;
  o.recovery.enabled = true;
  o.recovery.max_respawns = 8;
  ProcMachine m(2, o);
  m.schedule_kill_after_transmits(1, 10);
  m.schedule_kill_after_transmits(0, 22);
  int delivered = 0;
  m.post(0, [&] {
    for (int i = 0; i < 40; ++i) m.transmit(0, 1, 256, [&] { ++delivered; });
  });
  m.run();
  EXPECT_EQ(delivered, 40);
  EXPECT_GE(m.worker_deaths(), 2u);
  EXPECT_GE(m.respawns(0), 1);
  EXPECT_GE(m.respawns(1), 1);
}

TEST(ProcMachineWorkloads, MeshMatchesStarBitIdenticallyOnCatalog) {
  // The data plane is an implementation detail: every catalog program must
  // produce bit-identical results on mesh and star alike.
  ProcMachine::Options star;
  star.mesh = false;
  for (const std::string& name : harness::workload_names()) {
    const std::vector<double>& want = harness::workload_reference(name);
    ProcMachine mesh_eng(harness::workload_pe_count(name));
    const std::vector<double> mesh_got = harness::run_workload(name, mesh_eng);
    ProcMachine star_eng(harness::workload_pe_count(name), star);
    const std::vector<double> star_got = harness::run_workload(name, star_eng);
    ASSERT_EQ(mesh_got.size(), want.size()) << name;
    ASSERT_EQ(star_got.size(), want.size()) << name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(mesh_got[i], want[i]) << name << " (mesh) differs at [" << i
                                      << "]";
      ASSERT_EQ(star_got[i], want[i]) << name << " (star) differs at [" << i
                                      << "]";
    }
  }
}

TEST(ProcMachineWorkloads, TracingDoesNotPerturbResults) {
  // Observability must be a pure observer: with tracing, telemetry, and
  // the flight recorder all on, the catalog result is still bit-identical
  // to the sim reference.
  ProcMachine::Options o;
  o.trace = true;
  o.stats_interval_s = 0.005;
  const std::string name = "mm/phase1d";
  ProcMachine eng(harness::workload_pe_count(name), o);
  const std::vector<double>& want = harness::workload_reference(name);
  const std::vector<double> got = harness::run_workload(name, eng);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "differs at [" << i << "]";
  }
  // And the run left a usable merged trace behind.
  const std::vector<obs::WorkerLane> lanes = eng.worker_lanes();
  bool any_spans = false;
  for (const auto& lane : lanes) any_spans = any_spans || !lane.spans.empty();
  EXPECT_TRUE(any_spans);
  EXPECT_FALSE(
      obs::proc_trace_flows(lanes, eng.run_epoch_ns()).empty());
}

// --- the catalog on the proc backend ---------------------------------------

TEST(ProcMachineWorkloads, AllProgramsBitIdenticalToSimReference) {
  for (const std::string& name : harness::workload_names()) {
    const std::vector<double>& want = harness::workload_reference(name);
    ProcMachine eng(harness::workload_pe_count(name));
    const std::vector<double> got = harness::run_workload(name, eng);
    ASSERT_EQ(got.size(), want.size()) << name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << name << " differs at [" << i << "]";
    }
  }
}

TEST(ProcMachineWorkloads, FaultSweepSmokeOverSocketTransport) {
  machine::FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.duplicate_prob = 0.02;
  plan.corrupt_prob = 0.01;
  const harness::FaultSweepReport report = harness::fault_sweep(
      /*first_seed=*/1, /*num_seeds=*/2, plan, /*verbose=*/false,
      /*case_filter=*/"jacobi", harness::FaultBackend::kProc);
  EXPECT_FALSE(report.failed)
      << report.first_failure.name << " seed " << report.first_failure.seed
      << ": " << report.first_failure.detail;
}

// The headline crash drill: the recovery ring on the process backend, with
// hop-count-triggered crashes SIGKILLing real worker processes mid-run.
// The supervisor respawns them, Checkpointer::restore fetches the snapshot
// back over the wire (navp::ProcCheckpointStore), and the ring sum must
// still match the fault-free expectation exactly.
TEST(ProcMachineWorkloads, RecoveryRingSurvivesRealSigkills) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    machine::FaultPlan plan;
    plan.seed = seed;
    const harness::FaultCaseResult r = harness::run_fault_case(
        "recovery/ring", plan, harness::FaultBackend::kProc);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    EXPECT_GE(r.crashes_fired, 2u) << "seed " << seed;
    EXPECT_GE(r.agents_recovered, 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace navcpp::machine
